//! Figure-21 analogue: different patterns Ψ pull out different functional
//! modules of a PPI-like network.
//!
//! The paper's yeast study computes the PDS for edge, c3-star, 2-triangle
//! and 4-clique patterns and finds each corresponds to a distinct
//! functional class. Our synthetic PPI graph plants three modules —
//! a near-clique, a dense bipartite block (4-cycle-rich), and hub-leaf
//! stars — and the PDS per pattern lands on the matching module.
//!
//! Run with: `cargo run --release --example pattern_motifs`

use dsd::core::{densest_subgraph, Method};
use dsd::datasets::planted::ppi_like;
use dsd::motif::Pattern;

fn module_of(vertices: &[u32]) -> &'static str {
    let count = |lo: u32, hi: u32| vertices.iter().filter(|&&v| v >= lo && v < hi).count();
    let clique = count(0, 8);
    let bipartite = count(8, 24);
    let star = count(24, 45);
    if clique >= bipartite && clique >= star {
        "clique module (0..8)"
    } else if bipartite >= star {
        "bipartite module (8..24)"
    } else {
        "star module (24..45)"
    }
}

fn main() {
    let g = ppi_like(7);
    println!(
        "PPI-like network: {} proteins, {} interactions\n",
        g.num_vertices(),
        g.num_edges()
    );

    for psi in [
        Pattern::edge(),
        Pattern::clique(4),
        Pattern::diamond(),
        Pattern::three_star(),
        Pattern::c3_star(),
    ] {
        let pds = densest_subgraph(&g, &psi, Method::CoreExact);
        println!(
            "{:>10}-PDS: {:>3} proteins, density {:>10.3} -> {}",
            psi.name(),
            pds.len(),
            pds.density,
            module_of(&pds.vertices)
        );
    }

    // Hard checks on the module ↔ pattern correspondence.
    let k4 = densest_subgraph(&g, &Pattern::clique(4), Method::CoreExact);
    assert_eq!(module_of(&k4.vertices), "clique module (0..8)");
    let dia = densest_subgraph(&g, &Pattern::diamond(), Method::CoreExact);
    assert_eq!(module_of(&dia.vertices), "bipartite module (8..24)");
    let star = densest_subgraph(&g, &Pattern::three_star(), Method::CoreExact);
    assert_eq!(module_of(&star.vertices), "star module (24..45)");
    println!("\neach pattern's PDS matches its planted module, as in Fig. 21.");
}
