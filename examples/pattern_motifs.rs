//! Figure-21 analogue: different patterns Ψ pull out different functional
//! modules of a PPI-like network.
//!
//! The paper's yeast study computes the PDS for edge, c3-star, 2-triangle
//! and 4-clique patterns and finds each corresponds to a distinct
//! functional class. Our synthetic PPI graph plants three modules —
//! a near-clique, a dense bipartite block (4-cycle-rich), and hub-leaf
//! stars — and the PDS per pattern lands on the matching module. One
//! engine serves the whole pattern menu.
//!
//! Run with: `cargo run --release --example pattern_motifs`

use dsd::datasets::planted::ppi_like;
use dsd::prelude::*;

fn module_of(vertices: &[u32]) -> &'static str {
    let count = |lo: u32, hi: u32| vertices.iter().filter(|&&v| v >= lo && v < hi).count();
    let clique = count(0, 8);
    let bipartite = count(8, 24);
    let star = count(24, 45);
    if clique >= bipartite && clique >= star {
        "clique module (0..8)"
    } else if bipartite >= star {
        "bipartite module (8..24)"
    } else {
        "star module (24..45)"
    }
}

fn main() {
    let g = ppi_like(7);
    println!(
        "PPI-like network: {} proteins, {} interactions\n",
        g.num_vertices(),
        g.num_edges()
    );
    let engine = DsdEngine::new(g);
    let pds_of = |psi: &Pattern| engine.request(psi).method(Method::CoreExact).solve();

    for psi in [
        Pattern::edge(),
        Pattern::clique(4),
        Pattern::diamond(),
        Pattern::three_star(),
        Pattern::c3_star(),
    ] {
        let pds = pds_of(&psi);
        println!(
            "{:>10}-PDS: {:>3} proteins, density {:>10.3} -> {}",
            psi.name(),
            pds.len(),
            pds.density,
            module_of(&pds.vertices)
        );
    }

    // Hard checks on the module ↔ pattern correspondence. These repeat
    // patterns from the loop above, so every substrate is served warm.
    let k4 = pds_of(&Pattern::clique(4));
    assert!(k4.stats.substrate.decomposition_cache_hit);
    assert_eq!(module_of(&k4.vertices), "clique module (0..8)");
    let dia = pds_of(&Pattern::diamond());
    assert_eq!(module_of(&dia.vertices), "bipartite module (8..24)");
    let star = pds_of(&Pattern::three_star());
    assert_eq!(module_of(&star.vertices), "star module (24..45)");
    println!("\neach pattern's PDS matches its planted module, as in Fig. 21.");
}
