//! Quickstart: load a graph into a `DsdEngine`, find its edge- and
//! triangle-densest subgraphs with every method, and print the results —
//! all requests after the first reuse the engine's warm substrates.
//!
//! Run with: `cargo run --release --example quickstart`

use dsd::prelude::*;

fn main() {
    // The paper's Figure-1(a) setting: an edge-dense near-bipartite block
    // (S1) and a triangle-dense diamond (S2) in one graph. Graphs normally
    // come from edge-list files; `parse_edge_list` accepts the same text.
    let g = dsd::graph::io::parse_edge_list(
        "# S1: K{3,4} minus an edge (vertices 0-6)\n\
         0 3\n0 4\n0 5\n0 6\n1 3\n1 4\n1 5\n1 6\n2 3\n2 4\n2 5\n\
         # S2: two triangles sharing an edge (vertices 7-10)\n\
         7 8\n8 9\n7 9\n7 10\n9 10\n\
         # bridge\n6 7\n",
    )
    .expect("valid edge list");

    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    let engine = DsdEngine::new(g);

    // The edge-densest subgraph (EDS) is S1: 11 edges over 7 vertices.
    let eds = engine.request(&Pattern::edge()).solve();
    println!(
        "\nEDS via {:?} (edge density {:.4}): {:?}",
        eds.method, eds.density, eds.vertices
    );

    // The triangle-densest subgraph (CDS) is S2 — a different subgraph!
    let cds = engine.request(&Pattern::triangle()).solve();
    println!(
        "triangle-CDS (density {:.4}): {:?}",
        cds.density, cds.vertices
    );

    // Approximation methods trade accuracy for speed; on this graph they
    // are exact anyway. The engine serves them all from the warm
    // (k, Ψ)-core decomposition built for the CDS request above.
    for method in [Method::PeelApp, Method::IncApp, Method::CoreApp] {
        let r = engine.request(&Pattern::triangle()).method(method).solve();
        assert!(r.stats.substrate.decomposition_cache_hit || method == Method::CoreApp);
        println!(
            "{method:?}: density {:.4}, vertices {:?}",
            r.density, r.vertices
        );
    }

    // Any connected pattern works as the density definition.
    let pds = engine.request(&Pattern::two_star()).solve();
    println!(
        "\n2-star PDS (density {:.4}): {:?}",
        pds.density, pds.vertices
    );

    let hits = engine.cache_stats();
    println!(
        "\nsubstrate cache: {} decomposition builds, {} hits",
        hits.decomposition_builds, hits.decomposition_hits
    );

    assert_eq!(eds.vertices, vec![0, 1, 2, 3, 4, 5, 6]);
    assert_eq!(cds.vertices, vec![7, 8, 9, 10]);
    println!("EDS and CDS differ, as Figure 1 of the paper illustrates.");
}
