//! Serving: one `DsdService` holding several named graphs, answering a
//! mixed batch of requests across worker threads.
//!
//! The service is the deployment shape for the paper's algorithms: the
//! catalog keeps each dataset's substrates warm between requests, and
//! `solve_batch` groups a mixed workload by (graph, Ψ) so duplicate
//! substrate work is paid once, then fans the requests out across scoped
//! workers.
//!
//! Run with: `cargo run --release --example serving`

use dsd::datasets::planted;
use dsd::prelude::*;

fn main() {
    let service = DsdService::with_parallelism(Parallelism::new(4));

    // Register two datasets; each gets its own engine + substrate cache.
    let collab = planted::collaboration_network(12, 10, 4, 8, 42);
    let ppi = planted::ppi_like(42);
    println!(
        "catalog: collab (n={}, m={}), ppi (n={}, m={})",
        collab.num_vertices(),
        collab.num_edges(),
        ppi.num_vertices(),
        ppi.num_edges()
    );
    service.register("collab", collab);
    service.register("ppi", ppi);
    assert_eq!(
        service.list(),
        vec!["collab".to_string(), "ppi".to_string()]
    );

    // A mixed workload: both graphs, two patterns, several objectives.
    let tri = Pattern::triangle();
    let star = Pattern::two_star();
    let batch = vec![
        DsdRequest::new(&tri).on("collab"),
        DsdRequest::new(&tri)
            .on("collab")
            .objective(Objective::TopK(3)),
        DsdRequest::new(&star).on("collab"),
        DsdRequest::new(&tri).on("ppi"),
        DsdRequest::new(&tri)
            .on("ppi")
            .objective(Objective::AtLeastK(12)),
        DsdRequest::new(&star).on("ppi"),
        // A request for a graph nobody registered fails in place without
        // poisoning the rest of the batch.
        DsdRequest::new(&tri).on("missing"),
    ];
    let outcome = service.solve_batch(batch);

    for (i, result) in outcome.solutions.iter().enumerate() {
        match result {
            Ok(s) => println!(
                "#{i}: {:?} via {:?} -> density {:.3}, {} vertices",
                s.objective,
                s.method,
                s.density,
                s.len()
            ),
            Err(e) => println!("#{i}: error: {e}"),
        }
    }
    let st = &outcome.stats;
    println!(
        "batch: {:.2} ms wall, {} groups, {} substrate builds + {} hits, \
         {:.0}% worker utilization",
        st.wall_nanos as f64 / 1e6,
        st.groups,
        st.substrate_builds,
        st.substrate_hits,
        st.utilization() * 100.0
    );

    // Requests grouped: 2 graphs × 2 patterns = 4 groups, but only the
    // triangle groups build a (k, Ψ)-core decomposition here (the 2-star
    // requests above are Densest via Auto → they may resolve to CoreExact
    // or the decomposition-free CoreApp), so builds ≤ groups.
    assert_eq!(st.groups, 4);
    assert!(st.substrate_builds <= st.groups);
    assert!(outcome.solutions[6].is_err());

    // The catalog is dynamic: evicting a dataset frees its substrates once
    // in-flight requests drain.
    service.evict("ppi");
    assert_eq!(service.list(), vec!["collab".to_string()]);
    println!("evicted ppi; catalog now {:?}", service.list());
}
