//! Figure-17 analogue: pattern choice selects *which* community the
//! densest subgraph finds in a collaboration network.
//!
//! The paper's DBLP case study showed that the triangle-PDS is a tight
//! research group (everyone co-authored with everyone) while the
//! 2-star-PDS centres on senior hubs (advisors linked to many students).
//! We reproduce that on a planted collaboration network, then use the
//! engine's top-k objective to list the disjoint research groups.
//!
//! Run with: `cargo run --release --example community_detection`

use dsd::datasets::planted::collaboration_network;
use dsd::prelude::*;

fn main() {
    // 6 research groups of 8 (near-cliques), 3 advisors with 12 students
    // each (stars), advisors also co-author across groups.
    let groups = 6;
    let group_size = 8;
    let advisors = 3;
    let students = 12;
    let g = collaboration_network(groups, group_size, advisors, students, 2024);
    println!(
        "collaboration network: {} authors, {} co-author pairs",
        g.num_vertices(),
        g.num_edges()
    );
    let advisor_ids: Vec<u32> = (0..advisors as u32)
        .map(|a| (groups * group_size) as u32 + a)
        .collect();
    let engine = DsdEngine::new(g);

    // Triangle-PDS: a tight group.
    let tri = engine
        .request(&Pattern::triangle())
        .method(Method::CoreExact)
        .solve();
    println!(
        "\ntriangle-PDS: {} authors, density {:.3}",
        tri.len(),
        tri.density
    );
    let in_groups = tri
        .vertices
        .iter()
        .filter(|&&v| (v as usize) < groups * group_size)
        .count();
    println!(
        "  {} of {} members come from the group blocks",
        in_groups,
        tri.len()
    );

    // 2-star-PDS: hub-centred (advisors + students).
    let star = engine
        .request(&Pattern::two_star())
        .method(Method::CoreExact)
        .solve();
    println!(
        "\n2-star-PDS: {} authors, density {:.3}",
        star.len(),
        star.density
    );
    let hubs: Vec<u32> = advisor_ids
        .iter()
        .copied()
        .filter(|a| star.vertices.contains(a))
        .collect();
    println!("  advisors inside the 2-star PDS: {hubs:?}");

    // Top-3 disjoint triangle-dense groups, served from the warm
    // decomposition the first triangle request already built.
    let top3 = engine
        .request(&Pattern::triangle())
        .objective(Objective::TopK(3))
        .solve();
    assert!(top3.stats.substrate.decomposition_cache_hit);
    println!("\ntop-3 disjoint triangle-dense groups:");
    for (i, group) in top3.subgraphs.iter().enumerate() {
        println!(
            "  #{}: {} authors, density {:.3}",
            i + 1,
            group.len(),
            group.density
        );
    }

    // The two PDS's capture different semantics (the case-study point).
    assert!(
        in_groups == tri.len(),
        "triangle-PDS should stay inside a co-authoring group"
    );
    assert!(
        !hubs.is_empty(),
        "2-star-PDS should capture at least one advisor hub"
    );
    println!("\ntriangle → cohesive group; 2-star → advisor-centred star, as in Fig. 17.");
}
