//! Recovering a planted dense subgraph: exact vs approximate, plus the
//! query-vertex variant of Section 6.3 — one engine serves all three.
//!
//! Run with: `cargo run --release --example planted_dense`

use dsd::datasets::planted::planted_dense;
use dsd::prelude::*;

fn main() {
    // A 20-vertex near-clique hidden in a 600-vertex sparse background.
    let planted = planted_dense(600, 20, 0.9, 0.01, 99);
    println!(
        "graph: {} vertices, {} edges; planted block: {:?}",
        planted.graph.num_vertices(),
        planted.graph.num_edges(),
        planted.planted
    );
    let engine = DsdEngine::new(planted.graph.clone());

    // CoreExact recovers the planted block exactly.
    let exact = engine
        .request(&Pattern::edge())
        .method(Method::CoreExact)
        .solve();
    let recovered = exact
        .vertices
        .iter()
        .filter(|v| planted.planted.contains(v))
        .count();
    println!(
        "\nCoreExact: density {:.3}, |D| = {}, {} of 20 planted vertices recovered",
        exact.density,
        exact.len(),
        recovered
    );
    assert!(recovered >= 18, "planted block mostly recovered");

    // CoreApp gets similar quality at a fraction of the cost.
    let approx = engine
        .request(&Pattern::edge())
        .method(Method::CoreApp)
        .solve();
    println!(
        "CoreApp:   density {:.3} ({}% of exact)",
        approx.density,
        (100.0 * approx.density / exact.density).round()
    );
    assert!(approx.density >= exact.density / 2.0, "0.5-approximation");

    // Query variant: force a background vertex into the answer.
    let outsider = 599u32;
    let with_q = engine
        .request(&Pattern::edge())
        .objective(Objective::WithQuery(vec![outsider]))
        .solve();
    assert_eq!(with_q.outcome, Outcome::Found);
    println!(
        "\nquery variant (must contain v{outsider}): density {:.3}, |D| = {}",
        with_q.density,
        with_q.len()
    );
    assert!(with_q.vertices.contains(&outsider));
    assert!(with_q.density <= exact.density + 1e-9);
    println!("query answer contains the outsider and pays a density price, as expected.");
}
