//! Recovering a planted dense subgraph: exact vs approximate, plus the
//! query-vertex variant of Section 6.3.
//!
//! Run with: `cargo run --release --example planted_dense`

use dsd::core::{densest_subgraph, densest_with_query, Method};
use dsd::datasets::planted::planted_dense;
use dsd::motif::Pattern;

fn main() {
    // A 20-vertex near-clique hidden in a 600-vertex sparse background.
    let planted = planted_dense(600, 20, 0.9, 0.01, 99);
    let g = &planted.graph;
    println!(
        "graph: {} vertices, {} edges; planted block: {:?}",
        g.num_vertices(),
        g.num_edges(),
        planted.planted
    );

    // CoreExact recovers the planted block exactly.
    let exact = densest_subgraph(g, &Pattern::edge(), Method::CoreExact);
    let recovered = exact
        .vertices
        .iter()
        .filter(|v| planted.planted.contains(v))
        .count();
    println!(
        "\nCoreExact: density {:.3}, |D| = {}, {} of 20 planted vertices recovered",
        exact.density,
        exact.len(),
        recovered
    );
    assert!(recovered >= 18, "planted block mostly recovered");

    // CoreApp gets similar quality at a fraction of the cost.
    let approx = densest_subgraph(g, &Pattern::edge(), Method::CoreApp);
    println!(
        "CoreApp:   density {:.3} ({}% of exact)",
        approx.density,
        (100.0 * approx.density / exact.density).round()
    );
    assert!(approx.density >= exact.density / 2.0, "0.5-approximation");

    // Query variant: force a background vertex into the answer.
    let outsider = 599u32;
    let with_q = densest_with_query(g, &[outsider]).expect("valid query");
    println!(
        "\nquery variant (must contain v{outsider}): density {:.3}, |D| = {}",
        with_q.density,
        with_q.len()
    );
    assert!(with_q.vertices.contains(&outsider));
    assert!(with_q.density <= exact.density + 1e-9);
    println!("query answer contains the outsider and pays a density price, as expected.");
}
