//! Property-style tests of the max-flow substrate: the two solvers agree,
//! flows are conserved and capacity-feasible, and max-flow equals the
//! capacity of the extracted minimum cut (strong duality). Driven by a
//! deterministic xorshift seed loop (no crates.io access in the container),
//! plus a deeper seeded backend-equivalence sweep over the workspace
//! generator (`crates/rand`) that honours the `DSD_PROP_ITERS` knob used
//! by the nightly CI job.

use dsd_flow::{min_cut_source_side, Dinic, FlowNetwork, MaxFlow, NodeId, PushRelabel, EPS};
use dsd_graph::testing::XorShift;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Debug)]
struct NetSpec {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
}

fn random_spec(rng: &mut XorShift) -> NetSpec {
    let n = 3 + (rng.next() as usize) % 8;
    let m = 1 + (rng.next() as usize) % 39;
    let edges = (0..m)
        .map(|_| {
            (
                (rng.next() % n as u64) as u32,
                (rng.next() % n as u64) as u32,
                rng.unit_f64() * 20.0,
            )
        })
        .collect();
    NetSpec { n, edges }
}

fn build(spec: &NetSpec) -> FlowNetwork {
    let mut net = FlowNetwork::new(spec.n);
    for &(u, v, cap) in &spec.edges {
        if u != v {
            net.add_edge(u, v, cap);
        }
    }
    net
}

/// Sum of capacities crossing from the source side to the rest.
fn cut_capacity(net: &FlowNetwork, side: &[NodeId]) -> f64 {
    let inside = |v: NodeId| side.contains(&v);
    let mut cap = 0.0;
    for v in side {
        for &e in net.out_edges(*v) {
            // Forward edges only (even ids).
            if e % 2 == 0 {
                let edge = net.edge(e);
                if !inside(edge.to) {
                    cap += edge.cap;
                }
            }
        }
    }
    cap
}

#[test]
fn dinic_equals_push_relabel() {
    let mut rng = XorShift::new(0xF10A);
    for _ in 0..256 {
        let spec = random_spec(&mut rng);
        let s: NodeId = 0;
        let t: NodeId = (spec.n - 1) as NodeId;
        let mut a = build(&spec);
        let mut b = build(&spec);
        let fa = Dinic::new().max_flow(&mut a, s, t);
        let fb = PushRelabel::new().max_flow(&mut b, s, t);
        assert!((fa - fb).abs() < 1e-6, "dinic {fa} vs push-relabel {fb}");
    }
}

#[test]
fn flow_is_conserved_and_feasible() {
    let mut rng = XorShift::new(0xC045);
    for _ in 0..256 {
        let spec = random_spec(&mut rng);
        let s: NodeId = 0;
        let t: NodeId = (spec.n - 1) as NodeId;
        let mut net = build(&spec);
        let f = Dinic::new().max_flow(&mut net, s, t);
        assert!(f >= -EPS);
        assert!(net.conserves_flow(s, t));
        // No forward edge exceeds its capacity.
        for v in 0..spec.n as NodeId {
            for &e in net.out_edges(v) {
                if e % 2 == 0 {
                    let edge = net.edge(e);
                    assert!(edge.flow <= edge.cap + 1e-9);
                }
            }
        }
    }
}

/// Strong duality: the extracted source side is a cut of capacity equal to
/// the max flow.
#[test]
fn max_flow_equals_min_cut() {
    let mut rng = XorShift::new(0xD0A1);
    for _ in 0..256 {
        let spec = random_spec(&mut rng);
        let s: NodeId = 0;
        let t: NodeId = (spec.n - 1) as NodeId;
        let mut net = build(&spec);
        let f = Dinic::new().max_flow(&mut net, s, t);
        let side = min_cut_source_side(&net, s);
        assert!(side.contains(&s));
        assert!(!side.contains(&t));
        let cap = cut_capacity(&net, &side);
        assert!((f - cap).abs() < 1e-6, "flow {f} vs cut {cap}");
    }
}

/// Backend equivalence, closed end to end: on larger randomized networks
/// from the workspace's seeded generator, Dinic and push-relabel agree on
/// the max-flow value *and* each backend's own extracted min cut certifies
/// it (strong duality holds per backend, not just for Dinic). Iteration
/// count honours `DSD_PROP_ITERS`.
#[test]
fn backend_equivalence_on_seeded_networks() {
    let iters = std::env::var("DSD_PROP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300usize);
    for seed in 0..iters as u64 {
        let mut rng = StdRng::seed_from_u64(0xF70A ^ seed);
        let n = rng.gen_range(4usize..=24);
        let m = rng.gen_range(n..=n * 6);
        let spec = NetSpec {
            n,
            edges: (0..m)
                .map(|_| {
                    (
                        rng.gen_range(0u32..n as u32),
                        rng.gen_range(0u32..n as u32),
                        rng.gen_range(0.05f64..25.0),
                    )
                })
                .collect(),
        };
        let s: NodeId = 0;
        let t: NodeId = (n - 1) as NodeId;
        let mut dinic_net = build(&spec);
        let mut pr_net = build(&spec);
        let f_dinic = Dinic::new().max_flow(&mut dinic_net, s, t);
        let f_pr = PushRelabel::new().max_flow(&mut pr_net, s, t);
        assert!(
            (f_dinic - f_pr).abs() < 1e-6,
            "seed {seed}: dinic {f_dinic} vs push-relabel {f_pr}"
        );
        for (name, net, flow) in [
            ("dinic", &dinic_net, f_dinic),
            ("push-relabel", &pr_net, f_pr),
        ] {
            let side = min_cut_source_side(net, s);
            assert!(side.contains(&s), "seed {seed}: {name} cut misses source");
            assert!(!side.contains(&t), "seed {seed}: {name} cut contains sink");
            let cap = cut_capacity(net, &side);
            assert!(
                (flow - cap).abs() < 1e-6,
                "seed {seed}: {name} flow {flow} vs own cut {cap}"
            );
        }
    }
}

/// Parametric resolve: after monotone non-decreasing capacity bumps, each
/// backend's warm `resolve` matches a from-scratch solve — value (within
/// fp tolerance) and the extracted minimal min-cut source side (set
/// equality; the reachability-minimal min cut is unique, so it must not
/// depend on how the flow got there). Iterations honour `DSD_PROP_ITERS`.
#[test]
fn resolve_matches_cold_solve_across_backends() {
    let iters = std::env::var("DSD_PROP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200usize);
    for seed in 0..iters as u64 {
        let mut rng = StdRng::seed_from_u64(0x6617 ^ seed);
        let n = rng.gen_range(4usize..=16);
        let m = rng.gen_range(n..=n * 5);
        let spec = NetSpec {
            n,
            edges: (0..m)
                .map(|_| {
                    (
                        rng.gen_range(0u32..n as u32),
                        rng.gen_range(0u32..n as u32),
                        rng.gen_range(0.05f64..20.0),
                    )
                })
                .collect(),
        };
        let s: NodeId = 0;
        let t: NodeId = (n - 1) as NodeId;
        for backend in 0..2 {
            let solver = |b: usize| -> Box<dyn MaxFlow> {
                if b == 0 {
                    Box::new(Dinic::new())
                } else {
                    Box::new(PushRelabel::new())
                }
            };
            let mut warm = build(&spec);
            let mut warm_solver = solver(backend);
            let _ = warm_solver.max_flow(&mut warm, s, t);
            // Three rounds of monotone bumps, resolving after each.
            for round in 0..3u64 {
                let mut changed = Vec::new();
                for e in 0..warm.num_edges() as u32 {
                    if (seed + e as u64 + round).is_multiple_of(3) {
                        let cap = warm.edge(2 * e).cap + rng.gen_range(0.1f64..8.0);
                        warm.set_cap(2 * e, cap);
                        changed.push(2 * e);
                    }
                }
                let f_warm = warm_solver.resolve(&mut warm, s, t, &changed);
                // Cold reference on an identically-capacitated network.
                let mut cold = warm.clone();
                cold.reset_flow();
                let f_cold = solver(backend).max_flow(&mut cold, s, t);
                assert!(
                    (f_warm - f_cold).abs() < 1e-6,
                    "seed {seed} round {round} backend {backend}: warm {f_warm} vs cold {f_cold}"
                );
                let side_warm = min_cut_source_side(&warm, s);
                let side_cold = min_cut_source_side(&cold, s);
                assert_eq!(
                    side_warm, side_cold,
                    "seed {seed} round {round} backend {backend}: min-cut source sides differ"
                );
            }
        }
    }
}

/// Re-solving after reset gives the same value (solver statelessness).
#[test]
fn reset_and_resolve_is_idempotent() {
    let mut rng = XorShift::new(0x1DE2);
    for _ in 0..256 {
        let spec = random_spec(&mut rng);
        let s: NodeId = 0;
        let t: NodeId = (spec.n - 1) as NodeId;
        let mut net = build(&spec);
        let f1 = Dinic::new().max_flow(&mut net, s, t);
        net.reset_flow();
        let f2 = Dinic::new().max_flow(&mut net, s, t);
        assert!((f1 - f2).abs() < 1e-9);
    }
}

/// Warm continuation: after raising a saturated edge's capacity, more
/// augmentation can only increase the flow, and equals a cold solve.
#[test]
fn monotone_capacity_increase_warm_start() {
    let mut rng = XorShift::new(0x3A1C);
    for _ in 0..256 {
        let spec = random_spec(&mut rng);
        let bump = rng.unit_f64() * 10.0;
        let s: NodeId = 0;
        let t: NodeId = (spec.n - 1) as NodeId;
        let mut warm = build(&spec);
        let f1 = Dinic::new().max_flow(&mut warm, s, t);
        // Raise every forward capacity by `bump` and continue augmenting
        // on the existing flow.
        let mut cold = build(&spec);
        for v in 0..spec.n as NodeId {
            let out: Vec<_> = warm.out_edges(v).to_vec();
            for e in out {
                if e % 2 == 0 {
                    let cap = warm.edge(e).cap;
                    warm.set_cap(e, cap + bump);
                    cold.set_cap(e, cap + bump);
                }
            }
        }
        let f_warm_extra = Dinic::new().max_flow(&mut warm, s, t);
        let f_warm_total = f1 + f_warm_extra;
        let f_cold = Dinic::new().max_flow(&mut cold, s, t);
        assert!(f_warm_total + 1e-6 >= f1);
        assert!(
            (f_warm_total - f_cold).abs() < 1e-6,
            "warm {f_warm_total} vs cold {f_cold}"
        );
    }
}
