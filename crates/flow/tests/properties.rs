//! Property-based tests of the max-flow substrate: the two solvers agree,
//! flows are conserved and capacity-feasible, and max-flow equals the
//! capacity of the extracted minimum cut (strong duality).

use dsd_flow::{min_cut_source_side, Dinic, FlowNetwork, MaxFlow, NodeId, PushRelabel, EPS};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct NetSpec {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
}

fn net_strategy() -> impl Strategy<Value = NetSpec> {
    (3..=10usize).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.0f64..20.0);
        proptest::collection::vec(edge, 1..40).prop_map(move |edges| NetSpec { n, edges })
    })
}

fn build(spec: &NetSpec) -> FlowNetwork {
    let mut net = FlowNetwork::new(spec.n);
    for &(u, v, cap) in &spec.edges {
        if u != v {
            net.add_edge(u, v, cap);
        }
    }
    net
}

/// Sum of capacities crossing from the source side to the rest.
fn cut_capacity(net: &FlowNetwork, side: &[NodeId]) -> f64 {
    let inside = |v: NodeId| side.contains(&v);
    let mut cap = 0.0;
    for v in side {
        for &e in net.out_edges(*v) {
            // Forward edges only (even ids).
            if e % 2 == 0 {
                let edge = net.edge(e);
                if !inside(edge.to) {
                    cap += edge.cap;
                }
            }
        }
    }
    cap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dinic_equals_push_relabel(spec in net_strategy()) {
        let s: NodeId = 0;
        let t: NodeId = (spec.n - 1) as NodeId;
        let mut a = build(&spec);
        let mut b = build(&spec);
        let fa = Dinic::new().max_flow(&mut a, s, t);
        let fb = PushRelabel::new().max_flow(&mut b, s, t);
        prop_assert!((fa - fb).abs() < 1e-6, "dinic {fa} vs push-relabel {fb}");
    }

    #[test]
    fn flow_is_conserved_and_feasible(spec in net_strategy()) {
        let s: NodeId = 0;
        let t: NodeId = (spec.n - 1) as NodeId;
        let mut net = build(&spec);
        let f = Dinic::new().max_flow(&mut net, s, t);
        prop_assert!(f >= -EPS);
        prop_assert!(net.conserves_flow(s, t));
        // No forward edge exceeds its capacity.
        for v in 0..spec.n as NodeId {
            for &e in net.out_edges(v) {
                if e % 2 == 0 {
                    let edge = net.edge(e);
                    prop_assert!(edge.flow <= edge.cap + 1e-9);
                }
            }
        }
    }

    /// Strong duality: the extracted source side is a cut of capacity
    /// equal to the max flow.
    #[test]
    fn max_flow_equals_min_cut(spec in net_strategy()) {
        let s: NodeId = 0;
        let t: NodeId = (spec.n - 1) as NodeId;
        let mut net = build(&spec);
        let f = Dinic::new().max_flow(&mut net, s, t);
        let side = min_cut_source_side(&net, s);
        prop_assert!(side.contains(&s));
        prop_assert!(!side.contains(&t));
        let cap = cut_capacity(&net, &side);
        prop_assert!((f - cap).abs() < 1e-6, "flow {f} vs cut {cap}");
    }

    /// Re-solving after reset gives the same value (solver statelessness).
    #[test]
    fn reset_and_resolve_is_idempotent(spec in net_strategy()) {
        let s: NodeId = 0;
        let t: NodeId = (spec.n - 1) as NodeId;
        let mut net = build(&spec);
        let f1 = Dinic::new().max_flow(&mut net, s, t);
        net.reset_flow();
        let f2 = Dinic::new().max_flow(&mut net, s, t);
        prop_assert!((f1 - f2).abs() < 1e-9);
    }

    /// Warm continuation: after raising a saturated edge's capacity, more
    /// augmentation can only increase the flow, and equals a cold solve.
    #[test]
    fn monotone_capacity_increase_warm_start(spec in net_strategy(), bump in 0.0f64..10.0) {
        let s: NodeId = 0;
        let t: NodeId = (spec.n - 1) as NodeId;
        let mut warm = build(&spec);
        let f1 = Dinic::new().max_flow(&mut warm, s, t);
        // Raise every forward capacity by `bump` and continue augmenting
        // on the existing flow.
        let mut cold = build(&spec);
        for v in 0..spec.n as NodeId {
            let out: Vec<_> = warm.out_edges(v).to_vec();
            for e in out {
                if e % 2 == 0 {
                    let cap = warm.edge(e).cap;
                    warm.set_cap(e, cap + bump);
                    cold.set_cap(e, cap + bump);
                }
            }
        }
        let f_warm_extra = Dinic::new().max_flow(&mut warm, s, t);
        let f_warm_total = f1 + f_warm_extra;
        let f_cold = Dinic::new().max_flow(&mut cold, s, t);
        prop_assert!(f_warm_total + 1e-6 >= f1);
        prop_assert!((f_warm_total - f_cold).abs() < 1e-6,
            "warm {f_warm_total} vs cold {f_cold}");
    }
}
