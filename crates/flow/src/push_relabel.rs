//! Highest-label push-relabel with the gap heuristic.
//!
//! Provided as an alternative max-flow backend: the paper's flow networks
//! are shallow (s → vertices → clique nodes → t), a regime where
//! push-relabel and Dinic trade places depending on capacity skew. The
//! `dsd-bench flow_solvers` bench compares the two; tests cross-validate
//! their flow values on random networks.

use crate::network::{FlowNetwork, NodeId, EPS};
use crate::MaxFlow;

/// Push-relabel max-flow solver (highest-label selection, gap heuristic).
#[derive(Default)]
pub struct PushRelabel {
    height: Vec<usize>,
    excess: Vec<f64>,
    /// Buckets of active nodes by height.
    buckets: Vec<Vec<NodeId>>,
    /// Number of nodes at each height (for the gap heuristic).
    height_count: Vec<usize>,
    current_arc: Vec<usize>,
}

impl PushRelabel {
    /// Creates a solver.
    pub fn new() -> Self {
        Self::default()
    }

    fn activate(&mut self, v: NodeId, s: NodeId, t: NodeId, highest: &mut usize) {
        if v != s && v != t && self.excess[v as usize] > EPS {
            let h = self.height[v as usize];
            *highest = (*highest).max(h);
            self.buckets[h].push(v);
        }
    }
}

impl MaxFlow for PushRelabel {
    fn max_flow(&mut self, net: &mut FlowNetwork, s: NodeId, t: NodeId) -> f64 {
        assert_ne!(s, t, "source and sink must differ");
        let n = net.num_nodes();
        self.height = vec![0; n];
        self.excess = vec![0.0; n];
        self.buckets = vec![Vec::new(); 2 * n + 1];
        self.height_count = vec![0; 2 * n + 1];
        self.current_arc = vec![0; n];

        self.height[s as usize] = n;
        self.height_count[0] = n - 1;
        self.height_count[n] += 1;

        // Saturate all source arcs.
        let src_edges: Vec<_> = net.out_edges(s).to_vec();
        let mut highest = 0usize;
        for eid in src_edges {
            let (to, residual) = {
                let e = net.edge(eid);
                (e.to, e.residual())
            };
            if residual > EPS {
                net.push(eid, residual);
                self.excess[to as usize] += residual;
                self.excess[s as usize] -= residual;
                self.activate(to, s, t, &mut highest);
            }
        }

        while highest > 0 || !self.buckets[0].is_empty() {
            // Find the highest non-empty bucket.
            while highest > 0 && self.buckets[highest].is_empty() {
                highest -= 1;
            }
            let Some(v) = self.buckets[highest].pop() else {
                if highest == 0 {
                    break;
                }
                continue;
            };
            if self.excess[v as usize] <= EPS || v == s || v == t {
                continue;
            }
            // Discharge v.
            while self.excess[v as usize] > EPS {
                let arcs = net.out_edges(v).len();
                if self.current_arc[v as usize] >= arcs {
                    // Relabel.
                    let old_h = self.height[v as usize];
                    let mut min_h = usize::MAX;
                    for &eid in net.out_edges(v) {
                        let e = net.edge(eid);
                        if e.residual() > EPS {
                            min_h = min_h.min(self.height[e.to as usize]);
                        }
                    }
                    if min_h == usize::MAX {
                        // No admissible arcs at all; excess is trapped (can
                        // only happen with zero-capacity pathologies).
                        break;
                    }
                    let new_h = min_h + 1;
                    self.height_count[old_h] -= 1;
                    // Gap heuristic: if a height level empties below n, all
                    // nodes above it (below n) are unreachable from t.
                    if self.height_count[old_h] == 0 && old_h < n {
                        for u in 0..n {
                            let hu = self.height[u];
                            if hu > old_h && hu < n && u != s as usize {
                                self.height_count[hu] -= 1;
                                self.height_count[n + 1] += 1;
                                self.height[u] = n + 1;
                            }
                        }
                    }
                    if new_h > 2 * n {
                        break;
                    }
                    self.height[v as usize] = new_h;
                    self.height_count[new_h] += 1;
                    self.current_arc[v as usize] = 0;
                    if new_h > 2 * n {
                        break;
                    }
                    continue;
                }
                let eid = net.out_edges(v)[self.current_arc[v as usize]];
                let (to, residual) = {
                    let e = net.edge(eid);
                    (e.to, e.residual())
                };
                if residual > EPS && self.height[v as usize] == self.height[to as usize] + 1 {
                    let delta = residual.min(self.excess[v as usize]);
                    net.push(eid, delta);
                    self.excess[v as usize] -= delta;
                    let was_inactive = self.excess[to as usize] <= EPS;
                    self.excess[to as usize] += delta;
                    if was_inactive {
                        self.activate(to, s, t, &mut highest);
                    }
                } else {
                    self.current_arc[v as usize] += 1;
                }
            }
            highest = highest.min(2 * n);
            // v may still carry excess after a relabel; requeue it.
            if self.excess[v as usize] > EPS && self.height[v as usize] <= 2 * n {
                let h = self.height[v as usize];
                self.buckets[h].push(v);
                highest = highest.max(h);
            }
        }
        self.excess[t as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::Dinic;

    fn random_network(seed: u64, n: usize, m: usize) -> FlowNetwork {
        // Tiny xorshift so the test has no external deps.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut net = FlowNetwork::new(n);
        for _ in 0..m {
            let u = (next() % n as u64) as NodeId;
            let v = (next() % n as u64) as NodeId;
            if u != v {
                let cap = (next() % 100) as f64 / 7.0;
                net.add_edge(u, v, cap);
            }
        }
        net
    }

    #[test]
    fn matches_dinic_on_random_networks() {
        for seed in 1..30u64 {
            let netd = random_network(seed, 12, 40);
            let mut a = netd.clone();
            let mut b = netd;
            let fa = Dinic::new().max_flow(&mut a, 0, 11);
            let fb = PushRelabel::new().max_flow(&mut b, 0, 11);
            assert!(
                (fa - fb).abs() < 1e-6,
                "seed {seed}: dinic {fa} vs push-relabel {fb}"
            );
        }
    }

    #[test]
    fn simple_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.5);
        net.add_edge(1, 2, 1.25);
        let f = PushRelabel::new().max_flow(&mut net, 0, 2);
        assert!((f - 1.25).abs() < 1e-9);
    }

    #[test]
    fn no_path_gives_zero() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(2, 3, 3.0);
        let f = PushRelabel::new().max_flow(&mut net, 0, 3);
        assert!(f.abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 1, 2.0);
        let f = PushRelabel::new().max_flow(&mut net, 0, 1);
        assert!((f - 3.0).abs() < 1e-9);
    }
}
