//! Highest-label push-relabel with the gap heuristic.
//!
//! Provided as an alternative max-flow backend: the paper's flow networks
//! are shallow (s → vertices → clique nodes → t), a regime where
//! push-relabel and Dinic trade places depending on capacity skew. The
//! `dsd-bench flow_solvers` bench compares the two; tests cross-validate
//! their flow values on random networks.
//!
//! The warm [`MaxFlow::resolve`] entry point supports the parametric
//! α-search framework: after monotone non-decreasing capacity bumps the
//! previous (pre)flow stays feasible, so `resolve` keeps it, re-derives
//! exact distance labels with one global relabel (a BFS from `t` in the
//! residual network), re-saturates the source arcs to mint fresh excess,
//! and discharges only the delta — the expensive flow routing of the
//! previous probes is never repeated.

use crate::network::{EdgeId, FlowNetwork, NodeId, EPS};
use crate::MaxFlow;

/// Push-relabel max-flow solver (highest-label selection, gap heuristic).
#[derive(Default)]
pub struct PushRelabel {
    height: Vec<usize>,
    excess: Vec<f64>,
    /// Buckets of active nodes by height.
    buckets: Vec<Vec<NodeId>>,
    /// Number of nodes at each height (for the gap heuristic).
    height_count: Vec<usize>,
    current_arc: Vec<usize>,
    work: u64,
}

impl PushRelabel {
    /// Creates a solver.
    pub fn new() -> Self {
        Self::default()
    }

    fn activate(&mut self, v: NodeId, s: NodeId, t: NodeId, highest: &mut usize) {
        if v != s && v != t && self.excess[v as usize] > EPS {
            let h = self.height[v as usize];
            *highest = (*highest).max(h);
            self.buckets[h].push(v);
        }
    }

    /// Saturates residual source arcs, crediting excess to the heads.
    /// Restores the push-relabel init invariant that no residual arc
    /// leaves `s` (which is what makes `h(s) = n` valid).
    ///
    /// `reachable_only` skips heads at height ≥ n — nodes with no
    /// residual path to `t` (sound when labels are exact, i.e. right
    /// after a global relabel). Excess minted there could never be
    /// delivered and would only walk back to `s`.
    ///
    /// `mint_cap` bounds the excess minted *per arc*, and must be an
    /// upper bound on the max-flow increment still achievable (so capping
    /// any one arc's mint at it loses nothing). Cold runs pass the total
    /// residual capacity into `t` (the trivial cut bound); warm resolves
    /// pass the total residual of the changed arcs — every incremental
    /// augmenting path crosses a changed arc, so the increment is bounded
    /// by that sum. Keeping mints finite also keeps *flow values* finite
    /// on `INF`-capacity pinned arcs: pushing `1e100` as preflow excess
    /// would cancel catastrophically on the walk-back and leave
    /// non-conserving flows behind, poisoning any later warm resolve that
    /// recomputes excess from them. The reachability filter is the
    /// difference between discharging just the delta and re-discharging
    /// nearly the whole cold run (undeliverable excess walking home).
    fn saturate_source(
        &mut self,
        net: &mut FlowNetwork,
        s: NodeId,
        t: NodeId,
        reachable_only: bool,
        mint_cap: f64,
        highest: &mut usize,
    ) {
        if mint_cap <= EPS {
            return;
        }
        let n = net.num_nodes();
        let src_edges: Vec<_> = net.out_edges(s).to_vec();
        for eid in src_edges {
            self.work += 1;
            let (to, residual) = {
                let e = net.edge(eid);
                (e.to, e.residual())
            };
            let amount = residual.min(mint_cap);
            if amount > EPS && !(reachable_only && self.height[to as usize] >= n) {
                net.push(eid, amount);
                self.excess[to as usize] += amount;
                self.excess[s as usize] -= amount;
                self.activate(to, s, t, highest);
            }
        }
    }

    /// The main highest-label discharge loop. Requires a valid labeling
    /// and the active buckets populated up to `highest`.
    fn discharge(&mut self, net: &mut FlowNetwork, s: NodeId, t: NodeId, mut highest: usize) {
        let n = net.num_nodes();
        while highest > 0 || !self.buckets[0].is_empty() {
            // Find the highest non-empty bucket.
            while highest > 0 && self.buckets[highest].is_empty() {
                highest -= 1;
            }
            let Some(v) = self.buckets[highest].pop() else {
                if highest == 0 {
                    break;
                }
                continue;
            };
            if self.excess[v as usize] <= EPS || v == s || v == t {
                continue;
            }
            // Discharge v.
            while self.excess[v as usize] > EPS {
                let arcs = net.out_edges(v).len();
                if self.current_arc[v as usize] >= arcs {
                    // Relabel.
                    let old_h = self.height[v as usize];
                    let mut min_h = usize::MAX;
                    for &eid in net.out_edges(v) {
                        self.work += 1;
                        let e = net.edge(eid);
                        if e.residual() > EPS {
                            min_h = min_h.min(self.height[e.to as usize]);
                        }
                    }
                    if min_h == usize::MAX {
                        // No admissible arcs at all; excess is trapped (can
                        // only happen with zero-capacity pathologies).
                        break;
                    }
                    let new_h = min_h + 1;
                    self.height_count[old_h] -= 1;
                    // Gap heuristic: if a height level empties below n, all
                    // nodes above it (below n) are unreachable from t.
                    if self.height_count[old_h] == 0 && old_h < n {
                        for u in 0..n {
                            let hu = self.height[u];
                            if hu > old_h && hu < n && u != s as usize {
                                self.height_count[hu] -= 1;
                                self.height_count[n + 1] += 1;
                                self.height[u] = n + 1;
                            }
                        }
                    }
                    if new_h > 2 * n {
                        break;
                    }
                    self.height[v as usize] = new_h;
                    self.height_count[new_h] += 1;
                    self.current_arc[v as usize] = 0;
                    if new_h > 2 * n {
                        break;
                    }
                    continue;
                }
                let eid = net.out_edges(v)[self.current_arc[v as usize]];
                self.work += 1;
                let (to, residual) = {
                    let e = net.edge(eid);
                    (e.to, e.residual())
                };
                if residual > EPS && self.height[v as usize] == self.height[to as usize] + 1 {
                    let delta = residual.min(self.excess[v as usize]);
                    net.push(eid, delta);
                    self.excess[v as usize] -= delta;
                    let was_inactive = self.excess[to as usize] <= EPS;
                    self.excess[to as usize] += delta;
                    if was_inactive {
                        self.activate(to, s, t, &mut highest);
                    }
                } else {
                    self.current_arc[v as usize] += 1;
                }
            }
            highest = highest.min(2 * n);
            // v may still carry excess after a relabel; requeue it.
            if self.excess[v as usize] > EPS && self.height[v as usize] <= 2 * n {
                let h = self.height[v as usize];
                self.buckets[h].push(v);
                highest = highest.max(h);
            }
        }
    }

    /// Global relabel: exact residual distances to `t` by reverse BFS.
    /// Nodes that cannot reach `t` get height `n` (they relabel upward and
    /// route their excess back toward `s`); `s` is pinned at `n`.
    fn global_relabel(&mut self, net: &FlowNetwork, s: NodeId, t: NodeId) {
        let n = net.num_nodes();
        self.height = vec![n; n];
        self.height[t as usize] = 0;
        let mut queue = vec![t];
        let mut qi = 0;
        while qi < queue.len() {
            let u = queue[qi];
            qi += 1;
            for &eid in net.out_edges(u) {
                self.work += 1;
                // Arc (v, u) is residual iff the pair of u's arc to v has
                // residual capacity.
                let v = net.edge(eid).to;
                if v != s
                    && self.height[v as usize] == n
                    && v != t
                    && net.edge(eid ^ 1).residual() > EPS
                {
                    self.height[v as usize] = self.height[u as usize] + 1;
                    queue.push(v);
                }
            }
        }
        self.height[s as usize] = n;
        self.height_count = vec![0; 2 * n + 1];
        for &h in &self.height {
            self.height_count[h] += 1;
        }
    }

    /// Recomputes per-node excess from the (pre)flow the network carries.
    fn recompute_excess(&mut self, net: &FlowNetwork) {
        self.excess = vec![0.0; net.num_nodes()];
        for (from, e) in net.forward_edges() {
            self.excess[from as usize] -= e.flow;
            self.excess[e.to as usize] += e.flow;
        }
    }

    /// The trivial cut bound: total residual capacity of the arcs into
    /// `t`. No s→t flow — and hence no single source arc's share of one —
    /// can exceed it, so it is a sound (and crucially *finite*, even with
    /// [`FlowNetwork::INF`] arcs elsewhere) per-arc mint cap for a cold
    /// saturation.
    fn sink_capacity_bound(net: &FlowNetwork, t: NodeId) -> f64 {
        net.out_edges(t)
            .iter()
            .map(|&eid| net.edge(eid ^ 1).residual().max(0.0))
            .sum()
    }
}

impl MaxFlow for PushRelabel {
    fn max_flow(&mut self, net: &mut FlowNetwork, s: NodeId, t: NodeId) -> f64 {
        assert_ne!(s, t, "source and sink must differ");
        let n = net.num_nodes();
        self.height = vec![0; n];
        self.excess = vec![0.0; n];
        self.buckets = vec![Vec::new(); 2 * n + 1];
        self.height_count = vec![0; 2 * n + 1];
        self.current_arc = vec![0; n];

        self.height[s as usize] = n;
        self.height_count[0] = n - 1;
        self.height_count[n] += 1;

        let mut highest = 0usize;
        let sink_bound = Self::sink_capacity_bound(net, t);
        self.saturate_source(net, s, t, false, sink_bound, &mut highest);
        self.discharge(net, s, t, highest);
        self.excess[t as usize]
    }

    fn resolve(
        &mut self,
        net: &mut FlowNetwork,
        s: NodeId,
        t: NodeId,
        changed_edges: &[EdgeId],
    ) -> f64 {
        assert_ne!(s, t, "source and sink must differ");
        let n = net.num_nodes();
        // Keep the network's (pre)flow — it stays feasible because the
        // capacity changes were non-decreasing — and rebuild the solver
        // invariants around it: excesses from the flow, exact labels from
        // a global relabel, fresh excess from the source arcs.
        self.recompute_excess(net);
        self.global_relabel(net, s, t);
        self.buckets = vec![Vec::new(); 2 * n + 1];
        self.current_arc = vec![0; n];
        let mut highest = 0usize;
        // Every incremental augmenting path crosses a changed arc (the
        // old flow was maximum and only those arcs gained residual), so
        // the increment is bounded by their total residual. Mint at most
        // that much excess per source arc, and only on heads that can
        // reach t under the exact labels — excess minted anywhere else
        // could never be delivered and would only walk back to s.
        let mint_cap: f64 = changed_edges
            .iter()
            .map(|&e| net.edge(e).residual().max(0.0))
            .sum();
        self.saturate_source(net, s, t, true, mint_cap, &mut highest);
        // Nodes may carry excess trapped by a previous abandoned preflow;
        // activate everything with excess so it is routed or returned.
        for v in 0..n as NodeId {
            if self.excess[v as usize] > EPS {
                self.activate(v, s, t, &mut highest);
            }
        }
        self.discharge(net, s, t, highest);
        net.inflow(t)
    }

    fn work(&self) -> u64 {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::Dinic;

    fn random_network(seed: u64, n: usize, m: usize) -> FlowNetwork {
        // Tiny xorshift so the test has no external deps.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut net = FlowNetwork::new(n);
        for _ in 0..m {
            let u = (next() % n as u64) as NodeId;
            let v = (next() % n as u64) as NodeId;
            if u != v {
                let cap = (next() % 100) as f64 / 7.0;
                net.add_edge(u, v, cap);
            }
        }
        net
    }

    #[test]
    fn matches_dinic_on_random_networks() {
        for seed in 1..30u64 {
            let netd = random_network(seed, 12, 40);
            let mut a = netd.clone();
            let mut b = netd;
            let fa = Dinic::new().max_flow(&mut a, 0, 11);
            let fb = PushRelabel::new().max_flow(&mut b, 0, 11);
            assert!(
                (fa - fb).abs() < 1e-6,
                "seed {seed}: dinic {fa} vs push-relabel {fb}"
            );
        }
    }

    #[test]
    fn simple_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.5);
        net.add_edge(1, 2, 1.25);
        let f = PushRelabel::new().max_flow(&mut net, 0, 2);
        assert!((f - 1.25).abs() < 1e-9);
    }

    #[test]
    fn no_path_gives_zero() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(2, 3, 3.0);
        let f = PushRelabel::new().max_flow(&mut net, 0, 3);
        assert!(f.abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 1, 2.0);
        let f = PushRelabel::new().max_flow(&mut net, 0, 1);
        assert!((f - 3.0).abs() < 1e-9);
    }

    #[test]
    fn resolve_after_capacity_bumps_matches_cold() {
        for seed in 1..20u64 {
            let base = random_network(seed, 10, 30);
            let mut warm = base.clone();
            let mut solver = PushRelabel::new();
            let _ = solver.max_flow(&mut warm, 0, 9);
            // Bump a few capacities upward and resolve.
            let mut bumped = warm.clone();
            bumped.reset_flow();
            let mut changed = Vec::new();
            for e in 0..(warm.num_edges() as EdgeId) {
                if (seed + e as u64).is_multiple_of(3) {
                    let cap = warm.edge(2 * e).cap + 2.5;
                    warm.set_cap(2 * e, cap);
                    bumped.set_cap(2 * e, cap);
                    changed.push(2 * e);
                }
            }
            let fw = solver.resolve(&mut warm, 0, 9, &changed);
            let fc = PushRelabel::new().max_flow(&mut bumped, 0, 9);
            assert!(
                (fw - fc).abs() < 1e-6,
                "seed {seed}: warm {fw} vs cold {fc}"
            );
        }
    }
}
