//! `dsd-flow`: max-flow / min-cut substrate.
//!
//! The exact DSD algorithms decide, for a guessed density `α`, whether some
//! subgraph beats `α` by computing a minimum st-cut of a purpose-built flow
//! network (Goldberg 1984; Tsourakakis 2015; Fang et al. 2019, Algorithms 1,
//! 4, 7, 8). This crate provides:
//!
//! * [`FlowNetwork`] — an arena of paired forward/residual edges with `f64`
//!   capacities (α is a dyadic rational, so capacities are fractional);
//! * [`dinic::Dinic`] — BFS-layered blocking-flow solver (default backend);
//! * [`push_relabel::PushRelabel`] — highest-label push-relabel with the gap
//!   heuristic (alternative backend, used for cross-validation and ablation);
//! * [`MaxFlow`] — the trait both implement;
//! * [`min_cut_source_side`] — residual-reachability extraction of the
//!   source side `S` of a minimum st-cut, which *is* the candidate densest
//!   subgraph in the paper's constructions.
//!
//! ```
//! use dsd_flow::{Dinic, FlowNetwork, MaxFlow, min_cut_source_side};
//!
//! let mut net = FlowNetwork::new(4);
//! net.add_edge(0, 1, 3.0);
//! net.add_edge(0, 2, 2.0);
//! net.add_edge(1, 3, 2.0);
//! net.add_edge(2, 3, 3.0);
//! let flow = Dinic::new().max_flow(&mut net, 0, 3);
//! assert!((flow - 4.0).abs() < 1e-9);
//! assert_eq!(min_cut_source_side(&net, 0), vec![0, 1]);
//! ```

pub mod dinic;
pub mod network;
pub mod parametric;
pub mod push_relabel;

pub use dinic::Dinic;
pub use network::{EdgeId, FlowNetwork, NodeId, EPS};
pub use parametric::{ParametricSolver, ResolveStats};
pub use push_relabel::PushRelabel;

/// A maximum-flow solver over a [`FlowNetwork`].
pub trait MaxFlow {
    /// Computes the maximum s→t flow value, mutating the network's flow
    /// state in place.
    fn max_flow(&mut self, net: &mut FlowNetwork, s: NodeId, t: NodeId) -> f64;

    /// Re-solves after **monotone non-decreasing** capacity changes to
    /// `changed_edges`, reusing the (pre)flow already on the network from
    /// this solver's previous run, and returns the new max-flow value.
    ///
    /// The previous flow stays feasible when capacities only grow, so an
    /// implementation only pays for the delta (the parametric max-flow
    /// idea of Gallo–Grigoriadis–Tarjan). The default falls back to a
    /// from-scratch solve, which is always correct.
    fn resolve(
        &mut self,
        net: &mut FlowNetwork,
        s: NodeId,
        t: NodeId,
        changed_edges: &[EdgeId],
    ) -> f64 {
        let _ = changed_edges;
        net.reset_flow();
        self.max_flow(net, s, t)
    }

    /// Monotone counter of augmenting work (edge scans) performed by this
    /// solver across its lifetime; differences around a probe measure the
    /// probe's cost. Solvers that don't track work return 0.
    fn work(&self) -> u64 {
        0
    }
}

/// Returns the source side `S` of a minimum st-cut after a max-flow run:
/// every node reachable from `s` in the residual network.
pub fn min_cut_source_side(net: &FlowNetwork, s: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; net.num_nodes()];
    let mut stack = vec![s];
    seen[s as usize] = true;
    while let Some(v) = stack.pop() {
        for &eid in net.out_edges(v) {
            let e = net.edge(eid);
            if e.residual() > EPS && !seen[e.to as usize] {
                seen[e.to as usize] = true;
                stack.push(e.to);
            }
        }
    }
    (0..net.num_nodes() as NodeId)
        .filter(|&v| seen[v as usize])
        .collect()
}
