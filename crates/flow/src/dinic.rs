//! Dinic's algorithm: BFS level graph + DFS blocking flows.
//!
//! With `f64` capacities the usual termination argument (integral
//! augmentation) does not apply verbatim; we follow the standard practice of
//! the reference DSD implementations and treat residuals below [`EPS`] as
//! saturated. Level counts still bound the number of phases by `O(V)`.
//!
//! Besides the from-scratch [`MaxFlow::max_flow`], Dinic implements the
//! warm [`MaxFlow::resolve`]: after monotone *non-decreasing* capacity
//! bumps the previous flow stays feasible, so the solver just augments
//! from the residual network — the cheap half of the parametric max-flow
//! scheme (Gallo–Grigoriadis–Tarjan) driving the α-search framework.

use crate::network::{EdgeId, FlowNetwork, NodeId, EPS};
use crate::MaxFlow;

/// Dinic max-flow solver. Stateless between runs; scratch buffers are kept
/// to amortize allocations across the many min-cut probes of a binary
/// search.
#[derive(Default)]
pub struct Dinic {
    level: Vec<i32>,
    iter: Vec<usize>,
    queue: Vec<NodeId>,
    work: u64,
}

impl Dinic {
    /// Creates a solver (scratch space grows on demand).
    pub fn new() -> Self {
        Self::default()
    }

    fn bfs(&mut self, net: &FlowNetwork, s: NodeId, t: NodeId) -> bool {
        self.level.clear();
        self.level.resize(net.num_nodes(), -1);
        self.queue.clear();
        self.queue.push(s);
        self.level[s as usize] = 0;
        let mut qi = 0;
        while qi < self.queue.len() {
            let v = self.queue[qi];
            qi += 1;
            for &eid in net.out_edges(v) {
                self.work += 1;
                let e = net.edge(eid);
                if e.residual() > EPS && self.level[e.to as usize] < 0 {
                    self.level[e.to as usize] = self.level[v as usize] + 1;
                    self.queue.push(e.to);
                }
            }
        }
        self.level[t as usize] >= 0
    }

    fn dfs(&mut self, net: &mut FlowNetwork, v: NodeId, t: NodeId, f: f64) -> f64 {
        if v == t {
            return f;
        }
        while self.iter[v as usize] < net.out_edges(v).len() {
            let eid: EdgeId = net.out_edges(v)[self.iter[v as usize]];
            self.work += 1;
            let (to, residual) = {
                let e = net.edge(eid);
                (e.to, e.residual())
            };
            if residual > EPS && self.level[to as usize] == self.level[v as usize] + 1 {
                let d = self.dfs(net, to, t, f.min(residual));
                if d > EPS {
                    net.push(eid, d);
                    return d;
                }
            }
            self.iter[v as usize] += 1;
        }
        0.0
    }

    /// Augments to a maximum flow from whatever (feasible) flow the
    /// network currently carries; returns the amount added by this call.
    fn augment(&mut self, net: &mut FlowNetwork, s: NodeId, t: NodeId) -> f64 {
        let mut total = 0.0;
        while self.bfs(net, s, t) {
            self.iter.clear();
            self.iter.resize(net.num_nodes(), 0);
            loop {
                let f = self.dfs(net, s, t, f64::INFINITY);
                if f <= EPS {
                    break;
                }
                total += f;
            }
        }
        total
    }
}

impl MaxFlow for Dinic {
    fn max_flow(&mut self, net: &mut FlowNetwork, s: NodeId, t: NodeId) -> f64 {
        assert_ne!(s, t, "source and sink must differ");
        self.augment(net, s, t)
    }

    fn resolve(
        &mut self,
        net: &mut FlowNetwork,
        s: NodeId,
        t: NodeId,
        _changed_edges: &[EdgeId],
    ) -> f64 {
        assert_ne!(s, t, "source and sink must differ");
        // The previous flow stays feasible (capacities only increased);
        // only the delta needs augmenting.
        let _ = self.augment(net, s, t);
        net.inflow(t)
    }

    fn work(&self) -> u64 {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_cut_source_side;

    #[test]
    fn simple_series_parallel() {
        // s=0, t=3; two disjoint paths of capacity 3 and 2.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(1, 3, 3.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(2, 3, 2.0);
        let f = Dinic::new().max_flow(&mut net, 0, 3);
        assert!((f - 5.0).abs() < 1e-9);
        assert!(net.conserves_flow(0, 3));
    }

    #[test]
    fn bottleneck_in_middle() {
        // Classic diamond with a cross edge.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10.0);
        net.add_edge(0, 2, 10.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 5.0);
        net.add_edge(2, 3, 6.0);
        let f = Dinic::new().max_flow(&mut net, 0, 3);
        assert!((f - 11.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 7.0);
        let f = Dinic::new().max_flow(&mut net, 0, 2);
        assert_eq!(f, 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.5);
        net.add_edge(1, 2, 0.75);
        let f = Dinic::new().max_flow(&mut net, 0, 2);
        assert!((f - 0.75).abs() < 1e-9);
    }

    #[test]
    fn min_cut_extraction() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 2, 100.0);
        net.add_edge(2, 3, 100.0);
        let _ = Dinic::new().max_flow(&mut net, 0, 3);
        // The bottleneck is s→1, so S = {s} only.
        assert_eq!(min_cut_source_side(&net, 0), vec![0]);
    }

    #[test]
    fn infinite_edges_never_cut() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, FlowNetwork::INF);
        net.add_edge(2, 3, 1.0);
        let f = Dinic::new().max_flow(&mut net, 0, 3);
        assert!((f - 1.0).abs() < 1e-9);
        let s_side = min_cut_source_side(&net, 0);
        assert_eq!(s_side, vec![0, 1, 2]);
    }

    #[test]
    fn resolve_after_capacity_bump_matches_cold() {
        // Path with a bumped bottleneck: resolve must find the new value.
        let mut net = FlowNetwork::new(3);
        let e0 = net.add_edge(0, 1, 5.0);
        let e1 = net.add_edge(1, 2, 1.0);
        let mut solver = Dinic::new();
        let f = solver.max_flow(&mut net, 0, 2);
        assert!((f - 1.0).abs() < 1e-9);
        net.set_cap(e1, 4.0);
        let f2 = solver.resolve(&mut net, 0, 2, &[e1]);
        assert!((f2 - 4.0).abs() < 1e-9, "resolved value {f2}");
        assert!(net.conserves_flow(0, 2));
        net.set_cap(e0, 10.0);
        net.set_cap(e1, 20.0);
        let f3 = solver.resolve(&mut net, 0, 2, &[e0, e1]);
        assert!((f3 - 10.0).abs() < 1e-9, "resolved value {f3}");
        assert!(solver.work() > 0);
    }
}
