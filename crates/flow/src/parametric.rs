//! Parametric probe driver: one solver allocation + warm `resolve` across
//! a monotone probe sequence.
//!
//! The exact DSD algorithms binary-search a density guess α, and the only
//! α-dependent capacities (`v→t`) are monotone non-decreasing in α. That
//! is exactly the regime of Gallo–Grigoriadis–Tarjan parametric max-flow:
//! a probe at a higher α can keep the previous flow (still feasible) and
//! pay only for the delta, so a whole probe sequence costs amortized
//! about one from-scratch max-flow. [`ParametricSolver`] owns the solver
//! lifecycle for such a sequence — a single allocation instead of a
//! `Box::new` per probe — and counts how much reuse it delivered.

use crate::network::{EdgeId, FlowNetwork, NodeId};
use crate::MaxFlow;

/// Reuse accounting for a probe sequence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Min-cut probes run through this solver.
    pub probes: usize,
    /// Probes served warm by [`MaxFlow::resolve`] (flow-state reuse)
    /// instead of a from-scratch solve.
    pub resolve_hits: usize,
    /// Total augmenting work (edge scans) inside the solver, warm and
    /// cold probes alike.
    pub augment_work: u64,
}

impl core::ops::AddAssign for ResolveStats {
    fn add_assign(&mut self, rhs: Self) {
        self.probes += rhs.probes;
        self.resolve_hits += rhs.resolve_hits;
        self.augment_work += rhs.augment_work;
    }
}

/// Owns one max-flow solver across a probe sequence, dispatching each
/// probe to a cold [`solve`](Self::solve) or a warm
/// [`resolve`](Self::resolve) and accumulating [`ResolveStats`].
///
/// The *caller* owns the monotonicity argument: `resolve` is only sound
/// when every capacity change since the network's last probe through this
/// solver was non-decreasing (or the flow state was restored to a
/// checkpoint for which that holds). `dsd-core`'s `DensityNetwork` is the
/// canonical driver.
pub struct ParametricSolver {
    solver: Box<dyn MaxFlow + Send>,
    /// Whether the network carries a (pre)flow produced by this solver
    /// that `resolve` may continue from.
    primed: bool,
    stats: ResolveStats,
}

impl ParametricSolver {
    /// Wraps a solver for a probe sequence.
    pub fn new(solver: Box<dyn MaxFlow + Send>) -> Self {
        ParametricSolver {
            solver,
            primed: false,
            stats: ResolveStats::default(),
        }
    }

    /// Cold probe: resets the network's flow and solves from scratch.
    pub fn solve(&mut self, net: &mut FlowNetwork, s: NodeId, t: NodeId) -> f64 {
        net.reset_flow();
        let w0 = self.solver.work();
        let value = self.solver.max_flow(net, s, t);
        self.stats.probes += 1;
        self.stats.augment_work += self.solver.work() - w0;
        self.primed = true;
        value
    }

    /// Warm probe after monotone non-decreasing capacity changes on
    /// `changed_edges`: keeps the flow, pays only for the delta. Falls
    /// back to a cold [`solve`](Self::solve) when no prior probe primed
    /// the flow state.
    pub fn resolve(
        &mut self,
        net: &mut FlowNetwork,
        s: NodeId,
        t: NodeId,
        changed_edges: &[EdgeId],
    ) -> f64 {
        if !self.primed {
            return self.solve(net, s, t);
        }
        let w0 = self.solver.work();
        let value = self.solver.resolve(net, s, t, changed_edges);
        self.stats.probes += 1;
        self.stats.resolve_hits += 1;
        self.stats.augment_work += self.solver.work() - w0;
        value
    }

    /// Reuse accounting accumulated so far.
    pub fn stats(&self) -> ResolveStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dinic, PushRelabel};

    fn diamond() -> (FlowNetwork, EdgeId, EdgeId) {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4.0);
        net.add_edge(0, 2, 4.0);
        let a = net.add_edge(1, 3, 1.0);
        let b = net.add_edge(2, 3, 1.0);
        (net, a, b)
    }

    #[test]
    fn sequence_reuses_one_solver() {
        for backend in [true, false] {
            let solver: Box<dyn MaxFlow + Send> = if backend {
                Box::new(Dinic::new())
            } else {
                Box::new(PushRelabel::new())
            };
            let mut para = ParametricSolver::new(solver);
            let (mut net, a, b) = diamond();
            // First probe is cold even via resolve().
            let f0 = para.resolve(&mut net, 0, 3, &[]);
            assert!((f0 - 2.0).abs() < 1e-9);
            assert_eq!(para.stats().resolve_hits, 0);
            // Monotone bumps: warm probes from here on.
            for (step, cap) in [2.0f64, 3.5, 4.0].into_iter().enumerate() {
                net.set_cap(a, cap);
                net.set_cap(b, cap);
                let f = para.resolve(&mut net, 0, 3, &[a, b]);
                assert!((f - 2.0 * cap.min(4.0)).abs() < 1e-9, "step {step}: {f}");
            }
            let stats = para.stats();
            assert_eq!(stats.probes, 4);
            assert_eq!(stats.resolve_hits, 3);
            assert!(stats.augment_work > 0);
        }
    }
}
