//! Flow network arena.

/// Node identifier inside a [`FlowNetwork`].
pub type NodeId = u32;
/// Edge identifier inside a [`FlowNetwork`]. Even ids are forward edges,
/// `id ^ 1` is the paired residual edge.
pub type EdgeId = u32;

/// Numerical slack used when comparing `f64` capacities. Binary-search
/// densities are dyadic rationals well above this magnitude.
pub const EPS: f64 = 1e-10;

/// A directed edge with capacity and current flow.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Head of the edge.
    pub to: NodeId,
    /// Capacity (use [`FlowNetwork::INF`] for unbounded edges).
    pub cap: f64,
    /// Flow currently routed on the edge.
    pub flow: f64,
}

impl Edge {
    /// Residual capacity `cap - flow`.
    #[inline]
    pub fn residual(&self) -> f64 {
        self.cap - self.flow
    }
}

/// A directed flow network stored as an edge arena with per-node adjacency.
///
/// Every [`add_edge`](FlowNetwork::add_edge) inserts a forward edge and a
/// zero-capacity reverse edge at ids `2k` / `2k + 1`, so the reverse of edge
/// `e` is always `e ^ 1` — the classic residual-pairing trick.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    edges: Vec<Edge>,
    /// `head[v]` = edge ids leaving `v`.
    head: Vec<Vec<EdgeId>>,
}

impl FlowNetwork {
    /// Capacity standing in for +∞ (used by Algorithm 1's ψ→v edges).
    pub const INF: f64 = 1e100;

    /// A network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// A network with `n` nodes, pre-reserving space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut net = Self::new(n);
        net.edges.reserve(2 * m);
        net
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Number of *forward* edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a directed edge `from → to` with the given capacity and returns
    /// its id. Negative capacities are clamped to zero.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: f64) -> EdgeId {
        let id = self.edges.len() as EdgeId;
        self.edges.push(Edge {
            to,
            cap: cap.max(0.0),
            flow: 0.0,
        });
        self.edges.push(Edge {
            to: from,
            cap: 0.0,
            flow: 0.0,
        });
        self.head[from as usize].push(id);
        self.head[to as usize].push(id + 1);
        id
    }

    /// The edge with id `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e as usize]
    }

    /// Edge ids leaving `v` (forward and residual alike).
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.head[v as usize]
    }

    /// Replaces the capacity of edge `e`.
    ///
    /// Used by the binary-search drivers, where only the `v→t` capacities
    /// depend on the guessed density α. In debug builds NaN and negative
    /// capacities are rejected outright — a NaN tolerance or unclamped
    /// `base + scale·α` term would otherwise flow silently into the edge
    /// caps and corrupt every later min-cut; release builds keep the
    /// historical clamp-to-zero as a last line of defense.
    #[inline]
    pub fn set_cap(&mut self, e: EdgeId, cap: f64) {
        debug_assert!(
            !cap.is_nan(),
            "edge {e}: capacity is NaN (bad α or tolerance?)"
        );
        debug_assert!(
            cap >= 0.0,
            "edge {e}: negative capacity {cap} (clamp before set_cap)"
        );
        self.edges[e as usize].cap = cap.max(0.0);
    }

    /// Pushes `amount` along edge `e` (and pulls it back on `e ^ 1`).
    #[inline]
    pub fn push(&mut self, e: EdgeId, amount: f64) {
        debug_assert!(!amount.is_nan(), "edge {e}: pushing NaN flow");
        self.edges[e as usize].flow += amount;
        self.edges[(e ^ 1) as usize].flow -= amount;
    }

    /// Iterates the *forward* edges as `(from, edge)` pairs (`edge.to` is
    /// the head). Residual pairs are skipped.
    pub fn forward_edges(&self) -> impl Iterator<Item = (NodeId, &Edge)> + '_ {
        self.edges
            .chunks_exact(2)
            .map(|pair| (pair[1].to, &pair[0]))
    }

    /// Copies the current flow values into `out` (cleared first) — the
    /// cheap snapshot half of the parametric checkpoint/restore cycle.
    pub fn save_flows(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.edges.iter().map(|e| e.flow));
    }

    /// Restores flow values saved by [`save_flows`](Self::save_flows) on
    /// this same network (topology must be unchanged).
    pub fn restore_flows(&mut self, flows: &[f64]) {
        assert_eq!(
            flows.len(),
            self.edges.len(),
            "flow snapshot shape mismatch"
        );
        for (e, &f) in self.edges.iter_mut().zip(flows) {
            e.flow = f;
        }
    }

    /// Resets all flow to zero, keeping topology and capacities.
    pub fn reset_flow(&mut self) {
        for e in &mut self.edges {
            e.flow = 0.0;
        }
    }

    /// Total flow currently leaving `s` (equals the max-flow value after a
    /// solver run).
    pub fn outflow(&self, s: NodeId) -> f64 {
        self.out_edges(s)
            .iter()
            .map(|&e| {
                let edge = self.edge(e);
                // Residual (odd) edges carry negative flow for inbound
                // traffic; summing all `flow` on out-edges nets correctly.
                edge.flow
            })
            .sum()
    }

    /// Total flow currently arriving at `t` (equals the max-flow value
    /// after a solver run — including for *preflows*, where
    /// [`outflow`](Self::outflow) can over-count by trapped excess).
    pub fn inflow(&self, t: NodeId) -> f64 {
        -self.outflow(t)
    }

    /// Checks flow conservation at every node except `s` and `t`; used by
    /// tests and debug assertions.
    pub fn conserves_flow(&self, s: NodeId, t: NodeId) -> bool {
        let mut balance = vec![0.0f64; self.num_nodes()];
        for (i, e) in self.edges.iter().enumerate() {
            if i % 2 == 0 {
                // Forward edge from `edges[i+1].to` to `e.to` carrying e.flow.
                let from = self.edges[i + 1].to;
                balance[from as usize] -= e.flow;
                balance[e.to as usize] += e.flow;
            }
        }
        balance
            .iter()
            .enumerate()
            .all(|(v, &b)| v == s as usize || v == t as usize || b.abs() < 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_edges() {
        let mut net = FlowNetwork::new(3);
        let e = net.add_edge(0, 1, 5.0);
        assert_eq!(e, 0);
        assert_eq!(net.edge(e).to, 1);
        assert_eq!(net.edge(e ^ 1).to, 0);
        assert_eq!(net.edge(e ^ 1).cap, 0.0);
        assert_eq!(net.num_edges(), 1);
    }

    #[test]
    fn push_updates_residuals() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 4.0);
        net.push(e, 3.0);
        assert!((net.edge(e).residual() - 1.0).abs() < 1e-12);
        assert!((net.edge(e ^ 1).residual() - 3.0).abs() < 1e-12);
        net.reset_flow();
        assert_eq!(net.edge(e).flow, 0.0);
    }

    #[test]
    fn negative_capacity_clamped() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, -2.0);
        assert_eq!(net.edge(e).cap, 0.0);
    }
}
