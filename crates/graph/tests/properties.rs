//! Property-style tests of the graph substrate, driven by a deterministic
//! xorshift generator (the container has no crates.io access, so these use
//! seed loops instead of a property-testing framework).

use dsd_graph::testing::XorShift;
use dsd_graph::{
    connected_components, degeneracy_order, Graph, GraphBuilder, InducedSubgraph, VertexSet,
};

/// A random (n, edge-list) pair: n in `2..=max_n`, up to `4n` pairs that may
/// include self-loops and duplicates (the builder's job is to clean them up).
fn random_edges(rng: &mut XorShift, max_n: usize) -> (usize, Vec<(u32, u32)>) {
    let n = 2 + (rng.next() as usize) % (max_n - 1);
    let m = (rng.next() as usize) % (4 * n);
    let edges = (0..m)
        .map(|_| {
            (
                (rng.next() % n as u64) as u32,
                (rng.next() % n as u64) as u32,
            )
        })
        .collect();
    (n, edges)
}

#[test]
fn builder_invariants() {
    let mut rng = XorShift::new(0xB111);
    for _ in 0..128 {
        let (n, edges) = random_edges(&mut rng, 40);
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let mut half_edge_count = 0usize;
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            half_edge_count += nbrs.len();
            // Sorted + unique.
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1]);
            }
            // No self loops, symmetric.
            for &u in nbrs {
                assert_ne!(u, v);
                assert!(g.has_edge(u, v));
                assert!(g.neighbors(u).contains(&v));
            }
        }
        assert_eq!(half_edge_count, 2 * g.num_edges());
        // Edge count equals the deduplicated canonical pair count.
        let mut canon: Vec<(u32, u32)> = edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        canon.sort_unstable();
        canon.dedup();
        assert_eq!(g.num_edges(), canon.len());
    }
}

#[test]
fn induced_subgraph_preserves_inside_edges() {
    let mut rng = XorShift::new(0x5AB2);
    for _ in 0..128 {
        let (n, edges) = random_edges(&mut rng, 30);
        let g = Graph::from_edges(n, &edges);
        // Take every other vertex.
        let members: Vec<u32> = (0..n as u32).step_by(2).collect();
        let sub = InducedSubgraph::new(&g, &members);
        let inside: usize = g.edges().filter(|&(u, v)| u % 2 == 0 && v % 2 == 0).count();
        assert_eq!(sub.graph.num_edges(), inside);
        // Every subgraph edge maps to a parent edge.
        for (u, v) in sub.graph.edges() {
            assert!(g.has_edge(sub.to_parent(u), sub.to_parent(v)));
        }
    }
}

#[test]
fn components_partition() {
    let mut rng = XorShift::new(0xC0C0);
    for _ in 0..128 {
        let (n, edges) = random_edges(&mut rng, 40);
        let g = Graph::from_edges(n, &edges);
        let cc = connected_components(&g);
        for v in g.vertices() {
            assert!(cc.label[v as usize] != u32::MAX);
            for &u in g.neighbors(v) {
                assert_eq!(cc.label[u as usize], cc.label[v as usize]);
            }
        }
        let total: usize = cc.all_members().iter().map(Vec::len).sum();
        assert_eq!(total, n);
    }
}

#[test]
fn degeneracy_is_max_core() {
    let mut rng = XorShift::new(0xDE6E);
    for _ in 0..128 {
        let (n, edges) = random_edges(&mut rng, 30);
        let g = Graph::from_edges(n, &edges);
        let d = degeneracy_order(&g);
        // Max core number via naive repeated peeling.
        let mut alive = VertexSet::full(n);
        let mut kmax = 0usize;
        while !alive.is_empty() {
            let (v, deg) = alive
                .iter()
                .map(|v| (v, alive.restricted_degree(&g, v)))
                .min_by_key(|&(_, d)| d)
                .unwrap();
            kmax = kmax.max(deg);
            alive.remove(v);
        }
        assert_eq!(d.degeneracy, kmax);
        for v in g.vertices() {
            assert!(d.out_neighbors(&g, v).count() <= d.degeneracy);
        }
    }
}

#[test]
fn io_round_trip() {
    let mut rng = XorShift::new(0x10F1);
    for _ in 0..128 {
        let (n, edges) = random_edges(&mut rng, 25);
        let g = Graph::from_edges(n, &edges);
        let text = dsd_graph::io::to_edge_list_string(&g);
        let g2 = dsd_graph::io::parse_edge_list(&text).unwrap();
        assert_eq!(g, g2);
    }
}
