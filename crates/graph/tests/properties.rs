//! Property-based tests of the graph substrate.

use dsd_graph::{
    connected_components, degeneracy_order, Graph, GraphBuilder, InducedSubgraph, VertexSet,
};
use proptest::prelude::*;

fn edges_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..=max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..4 * n).prop_map(move |es| (n, es))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The builder produces a simple graph: no self-loops, no duplicates,
    /// symmetric adjacency, sorted neighbour lists.
    #[test]
    fn builder_invariants((n, edges) in edges_strategy(40)) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let mut half_edge_count = 0usize;
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            half_edge_count += nbrs.len();
            // sorted + unique
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            // no self loops, symmetric
            for &u in nbrs {
                prop_assert_ne!(u, v);
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.neighbors(u).contains(&v));
            }
        }
        prop_assert_eq!(half_edge_count, 2 * g.num_edges());
        // Edge count equals the deduplicated canonical pair count.
        let mut canon: Vec<(u32, u32)> = edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        canon.sort_unstable();
        canon.dedup();
        prop_assert_eq!(g.num_edges(), canon.len());
    }

    /// Induced subgraphs keep exactly the edges with both endpoints inside.
    #[test]
    fn induced_subgraph_preserves_inside_edges((n, edges) in edges_strategy(30)) {
        let g = Graph::from_edges(n, &edges);
        // Take every other vertex.
        let members: Vec<u32> = (0..n as u32).step_by(2).collect();
        let sub = InducedSubgraph::new(&g, &members);
        let inside: usize = g
            .edges()
            .filter(|&(u, v)| u % 2 == 0 && v % 2 == 0)
            .count();
        prop_assert_eq!(sub.graph.num_edges(), inside);
        // Every subgraph edge maps to a parent edge.
        for (u, v) in sub.graph.edges() {
            prop_assert!(g.has_edge(sub.to_parent(u), sub.to_parent(v)));
        }
    }

    /// Connected-component labels partition the vertex set and are closed
    /// under adjacency.
    #[test]
    fn components_partition((n, edges) in edges_strategy(40)) {
        let g = Graph::from_edges(n, &edges);
        let cc = connected_components(&g);
        for v in g.vertices() {
            prop_assert!(cc.label[v as usize] != u32::MAX);
            for &u in g.neighbors(v) {
                prop_assert_eq!(cc.label[u as usize], cc.label[v as usize]);
            }
        }
        let total: usize = cc.all_members().iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
    }

    /// The degeneracy equals the maximum classical core number (textbook
    /// identity), and out-degrees in the orientation respect it.
    #[test]
    fn degeneracy_is_max_core((n, edges) in edges_strategy(30)) {
        let g = Graph::from_edges(n, &edges);
        let d = degeneracy_order(&g);
        // Max core number via naive repeated peeling.
        let mut alive = VertexSet::full(n);
        let mut kmax = 0usize;
        while !alive.is_empty() {
            let (v, deg) = alive
                .iter()
                .map(|v| (v, alive.restricted_degree(&g, v)))
                .min_by_key(|&(_, d)| d)
                .unwrap();
            kmax = kmax.max(deg);
            alive.remove(v);
        }
        prop_assert_eq!(d.degeneracy, kmax);
        for v in g.vertices() {
            prop_assert!(d.out_neighbors(&g, v).count() <= d.degeneracy);
        }
    }

    /// Edge-list round trip is the identity.
    #[test]
    fn io_round_trip((n, edges) in edges_strategy(25)) {
        let g = Graph::from_edges(n, &edges);
        let text = dsd_graph::io::to_edge_list_string(&g);
        let g2 = dsd_graph::io::parse_edge_list(&text).unwrap();
        prop_assert_eq!(g, g2);
    }
}
