//! Dynamic edge updates over the immutable CSR [`Graph`].
//!
//! The CSR representation is deliberately immutable — every algorithm in
//! the workspace reads sorted adjacency slices — so evolving graphs are
//! expressed as a **base CSR plus an edge overlay**:
//!
//! * [`GraphUpdate`] — one edge insertion or deletion;
//! * [`EdgeOverlay`] — an accumulated batch of effective updates, stored
//!   as per-vertex sorted add/remove lists;
//! * [`DeltaGraph`] — a read view of `base ⊕ overlay` (degrees, neighbour
//!   iteration, edge probes) that incremental algorithms run against
//!   *without* rebuilding the CSR;
//! * [`DeltaGraph::materialize`] — the rebuild-or-patch policy that turns
//!   the view back into a plain [`Graph`]: small overlays are merged into
//!   the existing CSR arrays in one linear pass, large overlays fall back
//!   to a full [`GraphBuilder`] rebuild.
//!
//! The intended lifecycle (what `dsd-core`'s engine does): accumulate
//! updates in an overlay, repair incremental substrates against the
//! [`DeltaGraph`] view after each edge, and materialize lazily — only when
//! a reader actually needs a CSR snapshot.
//!
//! ```
//! use dsd_graph::{DeltaGraph, EdgeOverlay, Graph, GraphUpdate};
//!
//! let base = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2)]);
//! let mut overlay = EdgeOverlay::default();
//! assert!(overlay.apply(&base, &GraphUpdate::Insert(2, 3)));
//! assert!(overlay.apply(&base, &GraphUpdate::Delete(0, 1)));
//! assert!(!overlay.apply(&base, &GraphUpdate::Insert(1, 2))); // already present
//!
//! let view = DeltaGraph::new(&base, &overlay);
//! assert_eq!(view.num_edges(), 3);
//! assert!(view.has_edge(2, 3));
//! assert!(!view.has_edge(0, 1));
//!
//! let g = view.materialize();
//! assert_eq!(g.neighbors(2), &[0, 1, 3]);
//! ```

use std::collections::HashMap;

use crate::graph::{Graph, GraphBuilder, VertexId};

/// One edge-level change to an undirected simple graph.
///
/// Endpoints are unordered; `Insert(u, v)` and `Insert(v, u)` denote the
/// same update. Updates that do not change the graph (inserting a present
/// edge, deleting an absent one, self-loops, out-of-range endpoints) are
/// *no-ops*: appliers report them as ineffective rather than failing, so
/// idempotent update streams can be replayed safely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphUpdate {
    /// Insert the undirected edge `{u, v}`.
    Insert(VertexId, VertexId),
    /// Delete the undirected edge `{u, v}`.
    Delete(VertexId, VertexId),
}

impl GraphUpdate {
    /// The update's endpoints, in the order they were written.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            GraphUpdate::Insert(u, v) | GraphUpdate::Delete(u, v) => (u, v),
        }
    }
}

/// Read access to an adjacency structure — the slice of the [`Graph`] API
/// that incremental maintenance algorithms need, implemented by both the
/// plain CSR and the [`DeltaGraph`] overlay view. Neighbour iteration is
/// statically dispatched (the per-edge inner loop of the k-core repairs).
pub trait AdjacencyView {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Calls `f` once per neighbour of `v`, in unspecified order.
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, f: F);
}

impl AdjacencyView for Graph {
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        Graph::degree(self, v)
    }

    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        for &u in self.neighbors(v) {
            f(u);
        }
    }
}

/// An accumulated batch of effective edge updates relative to a base
/// [`Graph`].
///
/// The overlay stores, per endpoint, the sorted list of neighbours added
/// and removed, and keeps itself *reduced*: an edge is never in both
/// lists, inserting a previously-deleted edge cancels the deletion (and
/// vice versa), and no-op updates leave the overlay untouched. This makes
/// `added_edges`/`removed_edges` exact deltas of the edge count.
#[derive(Clone, Debug, Default)]
pub struct EdgeOverlay {
    /// `added[v]` = sorted neighbours gained by `v` (both directions kept).
    added: HashMap<VertexId, Vec<VertexId>>,
    /// `removed[v]` = sorted neighbours lost by `v`.
    removed: HashMap<VertexId, Vec<VertexId>>,
    /// Undirected count of edges in `added`.
    added_edges: usize,
    /// Undirected count of edges in `removed`.
    removed_edges: usize,
}

impl EdgeOverlay {
    /// Whether the overlay holds no changes.
    pub fn is_empty(&self) -> bool {
        self.added_edges == 0 && self.removed_edges == 0
    }

    /// Number of edges added and removed relative to the base.
    pub fn counts(&self) -> (usize, usize) {
        (self.added_edges, self.removed_edges)
    }

    /// Total number of edge slots the overlay touches.
    pub fn len(&self) -> usize {
        self.added_edges + self.removed_edges
    }

    /// Applies one update on top of `base ⊕ self`. Returns whether the
    /// update was effective (`false` for no-ops: self-loops, out-of-range
    /// endpoints, inserting a present edge, deleting an absent one).
    pub fn apply(&mut self, base: &Graph, update: &GraphUpdate) -> bool {
        let n = base.num_vertices();
        let (u, v) = update.endpoints();
        if u == v || u as usize >= n || v as usize >= n {
            return false;
        }
        let present = self.edge_present(base, u, v);
        match update {
            GraphUpdate::Insert(..) => {
                if present {
                    return false;
                }
                if base.has_edge(u, v) {
                    // Re-inserting a base edge we deleted: cancel the delete.
                    remove_sorted(&mut self.removed, u, v);
                    remove_sorted(&mut self.removed, v, u);
                    self.removed_edges -= 1;
                } else {
                    insert_sorted(&mut self.added, u, v);
                    insert_sorted(&mut self.added, v, u);
                    self.added_edges += 1;
                }
                true
            }
            GraphUpdate::Delete(..) => {
                if !present {
                    return false;
                }
                if base.has_edge(u, v) {
                    insert_sorted(&mut self.removed, u, v);
                    insert_sorted(&mut self.removed, v, u);
                    self.removed_edges += 1;
                } else {
                    // Deleting an overlay-added edge: cancel the insert.
                    remove_sorted(&mut self.added, u, v);
                    remove_sorted(&mut self.added, v, u);
                    self.added_edges -= 1;
                }
                true
            }
        }
    }

    /// Whether `{u, v}` is present in `base ⊕ self`.
    fn edge_present(&self, base: &Graph, u: VertexId, v: VertexId) -> bool {
        if contains_sorted(&self.added, u, v) {
            return true;
        }
        if contains_sorted(&self.removed, u, v) {
            return false;
        }
        base.has_edge(u, v)
    }

    fn added_at(&self, v: VertexId) -> &[VertexId] {
        self.added.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    fn removed_at(&self, v: VertexId) -> &[VertexId] {
        self.removed.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }
}

fn insert_sorted(map: &mut HashMap<VertexId, Vec<VertexId>>, key: VertexId, value: VertexId) {
    let list = map.entry(key).or_default();
    if let Err(at) = list.binary_search(&value) {
        list.insert(at, value);
    }
}

fn remove_sorted(map: &mut HashMap<VertexId, Vec<VertexId>>, key: VertexId, value: VertexId) {
    if let Some(list) = map.get_mut(&key) {
        if let Ok(at) = list.binary_search(&value) {
            list.remove(at);
        }
    }
}

fn contains_sorted(map: &HashMap<VertexId, Vec<VertexId>>, key: VertexId, value: VertexId) -> bool {
    map.get(&key)
        .is_some_and(|list| list.binary_search(&value).is_ok())
}

/// A read view of `base ⊕ overlay`: adjacency with the overlay's adds and
/// removes spliced in, without rebuilding the CSR.
///
/// Neighbour iteration visits the surviving base neighbours (sorted)
/// followed by the added neighbours (sorted) — the combined order is *not*
/// globally sorted, which the incremental algorithms don't need.
#[derive(Clone, Copy)]
pub struct DeltaGraph<'a> {
    base: &'a Graph,
    overlay: &'a EdgeOverlay,
}

impl<'a> DeltaGraph<'a> {
    /// A view of `base` with `overlay` applied.
    pub fn new(base: &'a Graph, overlay: &'a EdgeOverlay) -> Self {
        DeltaGraph { base, overlay }
    }

    /// The base CSR graph.
    pub fn base(&self) -> &'a Graph {
        self.base
    }

    /// Number of vertices (updates never change the vertex universe).
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Number of undirected edges in the combined view.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.overlay.added_edges - self.overlay.removed_edges
    }

    /// Degree of `v` in the combined view.
    pub fn degree(&self, v: VertexId) -> usize {
        self.base.degree(v) + self.overlay.added_at(v).len() - self.overlay.removed_at(v).len()
    }

    /// Whether `{u, v}` is present in the combined view.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.overlay.edge_present(self.base, u, v)
    }

    /// Calls `f` once per neighbour of `v` in the combined view.
    pub fn for_each_neighbor_impl<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        let removed = self.overlay.removed_at(v);
        for &u in self.base.neighbors(v) {
            if removed.is_empty() || removed.binary_search(&u).is_err() {
                f(u);
            }
        }
        for &u in self.overlay.added_at(v) {
            f(u);
        }
    }

    /// Materializes the combined view into a plain [`Graph`].
    ///
    /// The rebuild-or-patch policy: overlays smaller than half the base
    /// edge count are **patched** — per-vertex three-way merges of the
    /// sorted base/added/removed lists into fresh CSR arrays, one linear
    /// pass with no global sort; larger overlays **rebuild** through
    /// [`GraphBuilder`] (whose sort-based path wins once most of the
    /// adjacency changes anyway).
    pub fn materialize(&self) -> Graph {
        if self.overlay.is_empty() {
            return self.base.clone();
        }
        if self.overlay.len() * 2 >= self.base.num_edges().max(1) {
            // Rebuild: collect the surviving edge list and sort once.
            let mut b = GraphBuilder::with_capacity(self.num_vertices(), self.num_edges());
            for v in 0..self.num_vertices() as VertexId {
                self.for_each_neighbor_impl(v, &mut |u| {
                    if v < u {
                        b.add_edge(v, u);
                    }
                });
            }
            return b.build();
        }
        // Patch: merge each vertex's sorted lists directly into new CSR
        // arrays.
        let n = self.num_vertices();
        let m = self.num_edges();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(2 * m);
        offsets.push(0usize);
        for v in 0..n as VertexId {
            let removed = self.overlay.removed_at(v);
            let added = self.overlay.added_at(v);
            let mut add_it = added.iter().copied().peekable();
            for &u in self.base.neighbors(v) {
                while let Some(&a) = add_it.peek() {
                    if a < u {
                        adj.push(a);
                        add_it.next();
                    } else {
                        break;
                    }
                }
                if removed.binary_search(&u).is_err() {
                    adj.push(u);
                }
            }
            adj.extend(add_it);
            offsets.push(adj.len());
        }
        debug_assert_eq!(adj.len(), 2 * m);
        Graph::from_csr_parts(offsets, adj, m)
    }
}

impl AdjacencyView for DeltaGraph<'_> {
    fn num_vertices(&self) -> usize {
        DeltaGraph::num_vertices(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        DeltaGraph::degree(self, v)
    }

    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        self.for_each_neighbor_impl(v, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::XorShift;

    fn base() -> Graph {
        // Triangle 0-1-2, pendant 3 on 0, isolated 4.
        Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (0, 3)])
    }

    fn sorted_neighbors(view: &DeltaGraph<'_>, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        view.for_each_neighbor_impl(v, &mut |u| out.push(u));
        out.sort_unstable();
        out
    }

    #[test]
    fn noop_updates_are_rejected() {
        let g = base();
        let mut ov = EdgeOverlay::default();
        assert!(!ov.apply(&g, &GraphUpdate::Insert(0, 0)), "self-loop");
        assert!(!ov.apply(&g, &GraphUpdate::Insert(0, 9)), "out of range");
        assert!(!ov.apply(&g, &GraphUpdate::Insert(0, 1)), "already present");
        assert!(!ov.apply(&g, &GraphUpdate::Delete(1, 3)), "already absent");
        assert!(ov.is_empty());
    }

    #[test]
    fn insert_delete_roundtrip_cancels() {
        let g = base();
        let mut ov = EdgeOverlay::default();
        assert!(ov.apply(&g, &GraphUpdate::Insert(3, 4)));
        assert!(ov.apply(&g, &GraphUpdate::Delete(3, 4)));
        assert!(ov.is_empty(), "insert+delete of a new edge cancels");
        assert!(ov.apply(&g, &GraphUpdate::Delete(0, 1)));
        assert!(ov.apply(&g, &GraphUpdate::Insert(0, 1)));
        assert!(ov.is_empty(), "delete+insert of a base edge cancels");
    }

    #[test]
    fn view_reflects_overlay() {
        let g = base();
        let mut ov = EdgeOverlay::default();
        ov.apply(&g, &GraphUpdate::Insert(2, 3));
        ov.apply(&g, &GraphUpdate::Insert(3, 4));
        ov.apply(&g, &GraphUpdate::Delete(0, 1));
        let view = DeltaGraph::new(&g, &ov);
        assert_eq!(view.num_edges(), 5);
        assert_eq!(view.degree(0), 2);
        assert_eq!(view.degree(3), 3);
        assert!(view.has_edge(3, 4));
        assert!(!view.has_edge(0, 1));
        assert_eq!(sorted_neighbors(&view, 3), vec![0, 2, 4]);
        assert_eq!(sorted_neighbors(&view, 0), vec![2, 3]);
    }

    #[test]
    fn materialize_matches_rebuild_from_scratch() {
        let mut rng = XorShift::new(0xDE17A);
        for _ in 0..60 {
            let g = rng.random_graph(2, 14, 30);
            let n = g.num_vertices();
            let mut ov = EdgeOverlay::default();
            let mut edges: std::collections::BTreeSet<(VertexId, VertexId)> = g.edges().collect();
            for _ in 0..12 {
                let u = (rng.next() % n as u64) as VertexId;
                let v = (rng.next() % n as u64) as VertexId;
                let update = if rng.next().is_multiple_of(2) {
                    GraphUpdate::Insert(u, v)
                } else {
                    GraphUpdate::Delete(u, v)
                };
                let effective = ov.apply(&g, &update);
                let key = (u.min(v), u.max(v));
                let expect = match update {
                    GraphUpdate::Insert(..) => u != v && edges.insert(key),
                    GraphUpdate::Delete(..) => edges.remove(&key),
                };
                assert_eq!(effective, expect, "effectiveness mirror diverged");
            }
            let view = DeltaGraph::new(&g, &ov);
            let materialized = view.materialize();
            let edge_list: Vec<_> = edges.iter().copied().collect();
            let expect = Graph::from_edges(n, &edge_list);
            assert_eq!(materialized, expect, "materialize != from-scratch");
            assert_eq!(view.num_edges(), expect.num_edges());
            for v in 0..n as VertexId {
                assert_eq!(view.degree(v), expect.degree(v), "degree of {v}");
                assert_eq!(
                    sorted_neighbors(&view, v),
                    expect.neighbors(v).to_vec(),
                    "neighbours of {v}"
                );
            }
        }
    }

    #[test]
    fn large_overlay_takes_rebuild_path() {
        let g = Graph::from_edges(6, &[(0, 1)]);
        let mut ov = EdgeOverlay::default();
        // 5 added edges vs 1 base edge → rebuild branch.
        for (u, v) in [(1, 2), (2, 3), (3, 4), (4, 5), (5, 0)] {
            assert!(ov.apply(&g, &GraphUpdate::Insert(u, v)));
        }
        let got = DeltaGraph::new(&g, &ov).materialize();
        let expect = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(got, expect);
    }
}
