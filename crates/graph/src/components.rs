//! Connected components.
//!
//! The paper's CoreExact (Algorithm 4) processes each connected component of
//! a located (k, Ψ)-core independently (Pruning2), so component extraction
//! sits on the hot path between core location and flow construction.

use crate::graph::{Graph, VertexId};
use crate::view::VertexSet;

/// The result of a connected-components labelling.
#[derive(Clone, Debug)]
pub struct ConnectedComponents {
    /// `label[v]` = component index of `v`, or `u32::MAX` for vertices
    /// outside the queried set.
    pub label: Vec<u32>,
    /// Number of components found.
    pub num_components: usize,
}

impl ConnectedComponents {
    /// Vertices of component `c`, ascending.
    pub fn members(&self, c: u32) -> Vec<VertexId> {
        self.label
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// All components as vertex lists, indexed by component id.
    pub fn all_members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.num_components];
        for (v, &l) in self.label.iter().enumerate() {
            if l != u32::MAX {
                out[l as usize].push(v as VertexId);
            }
        }
        out
    }
}

/// Labels the connected components of the whole graph.
pub fn connected_components(g: &Graph) -> ConnectedComponents {
    connected_components_within(g, &VertexSet::full(g.num_vertices()))
}

/// Labels connected components of the subgraph induced by `set`.
///
/// Vertices outside `set` receive label `u32::MAX`.
pub fn connected_components_within(g: &Graph, set: &VertexSet) -> ConnectedComponents {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = Vec::new();
    for start in set.iter() {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = next;
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if set.contains(u) && label[u as usize] == u32::MAX {
                    label[u as usize] = next;
                    queue.push(u);
                }
            }
        }
        next += 1;
    }
    ConnectedComponents {
        label,
        num_components: next as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components() {
        // Triangle {0,1,2} and edge {3,4}.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 2);
        assert_eq!(cc.members(cc.label[0]), vec![0, 1, 2]);
        assert_eq!(cc.members(cc.label[3]), vec![3, 4]);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = Graph::empty(3);
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 3);
        let all = cc.all_members();
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn restricted_components_split_on_removed_cut_vertex() {
        // Path 0-1-2-3-4; removing 2 splits it.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut s = VertexSet::full(5);
        s.remove(2);
        let cc = connected_components_within(&g, &s);
        assert_eq!(cc.num_components, 2);
        assert_eq!(cc.label[2], u32::MAX);
        assert_eq!(cc.label[0], cc.label[1]);
        assert_eq!(cc.label[3], cc.label[4]);
        assert_ne!(cc.label[0], cc.label[3]);
    }
}
