//! Compact undirected simple graph in CSR form.

use std::fmt;

/// Vertex identifier. Graphs are limited to `u32::MAX` vertices, which keeps
/// adjacency arrays half the size of a `usize` representation — the DSD
/// workloads are bound by memory traffic over adjacency, so this matters.
pub type VertexId = u32;

/// An undirected, unweighted, simple graph stored in CSR form.
///
/// Neighbour lists are sorted, enabling `O(log d)` edge probes and linear
/// neighbourhood intersections (the inner loop of clique counting).
///
/// The representation is immutable; algorithms that delete vertices do so
/// logically through [`crate::VertexSet`] masks or by materializing
/// [`crate::InducedSubgraph`]s.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `adj` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists.
    adj: Vec<VertexId>,
    /// Number of undirected edges.
    m: usize,
}

impl Graph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Self-loops and duplicate edges are dropped; endpoints must be `< n`.
    /// This is the convenience path; use [`GraphBuilder`] when streaming
    /// edges in.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Assembles a graph from pre-built CSR arrays (the patch path of
    /// [`crate::DeltaGraph::materialize`]). Callers guarantee sorted
    /// neighbour lists and consistent offsets.
    pub(crate) fn from_csr_parts(offsets: Vec<usize>, adj: Vec<VertexId>, m: usize) -> Self {
        debug_assert_eq!(*offsets.last().unwrap(), adj.len());
        debug_assert_eq!(adj.len(), 2 * m);
        debug_assert!(
            (0..offsets.len() - 1).all(|v| adj[offsets[v]..offsets[v + 1]]
                .windows(2)
                .all(|w| w[0] < w[1]))
        );
        Graph { offsets, adj, m }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
            m: 0,
        }
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree `d` over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present. `O(log d(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Edge density `m / n` from the paper's Definition 1.
    ///
    /// Returns 0 for the empty vertex set.
    pub fn edge_density(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.m as f64 / self.num_vertices() as f64
        }
    }

    /// Degrees of all vertices as a vector.
    pub fn degrees(&self) -> Vec<usize> {
        self.vertices().map(|v| self.degree(v)).collect()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph {{ n: {}, m: {} }}",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

/// Incremental builder for [`Graph`].
///
/// Accumulates directed half-edges and finalizes them into a deduplicated,
/// sorted CSR. Self-loops are ignored at insertion time.
pub struct GraphBuilder {
    n: usize,
    /// Half-edges `(u, v)` stored once per direction during `build`.
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "graphs are limited to u32 vertices");
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// A builder with pre-reserved capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are silently dropped.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        if u != v {
            self.edges.push((u.min(v), u.max(v)));
        }
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Finalizes into a [`Graph`], deduplicating parallel edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();

        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0 as VertexId; 2 * m];
        for &(u, v) in &self.edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each neighbour list must be sorted for `has_edge` probes. The
        // edges were inserted in (min, max) sorted order so the `v`-side
        // entries arrive ascending already, but the `u`-side interleaves;
        // sort each list once.
        for v in 0..self.n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph { offsets, adj, m }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 3 pendant on 0.
        Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)])
    }

    #[test]
    fn builds_csr_with_sorted_adjacency() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(3), &[0]);
    }

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 0), (1, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn edge_probes() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 3));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn edges_iterator_yields_canonical_pairs() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
    }

    #[test]
    fn density_of_paper_figure_1a_subgraph() {
        // S1 from Figure 1(a) has 7 vertices and 11 edges: density 11/7.
        // Build any 7-vertex 11-edge graph to check the formula path.
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
            (4, 6),
            (5, 6),
            (3, 5),
        ];
        let g = Graph::from_edges(7, &edges);
        assert!((g.edge_density() - 11.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edge_density(), 0.0);
        let g0 = Graph::empty(0);
        assert_eq!(g0.num_vertices(), 0);
        assert_eq!(g0.edge_density(), 0.0);
    }

    #[test]
    fn max_degree() {
        let g = triangle_plus_tail();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.degrees(), vec![3, 2, 2, 1]);
    }
}
