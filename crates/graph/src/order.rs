//! Degeneracy ordering and edge orientation.
//!
//! The k-clique listing algorithm of Danisch, Balalau and Sozio (WWW 2018),
//! which the paper uses for clique-degree computation, works on a DAG
//! obtained by orienting each edge from the earlier to the later vertex in a
//! *degeneracy ordering* (repeatedly remove a minimum-degree vertex). The
//! out-degree in that DAG is bounded by the graph's degeneracy, which keeps
//! the clique recursion shallow on sparse real-world graphs.

use crate::graph::{Graph, VertexId};

/// A degeneracy ordering plus the oriented adjacency built from it.
#[derive(Clone, Debug)]
pub struct DegeneracyOrder {
    /// Vertices in removal order (a minimum-degree-first peel).
    pub order: Vec<VertexId>,
    /// `rank[v]` = position of `v` in `order`.
    pub rank: Vec<u32>,
    /// Graph degeneracy: the maximum residual degree seen at removal time.
    pub degeneracy: usize,
}

impl DegeneracyOrder {
    /// Out-neighbours of `v` in the orientation (neighbours ranked later).
    pub fn out_neighbors<'g>(
        &'g self,
        g: &'g Graph,
        v: VertexId,
    ) -> impl Iterator<Item = VertexId> + 'g {
        let rv = self.rank[v as usize];
        g.neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| self.rank[u as usize] > rv)
    }
}

/// Computes a degeneracy ordering with the O(n + m) bucket peel of
/// Batagelj–Zaversnik (the same machinery as k-core decomposition).
pub fn degeneracy_order(g: &Graph) -> DegeneracyOrder {
    let n = g.num_vertices();
    let mut deg: Vec<usize> = g.degrees();
    let max_deg = deg.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree: `bin[d]` = start index of degree-d
    // vertices inside `vert`.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &deg {
        bin[d + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut vert = vec![0 as VertexId; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = deg[v];
            pos[v] = cursor[d];
            vert[cursor[d]] = v as VertexId;
            cursor[d] += 1;
        }
    }
    // `bin[d]` now = first index of the degree-d block.
    let mut order = Vec::with_capacity(n);
    let mut rank = vec![0u32; n];
    let mut degeneracy = 0usize;
    for i in 0..n {
        let v = vert[i];
        degeneracy = degeneracy.max(deg[v as usize]);
        rank[v as usize] = i as u32;
        order.push(v);
        // Decrease the residual degree of later neighbours, moving each to
        // the front of its current degree block.
        for &u in g.neighbors(v) {
            let u = u as usize;
            if pos[u] > i {
                let du = deg[u];
                let pu = pos[u];
                let pw = bin[du].max(i + 1);
                let w = vert[pw];
                if u as VertexId != w {
                    vert[pu] = w;
                    pos[w as usize] = pu;
                    vert[pw] = u as VertexId;
                    pos[u] = pw;
                }
                bin[du] = pw + 1;
                deg[u] = du - 1;
            }
        }
    }
    DegeneracyOrder {
        order,
        rank,
        degeneracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degeneracy_of_clique() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, &edges);
        let d = degeneracy_order(&g);
        assert_eq!(d.degeneracy, 4);
        assert_eq!(d.order.len(), 5);
    }

    #[test]
    fn degeneracy_of_tree_is_one() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        let d = degeneracy_order(&g);
        assert_eq!(d.degeneracy, 1);
    }

    #[test]
    fn orientation_is_acyclic_and_covers_all_edges() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let d = degeneracy_order(&g);
        let mut directed = 0usize;
        for v in g.vertices() {
            for u in d.out_neighbors(&g, v) {
                assert!(d.rank[u as usize] > d.rank[v as usize]);
                directed += 1;
            }
        }
        assert_eq!(directed, g.num_edges());
    }

    #[test]
    fn rank_is_inverse_of_order() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let d = degeneracy_order(&g);
        for (i, &v) in d.order.iter().enumerate() {
            assert_eq!(d.rank[v as usize] as usize, i);
        }
    }

    #[test]
    fn out_degree_bounded_by_degeneracy() {
        // Power-law-ish star of triangles.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (0, 3),
                (0, 4),
                (3, 4),
                (0, 5),
                (0, 6),
                (5, 6),
            ],
        );
        let d = degeneracy_order(&g);
        for v in g.vertices() {
            assert!(d.out_neighbors(&g, v).count() <= d.degeneracy);
        }
    }
}
