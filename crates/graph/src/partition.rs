//! Cut-aware graph partitioning for the sharded serving path.
//!
//! A [`Partition`] splits the vertex set into `k` contiguous-in-degeneracy-
//! order ranges, keeping whole connected components together whenever a
//! component fits inside a shard. Components are packed in ascending order
//! of their earliest degeneracy rank, so densely entangled vertices (which
//! the peel removes late) cluster into the same shard and the boundary-edge
//! overlay stays small. Only components larger than a shard's target size
//! are ever split.
//!
//! The assignment is deterministic: same graph, same `k`, same partition.

use crate::components::connected_components;
use crate::graph::{Graph, VertexId};
use crate::order::degeneracy_order;

/// A vertex-disjoint partition of a graph into at most `k` shards.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `assignment[v]` = shard index of `v`.
    pub assignment: Vec<u32>,
    /// Per-shard member lists, ascending vertex id. Trailing empty shards
    /// are trimmed, so `shards.len()` may be less than the requested `k`
    /// (e.g. a 3-vertex graph asked for 8 shards).
    pub shards: Vec<Vec<VertexId>>,
    /// Number of edges whose endpoints land in different shards.
    pub boundary_edges: usize,
}

impl Partition {
    /// Number of (non-empty) shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// True when every endpoint pair of `edges`-style probes stays local;
    /// convenience for tests.
    pub fn is_internal(&self, u: VertexId, v: VertexId) -> bool {
        self.assignment[u as usize] == self.assignment[v as usize]
    }
}

/// Partitions `g` into at most `k` shards using a component-aware greedy
/// fill over the degeneracy order.
///
/// Components are ordered by the minimum degeneracy rank of their members
/// and packed greedily with target size `ceil(n / k)`; a component that
/// would overflow a partially-filled shard starts the next shard instead,
/// so components smaller than the target are never split across shards.
pub fn partition_degeneracy(g: &Graph, k: usize) -> Partition {
    let n = g.num_vertices();
    let k = k.max(1);
    if n == 0 {
        return Partition {
            assignment: Vec::new(),
            shards: Vec::new(),
            boundary_edges: 0,
        };
    }

    let order = degeneracy_order(g);
    let cc = connected_components(g);
    let mut comps = cc.all_members();
    // Members within a component follow the degeneracy order; components
    // follow the rank of their earliest-peeled member.
    for comp in comps.iter_mut() {
        comp.sort_unstable_by_key(|&v| order.rank[v as usize]);
    }
    comps.sort_by_key(|comp| order.rank[comp[0] as usize]);

    let target = n.div_ceil(k);
    let mut assignment = vec![0u32; n];
    let mut shard = 0usize;
    let mut fill = 0usize;
    for comp in &comps {
        // A component that fits in a shard but not in the remainder of the
        // current one starts the next shard instead of being split.
        if fill > 0 && fill + comp.len() > target && shard + 1 < k {
            shard += 1;
            fill = 0;
        }
        for &v in comp {
            if fill >= target && shard + 1 < k {
                shard += 1;
                fill = 0;
            }
            assignment[v as usize] = shard as u32;
            fill += 1;
        }
    }

    let mut shards = vec![Vec::new(); shard + 1];
    for v in 0..n {
        shards[assignment[v] as usize].push(v as VertexId);
    }
    while shards.last().is_some_and(Vec::is_empty) {
        shards.pop();
    }

    let mut boundary_edges = 0usize;
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            if u > v && assignment[u as usize] != assignment[v as usize] {
                boundary_edges += 1;
            }
        }
    }

    Partition {
        assignment,
        shards,
        boundary_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles_and_edge() -> Graph {
        // Triangle {0,1,2}, triangle {3,4,5}, edge {6,7}.
        Graph::from_edges(8, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (6, 7)])
    }

    #[test]
    fn covers_all_vertices_disjointly() {
        let g = two_triangles_and_edge();
        let p = partition_degeneracy(&g, 3);
        let mut seen = [false; 8];
        for (s, members) in p.shards.iter().enumerate() {
            for &v in members {
                assert_eq!(p.assignment[v as usize], s as u32);
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn small_components_are_never_split() {
        let g = two_triangles_and_edge();
        // target = ceil(8/3) = 3, every component fits.
        let p = partition_degeneracy(&g, 3);
        for comp in connected_components(&g).all_members() {
            let s = p.assignment[comp[0] as usize];
            assert!(comp.iter().all(|&v| p.assignment[v as usize] == s));
        }
        assert_eq!(p.boundary_edges, 0);
    }

    #[test]
    fn oversized_component_is_split_and_counted() {
        // One path component of 8 vertices into 4 shards: must split.
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let p = partition_degeneracy(&g, 4);
        assert_eq!(p.num_shards(), 4);
        for members in &p.shards {
            assert_eq!(members.len(), 2);
        }
        assert!(p.boundary_edges > 0);
    }

    #[test]
    fn more_shards_than_vertices_trims_empties() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let p = partition_degeneracy(&g, 8);
        assert!(p.num_shards() <= 3);
        assert_eq!(
            p.shards.iter().map(Vec::len).sum::<usize>(),
            g.num_vertices()
        );
        assert!(p.shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let g = two_triangles_and_edge();
        let p = partition_degeneracy(&g, 1);
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.boundary_edges, 0);
        assert!(p.assignment.iter().all(|&s| s == 0));
    }

    #[test]
    fn deterministic_across_calls() {
        let g = two_triangles_and_edge();
        let a = partition_degeneracy(&g, 3);
        let b = partition_degeneracy(&g, 3);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.boundary_edges, b.boundary_edges);
    }
}
