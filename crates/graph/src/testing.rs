//! Deterministic test-support RNG and graph generator shared by the
//! workspace's property-style tests (the container has no crates.io
//! access, so there is no external property-testing framework; tests
//! drive themselves with seed loops).

use crate::{Graph, GraphBuilder};

/// Deterministic xorshift64 stream. Not statistically strong and not for
/// production use — exactly enough to fuzz small graph/network shapes
/// reproducibly.
pub struct XorShift(u64);

impl XorShift {
    /// Creates a stream from a non-zero-coerced seed.
    pub fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    /// The next raw 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An Erdős–Rényi-style random graph: vertex count uniform in
    /// `min_n..=max_n`, each pair an edge with probability
    /// `edge_percent`/100.
    pub fn random_graph(&mut self, min_n: usize, max_n: usize, edge_percent: u64) -> Graph {
        assert!(min_n >= 1 && min_n <= max_n);
        let n = min_n + (self.next() as usize) % (max_n - min_n + 1);
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if self.next() % 100 < edge_percent {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::XorShift;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = XorShift::new(5);
        let mut b = XorShift::new(5);
        for _ in 0..50 {
            assert_eq!(a.next(), b.next());
            let f = a.unit_f64();
            assert!((0.0..1.0).contains(&f));
            b.unit_f64();
        }
        // Zero seed is coerced, not a fixed point.
        let mut z = XorShift::new(0);
        assert_ne!(z.next(), 0);
    }
}
