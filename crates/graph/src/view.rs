//! Logical vertex subsets and materialized induced subgraphs.

use crate::graph::{Graph, GraphBuilder, VertexId};

/// A mutable subset of a graph's vertices, backed by a bitmap.
///
/// Peeling algorithms (Algorithm 2/3 in the paper) logically delete vertices
/// one at a time; `VertexSet` gives them an O(1) membership test without
/// rebuilding adjacency.
#[derive(Clone, Debug)]
pub struct VertexSet {
    alive: Vec<bool>,
    count: usize,
}

impl VertexSet {
    /// A set containing all `n` vertices.
    pub fn full(n: usize) -> Self {
        VertexSet {
            alive: vec![true; n],
            count: n,
        }
    }

    /// An empty set over `n` vertices.
    pub fn empty(n: usize) -> Self {
        VertexSet {
            alive: vec![false; n],
            count: 0,
        }
    }

    /// Builds a set from an explicit member list.
    pub fn from_members(n: usize, members: &[VertexId]) -> Self {
        let mut s = Self::empty(n);
        for &v in members {
            s.insert(v);
        }
        s
    }

    /// Whether `v` is in the set.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.alive[v as usize]
    }

    /// Inserts `v`; no-op if already present.
    pub fn insert(&mut self, v: VertexId) {
        if !self.alive[v as usize] {
            self.alive[v as usize] = true;
            self.count += 1;
        }
    }

    /// Removes `v`; no-op if absent.
    pub fn remove(&mut self, v: VertexId) {
        if self.alive[v as usize] {
            self.alive[v as usize] = false;
            self.count -= 1;
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the universe (the underlying graph's vertex count).
    #[inline]
    pub fn universe(&self) -> usize {
        self.alive.len()
    }

    /// Iterator over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as VertexId)
    }

    /// Collects members into a vector.
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.iter().collect()
    }

    /// Intersection with another set over the same universe.
    pub fn intersect(&self, other: &VertexSet) -> VertexSet {
        assert_eq!(self.universe(), other.universe());
        let mut out = VertexSet::empty(self.universe());
        for v in self.iter() {
            if other.contains(v) {
                out.insert(v);
            }
        }
        out
    }

    /// Degree of `v` restricted to alive neighbours.
    pub fn restricted_degree(&self, g: &Graph, v: VertexId) -> usize {
        g.neighbors(v).iter().filter(|&&u| self.contains(u)).count()
    }
}

/// A materialized induced subgraph `G[T]` with id maps back to the parent.
///
/// Core-based algorithms repeatedly recurse into the subgraph induced by a
/// core or a connected component; materializing keeps the inner loops (clique
/// listing, flow construction) running over dense, renumbered CSR data.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The renumbered subgraph.
    pub graph: Graph,
    /// `orig[new]` = vertex id in the parent graph.
    pub orig: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Materializes `G[members]`. `members` may be in any order; vertex ids
    /// in the result follow the sorted order of `members`.
    pub fn new(g: &Graph, members: &[VertexId]) -> Self {
        let mut orig: Vec<VertexId> = members.to_vec();
        orig.sort_unstable();
        orig.dedup();
        let mut new_id = vec![u32::MAX; g.num_vertices()];
        for (i, &v) in orig.iter().enumerate() {
            new_id[v as usize] = i as VertexId;
        }
        let mut b = GraphBuilder::new(orig.len());
        for (i, &v) in orig.iter().enumerate() {
            for &u in g.neighbors(v) {
                let nu = new_id[u as usize];
                if nu != u32::MAX && (i as VertexId) < nu {
                    b.add_edge(i as VertexId, nu);
                }
            }
        }
        InducedSubgraph {
            graph: b.build(),
            orig,
        }
    }

    /// Materializes the subgraph induced by a [`VertexSet`].
    pub fn from_set(g: &Graph, set: &VertexSet) -> Self {
        Self::new(g, &set.to_vec())
    }

    /// Maps a subgraph vertex id back to the parent graph.
    #[inline]
    pub fn to_parent(&self, v: VertexId) -> VertexId {
        self.orig[v as usize]
    }

    /// Maps a set of subgraph ids back to parent ids.
    pub fn to_parent_vec(&self, vs: &[VertexId]) -> Vec<VertexId> {
        vs.iter().map(|&v| self.to_parent(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn vertex_set_basics() {
        let mut s = VertexSet::full(4);
        assert_eq!(s.len(), 4);
        s.remove(2);
        s.remove(2);
        assert_eq!(s.len(), 3);
        assert!(!s.contains(2));
        s.insert(2);
        assert_eq!(s.len(), 4);
        assert_eq!(s.to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn restricted_degree_ignores_dead_neighbors() {
        let g = path5();
        let mut s = VertexSet::full(5);
        assert_eq!(s.restricted_degree(&g, 1), 2);
        s.remove(0);
        assert_eq!(s.restricted_degree(&g, 1), 1);
        s.remove(2);
        assert_eq!(s.restricted_degree(&g, 1), 0);
    }

    #[test]
    fn intersect() {
        let a = VertexSet::from_members(6, &[0, 1, 2, 3]);
        let b = VertexSet::from_members(6, &[2, 3, 4]);
        assert_eq!(a.intersect(&b).to_vec(), vec![2, 3]);
    }

    #[test]
    fn induced_subgraph_renumbers_and_maps_back() {
        let g = path5();
        let sub = InducedSubgraph::new(&g, &[1, 2, 4]);
        assert_eq!(sub.graph.num_vertices(), 3);
        // Only the 1-2 edge survives; 4 is isolated.
        assert_eq!(sub.graph.num_edges(), 1);
        assert!(sub.graph.has_edge(0, 1));
        assert_eq!(sub.to_parent(0), 1);
        assert_eq!(sub.to_parent(2), 4);
        assert_eq!(sub.to_parent_vec(&[0, 1]), vec![1, 2]);
    }

    #[test]
    fn induced_subgraph_dedups_members() {
        let g = path5();
        let sub = InducedSubgraph::new(&g, &[3, 3, 2]);
        assert_eq!(sub.graph.num_vertices(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn induced_subgraph_of_full_set_is_isomorphic() {
        let g = path5();
        let sub = InducedSubgraph::from_set(&g, &VertexSet::full(5));
        assert_eq!(sub.graph, g);
    }
}
