//! Plain edge-list text I/O.
//!
//! Format: one `u v` pair per line, `#`-prefixed comment lines ignored,
//! whitespace-separated. Vertex count is `max id + 1` unless a `# n <N>`
//! header overrides it (used to preserve trailing isolated vertices).

use std::io::{BufRead, Write};

use crate::graph::{Graph, GraphBuilder, VertexId};

/// Errors returned by the edge-list parser.
#[derive(Debug)]
pub enum ParseError {
    /// An I/O failure from the underlying reader.
    Io(std::io::Error),
    /// A malformed line, reported with its 1-based line number.
    Malformed { line: usize, content: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed { line, content } => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses an edge list from a reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, ParseError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut n_override: Option<usize> = None;
    let mut max_id: i64 = -1;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            let mut toks = rest.split_whitespace();
            if toks.next() == Some("n") {
                if let Some(Ok(n)) = toks.next().map(str::parse::<usize>) {
                    n_override = Some(n);
                }
            }
            continue;
        }
        let mut toks = trimmed.split_whitespace();
        let (u, v) = match (toks.next(), toks.next()) {
            (Some(a), Some(b)) => match (a.parse::<VertexId>(), b.parse::<VertexId>()) {
                (Ok(u), Ok(v)) => (u, v),
                _ => {
                    return Err(ParseError::Malformed {
                        line: idx + 1,
                        content: line.clone(),
                    })
                }
            },
            _ => {
                return Err(ParseError::Malformed {
                    line: idx + 1,
                    content: line.clone(),
                })
            }
        };
        max_id = max_id.max(u as i64).max(v as i64);
        edges.push((u, v));
    }
    let n = n_override.unwrap_or((max_id + 1) as usize);
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Parses an edge list from a string.
pub fn parse_edge_list(s: &str) -> Result<Graph, ParseError> {
    read_edge_list(s.as_bytes())
}

/// Writes a graph as an edge list (with an `# n` header to preserve isolated
/// vertices on round-trip).
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# n {}", g.num_vertices())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Serializes a graph to an edge-list string.
pub fn to_edge_list_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("edge list is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_list_with_comments() {
        let g = parse_edge_list("# a comment\n0 1\n1 2\n\n2 0\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn honors_n_header() {
        let g = parse_edge_list("# n 10\n0 1\n").unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_edge_list("0 1\nnope\n").unwrap_err();
        match err {
            ParseError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn rejects_single_token_lines() {
        assert!(parse_edge_list("42\n").is_err());
    }

    #[test]
    fn round_trips() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5), (1, 2)]);
        let s = to_edge_list_string(&g);
        let g2 = parse_edge_list(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
