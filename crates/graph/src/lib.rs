//! `dsd-graph`: the graph substrate used by the densest-subgraph algorithms.
//!
//! The crate provides a compact, immutable, undirected, simple graph in CSR
//! (compressed sparse row) form, plus the operations the DSD algorithms in
//! `dsd-core` lean on heavily:
//!
//! * [`Graph`] / [`GraphBuilder`] — construction from edge lists with
//!   deduplication and self-loop removal, O(1) neighbour slices, and
//!   `O(log d)` edge probes over sorted adjacency;
//! * [`VertexSet`] — an alive-bitmap over vertices used by peeling and
//!   decremental core decomposition;
//! * [`InducedSubgraph`] — materialized induced subgraphs with old/new id
//!   maps, used when an algorithm recurses into a core or a component;
//! * [`delta`] — dynamic edge updates: [`GraphUpdate`] batches accumulate
//!   in an [`EdgeOverlay`], readable through a [`DeltaGraph`] view and
//!   materialized back into a CSR with a rebuild-or-patch policy;
//! * [`components`] — connected components;
//! * [`order`] — degeneracy ordering and the oriented DAG used by the
//!   k-clique listing algorithm of Danisch et al.;
//! * [`io`] — a plain edge-list text format.
//!
//! ```
//! use dsd_graph::{Graph, VertexSet, InducedSubgraph, connected_components};
//!
//! let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
//! assert_eq!(g.degree(0), 2);
//! assert!(g.has_edge(1, 2));
//! assert_eq!(connected_components(&g).num_components, 2);
//!
//! let mut alive = VertexSet::full(5);
//! alive.remove(2);
//! let sub = InducedSubgraph::from_set(&g, &alive);
//! assert_eq!(sub.graph.num_edges(), 2); // {0,1} and {3,4}
//! ```

pub mod components;
pub mod delta;
pub mod graph;
pub mod io;
pub mod order;
pub mod partition;
pub mod testing;
pub mod view;

pub use components::{connected_components, connected_components_within, ConnectedComponents};
pub use delta::{AdjacencyView, DeltaGraph, EdgeOverlay, GraphUpdate};
pub use graph::{Graph, GraphBuilder, VertexId};
pub use order::{degeneracy_order, DegeneracyOrder};
pub use partition::{partition_degeneracy, Partition};
pub use view::{InducedSubgraph, VertexSet};
