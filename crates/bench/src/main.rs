//! `dsd-bench`: the experiment harness that regenerates every table and
//! figure of the paper's evaluation (Section 8 and Appendices A/E).
//!
//! Usage:
//!
//! ```text
//! dsd-bench <experiment> [--full]
//! dsd-bench all [--full]
//! ```
//!
//! Experiments: `fig8-exact`, `fig8-approx`, `fig9`, `fig10`, `table3`,
//! `table4`, `fig11`, `fig12`, `fig13`, `fig14`, `table5`, `fig15`,
//! `fig16`, `fig17`, `fig18`, `fig20`, `fig21`. By default each runs in quick mode (reduced
//! h-range / dataset subset); `--full` runs the complete grid.

use std::process::ExitCode;

use dsd_bench::experiments;

type Experiment = (&'static str, fn(bool));

const EXPERIMENTS: &[Experiment] = &[
    ("fig8-exact", experiments::fig8::run_exact),
    ("fig8-approx", experiments::fig8::run_approx),
    ("fig9", experiments::fig9::run),
    ("fig10", experiments::fig10::run),
    ("table3", experiments::table3::run),
    ("table4", experiments::table4::run),
    ("fig11", experiments::fig11::run),
    ("fig12", experiments::fig12::run),
    ("fig13", experiments::fig13_14::run_exact),
    ("fig14", experiments::fig13_14::run_approx),
    ("table5", experiments::table5::run),
    ("fig15", experiments::fig15_16::run_exact),
    ("fig16", experiments::fig15_16::run_approx),
    ("fig17", experiments::fig17_21::run_fig17),
    ("fig21", experiments::fig17_21::run_fig21),
    ("fig18", experiments::fig18::run),
    ("fig20", experiments::fig20::run),
];

fn usage() -> ExitCode {
    eprintln!("usage: dsd-bench <experiment|all> [--full]");
    eprintln!("experiments:");
    for (name, _) in EXPERIMENTS {
        eprintln!("  {name}");
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let quick = !full;
    let Some(which) = args.iter().find(|a| !a.starts_with("--")) else {
        return usage();
    };
    if which == "all" {
        for (name, run) in EXPERIMENTS {
            println!("\n########## {name} ##########");
            run(quick);
        }
        return ExitCode::SUCCESS;
    }
    match EXPERIMENTS.iter().find(|(name, _)| name == which) {
        Some((_, run)) => {
            run(quick);
            ExitCode::SUCCESS
        }
        None => usage(),
    }
}
