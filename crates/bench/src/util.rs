//! Shared harness utilities: timing, table printing, and the budget guard
//! that stands in for the paper's 2–5-day timeout bars.

use std::time::{Duration, Instant};

use dsd_graph::{Graph, VertexSet};
use dsd_motif::kclist;

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `iters` times and prints the mean per-iteration time — the
/// shared reporter for the `[[bench]]` harnesses (plain `Instant` timing;
/// no criterion offline).
pub fn report(name: &str, iters: usize, mut f: impl FnMut()) {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{name:<44} {ms:>10.3} ms/iter ({iters} iters)");
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Prints an aligned text table: a header row then data rows.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Budget guard for the flow-based `Exact` baseline: the paper reports it
/// timing out after 5 days on moderate graphs for large h. We skip runs
/// whose (h−1)-clique count × vertex count exceeds a work cap and report
/// them as capped, mirroring the paper's bars-touching-the-top convention.
pub struct ExactBudget {
    /// Maximum `n × |Λ|` product allowed.
    pub max_work: u128,
    /// Maximum |Λ| (flow-network Λ nodes) allowed.
    pub max_lambda: u64,
}

impl Default for ExactBudget {
    fn default() -> Self {
        ExactBudget {
            max_work: 3_000_000_000,
            max_lambda: 1_500_000,
        }
    }
}

impl ExactBudget {
    /// Returns `Err(reason)` when an `Exact` run at clique size `h` on `g`
    /// would blow the budget.
    pub fn admit(&self, g: &Graph, h: usize) -> Result<(), String> {
        if h < 3 {
            return Ok(()); // Goldberg network: no Λ nodes.
        }
        let alive = VertexSet::full(g.num_vertices());
        let lambda = kclist::count_cliques_within(g, h - 1, &alive);
        if lambda > self.max_lambda {
            return Err(format!("capped: |Λ| = {lambda} (h−1)-cliques"));
        }
        let work = g.num_vertices() as u128 * lambda as u128;
        if work > self.max_work {
            return Err(format!("capped: n·|Λ| = {work}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_admits_small_and_caps_huge() {
        let small = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert!(ExactBudget::default().admit(&small, 3).is_ok());
        let tight = ExactBudget {
            max_work: 1,
            max_lambda: 1,
        };
        assert!(tight.admit(&small, 3).is_err());
        // h = 2 is always admitted.
        assert!(tight.admit(&small, 2).is_ok());
    }
}
