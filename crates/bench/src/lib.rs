//! `dsd-bench` library: the experiment modules and shared harness
//! utilities, exposed so the `[[bench]]` targets and the `dsd-bench`
//! binary share one implementation.

pub mod experiments;
pub mod util;
