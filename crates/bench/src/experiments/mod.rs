//! One module per paper table/figure. Each `run(quick)` prints the same
//! rows/series the paper reports; `EXPERIMENTS.md` records paper-vs-measured
//! shape checks.

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13_14;
pub mod fig15_16;
pub mod fig17_21;
pub mod fig18;
pub mod fig20;
pub mod fig8;
pub mod fig9;
pub mod table3;
pub mod table4;
pub mod table5;
