//! Figure 10: the individual effect of CoreExact's three pruning criteria.
//! P1/P2/P3 enable exactly one pruning each; "All" is the full CoreExact.

use dsd_core::{core_exact_with, CoreExactConfig, FlowBackend};
use dsd_datasets::dataset;
use dsd_motif::Pattern;

use crate::util::{print_table, secs, time};

fn config(p1: bool, p2: bool, p3: bool) -> CoreExactConfig {
    CoreExactConfig {
        pruning1: p1,
        pruning2: p2,
        pruning3: p3,
        backend: FlowBackend::Dinic,
        ..CoreExactConfig::default()
    }
}

/// Runs the Figure-10 pruning ablation.
pub fn run(quick: bool) {
    let hs: Vec<usize> = if quick { vec![2, 3] } else { vec![2, 3, 4, 5] };
    let names = if quick {
        vec!["As-733"]
    } else {
        vec!["As-733", "Ca-HepTh"]
    };
    let variants: [(&str, CoreExactConfig); 5] = [
        ("none", config(false, false, false)),
        ("P1", config(true, false, false)),
        ("P2", config(false, true, false)),
        ("P3", config(false, false, true)),
        ("All", config(true, true, true)),
    ];
    for name in names {
        let d = dataset(name).expect("registry dataset");
        let g = d.generate();
        let mut rows = Vec::new();
        for &h in &hs {
            let psi = Pattern::clique(h);
            let mut row = vec![format!("{h}-clique")];
            let mut reference_density: Option<f64> = None;
            for (_, cfg) in &variants {
                let ((r, _), t) = time(|| core_exact_with(&g, &psi, *cfg));
                if let Some(ref_d) = reference_density {
                    assert!(
                        (r.density - ref_d).abs() < 1e-6,
                        "pruning variant changed the answer on {name} h={h}"
                    );
                } else {
                    reference_density = Some(r.density);
                }
                row.push(secs(t));
            }
            rows.push(row);
        }
        let header: Vec<String> = std::iter::once("Ψ".to_string())
            .chain(variants.iter().map(|(n, _)| n.to_string()))
            .collect();
        print_table(
            &format!("Figure 10 ({name}): pruning ablation (seconds)"),
            &header,
            &rows,
        );
    }
}
