//! Figure 9: flow-network sizes across CoreExact's binary-search
//! iterations. Iteration "−1" is the whole-graph Exact network for
//! reference (1 + n + |Λ| + 1 nodes); iteration 0 is the first network
//! CoreExact builds after locating the CDS in a core.

use dsd_core::core_exact;
use dsd_datasets::dataset;
use dsd_graph::VertexSet;
use dsd_motif::{kclist, Pattern};

use crate::util::print_table;

/// Runs the Figure-9 instrumentation.
pub fn run(quick: bool) {
    let hs: Vec<usize> = if quick {
        vec![2, 3, 4]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let names = if quick {
        vec!["Ca-HepTh"]
    } else {
        vec!["Ca-HepTh", "As-Caida"]
    };
    for name in names {
        let d = dataset(name).expect("registry dataset");
        let g = d.generate();
        let mut rows = Vec::new();
        for &h in &hs {
            // Whole-graph network size (the "-1" point): s + n + |Λ| + t
            // for h ≥ 3, s + n + t for the Goldberg network.
            let full_size = if h == 2 {
                g.num_vertices() + 2
            } else {
                let alive = VertexSet::full(g.num_vertices());
                let lambda = kclist::count_cliques_within(&g, h - 1, &alive);
                g.num_vertices() + lambda as usize + 2
            };
            let (_, stats) = core_exact(&g, &Pattern::clique(h));
            let mut row = vec![format!("{h}-clique"), full_size.to_string()];
            for &nodes in stats.exact.network_nodes.iter().take(7) {
                row.push(nodes.to_string());
            }
            while row.len() < 9 {
                row.push("-".to_string());
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 9 ({name}): flow-network nodes per iteration"),
            &[
                "Ψ", "iter -1", "it0", "it1", "it2", "it3", "it4", "it5", "it6",
            ]
            .map(String::from),
            &rows,
        );
    }
}
