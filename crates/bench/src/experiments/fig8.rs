//! Figure 8: efficiency of exact (a–e) and approximation (f–j) CDS
//! algorithms across h-clique sizes.

use dsd_core::{core_exact, exact, inc_app, nucleus_app, peel_app, FlowBackend};
use dsd_datasets::{all_datasets, DatasetKind};
use dsd_motif::Pattern;

use crate::util::{print_table, secs, time, ExactBudget};

/// Figure 8(a–e): `Exact` vs `CoreExact` on the small real datasets.
pub fn run_exact(quick: bool) {
    let hs: Vec<usize> = if quick {
        vec![2, 3, 4]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let datasets: Vec<_> = all_datasets()
        .into_iter()
        .filter(|d| d.kind == DatasetKind::SmallReal)
        .take(if quick { 3 } else { 5 })
        .collect();
    let budget = ExactBudget::default();
    let mut rows = Vec::new();
    for d in &datasets {
        let g = d.generate();
        for &h in &hs {
            let psi = Pattern::clique(h);
            let (exact_cell, exact_density) = match budget.admit(&g, h) {
                Ok(()) => {
                    let ((r, _), t) = time(|| exact(&g, &psi, FlowBackend::Dinic));
                    (secs(t), Some(r.density))
                }
                Err(reason) => (reason, None),
            };
            let ((core_r, _), core_t) = time(|| core_exact(&g, &psi));
            if let Some(ed) = exact_density {
                assert!(
                    (ed - core_r.density).abs() < 1e-6,
                    "{} h={h}: Exact {} vs CoreExact {}",
                    d.name,
                    ed,
                    core_r.density
                );
            }
            rows.push(vec![
                d.name.to_string(),
                format!("{h}-clique"),
                exact_cell,
                secs(core_t),
                format!("{:.4}", core_r.density),
            ]);
        }
    }
    print_table(
        "Figure 8(a-e): exact CDS algorithms (seconds)",
        &["dataset", "Ψ", "Exact", "CoreExact", "ρopt"].map(String::from),
        &rows,
    );
}

/// Figure 8(f–j): `Nucleus`, `PeelApp`, `IncApp`, `CoreApp` on the large
/// dataset stand-ins.
pub fn run_approx(quick: bool) {
    let hs: Vec<usize> = if quick { vec![2, 3] } else { vec![2, 3, 4, 5] };
    let datasets: Vec<_> = all_datasets()
        .into_iter()
        .filter(|d| d.kind == DatasetKind::LargeReal)
        .take(if quick { 2 } else { 5 })
        .collect();
    let mut rows = Vec::new();
    for d in &datasets {
        let g = d.generate();
        for &h in &hs {
            let psi = Pattern::clique(h);
            // Nucleus materializes every clique; guard like the paper's
            // 2-day bars.
            let nucleus_cell = {
                let alive = dsd_graph::VertexSet::full(g.num_vertices());
                match dsd_motif::kclist::count_cliques_within(&g, h, &alive) {
                    c if c > 4_000_000 => format!("capped: {c} cliques"),
                    _ => {
                        let (r, t) = time(|| nucleus_app(&g, h));
                        std::hint::black_box(r.kmax);
                        secs(t)
                    }
                }
            };
            let (peel_r, peel_t) = time(|| peel_app(&g, &psi));
            let (inc_r, inc_t) = time(|| inc_app(&g, &psi));
            let (core_r, core_t) = time(|| dsd_core::core_app(&g, &psi));
            assert_eq!(inc_r.kmax, core_r.kmax, "{} h={h}", d.name);
            rows.push(vec![
                d.name.to_string(),
                format!("{h}-clique"),
                nucleus_cell,
                secs(peel_t),
                secs(inc_t),
                secs(core_t),
                format!("{:.4}", peel_r.density.max(core_r.result.density)),
            ]);
        }
    }
    print_table(
        "Figure 8(f-j): approximation CDS algorithms (seconds)",
        &[
            "dataset", "Ψ", "Nucleus", "PeelApp", "IncApp", "CoreApp", "ρ̃",
        ]
        .map(String::from),
        &rows,
    );
}
