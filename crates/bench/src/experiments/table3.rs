//! Table 3: percentage of CoreExact's time spent in core decomposition.

use dsd_core::core_exact;
use dsd_datasets::dataset;
use dsd_motif::Pattern;

use crate::util::print_table;

/// Runs the Table-3 measurement.
pub fn run(quick: bool) {
    let hs: Vec<usize> = if quick {
        vec![2, 3, 4]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let names = if quick {
        vec!["As-733"]
    } else {
        vec!["As-733", "Ca-HepTh"]
    };
    let mut rows = Vec::new();
    for name in names {
        let d = dataset(name).expect("registry dataset");
        let g = d.generate();
        let mut row = vec![name.to_string()];
        for &h in &hs {
            let (_, stats) = core_exact(&g, &Pattern::clique(h));
            let pct = 100.0 * stats.decomposition_nanos as f64 / stats.total_nanos.max(1) as f64;
            row.push(format!("{pct:.2}%"));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("dataset".to_string())
        .chain(hs.iter().map(|h| format!("{h}-clique")))
        .collect();
    print_table(
        "Table 3: % of CoreExact time in core decomposition",
        &header,
        &rows,
    );
}
