//! Table 4: EMcore vs CoreApp for the classical (edge) kmax-core on the
//! large dataset stand-ins.

use dsd_core::{core_app, emcore_max_core};
use dsd_datasets::{all_datasets, DatasetKind};
use dsd_motif::Pattern;

use crate::util::{print_table, secs, time};

/// Runs the Table-4 comparison.
pub fn run(quick: bool) {
    let datasets: Vec<_> = all_datasets()
        .into_iter()
        .filter(|d| d.kind == DatasetKind::LargeReal)
        .take(if quick { 2 } else { 5 })
        .collect();
    let mut rows = Vec::new();
    for d in &datasets {
        let g = d.generate();
        let (em, em_t) = time(|| emcore_max_core(&g));
        let (ca, ca_t) = time(|| core_app(&g, &Pattern::edge()));
        assert_eq!(em.kmax, ca.kmax, "{}: kmax mismatch", d.name);
        rows.push(vec![
            d.name.to_string(),
            secs(em_t),
            secs(ca_t),
            em.kmax.to_string(),
        ]);
    }
    print_table(
        "Table 4: EMcore vs CoreApp, edge kmax-core (seconds)",
        &["dataset", "EMcore", "CoreApp", "kmax"].map(String::from),
        &rows,
    );
}
