//! Figures 13–14: exact and approximation CDS algorithms on the three
//! synthetic random-graph families (SSCA, ER, R-MAT).
//!
//! The paper's headline observation: core pruning wins big on SSCA and
//! R-MAT (skewed/planted structure) but barely helps on ER, whose flat
//! degrees make the kmax-core ≈ the whole graph.

use dsd_core::{core_app, core_exact, exact, inc_app, peel_app, FlowBackend};
use dsd_datasets::{er, rmat, ssca};
use dsd_graph::Graph;
use dsd_motif::Pattern;

use crate::util::{print_table, secs, time, ExactBudget};

fn graphs(quick: bool) -> Vec<(&'static str, Graph)> {
    if quick {
        vec![
            ("SSCA", ssca::ssca(3_000, 12, 1.5, 11)),
            ("ER", er::er(3_000, 0.004, 12)),
            (
                "R-MAT",
                rmat::rmat(11, 18_000, rmat::RmatParams::default(), 13),
            ),
        ]
    } else {
        vec![
            ("SSCA", dsd_datasets::dataset("SSCA").unwrap().generate()),
            ("ER", dsd_datasets::dataset("ER").unwrap().generate()),
            ("R-MAT", dsd_datasets::dataset("R-MAT").unwrap().generate()),
        ]
    }
}

/// Figure 13: exact algorithms on random graphs.
pub fn run_exact(quick: bool) {
    let hs: Vec<usize> = if quick { vec![2, 3] } else { vec![2, 3, 4] };
    let budget = ExactBudget::default();
    let mut rows = Vec::new();
    for (name, g) in graphs(quick) {
        for &h in &hs {
            let psi = Pattern::clique(h);
            let exact_cell = match budget.admit(&g, h) {
                Ok(()) => {
                    let ((r, _), t) = time(|| exact(&g, &psi, FlowBackend::Dinic));
                    std::hint::black_box(r.density);
                    secs(t)
                }
                Err(reason) => reason,
            };
            let ((core_r, _), core_t) = time(|| core_exact(&g, &psi));
            rows.push(vec![
                name.to_string(),
                format!("{h}-clique"),
                exact_cell,
                secs(core_t),
                format!("{:.4}", core_r.density),
            ]);
        }
    }
    print_table(
        "Figure 13: exact CDS on random graphs (seconds)",
        &["dataset", "Ψ", "Exact", "CoreExact", "ρopt"].map(String::from),
        &rows,
    );
}

/// Figure 14: approximation algorithms on random graphs.
pub fn run_approx(quick: bool) {
    let hs: Vec<usize> = if quick { vec![2, 3] } else { vec![2, 3, 4, 5] };
    let mut rows = Vec::new();
    for (name, g) in graphs(quick) {
        for &h in &hs {
            let psi = Pattern::clique(h);
            let (peel_r, peel_t) = time(|| peel_app(&g, &psi));
            let (inc_r, inc_t) = time(|| inc_app(&g, &psi));
            let (core_r, core_t) = time(|| core_app(&g, &psi));
            assert_eq!(inc_r.kmax, core_r.kmax);
            let core_frac = if g.num_vertices() > 0 {
                core_r.result.len() as f64 / g.num_vertices() as f64
            } else {
                0.0
            };
            rows.push(vec![
                name.to_string(),
                format!("{h}-clique"),
                secs(peel_t),
                secs(inc_t),
                secs(core_t),
                format!("{:.1}%", 100.0 * core_frac),
                format!("{:.4}", peel_r.density.max(core_r.result.density)),
            ]);
        }
    }
    print_table(
        "Figure 14: approximation CDS on random graphs (seconds)",
        &[
            "dataset",
            "Ψ",
            "PeelApp",
            "IncApp",
            "CoreApp",
            "core size/n",
            "ρ̃",
        ]
        .map(String::from),
        &rows,
    );
}
