//! Table 5: edge-, clique-, and pattern-densities of the exact densest
//! subgraphs, compared with the same densities measured *on the EDS* —
//! showing that the CDS/PDS genuinely differs from the EDS.
//!
//! One `DsdEngine` per dataset serves the whole pattern menu.

use dsd_core::{density, oracle_for, DsdEngine, Method};
use dsd_datasets::{dataset, planted};
use dsd_graph::{Graph, VertexSet};
use dsd_motif::Pattern;

use crate::util::print_table;

fn datasets(quick: bool) -> Vec<(String, Graph)> {
    let mut out: Vec<(String, Graph)> = Vec::new();
    // S-DBLP stand-in: the case-study collaboration network.
    out.push((
        "S-DBLP".into(),
        planted::collaboration_network(6, 8, 3, 10, 17),
    ));
    let names = if quick {
        vec!["Yeast"]
    } else {
        vec!["Yeast", "Netscience", "As-733"]
    };
    for n in names {
        out.push((n.to_string(), dataset(n).unwrap().generate()));
    }
    out
}

/// Runs the Table-5 density study.
pub fn run(quick: bool) {
    let mut psis = vec![Pattern::edge(), Pattern::triangle(), Pattern::clique(4)];
    if !quick {
        psis.push(Pattern::clique(5));
    }
    psis.push(Pattern::two_star());
    psis.push(Pattern::diamond());

    let mut rows = Vec::new();
    for (name, g) in datasets(quick) {
        let engine = DsdEngine::new(g);
        // The EDS, fixed once per dataset.
        let eds = engine
            .request(&Pattern::edge())
            .method(Method::CoreExact)
            .solve();
        let eds_set = VertexSet::from_members(engine.graph().num_vertices(), &eds.vertices);
        for psi in &psis {
            let opt = engine.request(psi).method(Method::CoreExact).solve();
            let oracle = oracle_for(psi);
            let on_eds = density(oracle.as_ref(), &engine.graph(), &eds_set);
            assert!(
                opt.density + 1e-7 >= on_eds,
                "{name} {}: ρopt {} below EDS density {}",
                psi.name(),
                opt.density,
                on_eds
            );
            rows.push(vec![
                name.clone(),
                psi.name().to_string(),
                format!("{:.4}", opt.density),
                format!("{:.4}", on_eds),
            ]);
        }
    }
    print_table(
        "Table 5: ρopt vs density of the EDS, per Ψ",
        &["dataset", "Ψ", "ρopt", "ρ(EDS, Ψ)"].map(String::from),
        &rows,
    );
}
