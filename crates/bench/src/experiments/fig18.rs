//! Figure 18 (Appendix A): dataset statistics, recomputed on the stand-in
//! graphs and shown beside the paper's reported values.

use dsd_core::{inc_app, k_core_decomposition};
use dsd_datasets::{all_datasets, compute_stats};
use dsd_motif::Pattern;

use crate::util::print_table;

/// Runs the Figure-18 statistics table.
pub fn run(quick: bool) {
    let datasets: Vec<_> = if quick {
        all_datasets().into_iter().take(5).collect()
    } else {
        all_datasets()
    };
    let mut rows = Vec::new();
    for d in &datasets {
        let g = d.generate();
        let s = compute_stats(&g);
        let kmax = k_core_decomposition(&g).kmax;
        // (kmax, Ψ)-core size with Ψ = triangle, as in the paper's table.
        let tri_core = inc_app(&g, &Pattern::triangle());
        rows.push(vec![
            d.name.to_string(),
            format!("{}", s.vertices),
            format!("{}", s.edges),
            format!("{}", s.num_ccs),
            format!("{}", s.pseudo_diameter),
            format!("{:.3}", s.power_law_alpha),
            format!("{kmax}"),
            format!("{}", tri_core.result.len()),
            format!("{:.3}", d.scale()),
            format!("{}/{}", d.paper_vertices, d.paper_edges),
        ]);
    }
    print_table(
        "Figure 18: dataset statistics (stand-ins; last column = paper size)",
        &[
            "dataset",
            "n",
            "m",
            "#CCs",
            "diam≈",
            "α",
            "kmax",
            "tri-core",
            "scale",
            "paper n/m",
        ]
        .map(String::from),
        &rows,
    );
}
