//! Figure 12: CoreExact vs CoreApp runtime (exact-vs-approx trade-off),
//! plus the engine's warm-request time for the same exact answer — the
//! reuse win a query workload sees after the first request.

use std::time::Instant;

use dsd_core::{core_app, core_exact, DsdEngine, Method};
use dsd_datasets::dataset;
use dsd_motif::Pattern;

use crate::util::{print_table, secs, time};

/// Runs the Figure-12 comparison.
pub fn run(quick: bool) {
    let hs: Vec<usize> = if quick {
        vec![2, 3, 4]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let names = if quick {
        vec!["Ca-HepTh"]
    } else {
        vec!["Ca-HepTh", "As-Caida"]
    };
    for name in names {
        let d = dataset(name).expect("registry dataset");
        let g = d.generate();
        let engine = DsdEngine::new(g.clone());
        let mut rows = Vec::new();
        for &h in &hs {
            let psi = Pattern::clique(h);
            let ((exact_r, _), exact_t) = time(|| core_exact(&g, &psi));
            let (approx_r, approx_t) = time(|| core_app(&g, &psi));
            // Warm request: substrates cached by an explicit warm-up.
            engine.warm(&psi);
            let t = Instant::now();
            let warm = engine.request(&psi).method(Method::CoreExact).solve();
            let warm_t = t.elapsed();
            assert!((warm.density - exact_r.density).abs() < 1e-7);
            rows.push(vec![
                format!("{h}-clique"),
                secs(exact_t),
                secs(approx_t),
                secs(warm_t),
                format!("{:.4}", exact_r.density),
                format!("{:.4}", approx_r.result.density),
            ]);
        }
        print_table(
            &format!("Figure 12 ({name}): CoreExact vs CoreApp vs warm engine (seconds)"),
            &[
                "Ψ",
                "CoreExact",
                "CoreApp",
                "warm engine",
                "ρopt",
                "ρ(core)",
            ]
            .map(String::from),
            &rows,
        );
    }
}
