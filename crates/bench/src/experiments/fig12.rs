//! Figure 12: CoreExact vs CoreApp runtime (exact-vs-approx trade-off).

use dsd_core::{core_app, core_exact};
use dsd_datasets::dataset;
use dsd_motif::Pattern;

use crate::util::{print_table, secs, time};

/// Runs the Figure-12 comparison.
pub fn run(quick: bool) {
    let hs: Vec<usize> = if quick { vec![2, 3, 4] } else { vec![2, 3, 4, 5, 6] };
    let names = if quick {
        vec!["Ca-HepTh"]
    } else {
        vec!["Ca-HepTh", "As-Caida"]
    };
    for name in names {
        let d = dataset(name).expect("registry dataset");
        let g = d.generate();
        let mut rows = Vec::new();
        for &h in &hs {
            let psi = Pattern::clique(h);
            let ((exact_r, _), exact_t) = time(|| core_exact(&g, &psi));
            let (approx_r, approx_t) = time(|| core_app(&g, &psi));
            rows.push(vec![
                format!("{h}-clique"),
                secs(exact_t),
                secs(approx_t),
                format!("{:.4}", exact_r.density),
                format!("{:.4}", approx_r.result.density),
            ]);
        }
        print_table(
            &format!("Figure 12 ({name}): CoreExact vs CoreApp (seconds)"),
            &["Ψ", "CoreExact", "CoreApp", "ρopt", "ρ(core)"].map(String::from),
            &rows,
        );
    }
}
