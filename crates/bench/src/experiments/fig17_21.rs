//! Figures 17 and 21: the case studies, as harness subcommands (the
//! runnable examples `community_detection` and `pattern_motifs` carry the
//! same assertions; these print the memberships in table form). Each case
//! study runs against one `DsdEngine`, so the PDS and the top-k scan share
//! the triangle substrates.

use dsd_core::{DsdEngine, Method, Objective};
use dsd_datasets::planted::{collaboration_network, ppi_like};
use dsd_motif::Pattern;

use crate::util::print_table;

/// Figure 17: triangle vs 2-star PDS's of a collaboration network.
pub fn run_fig17(_quick: bool) {
    let groups = 6;
    let group_size = 8;
    let advisors = 3;
    let g = collaboration_network(groups, group_size, advisors, 12, 2024);
    let engine = DsdEngine::new(g);
    let mut rows = Vec::new();
    for psi in [Pattern::triangle(), Pattern::two_star()] {
        let pds = engine.request(&psi).method(Method::CoreExact).solve();
        let in_groups = pds
            .vertices
            .iter()
            .filter(|&&v| (v as usize) < groups * group_size)
            .count();
        let advisors_in = pds
            .vertices
            .iter()
            .filter(|&&v| {
                (v as usize) >= groups * group_size && (v as usize) < groups * group_size + advisors
            })
            .count();
        rows.push(vec![
            psi.name().to_string(),
            pds.len().to_string(),
            format!("{:.3}", pds.density),
            in_groups.to_string(),
            advisors_in.to_string(),
        ]);
    }
    print_table(
        "Figure 17: PDS composition in the collaboration network",
        &["Ψ", "|PDS|", "ρopt", "group members", "advisor hubs"].map(String::from),
        &rows,
    );
    // Top-3 disjoint triangle-dense groups (the paper's 'research groups'),
    // served from the warm triangle decomposition.
    let tops = engine
        .request(&Pattern::triangle())
        .objective(Objective::TopK(3))
        .solve();
    assert!(tops.stats.substrate.decomposition_cache_hit);
    let rows2: Vec<Vec<String>> = tops
        .subgraphs
        .iter()
        .enumerate()
        .map(|(i, t)| {
            vec![
                format!("#{}", i + 1),
                t.len().to_string(),
                format!("{:.3}", t.density),
                format!("{:?}", &t.vertices[..t.len().min(8)]),
            ]
        })
        .collect();
    print_table(
        "Figure 17 (cont.): top-3 disjoint triangle-densest groups",
        &["rank", "size", "ρ", "members (prefix)"].map(String::from),
        &rows2,
    );
}

/// Figure 21: per-pattern PDS's of the PPI-like network.
pub fn run_fig21(_quick: bool) {
    let engine = DsdEngine::new(ppi_like(7));
    let module = |vs: &[u32]| -> &'static str {
        let count = |lo: u32, hi: u32| vs.iter().filter(|&&v| v >= lo && v < hi).count();
        let (c, b, s) = (count(0, 8), count(8, 24), count(24, 45));
        if c >= b && c >= s {
            "clique module"
        } else if b >= s {
            "bipartite module"
        } else {
            "star module"
        }
    };
    let mut rows = Vec::new();
    for psi in [
        Pattern::edge(),
        Pattern::clique(4),
        Pattern::diamond(),
        Pattern::three_star(),
        Pattern::c3_star(),
    ] {
        let pds = engine.request(&psi).method(Method::CoreExact).solve();
        rows.push(vec![
            psi.name().to_string(),
            pds.len().to_string(),
            format!("{:.3}", pds.density),
            module(&pds.vertices).to_string(),
        ]);
    }
    print_table(
        "Figure 21: PDS per pattern in the PPI-like network",
        &["Ψ", "|PDS|", "ρopt", "functional module"].map(String::from),
        &rows,
    );
}
