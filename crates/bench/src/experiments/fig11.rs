//! Figure 11: theoretical (1/|VΨ|) vs actual approximation ratios of the
//! (kmax, Ψ)-core family and PeelApp, against CoreExact's ρopt.
//!
//! All three measurements per (dataset, Ψ) run against one `DsdEngine`, so
//! the (k, Ψ)-core decomposition is built once and reused — the workload
//! shape the engine exists for.

use dsd_core::{DsdEngine, Method};
use dsd_datasets::dataset;
use dsd_motif::Pattern;

use crate::util::print_table;

/// Runs the Figure-11 quality measurement.
pub fn run(quick: bool) {
    let hs: Vec<usize> = if quick {
        vec![2, 3, 4]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let names = if quick {
        vec!["Netscience"]
    } else {
        vec!["Netscience", "As-Caida"]
    };
    for name in names {
        let d = dataset(name).expect("registry dataset");
        let engine = DsdEngine::new(d.generate());
        let mut rows = Vec::new();
        for &h in &hs {
            let psi = Pattern::clique(h);
            let opt = engine.request(&psi).method(Method::CoreExact).solve();
            if opt.density == 0.0 {
                rows.push(vec![
                    format!("{h}-clique"),
                    "no instances".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let core = engine.request(&psi).method(Method::IncApp).solve();
            let peel = engine.request(&psi).method(Method::PeelApp).solve();
            assert!(
                core.stats.substrate.decomposition_cache_hit
                    && peel.stats.substrate.decomposition_cache_hit,
                "engine must serve the approximations warm"
            );
            let r_core = core.density / opt.density;
            let r_peel = peel.density / opt.density;
            assert!(
                r_core + 1e-9 >= 1.0 / h as f64,
                "{name} h={h}: guarantee broken"
            );
            assert!(
                r_peel + 1e-9 >= 1.0 / h as f64,
                "{name} h={h}: guarantee broken"
            );
            rows.push(vec![
                format!("{h}-clique"),
                format!("{:.4}", 1.0 / h as f64),
                format!("{r_core:.4}"),
                format!("{r_peel:.4}"),
                format!("{:.4}", opt.density),
            ]);
        }
        print_table(
            &format!("Figure 11 ({name}): approximation ratios"),
            &["Ψ", "theory 1/|VΨ|", "(kmax,Ψ)-core R", "PeelApp R", "ρopt"].map(String::from),
            &rows,
        );
    }
}
