//! Figure 20 (Appendix E): approximation CDS algorithms on the three
//! additional datasets (Flickr, Google, Foursquare stand-ins).

use dsd_core::{core_app, inc_app, peel_app};
use dsd_datasets::{all_datasets, DatasetKind};
use dsd_motif::Pattern;

use crate::util::{print_table, secs, time};

/// Runs the Figure-20 comparison.
pub fn run(quick: bool) {
    let hs: Vec<usize> = if quick { vec![2, 3] } else { vec![2, 3, 4, 5] };
    let datasets: Vec<_> = all_datasets()
        .into_iter()
        .filter(|d| d.kind == DatasetKind::Extra)
        .take(if quick { 1 } else { 3 })
        .collect();
    let mut rows = Vec::new();
    for d in &datasets {
        let g = d.generate();
        for &h in &hs {
            let psi = Pattern::clique(h);
            let (peel_r, peel_t) = time(|| peel_app(&g, &psi));
            let (inc_r, inc_t) = time(|| inc_app(&g, &psi));
            let (core_r, core_t) = time(|| core_app(&g, &psi));
            assert_eq!(inc_r.kmax, core_r.kmax);
            std::hint::black_box(peel_r.density);
            rows.push(vec![
                d.name.to_string(),
                format!("{h}-clique"),
                secs(peel_t),
                secs(inc_t),
                secs(core_t),
            ]);
        }
    }
    print_table(
        "Figure 20: approximation CDS on additional datasets (seconds)",
        &["dataset", "Ψ", "PeelApp", "IncApp", "CoreApp"].map(String::from),
        &rows,
    );
}
