//! Figures 15–16: pattern-densest-subgraph (PDS) experiments over the
//! Figure-7 pattern menu — exact (PExact vs CorePExact) on the small
//! datasets, approximation (PeelApp/IncApp/CoreApp) on the large ones.

use dsd_core::{core_app, core_exact, exact, inc_app, peel_app, FlowBackend};
use dsd_datasets::dataset;
use dsd_graph::{Graph, VertexSet};
use dsd_motif::{pattern_enum, Pattern, PatternKind};

use crate::util::{print_table, secs, time};

/// Cap on materialized pattern instances — combos above it print as capped
/// (the paper's 3-day-timeout bars).
const INSTANCE_CAP: u64 = 2_000_000;

/// Exact PDS materializes the full instance set in its flow network, so
/// every pattern is subject to the cap.
fn admit_exact(g: &Graph, psi: &Pattern) -> Result<(), String> {
    let alive = VertexSet::full(g.num_vertices());
    match pattern_enum::count_instances_capped(g, psi, &alive, INSTANCE_CAP) {
        Some(_) => Ok(()),
        None => Err(format!("capped: >{INSTANCE_CAP} instances")),
    }
}

/// Approximation PDS only needs degrees: stars and diamonds go through the
/// Appendix-D closed forms and never materialize instances, so only
/// general patterns need the cap.
fn admit_approx(g: &Graph, psi: &Pattern) -> Result<(), String> {
    match psi.kind() {
        PatternKind::General => admit_exact(g, psi),
        _ => Ok(()),
    }
}

/// Figure 15: exact PDS algorithms.
pub fn run_exact(quick: bool) {
    let patterns = if quick {
        vec![Pattern::two_star(), Pattern::c3_star(), Pattern::diamond()]
    } else {
        Pattern::figure7()
    };
    let names = if quick {
        vec!["As-733"]
    } else {
        vec!["As-733", "Ca-HepTh"]
    };
    for name in names {
        let d = dataset(name).expect("registry dataset");
        let g = d.generate();
        let mut rows = Vec::new();
        for psi in &patterns {
            match admit_exact(&g, psi).map(|_| ()) {
                Err(reason) => {
                    rows.push(vec![psi.name().into(), reason.clone(), reason, "-".into()]);
                }
                Ok(_) => {
                    let ((pe, _), pe_t) = time(|| exact(&g, psi, FlowBackend::Dinic));
                    let ((ce, _), ce_t) = time(|| core_exact(&g, psi));
                    assert!(
                        (pe.density - ce.density).abs() < 1e-6,
                        "{name} {}: PExact {} vs CorePExact {}",
                        psi.name(),
                        pe.density,
                        ce.density
                    );
                    rows.push(vec![
                        psi.name().into(),
                        secs(pe_t),
                        secs(ce_t),
                        format!("{:.4}", ce.density),
                    ]);
                }
            }
        }
        print_table(
            &format!("Figure 15 ({name}): exact PDS algorithms (seconds)"),
            &["Ψ", "PExact", "CorePExact", "ρopt"].map(String::from),
            &rows,
        );
    }
}

/// Figure 16: approximation PDS algorithms.
pub fn run_approx(quick: bool) {
    let patterns = if quick {
        vec![Pattern::two_star(), Pattern::diamond()]
    } else {
        Pattern::figure7()
    };
    let names = if quick {
        vec!["DBLP"]
    } else {
        vec!["DBLP", "Cit-Patents"]
    };
    for name in names {
        let d = dataset(name).expect("registry dataset");
        let g = d.generate();
        let mut rows = Vec::new();
        for psi in &patterns {
            if let Err(reason) = admit_approx(&g, psi) {
                rows.push(vec![
                    psi.name().into(),
                    reason.clone(),
                    reason.clone(),
                    reason,
                ]);
                continue;
            }
            let (peel_r, peel_t) = time(|| peel_app(&g, psi));
            let (inc_r, inc_t) = time(|| inc_app(&g, psi));
            let (core_r, core_t) = time(|| core_app(&g, psi));
            assert_eq!(inc_r.kmax, core_r.kmax, "{name} {}", psi.name());
            std::hint::black_box(peel_r.density);
            rows.push(vec![
                psi.name().into(),
                secs(peel_t),
                secs(inc_t),
                secs(core_t),
            ]);
        }
        print_table(
            &format!("Figure 16 ({name}): approximation PDS algorithms (seconds)"),
            &["Ψ", "PeelApp", "IncApp", "CoreApp"].map(String::from),
            &rows,
        );
    }
}
