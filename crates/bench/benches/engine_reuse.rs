//! Bench: the `DsdEngine` substrate-reuse win — the ISSUE-1 acceptance
//! benchmark. A repeated-query workload (same Ψ, 10 requests against one
//! engine) must be ≥ 2× faster than 10 cold free-function calls, from
//! substrate reuse alone.
//!
//! Run with: `cargo bench -p dsd-bench --bench engine_reuse`

use std::time::Instant;

use dsd_core::{
    core_exact, densest_at_least_k, densest_subgraph, peel_app, top_k_densest, DsdEngine, Method,
    Objective,
};
use dsd_datasets::chung_lu;
use dsd_graph::Graph;
use dsd_motif::Pattern;

const REPEATS: usize = 10;

/// The 10-request mix: exact once in full and once top-k, the rest the
/// kind of approximate/constrained probes a serving workload issues.
#[derive(Clone, Copy)]
enum Req {
    Method(Method),
    AtLeastK(usize),
    TopK(usize),
}

const WORKLOAD: [Req; REPEATS] = [
    Req::Method(Method::CoreExact),
    Req::Method(Method::PeelApp),
    Req::AtLeastK(16),
    Req::Method(Method::IncApp),
    Req::Method(Method::PeelApp),
    Req::AtLeastK(64),
    Req::Method(Method::IncApp),
    Req::TopK(2),
    Req::Method(Method::PeelApp),
    Req::AtLeastK(32),
];

fn workload_cold(g: &Graph, psi: &Pattern) -> f64 {
    // 10 independent free-function calls: every one re-derives the
    // (k, Ψ)-core decomposition from scratch.
    let mut acc = 0.0;
    for req in WORKLOAD {
        acc += match req {
            Req::Method(Method::CoreExact) => core_exact(g, psi).0.density,
            Req::Method(Method::PeelApp) => peel_app(g, psi).density,
            Req::Method(m) => densest_subgraph(g, psi, m).density,
            Req::AtLeastK(k) => densest_at_least_k(g, psi, k)
                .map(|r| r.density)
                .unwrap_or(0.0),
            Req::TopK(k) => top_k_densest(g, psi, k)
                .first()
                .map(|r| r.density)
                .unwrap_or(0.0),
        };
    }
    acc
}

fn workload_warm(engine: &DsdEngine<'_>, psi: &Pattern) -> f64 {
    // The same 10 requests against one engine: the decomposition is built
    // by the first request and reused by the other nine.
    let mut acc = 0.0;
    for req in WORKLOAD {
        let request = engine.request(psi);
        let solution = match req {
            Req::Method(m) => request.method(m).solve(),
            Req::AtLeastK(k) => request.objective(Objective::AtLeastK(k)).solve(),
            Req::TopK(k) => request.objective(Objective::TopK(k)).solve(),
        };
        acc += solution.density;
    }
    acc
}

fn main() {
    let g = chung_lu::chung_lu(6_000, 24_000, 2.4, 77);
    let psi = Pattern::clique(4);
    println!(
        "repeated-query workload: {} requests, Ψ = {}, graph n={} m={}",
        REPEATS,
        psi.name(),
        g.num_vertices(),
        g.num_edges()
    );

    let t = Instant::now();
    let cold_sum = workload_cold(&g, &psi);
    let cold = t.elapsed();

    let engine = DsdEngine::over(&g);
    let t = Instant::now();
    let warm_sum = workload_warm(&engine, &psi);
    let warm = t.elapsed();

    assert!(
        (cold_sum - warm_sum).abs() < 1e-9,
        "warm engine changed an answer: {cold_sum} vs {warm_sum}"
    );
    let stats = engine.cache_stats();
    assert_eq!(
        stats.decomposition_builds, 1,
        "one substrate build expected"
    );
    assert_eq!(stats.decomposition_hits, REPEATS - 1);

    let speedup = cold.as_secs_f64() / warm.as_secs_f64();
    println!(
        "cold (free functions): {:>9.3} ms",
        cold.as_secs_f64() * 1e3
    );
    println!(
        "warm (one DsdEngine):  {:>9.3} ms",
        warm.as_secs_f64() * 1e3
    );
    println!("speedup: {speedup:.2}x (acceptance floor: 2x)");
    assert!(
        speedup >= 2.0,
        "substrate reuse must be at least a 2x win, got {speedup:.2}x"
    );
}
