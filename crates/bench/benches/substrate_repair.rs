//! Bench: incremental Ψ-substrate repair vs invalidate-and-rebuild — the
//! ISSUE-8 acceptance benchmark.
//!
//! A 64-update stream (alternating inserts of fresh edges and deletes of
//! existing ones) hits an engine holding a **warm triangle substrate**:
//!
//! * **repair** — `DsdEngine::apply` repairs the store in place: rows
//!   incident to a removed edge are tombstoned through the incidence
//!   CSR, new triangles are enumerated from the inserted edge's common
//!   neighborhood and appended, and the serve governor's ledger entry is
//!   resized in place (reconciled after every batch);
//! * **invalidate-and-rebuild** — the pre-repair status quo: every
//!   update re-materializes the graph and rebuilds the full triangle
//!   `InstanceStore` from scratch.
//!
//! Asserted: every update takes the repair path (never the rebuild
//! fallback), the governor ledger reconciles after every batch, the warm
//! engine's final answer is bit-identical to a cold engine over the
//! final graph, and repair is **≥ 10× faster** end to end.
//!
//! Run with: `cargo bench -p dsd-bench --bench substrate_repair`

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsd_core::{DsdEngine, DsdRequest, Method, SubstrateGovernor};
use dsd_datasets::registry;
use dsd_graph::{DeltaGraph, EdgeOverlay, Graph, GraphUpdate, VertexSet};
use dsd_motif::store::InstanceStore;
use dsd_motif::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const UPDATES: usize = 64;
const SPEEDUP_FLOOR: f64 = 10.0;

/// Alternating effective inserts (fresh edges) and deletes (existing
/// edges), all distinct, so the whole stream does real work in both arms.
fn update_stream(g: &Graph, seed: u64) -> Vec<GraphUpdate> {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let n = g.num_vertices() as u32;
    let mut used: HashSet<(u32, u32)> = HashSet::new();
    let mut stream = Vec::with_capacity(UPDATES);
    while stream.len() < UPDATES {
        if stream.len() % 2 == 0 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            let key = (u.min(v), u.max(v));
            if u != v && !g.has_edge(u, v) && used.insert(key) {
                stream.push(GraphUpdate::Insert(u, v));
            }
        } else {
            let (u, v) = edges[rng.gen_range(0..edges.len())];
            if used.insert((u, v)) {
                stream.push(GraphUpdate::Delete(u, v));
            }
        }
    }
    stream
}

fn main() {
    let dataset = registry::dataset("As-Caida").expect("registry graph");
    let g = dataset.generate();
    let updates = update_stream(&g, 0x2E9A12);
    println!(
        "substrate-repair workload: {} single-edge updates on {} \
         (n={}, m={}), warm triangle substrate",
        updates.len(),
        dataset.name,
        g.num_vertices(),
        g.num_edges()
    );

    // -- Repair arm: warm substrate, in-place repair per update ----------
    let engine = Arc::new(DsdEngine::new(g.clone()));
    let governor = SubstrateGovernor::new(None);
    governor.attach(&engine);
    let psi = Pattern::triangle();
    let req = DsdRequest::new(&psi).method(Method::CoreExact);
    let warm_solution = engine.solve(&req); // builds the substrate once
    governor.debug_assert_reconciled();

    let mut repair_time = Duration::ZERO;
    let mut rows_tombstoned = 0usize;
    for update in &updates {
        let t = Instant::now();
        let stats = engine.apply(std::slice::from_ref(update));
        repair_time += t.elapsed();
        assert_eq!(
            stats.inserted + stats.deleted,
            1,
            "stream must be effective"
        );
        assert_eq!(
            stats.substrates_repaired, 1,
            "every update must repair the warm substrate in place"
        );
        assert_eq!(stats.substrates_rebuilt, 0, "no rebuild fallback");
        rows_tombstoned += stats.rows_tombstoned;
        // The ledger entry was resized in place, never dropped.
        governor.debug_assert_reconciled();
    }
    // Untimed: the maintenance comparison is store-repair vs store-rebuild;
    // the query itself costs the same on either arm.
    let repaired_solution = engine.solve(&req);
    assert!(
        repaired_solution.stats.substrate.oracle_cache_hit,
        "the final solve must run on the repaired substrate"
    );

    // -- Invalidate-and-rebuild arm: from-scratch store per update ------
    let n = g.num_vertices();
    let alive = VertexSet::full(n);
    let mut current = g.clone();
    let mut rebuild_time = Duration::ZERO;
    let mut rebuilt_store = None;
    for update in &updates {
        let mut overlay = EdgeOverlay::default();
        assert!(overlay.apply(&current, update));
        let t = Instant::now();
        current = DeltaGraph::new(&current, &overlay).materialize();
        let (store, _) =
            InstanceStore::cliques(&current, 3, &alive, 1, None).expect("unbudgeted build");
        rebuild_time += t.elapsed();
        rebuilt_store = Some(store);
    }
    let rebuilt_store = rebuilt_store.expect("at least one update");

    // -- Correctness: repaired == rebuilt, bit for bit -------------------
    let cold = DsdEngine::new(current);
    let cold_solution = cold.solve(&req);
    assert_eq!(repaired_solution.vertices, cold_solution.vertices);
    assert_eq!(
        repaired_solution.density.to_bits(),
        cold_solution.density.to_bits(),
        "repaired substrate diverged from a cold rebuild"
    );
    assert_eq!(repaired_solution.stats.kmax, cold_solution.stats.kmax);
    assert!(warm_solution.density.is_finite());

    let speedup = rebuild_time.as_secs_f64() / repair_time.as_secs_f64();
    println!(
        "invalidate-and-rebuild: {:>9.3} ms ({} from-scratch triangle stores, \
         {} final rows)",
        rebuild_time.as_secs_f64() * 1e3,
        updates.len(),
        rebuilt_store.rows()
    );
    println!(
        "repair:                 {:>9.3} ms ({} in-place repairs, {} rows \
         tombstoned)",
        repair_time.as_secs_f64() * 1e3,
        updates.len(),
        rows_tombstoned
    );
    println!("speedup: {speedup:.2}x (acceptance floor: {SPEEDUP_FLOOR}x)");
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "substrate repair must beat invalidate-and-rebuild by ≥ {SPEEDUP_FLOOR}x, got {speedup:.2}x"
    );
}
