//! Bench: sharded scatter-gather solves — the ISSUE-7 acceptance
//! benchmark for `dsd_core::shard`.
//!
//! Three phases:
//!
//! 1. **Bit-identity sweep** — R-MAT, Chung-Lu, and multi-community
//!    graphs at 4 and 8 shards, every scatter-gather objective (densest,
//!    top-k, at-least-k) and pattern (edge, triangle): the sharded answer
//!    must be bit-identical (vertices, density bits, subgraphs) to a
//!    single whole-graph engine.
//! 2. **Bound pruning** — on the skewed multi-community workload (one
//!    planted cluster per shard-sized block, density shrinking block by
//!    block) the best certified local density ρ* must prune at least one
//!    sparse shard via its located-core bound, and the merge must skip at
//!    least one certified component outright.
//! 3. **Governed serving + wall-clock floor** — the same workload through
//!    `DsdServer::register_sharded` under a byte budget (zero governor
//!    violations allowed), then warm repeat solves timed against the
//!    single-engine path: the sharded wall clock must stay within a
//!    conservative CI factor of the unsharded one.
//!
//! By default this runs a CI-sized smoke configuration; `DSD_SHARD_FULL=1`
//! switches to the nightly full-size sweep.
//!
//! Run with: `cargo bench -p dsd-bench --bench sharded_solve`

use std::time::Instant;

use dsd_core::{
    DsdEngine, DsdRequest, DsdServer, Method, Objective, ServeConfig, ShardedGraph, Solution,
};
use dsd_datasets::{chung_lu, multi_community::multi_community, rmat, rmat::RmatParams};
use dsd_graph::Graph;
use dsd_motif::Pattern;

struct Config {
    rmat_scale: u32,
    edge_factor: usize,
    cl_n: usize,
    mc_blocks: usize,
    mc_block_size: usize,
    /// Sharded warm solves may be at most this factor slower than the
    /// single-engine path over the timed workload.
    slowdown_ceiling: f64,
    timed_rounds: usize,
}

fn config(full: bool) -> Config {
    if full {
        Config {
            rmat_scale: 12,
            edge_factor: 8,
            cl_n: 4_000,
            mc_blocks: 8,
            mc_block_size: 256,
            slowdown_ceiling: 3.0,
            timed_rounds: 5,
        }
    } else {
        Config {
            rmat_scale: 9,
            edge_factor: 6,
            cl_n: 600,
            mc_blocks: 6,
            mc_block_size: 96,
            slowdown_ceiling: 5.0,
            timed_rounds: 3,
        }
    }
}

fn assert_bitwise_same(got: &Solution, want: &Solution, context: &str) {
    assert_eq!(got.vertices, want.vertices, "{context}: vertices diverged");
    assert_eq!(
        got.density.to_bits(),
        want.density.to_bits(),
        "{context}: density not bit-identical ({} vs {})",
        got.density,
        want.density
    );
    assert_eq!(
        got.subgraphs.len(),
        want.subgraphs.len(),
        "{context}: subgraph count"
    );
    for (i, (a, b)) in got.subgraphs.iter().zip(&want.subgraphs).enumerate() {
        assert_eq!(a.vertices, b.vertices, "{context}: subgraph {i}");
        assert_eq!(
            a.density.to_bits(),
            b.density.to_bits(),
            "{context}: subgraph {i} density"
        );
    }
}

fn scatter_requests(psi: &Pattern) -> Vec<(DsdRequest, &'static str)> {
    vec![
        (
            DsdRequest::new(psi).method(Method::CoreExact),
            "densest/core-exact",
        ),
        (
            DsdRequest::new(psi)
                .objective(Objective::TopK(3))
                .method(Method::CoreExact),
            "top-3",
        ),
        (
            DsdRequest::new(psi)
                .objective(Objective::AtLeastK(5))
                .method(Method::CoreExact),
            "at-least-5",
        ),
    ]
}

fn main() {
    let full = std::env::var_os("DSD_SHARD_FULL").is_some();
    let cfg = config(full);
    let mode = if full { "full" } else { "smoke" };

    let named: Vec<(&str, Graph)> = vec![
        (
            "rmat",
            rmat::rmat(
                cfg.rmat_scale,
                (1usize << cfg.rmat_scale) * cfg.edge_factor,
                RmatParams::default(),
                41,
            ),
        ),
        (
            "chung-lu",
            chung_lu::chung_lu(cfg.cl_n, cfg.cl_n * 5, 2.4, 97),
        ),
        (
            "multi-community",
            multi_community(cfg.mc_blocks, cfg.mc_block_size, 0.02, 0.05, 17).graph,
        ),
    ];
    println!(
        "sharded_solve [{mode}]: {} graphs x {{4, 8}} shards x 3 objectives x 2 patterns",
        named.len()
    );

    // Phase 1: bit-identity sweep.
    let patterns = [Pattern::edge(), Pattern::triangle()];
    for (name, g) in &named {
        let engine = DsdEngine::new(g.clone());
        for shards in [4usize, 8] {
            let sharded = ShardedGraph::new(g.clone(), shards);
            for psi in &patterns {
                for (req, label) in scatter_requests(psi) {
                    let got = sharded.solve(&req);
                    let want = engine.solve(&req);
                    assert_bitwise_same(
                        &got,
                        &want,
                        &format!("{name}, {shards} shards, {} {label}", psi.name()),
                    );
                }
            }
        }
        println!(
            "{name}: {} vertices, {} edges — all sharded answers bit-identical",
            g.num_vertices(),
            g.num_edges()
        );
    }

    // Phase 2: bound pruning on the skewed planted workload.
    let mc = &named
        .iter()
        .find(|(n, _)| *n == "multi-community")
        .unwrap()
        .1;
    let shards = cfg.mc_blocks.min(8);
    let sharded = ShardedGraph::new(mc.clone(), shards);
    let out = sharded.solve_explained(&DsdRequest::new(&Pattern::edge()).method(Method::CoreExact));
    assert!(out.scattered, "planted workload must scatter");
    println!(
        "pruning: rho* = {:.4}, {} of {} shards pruned by located-core bounds, {} merge components skipped",
        out.rho_star,
        out.shards_pruned,
        sharded.num_shards(),
        out.pruned_components
    );
    for report in &out.shards {
        println!(
            "  shard {}: {} vertices, local density {:.4}, kmax {:?}, certified {}, pruned {}",
            report.shard,
            report.vertices,
            report.local_density,
            report.kmax,
            report.certified,
            report.pruned
        );
    }
    assert!(
        out.shards_pruned >= 1,
        "skewed planted input must let bound pruning skip at least one shard"
    );

    // Phase 2b: certified component skip. On the bridged workload above
    // the located core may already exclude every pruned shard before the
    // component loop runs; this disconnected-cliques fixture keeps a
    // dominated component (K8, core number 7) alive past the located
    // core of the K12 optimum (order 6), so only the region certificate
    // can prove it hopeless.
    let mut clique_edges = Vec::new();
    for (lo, hi) in [(0u32, 6), (6, 14), (14, 26)] {
        for u in lo..hi {
            for v in (u + 1)..hi {
                clique_edges.push((u, v));
            }
        }
    }
    let cliques = Graph::from_edges(26, &clique_edges);
    let sharded_cliques = ShardedGraph::new(cliques.clone(), 2);
    let req = DsdRequest::new(&Pattern::edge()).method(Method::CoreExact);
    let out2 = sharded_cliques.solve_explained(&req);
    assert_bitwise_same(
        &out2.solution,
        &DsdEngine::new(cliques).solve(&req),
        "disconnected cliques",
    );
    println!(
        "component skip: K6 + K8 + K12 at 2 shards -> {} of {} shards pruned, {} merge components skipped",
        out2.shards_pruned,
        sharded_cliques.num_shards(),
        out2.pruned_components
    );
    assert!(
        out2.pruned_components >= 1,
        "the certified merge must skip at least one component"
    );

    // Phase 3a: governed serving — every shard engine on the ledger,
    // zero budget violations.
    let server = DsdServer::new(ServeConfig {
        workers: 2,
        substrate_budget: Some(64 << 20),
        ..ServeConfig::default()
    });
    server.register_sharded("mc", mc.clone(), shards);
    let tickets: Vec<_> = scatter_requests(&Pattern::edge())
        .into_iter()
        .map(|(req, _)| server.submit(req.on("mc")).expect("queue fits"))
        .collect();
    let reference = DsdEngine::new(mc.clone());
    for (ticket, (req, label)) in tickets.into_iter().zip(scatter_requests(&Pattern::edge())) {
        let got = ticket
            .wait()
            .expect("no sheds")
            .solution()
            .expect("queries only");
        assert_bitwise_same(&got, &reference.solve(&req), &format!("served {label}"));
    }
    server.drain();
    let gov = server.stats().governor;
    println!(
        "governor: {} hits / {} misses, {:.1} KiB resident, {} violations",
        gov.hits,
        gov.misses,
        gov.resident_bytes as f64 / 1024.0,
        gov.violations
    );
    assert_eq!(gov.violations, 0, "sharded serving must respect the budget");

    // Phase 3b: wall-clock floor — warm repeat solves, best-of-N.
    let single = DsdEngine::new(mc.clone());
    let req = DsdRequest::new(&Pattern::edge()).method(Method::CoreExact);
    sharded.solve(&req);
    single.solve(&req);
    let best = |f: &dyn Fn() -> Solution| {
        (0..cfg.timed_rounds)
            .map(|_| {
                let t = Instant::now();
                let s = f();
                (t.elapsed(), s.density)
            })
            .min_by_key(|(d, _)| *d)
            .unwrap()
    };
    let (t_sharded, d_sharded) = best(&|| sharded.solve(&req));
    let (t_single, d_single) = best(&|| single.solve(&req));
    assert_eq!(d_sharded.to_bits(), d_single.to_bits());
    let ratio = t_sharded.as_secs_f64() / t_single.as_secs_f64().max(1e-9);
    println!(
        "wall clock (warm, best of {}): sharded {:.3} ms vs single {:.3} ms -> {:.2}x",
        cfg.timed_rounds,
        t_sharded.as_secs_f64() * 1e3,
        t_single.as_secs_f64() * 1e3,
        ratio
    );
    assert!(
        ratio <= cfg.slowdown_ceiling,
        "sharded warm solve {ratio:.2}x slower than single-engine (ceiling {:.1}x)",
        cfg.slowdown_ceiling
    );
    println!("sharded_solve [{mode}]: all assertions passed");
}
