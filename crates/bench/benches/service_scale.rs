//! Bench: serving at scale under a byte budget — the ISSUE-6 acceptance
//! benchmark for the `dsd_core::serve` runtime.
//!
//! Synthetic traffic over ten generated graphs (five R-MAT, five
//! Chung-Lu power-law) and three patterns (edge, triangle, 2-star):
//!
//! 1. **Footprint measurement** — every `(graph, Ψ)` pair is warmed on
//!    an *ungoverned* `DsdService` via one `solve_batch`; the summed
//!    `substrate_bytes()` is the full footprint `F`, and per-pair deltas
//!    give the entry-size distribution.
//! 2. **Governed warm sweep** — the same query set replayed through a
//!    `DsdServer` whose governor budget is `F / 3`; every answer must be
//!    bit-identical to the synchronous `solve_batch` reference.
//! 3. **Mixed load** — a seeded query/update script (updates barrier
//!    only their own graph) pushed through the server with submit-side
//!    backpressure; answers must be bit-identical (vertices, density
//!    bits, observed epoch) to a serial fresh-engine replay.
//!
//! Asserted: the budget binds (`evictions > 0`), settled residency never
//! exceeds it (`peak_bytes <= F/3`, `violations == 0`), and mixed-load
//! throughput clears a conservative CI floor. The worker count is chosen
//! from the measured entry sizes so the pinned in-flight working set
//! always fits the budget — the run demonstrates a *feasible* budget, not
//! a thrash spiral.
//!
//! By default this runs a CI-sized smoke configuration; `DSD_SCALE_FULL=1`
//! switches to the nightly full-size sweep.
//!
//! Run with: `cargo bench -p dsd-bench --bench service_scale`

use std::collections::VecDeque;
use std::time::Instant;

use dsd_core::{
    DsdEngine, DsdRequest, DsdServer, DsdService, Method, ServeConfig, ServeError, ServeOutcome,
    Solution, Ticket,
};
use dsd_datasets::{chung_lu, rmat, rmat::RmatParams};
use dsd_graph::{Graph, GraphUpdate, VertexId};
use dsd_motif::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NAMES: [&str; 10] = [
    "rmat-a", "rmat-b", "rmat-c", "rmat-d", "rmat-e", "cl-a", "cl-b", "cl-c", "cl-d", "cl-e",
];

/// One op of the mixed phase, replayable through the pipeline and
/// through a serial reference.
enum Op {
    Query {
        graph: usize,
        req: DsdRequest,
    },
    Update {
        graph: usize,
        edges: Vec<GraphUpdate>,
    },
}

struct Config {
    /// R-MAT scale (graph size 2^scale) and edge factor.
    rmat_scale: u32,
    edge_factor: usize,
    /// Chung-Lu vertex count.
    cl_n: usize,
    /// Mixed-phase ops.
    ops: usize,
    /// Conservative CI throughput floor, jobs/s.
    floor: f64,
}

fn config(full: bool) -> Config {
    if full {
        Config {
            rmat_scale: 10,
            edge_factor: 8,
            cl_n: 1_500,
            ops: 500,
            floor: 1.0,
        }
    } else {
        Config {
            rmat_scale: 8,
            edge_factor: 6,
            cl_n: 400,
            ops: 180,
            floor: 5.0,
        }
    }
}

fn graphs(cfg: &Config) -> Vec<Graph> {
    let mut out = Vec::new();
    for seed in 0..5u64 {
        let n = 1usize << cfg.rmat_scale;
        out.push(rmat::rmat(
            cfg.rmat_scale,
            n * cfg.edge_factor,
            RmatParams::default(),
            41 + seed,
        ));
    }
    for seed in 0..5u64 {
        out.push(chung_lu::chung_lu(cfg.cl_n, cfg.cl_n * 5, 2.4, 97 + seed));
    }
    out
}

fn patterns() -> Vec<Pattern> {
    vec![Pattern::edge(), Pattern::triangle(), Pattern::two_star()]
}

/// The warm sweep: every (graph, Ψ) pair once, methods pinned so the
/// answer is deterministic regardless of cache temperature.
fn warm_queries() -> Vec<DsdRequest> {
    let methods = [Method::CoreExact, Method::PeelApp, Method::IncApp];
    let mut reqs = Vec::new();
    for name in NAMES {
        for (pi, psi) in patterns().iter().enumerate() {
            reqs.push(
                DsdRequest::new(psi)
                    .on(name)
                    .method(methods[pi % methods.len()]),
            );
        }
    }
    reqs
}

/// A seeded mixed script: 20% updates, queries drawn over every
/// (graph, Ψ, method) combination.
fn mixed_script(rng: &mut StdRng, graphs: &[Graph], ops: usize) -> Vec<Op> {
    let psis = patterns();
    let methods = [Method::CoreExact, Method::PeelApp, Method::IncApp];
    (0..ops)
        .map(|_| {
            let graph = rng.gen_range(0..graphs.len());
            if rng.gen_bool(0.2) {
                let n = graphs[graph].num_vertices() as VertexId;
                let edges = (0..rng.gen_range(1usize..=3))
                    .map(|_| {
                        let u = rng.gen_range(0..n);
                        let v = rng.gen_range(0..n);
                        if rng.gen_bool(0.5) {
                            GraphUpdate::Insert(u, v)
                        } else {
                            GraphUpdate::Delete(u, v)
                        }
                    })
                    .collect();
                Op::Update { graph, edges }
            } else {
                let psi = &psis[rng.gen_range(0..psis.len())];
                let method = methods[rng.gen_range(0..methods.len())];
                Op::Query {
                    graph,
                    req: DsdRequest::new(psi).on(NAMES[graph]).method(method),
                }
            }
        })
        .collect()
}

/// Serial ground truth for the mixed phase: fresh engines, in-order.
fn reference_replay(graphs: &[Graph], script: &[Op]) -> Vec<Option<Solution>> {
    let engines: Vec<DsdEngine<'static>> =
        graphs.iter().map(|g| DsdEngine::new(g.clone())).collect();
    script
        .iter()
        .map(|op| match op {
            Op::Query { graph, req } => Some(engines[*graph].solve(req)),
            Op::Update { graph, edges } => {
                engines[*graph].apply(edges);
                None
            }
        })
        .collect()
}

/// Waits the oldest pending ticket, asserting a query's answer against
/// the reference when one is attached.
fn settle_front(pending: &mut VecDeque<(Option<usize>, Ticket)>, expected: &[Option<Solution>]) {
    let Some((slot, ticket)) = pending.pop_front() else {
        return;
    };
    let outcome = ticket.wait().expect("no sheds under backpressure");
    if let (Some(i), ServeOutcome::Solved(got)) = (slot, outcome) {
        let want = expected[i].as_ref().expect("reference solved this op");
        assert_eq!(got.vertices, want.vertices, "op {i}: vertices diverged");
        assert_eq!(
            got.density.to_bits(),
            want.density.to_bits(),
            "op {i}: density not bit-identical"
        );
        assert_eq!(got.stats.epoch, want.stats.epoch, "op {i}: wrong epoch");
    }
}

/// Submits with backpressure: on `Overloaded`, settle the oldest pending
/// ticket (freeing a queue slot) and retry.
fn submit_backpressured(
    server: &DsdServer,
    graphs: &[Graph],
    op: &Op,
    slot: Option<usize>,
    pending: &mut VecDeque<(Option<usize>, Ticket)>,
    expected: &[Option<Solution>],
) {
    loop {
        let attempt = match op {
            Op::Query { req, .. } => server.submit(req.clone()),
            Op::Update { graph, edges } => {
                let _ = graphs;
                server.submit_update(NAMES[*graph], edges.clone())
            }
        };
        match attempt {
            Ok(ticket) => {
                pending.push_back((slot, ticket));
                return;
            }
            Err(ServeError::Overloaded { .. }) => settle_front(pending, expected),
            Err(e) => panic!("unexpected shed during backpressured submit: {e}"),
        }
    }
}

fn main() {
    let full = std::env::var_os("DSD_SCALE_FULL").is_some();
    let cfg = config(full);
    let graphs = graphs(&cfg);
    let mode = if full { "full" } else { "smoke" };
    println!(
        "service_scale [{mode}]: {} graphs, {} patterns, {} mixed ops",
        graphs.len(),
        patterns().len(),
        cfg.ops
    );

    // Phase 1: footprint measurement on an ungoverned service, and the
    // synchronous solve_batch reference for the warm sweep.
    let service = DsdService::new();
    for (name, g) in NAMES.iter().zip(&graphs) {
        service.register(*name, g.clone());
    }
    let warm = warm_queries();
    let batch = service.solve_batch(warm.clone());
    let footprint = service.substrate_bytes();
    assert!(footprint > 0, "warm substrates must occupy bytes");

    // Per-entry sizes: warm one pattern at a time on fresh engines and
    // take substrate_bytes deltas. The worker count is then the largest
    // w <= 8 whose w biggest entries still fit the budget — that bounds
    // the pinned in-flight working set below the budget by construction.
    let mut entry_sizes: Vec<u64> = Vec::new();
    for g in &graphs {
        let engine = DsdEngine::new(g.clone());
        let mut prev = 0;
        for psi in &patterns() {
            engine.request(psi).method(Method::PeelApp).solve();
            let now = engine.substrate_bytes();
            entry_sizes.push(now - prev);
            prev = now;
        }
    }
    entry_sizes.sort_unstable_by(|a, b| b.cmp(a));
    let budget = footprint / 3;
    let mut workers = 0;
    let mut pinned = 0u64;
    // 10% headroom: updates mutate the graphs mid-run, so rebuilt entries
    // can come back slightly larger than measured here.
    for size in &entry_sizes {
        if workers >= 8 || (pinned + size) * 10 >= budget * 9 {
            break;
        }
        pinned += size;
        workers += 1;
    }
    let workers = workers.max(1);
    println!(
        "footprint F = {:.1} KiB over {} entries (largest {:.1} KiB); budget F/3 = {:.1} KiB, {workers} workers",
        footprint as f64 / 1024.0,
        entry_sizes.len(),
        entry_sizes[0] as f64 / 1024.0,
        budget as f64 / 1024.0
    );

    // Phase 2: governed warm sweep — bit-identical to solve_batch.
    let server = DsdServer::new(ServeConfig {
        workers,
        queue_depth: 32,
        substrate_budget: Some(budget),
        ..ServeConfig::default()
    });
    for (name, g) in NAMES.iter().zip(&graphs) {
        server.register(*name, g.clone());
    }
    let tickets: Vec<Ticket> = warm
        .iter()
        .map(|req| {
            server
                .submit(req.clone())
                .expect("warm sweep fits the queue")
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket
            .wait()
            .expect("no sheds in the warm sweep")
            .solution()
            .expect("warm sweep is queries only");
        let want = batch.solutions[i]
            .as_ref()
            .expect("solve_batch routed every request");
        assert_eq!(got.vertices, want.vertices, "warm {i}: vertices diverged");
        assert_eq!(
            got.density.to_bits(),
            want.density.to_bits(),
            "warm {i}: not bit-identical to solve_batch"
        );
    }
    server.drain();

    // Phase 3: mixed query/update load under the budget, backpressured.
    let mut rng = StdRng::seed_from_u64(0x5CA1E);
    let script = mixed_script(&mut rng, &graphs, cfg.ops);
    let expected = reference_replay(&graphs, &script);
    let mut pending: VecDeque<(Option<usize>, Ticket)> = VecDeque::new();
    let t = Instant::now();
    for (i, op) in script.iter().enumerate() {
        let slot = matches!(op, Op::Query { .. }).then_some(i);
        submit_backpressured(&server, &graphs, op, slot, &mut pending, &expected);
    }
    while !pending.is_empty() {
        settle_front(&mut pending, &expected);
    }
    let elapsed = t.elapsed();
    server.drain();

    let stats = server.stats();
    let gov = stats.governor;
    let throughput = script.len() as f64 / elapsed.as_secs_f64();
    println!(
        "mixed load: {} ops in {:.1} ms -> {:.0} jobs/s ({} queries bit-identical to serial replay)",
        script.len(),
        elapsed.as_secs_f64() * 1e3,
        throughput,
        expected.iter().flatten().count()
    );
    println!(
        "governor: {} hits / {} misses, {} evictions ({} rebuilds), peak {:.1} KiB / budget {:.1} KiB, {} violations",
        gov.hits,
        gov.misses,
        gov.evictions,
        gov.rebuilds,
        gov.peak_bytes as f64 / 1024.0,
        budget as f64 / 1024.0,
        gov.violations
    );

    // Overload sheds are expected — they are exactly what the submit
    // loop retries on — but every job must eventually complete.
    println!(
        "admission: {} overload sheds absorbed by submit-side retries",
        stats.shed_overload
    );
    assert_eq!(
        stats.completed as usize,
        warm.len() + script.len(),
        "every admitted job completes"
    );
    assert_eq!(stats.shed_deadline, 0, "no deadlines configured");
    assert!(
        gov.evictions > 0,
        "a budget of F/3 must force evictions over the full sweep"
    );
    assert_eq!(gov.violations, 0, "the budget must be feasible end to end");
    assert!(
        gov.peak_bytes <= budget,
        "settled residency {} exceeded the budget {}",
        gov.peak_bytes,
        budget
    );
    assert!(
        throughput >= cfg.floor,
        "mixed-load throughput {throughput:.0} jobs/s under the CI floor {:.0}",
        cfg.floor
    );
    println!(
        "throughput {throughput:.0} jobs/s clears the CI floor {:.0}",
        cfg.floor
    );
}
