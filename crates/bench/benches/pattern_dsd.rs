//! Bench: pattern-densest-subgraph machinery (Figures 15–16 in
//! microbenchmark form), including the construct+ grouping ablation.
//! Plain `Instant`-timed harness — no criterion offline.

use dsd_bench::util::report;
use dsd_core::flownet::{build_pattern_network, FlowBackend};
use dsd_core::{core_exact, exact, peel_app};
use dsd_datasets::chung_lu;
use dsd_graph::VertexId;
use dsd_motif::Pattern;

fn main() {
    println!("== pattern_exact ==");
    let g = chung_lu::chung_lu(600, 1_800, 2.5, 51);
    for psi in [Pattern::two_star(), Pattern::diamond()] {
        report(&format!("PExact/{}", psi.name()), 5, || {
            std::hint::black_box(exact(&g, &psi, FlowBackend::Dinic));
        });
        report(&format!("CorePExact/{}", psi.name()), 5, || {
            std::hint::black_box(core_exact(&g, &psi));
        });
    }

    println!("== pattern_peel ==");
    let g = chung_lu::chung_lu(1_000, 3_000, 2.5, 52);
    for psi in [Pattern::two_star(), Pattern::diamond(), Pattern::c3_star()] {
        report(psi.name(), 5, || {
            std::hint::black_box(peel_app(&g, &psi));
        });
    }

    // Algorithm 7 (construct+) vs Algorithm 8 networks: grouping shrinks
    // the node count whenever instances share vertex sets.
    println!("== construct_plus_ablation ==");
    let g = chung_lu::chung_lu(800, 3_200, 2.4, 53);
    let members: Vec<VertexId> = g.vertices().collect();
    let psi = Pattern::diamond();
    report("ungrouped_build", 10, || {
        std::hint::black_box(build_pattern_network(&g, &members, &psi, false));
    });
    report("grouped_build", 10, || {
        std::hint::black_box(build_pattern_network(&g, &members, &psi, true));
    });
    report("ungrouped_solve", 10, || {
        let mut net = build_pattern_network(&g, &members, &psi, false);
        std::hint::black_box(net.solve(0.5, FlowBackend::Dinic));
    });
    report("grouped_solve", 10, || {
        let mut net = build_pattern_network(&g, &members, &psi, true);
        std::hint::black_box(net.solve(0.5, FlowBackend::Dinic));
    });
}
