//! Criterion bench: pattern-densest-subgraph machinery (Figures 15–16 in
//! microbenchmark form), including the construct+ grouping ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_core::flownet::{build_pattern_network, FlowBackend};
use dsd_core::{core_exact, exact, peel_app};
use dsd_datasets::chung_lu;
use dsd_graph::VertexId;
use dsd_motif::Pattern;

fn bench_pattern_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_exact");
    let g = chung_lu::chung_lu(600, 1_800, 2.5, 51);
    for psi in [Pattern::two_star(), Pattern::diamond()] {
        group.bench_function(format!("PExact/{}", psi.name()), |b| {
            b.iter(|| exact(&g, &psi, FlowBackend::Dinic))
        });
        group.bench_function(format!("CorePExact/{}", psi.name()), |b| {
            b.iter(|| core_exact(&g, &psi))
        });
    }
    group.finish();
}

fn bench_pattern_peel(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_peel");
    let g = chung_lu::chung_lu(1_000, 3_000, 2.5, 52);
    for psi in [Pattern::two_star(), Pattern::diamond(), Pattern::c3_star()] {
        group.bench_function(psi.name().to_string(), |b| b.iter(|| peel_app(&g, &psi)));
    }
    group.finish();
}

fn bench_grouping_ablation(c: &mut Criterion) {
    // Algorithm 7 (construct+) vs Algorithm 8 networks: grouping shrinks
    // the node count whenever instances share vertex sets.
    let mut group = c.benchmark_group("construct_plus_ablation");
    let g = chung_lu::chung_lu(800, 3_200, 2.4, 53);
    let members: Vec<VertexId> = g.vertices().collect();
    let psi = Pattern::diamond();
    group.bench_function("ungrouped_build", |b| {
        b.iter(|| build_pattern_network(&g, &members, &psi, false))
    });
    group.bench_function("grouped_build", |b| {
        b.iter(|| build_pattern_network(&g, &members, &psi, true))
    });
    group.bench_function("ungrouped_solve", |b| {
        b.iter_batched(
            || build_pattern_network(&g, &members, &psi, false),
            |mut net| std::hint::black_box(net.solve(0.5, FlowBackend::Dinic)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("grouped_solve", |b| {
        b.iter_batched(
            || build_pattern_network(&g, &members, &psi, true),
            |mut net| std::hint::black_box(net.solve(0.5, FlowBackend::Dinic)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pattern_exact, bench_pattern_peel, bench_grouping_ablation
}
criterion_main!(benches);
