//! Bench: the `DsdService` batched-serving win — the ISSUE-2 acceptance
//! benchmark.
//!
//! A mixed 32-request workload — 2 graphs × 2 patterns, all 5 objectives
//! per graph, methods pinned for determinism — is served three ways:
//!
//! * **unbatched serial** — the pre-service status quo: one throwaway
//!   engine per request, single-threaded, every request re-derives its
//!   substrates;
//! * **1-worker `solve_batch`** — one `DsdService`, grouped execution;
//! * **8-worker `solve_batch`** — the same, across scoped workers.
//!
//! The workload shape mirrors a serving mix: the expensive general
//! pattern (2-triangle, whose substrate is a full instance
//! materialization + (k, Ψ)-core decomposition) is probed with
//! peel-family and size-constrained requests, while the flow-heavy
//! objectives (top-k, CoreExact) ride on the cheap triangle substrate.
//!
//! Asserted: bit-identical answers across all three executions, substrate
//! builds == distinct (graph, Ψ) groups (4), and **≥ 3× end-to-end
//! speedup** for the 8-worker batch over unbatched serial. The speedup is
//! algorithmic (28 of 32 requests skip their substrate build), so it holds
//! on any core count.
//!
//! A second, multicore-only comparison (8-worker vs 1-worker batch) is
//! always printed and asserted when `DSD_SCALING_ASSERT=1` and the host
//! reports ≥ 4 hardware threads (the CI configuration) — on fewer cores
//! thread scaling is physically unavailable and only the print remains.
//!
//! Run with: `cargo bench -p dsd-bench --bench service_throughput`

use std::time::{Duration, Instant};

use dsd_core::service::{BatchOutcome, DsdService};
use dsd_core::{DsdEngine, DsdRequest, Method, Objective, Parallelism, Solution};
use dsd_datasets::planted;
use dsd_graph::Graph;
use dsd_motif::Pattern;

const WORKERS: usize = 8;
const GRAPH_NAMES: [&str; 2] = ["pa", "pb"];

fn graphs() -> Vec<(&'static str, Graph)> {
    // Planted dense blocks: Ψ-instances concentrate in the block, so the
    // query variant locates a tiny anchored core (vertices 0, 1 are
    // planted) and substrate costs dominate the peel-family requests.
    vec![
        (
            GRAPH_NAMES[0],
            planted::planted_dense(1_800, 30, 0.92, 0.004, 7).graph,
        ),
        (
            GRAPH_NAMES[1],
            planted::planted_dense(1_400, 26, 0.9, 0.005, 13).graph,
        ),
    ]
}

/// The 32-request workload: per graph, 8 requests against the expensive
/// 2-triangle substrate (peel-family + size-constrained + query) and 8
/// against the cheap triangle substrate (including the flow-heavy top-k
/// and CoreExact paths). All five objectives appear for every graph.
fn workload() -> Vec<DsdRequest> {
    let heavy = Pattern::two_triangle();
    let light = Pattern::triangle();
    let mut reqs = Vec::new();
    for name in GRAPH_NAMES {
        for psi in [&heavy, &heavy] {
            // Two rounds of the approximate/constrained probes a serving
            // workload issues against an analytics-grade pattern.
            reqs.push(DsdRequest::new(psi).on(name).method(Method::PeelApp));
            reqs.push(DsdRequest::new(psi).on(name).method(Method::IncApp));
            reqs.push(
                DsdRequest::new(psi)
                    .on(name)
                    .objective(Objective::AtLeastK(16)),
            );
            reqs.push(
                DsdRequest::new(psi)
                    .on(name)
                    .objective(Objective::AtMostK(32)),
            );
        }
        reqs.push(DsdRequest::new(&light).on(name).method(Method::CoreExact));
        reqs.push(DsdRequest::new(&light).on(name).method(Method::PeelApp));
        reqs.push(DsdRequest::new(&light).on(name).method(Method::IncApp));
        reqs.push(
            DsdRequest::new(&light)
                .on(name)
                .objective(Objective::TopK(2))
                .tolerance(1.0),
        );
        reqs.push(
            DsdRequest::new(&light)
                .on(name)
                .objective(Objective::AtLeastK(64)),
        );
        reqs.push(
            DsdRequest::new(&light)
                .on(name)
                .objective(Objective::AtMostK(24)),
        );
        reqs.push(
            DsdRequest::new(&light)
                .on(name)
                .objective(Objective::WithQuery(vec![0, 1])),
        );
        reqs.push(
            DsdRequest::new(&heavy)
                .on(name)
                .objective(Objective::WithQuery(vec![0, 2])),
        );
    }
    assert_eq!(reqs.len(), 32);
    reqs
}

/// The pre-service baseline: every request pays its own cold engine.
/// Graph generation and request construction stay outside the timer.
fn unbatched_serial(
    graphs: &[(&str, Graph)],
    requests: &[DsdRequest],
) -> (Vec<Solution>, Duration) {
    let t = Instant::now();
    let solutions = requests
        .iter()
        .map(|req| {
            let (_, g) = graphs
                .iter()
                .find(|(name, _)| Some(*name) == req.graph_name())
                .expect("workload names a known graph");
            DsdEngine::over(g).solve(req)
        })
        .collect();
    (solutions, t.elapsed())
}

fn batched(parallelism: Parallelism, requests: Vec<DsdRequest>) -> (BatchOutcome, Duration) {
    let service = DsdService::with_parallelism(parallelism);
    for (name, g) in graphs() {
        service.register(name, g);
    }
    let t = Instant::now();
    let outcome = service.solve_batch(requests);
    (outcome, t.elapsed())
}

fn main() {
    println!(
        "mixed workload: 32 requests = 2 graphs x 2 patterns x all 5 objectives, {WORKERS} workers"
    );
    let graphs = graphs();
    let requests = workload();

    let (cold, cold_t) = unbatched_serial(&graphs, &requests);
    let (warm1, warm1_t) = batched(Parallelism::serial(), requests.clone());
    let (warm8, warm8_t) = batched(Parallelism::new(WORKERS), requests);

    // Bit-identical answers across all three executions.
    for ((c, w1), w8) in cold.iter().zip(&warm1.solutions).zip(&warm8.solutions) {
        let w1 = w1.as_ref().expect("batch request routed");
        let w8 = w8.as_ref().expect("batch request routed");
        assert_eq!(c.vertices, w1.vertices, "{:?}", c.objective);
        assert_eq!(c.density.to_bits(), w1.density.to_bits());
        assert_eq!(c.vertices, w8.vertices, "{:?}", c.objective);
        assert_eq!(c.density.to_bits(), w8.density.to_bits());
    }

    // The batch pays exactly one substrate build per distinct (graph, Ψ).
    for outcome in [&warm1, &warm8] {
        assert_eq!(outcome.stats.groups, 4, "2 graphs x 2 patterns");
        assert_eq!(
            outcome.stats.substrate_builds, 4,
            "substrate builds must equal the distinct (graph, Ψ) count"
        );
    }

    let speedup = cold_t.as_secs_f64() / warm8_t.as_secs_f64();
    let scaling = warm1_t.as_secs_f64() / warm8_t.as_secs_f64();
    println!(
        "unbatched serial (32 cold engines): {:>9.1} ms",
        cold_t.as_secs_f64() * 1e3
    );
    println!(
        "solve_batch, 1 worker:              {:>9.1} ms",
        warm1_t.as_secs_f64() * 1e3
    );
    println!(
        "solve_batch, {WORKERS} workers:             {:>9.1} ms ({:.0}% utilization)",
        warm8_t.as_secs_f64() * 1e3,
        warm8.stats.utilization() * 100.0
    );
    println!("batched speedup over unbatched serial: {speedup:.2}x (acceptance floor: 3x)");
    println!("thread scaling (1 -> {WORKERS} workers): {scaling:.2}x");

    assert!(
        speedup >= 3.0,
        "batched serving must be at least a 3x win over unbatched serial, got {speedup:.2}x"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if std::env::var_os("DSD_SCALING_ASSERT").is_some() && cores >= 4 {
        assert!(
            scaling >= 1.25,
            "on {cores} cores, {WORKERS} workers must beat 1 worker by 1.25x, got {scaling:.2}x"
        );
    } else {
        println!(
            "(thread-scaling assertion inactive: {cores} hardware threads, \
             DSD_SCALING_ASSERT unset or < 4 cores)"
        );
    }
}
