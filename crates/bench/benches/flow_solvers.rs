//! Criterion bench: Dinic vs push-relabel on the paper's density-decision
//! networks (the DESIGN.md backend ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_core::flownet::{build_clique_network, build_edge_network, FlowBackend};
use dsd_datasets::chung_lu;
use dsd_graph::VertexId;

fn bench_edge_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("goldberg_network");
    let g = chung_lu::chung_lu(3_000, 12_000, 2.4, 21);
    let members: Vec<VertexId> = g.vertices().collect();
    for backend in [FlowBackend::Dinic, FlowBackend::PushRelabel] {
        group.bench_function(format!("{backend:?}"), |b| {
            b.iter_batched(
                || build_edge_network(&g, &members),
                |mut net| {
                    // Mid-range guess: forces real augmentation work.
                    std::hint::black_box(net.solve(2.0, backend));
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_clique_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle_network");
    let g = chung_lu::chung_lu(2_000, 8_000, 2.4, 22);
    let members: Vec<VertexId> = g.vertices().collect();
    for backend in [FlowBackend::Dinic, FlowBackend::PushRelabel] {
        group.bench_function(format!("{backend:?}"), |b| {
            b.iter_batched(
                || build_clique_network(&g, &members, 3),
                |mut net| {
                    std::hint::black_box(net.solve(0.5, backend));
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_network_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_construction");
    let g = chung_lu::chung_lu(2_000, 8_000, 2.4, 23);
    let members: Vec<VertexId> = g.vertices().collect();
    group.bench_function("goldberg", |b| b.iter(|| build_edge_network(&g, &members)));
    group.bench_function("triangle", |b| {
        b.iter(|| build_clique_network(&g, &members, 3))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_edge_network, bench_clique_network, bench_network_construction
}
criterion_main!(benches);
