//! Bench: Dinic vs push-relabel on the paper's density-decision networks
//! (the DESIGN.md backend ablation). Plain `Instant`-timed harness — the
//! container has no crates.io access, so no criterion.

use dsd_bench::util::report;
use dsd_core::flownet::{build_clique_network, build_edge_network, FlowBackend};
use dsd_datasets::chung_lu;
use dsd_graph::VertexId;

fn main() {
    println!("== goldberg_network ==");
    let g = chung_lu::chung_lu(3_000, 12_000, 2.4, 21);
    let members: Vec<VertexId> = g.vertices().collect();
    for backend in [FlowBackend::Dinic, FlowBackend::PushRelabel] {
        report(&format!("{backend:?}"), 10, || {
            // Rebuild per iteration: solve() mutates the flow state, and a
            // mid-range guess forces real augmentation work.
            let mut net = build_edge_network(&g, &members);
            std::hint::black_box(net.solve(2.0, backend));
        });
    }

    println!("== triangle_network ==");
    let g = chung_lu::chung_lu(2_000, 8_000, 2.4, 22);
    let members: Vec<VertexId> = g.vertices().collect();
    for backend in [FlowBackend::Dinic, FlowBackend::PushRelabel] {
        report(&format!("{backend:?}"), 10, || {
            let mut net = build_clique_network(&g, &members, 3);
            std::hint::black_box(net.solve(0.5, backend));
        });
    }

    println!("== network_construction ==");
    let g = chung_lu::chung_lu(2_000, 8_000, 2.4, 23);
    let members: Vec<VertexId> = g.vertices().collect();
    report("goldberg", 20, || {
        std::hint::black_box(build_edge_network(&g, &members));
    });
    report("triangle", 20, || {
        std::hint::black_box(build_clique_network(&g, &members, 3));
    });
}
