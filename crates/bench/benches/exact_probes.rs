//! Bench: parametric resolve vs from-scratch probe sequences — the
//! ISSUE-4 acceptance benchmark, on the fig9 workload (exact α-searches
//! over Figure 9's whole-graph reference networks on the Ca-HepTh
//! stand-in, h ∈ {2, 3, 4}).
//!
//! Both runs drive the *same* shared `alpha_search` loop over the same
//! network construction; the only difference is `set_warm_start`: the
//! parametric run checkpoint/resolves its flow state across probes, the
//! baseline pays a from-scratch max-flow per probe (the pre-ISSUE-4
//! behaviour). Answers and probe schedules must be identical, and the
//! parametric run ≥ 2× faster in aggregate on the default (Dinic)
//! backend; push-relabel is reported for the ablation.
//!
//! (CoreExact itself is not the probe driver here because on the
//! planted-clique stand-ins its ρ′ lower bound converges the search in
//! one probe — there is no sequence left to amortize. The whole-graph
//! networks are exactly where the paper's "re-solved per guess" cost
//! lived.)
//!
//! A second phase measures the ISSUE-10 factorised warm-network path:
//! repeat exact solves on a warm `DsdEngine` take their density network
//! out of the epoch-keyed network cache — zero instance enumeration,
//! zero network construction, warm parametric resolves only — and must
//! be bit-identical to a from-scratch engine while beating it ≥ 3× in
//! aggregate (CI-asserted).
//!
//! Run with: `cargo bench -p dsd-bench --bench exact_probes`

use std::time::{Duration, Instant};

use dsd_core::flownet::{build_clique_network, build_edge_network, DensityNetwork};
use dsd_core::{
    alpha_search, density_gap, oracle_for, DsdEngine, ExactStats, FlowBackend, Method, NetworkProbe,
};
use dsd_datasets::dataset;
use dsd_graph::{Graph, VertexId, VertexSet};
use dsd_motif::Pattern;

/// Runs one full α-search probe sequence; reports (witness, stats, time).
fn run_search(
    net: &mut DensityNetwork,
    backend: FlowBackend,
    bounds: (f64, f64),
    gap: f64,
) -> (Vec<VertexId>, ExactStats, Duration) {
    let mut stats = ExactStats::default();
    let t = Instant::now();
    let outcome = alpha_search(
        &mut NetworkProbe::new(net, backend),
        bounds,
        gap,
        usize::MAX,
        &mut stats,
    );
    let elapsed = t.elapsed();
    let mut witness = outcome.witness.unwrap_or_default();
    witness.sort_unstable();
    stats.absorb_flow(net.probe_stats());
    (witness, stats, elapsed)
}

/// The Figure-9 "iter −1" network for h over the whole graph, plus the
/// Exact α bounds (0, max Ψ-degree).
fn workload(g: &Graph, h: usize) -> (DensityNetwork, (f64, f64)) {
    let members: Vec<VertexId> = g.vertices().collect();
    let psi = Pattern::clique(h);
    let oracle = oracle_for(&psi);
    let alive = VertexSet::full(g.num_vertices());
    let max_deg = oracle.degrees(g, &alive).into_iter().max().unwrap_or(0);
    let net = if h == 2 {
        build_edge_network(g, &members)
    } else {
        build_clique_network(g, &members, h)
    };
    (net, (0.0, max_deg as f64))
}

fn main() {
    let g = dataset("Ca-HepTh").expect("registry dataset").generate();
    println!(
        "fig9 workload: Ca-HepTh stand-in, n={} m={}",
        g.num_vertices(),
        g.num_edges()
    );

    let mut dinic_scratch = Duration::ZERO;
    let mut dinic_parametric = Duration::ZERO;
    for h in [2usize, 3, 4] {
        let gap = density_gap(g.num_vertices());
        for backend in [FlowBackend::Dinic, FlowBackend::PushRelabel] {
            let (mut warm_net, bounds) = workload(&g, h);
            let (mut cold_net, _) = workload(&g, h);
            cold_net.set_warm_start(false);

            let (w_wit, w_stats, warm) = run_search(&mut warm_net, backend, bounds, gap);
            let (c_wit, c_stats, cold) = run_search(&mut cold_net, backend, bounds, gap);

            assert_eq!(w_wit, c_wit, "h={h} {backend:?}: answers diverged");
            assert_eq!(
                w_stats.iterations, c_stats.iterations,
                "h={h} {backend:?}: probe schedules diverged"
            );
            assert_eq!(c_stats.resolve_hits, 0, "baseline must be from-scratch");
            assert!(
                w_stats.resolve_hits > 0,
                "h={h} {backend:?}: parametric run never reused flow state"
            );

            let speedup = cold.as_secs_f64() / warm.as_secs_f64();
            println!(
                "h={h} {backend:?}: {} probes, {} warm resolves | scratch {:>8.2} ms, \
                 parametric {:>8.2} ms, speedup {speedup:.2}x (augment work {} vs {})",
                w_stats.iterations,
                w_stats.resolve_hits,
                cold.as_secs_f64() * 1e3,
                warm.as_secs_f64() * 1e3,
                c_stats.augment_work,
                w_stats.augment_work,
            );
            if backend == FlowBackend::Dinic {
                dinic_scratch += cold;
                dinic_parametric += warm;
            }
        }
    }
    let aggregate = dinic_scratch.as_secs_f64() / dinic_parametric.as_secs_f64();
    println!(
        "aggregate (Dinic, h=2..4): scratch {:.2} ms vs parametric {:.2} ms — {aggregate:.2}x \
         (acceptance floor: 2x)",
        dinic_scratch.as_secs_f64() * 1e3,
        dinic_parametric.as_secs_f64() * 1e3,
    );
    assert!(
        aggregate >= 2.0,
        "parametric resolve fell below the 2x acceptance floor: {aggregate:.2}x"
    );

    // ── Phase 2: factorised warm-network engine phase (ISSUE 10) ──────
    //
    // A from-scratch engine pays instance enumeration, the (k, Ψ)-core
    // decomposition, and network construction on every exact solve. A
    // warm engine pays them once: the repeat solve takes its component
    // DensityNetworks out of the epoch-keyed cache (factorised straight
    // from InstanceStore columns on the miss) and only resolves flow.
    // CoreExact is the probe here because on the planted-clique
    // stand-ins its ρ′ bound converges the search in about one probe —
    // construct+resolve cost is exactly what the floor measures.
    println!();
    println!("factorised warm-network phase: repeat engine solves vs from-scratch");
    let mut scratch_total = Duration::ZERO;
    let mut warm_total = Duration::ZERO;
    for h in [2usize, 3, 4] {
        let psi = Pattern::clique(h);

        // From-scratch baseline: fresh engine, full pipeline.
        let t = Instant::now();
        let scratch_engine = DsdEngine::new(g.clone());
        let scratch = scratch_engine
            .request(&psi)
            .method(Method::CoreExact)
            .solve();
        let scratch_time = t.elapsed();

        // Warm engine: first solve populates the store + network caches.
        let engine = DsdEngine::new(g.clone());
        let first = engine.request(&psi).method(Method::CoreExact).solve();
        let after_first = engine.cache_stats();
        assert!(
            after_first.network_misses >= 1,
            "h={h}: first solve never registered a network-cache miss"
        );

        let t = Instant::now();
        let repeat = engine.request(&psi).method(Method::CoreExact).solve();
        let warm_time = t.elapsed();
        let after_repeat = engine.cache_stats();

        // Zero re-enumeration: the instance store was built exactly once
        // across both solves, and the repeat solve took its network out
        // of the cache instead of rebuilding it.
        assert_eq!(
            after_repeat.oracle_builds, 1,
            "h={h}: repeat solve re-enumerated instances"
        );
        assert!(
            after_repeat.network_hits > after_first.network_hits,
            "h={h}: repeat solve rebuilt its density network"
        );

        // Bit-identity across scratch, cold and warm paths.
        assert_eq!(first.vertices, scratch.vertices, "h={h}: cold diverged");
        assert_eq!(
            first.density.to_bits(),
            scratch.density.to_bits(),
            "h={h}: cold density diverged"
        );
        assert_eq!(repeat.vertices, first.vertices, "h={h}: warm diverged");
        assert_eq!(
            repeat.density.to_bits(),
            first.density.to_bits(),
            "h={h}: warm density diverged"
        );

        let speedup = scratch_time.as_secs_f64() / warm_time.as_secs_f64();
        println!(
            "h={h}: scratch {:>8.2} ms, warm repeat {:>8.2} ms, speedup {speedup:.2}x \
             ({} network hits, {:.1} KiB cached)",
            scratch_time.as_secs_f64() * 1e3,
            warm_time.as_secs_f64() * 1e3,
            after_repeat.network_hits,
            engine.network_bytes() as f64 / 1024.0,
        );
        scratch_total += scratch_time;
        warm_total += warm_time;
    }
    let warm_aggregate = scratch_total.as_secs_f64() / warm_total.as_secs_f64();
    println!(
        "aggregate (h=2..4): scratch {:.2} ms vs warm {:.2} ms — {warm_aggregate:.2}x \
         (acceptance floor: 3x)",
        scratch_total.as_secs_f64() * 1e3,
        warm_total.as_secs_f64() * 1e3,
    );
    assert!(
        warm_aggregate >= 3.0,
        "warm network-cache solves fell below the 3x acceptance floor: {warm_aggregate:.2}x"
    );
}
