//! Criterion bench: `Exact` vs `CoreExact` — the Figure-8(a-e) headline in
//! microbenchmark form, plus the Figure-10 pruning ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsd_core::{core_exact, core_exact_with, exact, CoreExactConfig, FlowBackend};
use dsd_datasets::chung_lu;
use dsd_motif::Pattern;

fn bench_exact_vs_core_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_core_exact");
    let g = chung_lu::chung_lu(1_500, 5_000, 2.4, 31);
    for h in [2usize, 3] {
        let psi = Pattern::clique(h);
        group.bench_with_input(BenchmarkId::new("Exact", h), &h, |b, _| {
            b.iter(|| exact(&g, &psi, FlowBackend::Dinic))
        });
        group.bench_with_input(BenchmarkId::new("CoreExact", h), &h, |b, _| {
            b.iter(|| core_exact(&g, &psi))
        });
    }
    group.finish();
}

fn bench_pruning_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_exact_prunings");
    let g = chung_lu::chung_lu(2_000, 7_000, 2.4, 32);
    let psi = Pattern::triangle();
    let variants = [
        ("none", (false, false, false)),
        ("P1", (true, false, false)),
        ("P1+P2", (true, true, false)),
        ("all", (true, true, true)),
    ];
    for (name, (p1, p2, p3)) in variants {
        let config = CoreExactConfig {
            pruning1: p1,
            pruning2: p2,
            pruning3: p3,
            backend: FlowBackend::Dinic,
        };
        group.bench_function(name, |b| b.iter(|| core_exact_with(&g, &psi, config)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exact_vs_core_exact, bench_pruning_ablation
}
criterion_main!(benches);
