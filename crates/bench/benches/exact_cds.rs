//! Bench: `Exact` vs `CoreExact` — the Figure-8(a-e) headline in
//! microbenchmark form, plus the Figure-10 pruning ablation. Plain
//! `Instant`-timed harness — no criterion offline.

use dsd_bench::util::report;
use dsd_core::{core_exact, core_exact_with, exact, CoreExactConfig, FlowBackend};
use dsd_datasets::chung_lu;
use dsd_motif::Pattern;

fn main() {
    println!("== exact_vs_core_exact ==");
    let g = chung_lu::chung_lu(1_500, 5_000, 2.4, 31);
    for h in [2usize, 3] {
        let psi = Pattern::clique(h);
        report(&format!("Exact/h={h}"), 5, || {
            std::hint::black_box(exact(&g, &psi, FlowBackend::Dinic));
        });
        report(&format!("CoreExact/h={h}"), 5, || {
            std::hint::black_box(core_exact(&g, &psi));
        });
    }

    println!("== core_exact_prunings ==");
    let g = chung_lu::chung_lu(2_000, 7_000, 2.4, 32);
    let psi = Pattern::triangle();
    let variants = [
        ("none", (false, false, false)),
        ("P1", (true, false, false)),
        ("P1+P2", (true, true, false)),
        ("all", (true, true, true)),
    ];
    for (name, (p1, p2, p3)) in variants {
        let config = CoreExactConfig {
            pruning1: p1,
            pruning2: p2,
            pruning3: p3,
            ..CoreExactConfig::default()
        };
        report(name, 5, || {
            std::hint::black_box(core_exact_with(&g, &psi, config));
        });
    }
}
