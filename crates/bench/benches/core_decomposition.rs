//! Criterion bench: (k, Ψ)-core decomposition (Algorithm 3) across Ψ and
//! graph families — the substrate cost Table 3 accounts inside CoreExact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsd_core::{decompose, k_core_decomposition, nucleus_decomposition, oracle_for};
use dsd_datasets::{chung_lu, er};
use dsd_motif::Pattern;

fn bench_classical_kcore(c: &mut Criterion) {
    let mut group = c.benchmark_group("classical_kcore");
    for n in [1_000usize, 5_000] {
        let g = chung_lu::chung_lu(n, n * 3, 2.5, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| k_core_decomposition(g))
        });
    }
    group.finish();
}

fn bench_clique_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique_core_decomposition");
    let g = chung_lu::chung_lu(2_000, 6_000, 2.5, 7);
    for h in [2usize, 3, 4] {
        let oracle = oracle_for(&Pattern::clique(h));
        group.bench_with_input(BenchmarkId::new("chung_lu", h), &h, |b, _| {
            b.iter(|| decompose(&g, oracle.as_ref()))
        });
    }
    let flat = er::er(2_000, 0.003, 7);
    for h in [2usize, 3] {
        let oracle = oracle_for(&Pattern::clique(h));
        group.bench_with_input(BenchmarkId::new("er", h), &h, |b, _| {
            b.iter(|| decompose(&flat, oracle.as_ref()))
        });
    }
    group.finish();
}

fn bench_pattern_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_core_decomposition");
    let g = chung_lu::chung_lu(800, 2_400, 2.5, 9);
    for psi in [Pattern::two_star(), Pattern::diamond(), Pattern::c3_star()] {
        let oracle = oracle_for(&psi);
        group.bench_function(psi.name().to_string(), |b| {
            b.iter(|| decompose(&g, oracle.as_ref()))
        });
    }
    group.finish();
}

fn bench_nucleus_vs_peel(c: &mut Criterion) {
    // The Figure-8 observation: our peel decomposition beats the local
    // nucleus (AND) iteration for computing the same core numbers.
    let mut group = c.benchmark_group("nucleus_vs_peel");
    let g = chung_lu::chung_lu(1_500, 4_500, 2.5, 11);
    for h in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("nucleus", h), &h, |b, &h| {
            b.iter(|| nucleus_decomposition(&g, h))
        });
        let oracle = oracle_for(&Pattern::clique(h));
        group.bench_with_input(BenchmarkId::new("peel", h), &h, |b, _| {
            b.iter(|| decompose(&g, oracle.as_ref()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_classical_kcore, bench_clique_core, bench_pattern_core, bench_nucleus_vs_peel
}
criterion_main!(benches);
