//! Bench: (k, Ψ)-core decomposition (Algorithm 3) across Ψ and graph
//! families — the substrate cost Table 3 accounts inside CoreExact and the
//! cost the `DsdEngine` cache amortizes. Plain `Instant`-timed harness —
//! no criterion offline.

use dsd_bench::util::report;
use dsd_core::{decompose, k_core_decomposition, nucleus_decomposition, oracle_for};
use dsd_datasets::{chung_lu, er};
use dsd_motif::Pattern;

fn main() {
    println!("== classical_kcore ==");
    for n in [1_000usize, 5_000] {
        let g = chung_lu::chung_lu(n, n * 3, 2.5, 42);
        report(&format!("n={n}"), 10, || {
            std::hint::black_box(k_core_decomposition(&g));
        });
    }

    println!("== clique_core_decomposition ==");
    let g = chung_lu::chung_lu(2_000, 6_000, 2.5, 7);
    for h in [2usize, 3, 4] {
        let oracle = oracle_for(&Pattern::clique(h));
        report(&format!("chung_lu/h={h}"), 10, || {
            std::hint::black_box(decompose(&g, oracle.as_ref()));
        });
    }
    let flat = er::er(2_000, 0.003, 7);
    for h in [2usize, 3] {
        let oracle = oracle_for(&Pattern::clique(h));
        report(&format!("er/h={h}"), 10, || {
            std::hint::black_box(decompose(&flat, oracle.as_ref()));
        });
    }

    println!("== pattern_core_decomposition ==");
    let g = chung_lu::chung_lu(800, 2_400, 2.5, 9);
    for psi in [Pattern::two_star(), Pattern::diamond(), Pattern::c3_star()] {
        let oracle = oracle_for(&psi);
        report(psi.name(), 10, || {
            std::hint::black_box(decompose(&g, oracle.as_ref()));
        });
    }

    // The Figure-8 observation: our peel decomposition beats the local
    // nucleus (AND) iteration for computing the same core numbers.
    println!("== nucleus_vs_peel ==");
    let g = chung_lu::chung_lu(1_500, 4_500, 2.5, 11);
    for h in [2usize, 3] {
        report(&format!("nucleus/h={h}"), 10, || {
            std::hint::black_box(nucleus_decomposition(&g, h));
        });
        let oracle = oracle_for(&Pattern::clique(h));
        report(&format!("peel/h={h}"), 10, || {
            std::hint::black_box(decompose(&g, oracle.as_ref()));
        });
    }
}
