//! Bench: the approximation family (Figure 8(f-j) / Table 4 in
//! microbenchmark form): PeelApp vs IncApp vs CoreApp vs Nucleus vs
//! EMcore. Plain `Instant`-timed harness — no criterion offline.

use dsd_bench::util::report;
use dsd_core::{core_app, emcore_max_core, inc_app, nucleus_app, peel_app};
use dsd_datasets::chung_lu;
use dsd_motif::Pattern;

fn main() {
    println!("== approx_family ==");
    let g = chung_lu::chung_lu(8_000, 30_000, 2.4, 41);
    for h in [2usize, 3] {
        let psi = Pattern::clique(h);
        report(&format!("PeelApp/h={h}"), 5, || {
            std::hint::black_box(peel_app(&g, &psi));
        });
        report(&format!("IncApp/h={h}"), 5, || {
            std::hint::black_box(inc_app(&g, &psi));
        });
        report(&format!("CoreApp/h={h}"), 5, || {
            std::hint::black_box(core_app(&g, &psi));
        });
        report(&format!("Nucleus/h={h}"), 5, || {
            std::hint::black_box(nucleus_app(&g, h));
        });
    }

    println!("== emcore_vs_core_app ==");
    let g = chung_lu::chung_lu(20_000, 70_000, 2.4, 42);
    report("EMcore", 5, || {
        std::hint::black_box(emcore_max_core(&g));
    });
    report("CoreApp/edge", 5, || {
        std::hint::black_box(core_app(&g, &Pattern::edge()));
    });
}
