//! Criterion bench: the approximation family (Figure 8(f-j) / Table 4 in
//! microbenchmark form): PeelApp vs IncApp vs CoreApp vs Nucleus vs EMcore.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsd_core::{core_app, emcore_max_core, inc_app, nucleus_app, peel_app};
use dsd_datasets::{chung_lu, er};
use dsd_motif::Pattern;

fn bench_approx_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_family");
    let g = chung_lu::chung_lu(8_000, 30_000, 2.4, 41);
    for h in [2usize, 3] {
        let psi = Pattern::clique(h);
        group.bench_with_input(BenchmarkId::new("PeelApp", h), &h, |b, _| {
            b.iter(|| peel_app(&g, &psi))
        });
        group.bench_with_input(BenchmarkId::new("IncApp", h), &h, |b, _| {
            b.iter(|| inc_app(&g, &psi))
        });
        group.bench_with_input(BenchmarkId::new("CoreApp", h), &h, |b, _| {
            b.iter(|| core_app(&g, &psi))
        });
        group.bench_with_input(BenchmarkId::new("Nucleus", h), &h, |b, &h| {
            b.iter(|| nucleus_app(&g, h))
        });
    }
    group.finish();
}

fn bench_emcore_vs_core_app(c: &mut Criterion) {
    // Table 4's comparison.
    let mut group = c.benchmark_group("emcore_vs_core_app");
    let g = chung_lu::chung_lu(20_000, 60_000, 2.4, 42);
    group.bench_function("EMcore", |b| b.iter(|| emcore_max_core(&g)));
    group.bench_function("CoreApp", |b| b.iter(|| core_app(&g, &Pattern::edge())));
    group.finish();
}

fn bench_flat_degrees_defeat_pruning(c: &mut Criterion) {
    // Figure 14's ER observation: CoreApp's advantage shrinks when degrees
    // are flat (the frontier grows to the whole graph).
    let mut group = c.benchmark_group("er_vs_powerlaw_coreapp");
    let flat = er::er(8_000, 7.5 / 8_000.0 * 2.0, 43);
    let skewed = chung_lu::chung_lu(8_000, 30_000, 2.4, 43);
    group.bench_function("er", |b| b.iter(|| core_app(&flat, &Pattern::edge())));
    group.bench_function("chung_lu", |b| {
        b.iter(|| core_app(&skewed, &Pattern::edge()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_approx_family, bench_emcore_vs_core_app, bench_flat_degrees_defeat_pruning
}
criterion_main!(benches);
