//! Bench: kClist clique listing and the Appendix-D specialized
//! pattern-degree paths vs generic enumeration. Plain `Instant`-timed
//! harness — no criterion offline.

use dsd_bench::util::report;
use dsd_datasets::chung_lu;
use dsd_graph::VertexSet;
use dsd_motif::{clique_degrees, count_cliques, pattern_enum, special, Pattern};

fn main() {
    println!("== kclist_count ==");
    let g = chung_lu::chung_lu(5_000, 20_000, 2.4, 3);
    for h in [3usize, 4, 5] {
        report(&format!("h={h}"), 10, || {
            std::hint::black_box(count_cliques(&g, h));
        });
    }

    println!("== clique_degrees ==");
    for h in [3usize, 4] {
        report(&format!("h={h}"), 10, || {
            std::hint::black_box(clique_degrees(&g, h));
        });
    }

    // Appendix D's point: closed-form star/diamond degrees beat generic
    // subgraph enumeration by orders of magnitude.
    println!("== pattern_degrees ==");
    let g = chung_lu::chung_lu(1_200, 4_000, 2.4, 5);
    let alive = VertexSet::full(g.num_vertices());
    report("2-star/specialized", 10, || {
        std::hint::black_box(special::star_degrees(&g, 2, &alive));
    });
    report("2-star/generic", 10, || {
        std::hint::black_box(pattern_enum::pattern_degrees(
            &g,
            &Pattern::two_star(),
            &alive,
        ));
    });
    report("diamond/specialized", 10, || {
        std::hint::black_box(special::diamond_degrees(&g, &alive));
    });
    report("diamond/generic", 10, || {
        std::hint::black_box(pattern_enum::pattern_degrees(
            &g,
            &Pattern::diamond(),
            &alive,
        ));
    });
}
