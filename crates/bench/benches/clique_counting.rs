//! Criterion bench: kClist clique listing and the Appendix-D specialized
//! pattern-degree paths vs generic enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsd_datasets::chung_lu;
use dsd_graph::VertexSet;
use dsd_motif::{clique_degrees, count_cliques, pattern_enum, special, Pattern};

fn bench_clique_listing(c: &mut Criterion) {
    let mut group = c.benchmark_group("kclist_count");
    let g = chung_lu::chung_lu(5_000, 20_000, 2.4, 3);
    for h in [3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| count_cliques(&g, h))
        });
    }
    group.finish();
}

fn bench_clique_degrees(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique_degrees");
    let g = chung_lu::chung_lu(5_000, 20_000, 2.4, 3);
    for h in [3usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| clique_degrees(&g, h))
        });
    }
    group.finish();
}

fn bench_specialized_vs_generic(c: &mut Criterion) {
    // Appendix D's point: closed-form star/diamond degrees beat generic
    // subgraph enumeration by orders of magnitude.
    let mut group = c.benchmark_group("pattern_degrees");
    let g = chung_lu::chung_lu(1_200, 4_000, 2.4, 5);
    let alive = VertexSet::full(g.num_vertices());

    group.bench_function("2-star/specialized", |b| {
        b.iter(|| special::star_degrees(&g, 2, &alive))
    });
    group.bench_function("2-star/generic", |b| {
        b.iter(|| pattern_enum::pattern_degrees(&g, &Pattern::two_star(), &alive))
    });
    group.bench_function("diamond/specialized", |b| {
        b.iter(|| special::diamond_degrees(&g, &alive))
    });
    group.bench_function("diamond/generic", |b| {
        b.iter(|| pattern_enum::pattern_degrees(&g, &Pattern::diamond(), &alive))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_clique_listing, bench_clique_degrees, bench_specialized_vs_generic
}
criterion_main!(benches);
