//! Bench: store-backed vs streaming (k, Ψ)-core decomposition — the
//! ISSUE-5 acceptance benchmark, on the fig9 h-clique workload (full
//! Algorithm-3 decompositions of the As-Caida stand-in, h ∈ {3, 4}).
//!
//! Both runs drive the *same* shared bucket-queue peel loop; the only
//! difference is the decrement engine. The streaming baseline pays
//! kClist re-enumeration inside every `removal_decrements` call (the
//! pre-substrate behaviour); the materialized run enumerates once into
//! the columnar `InstanceStore` and then peels with O(memberships
//! touched) alive-count bookkeeping — its measured time **includes** the
//! store build, so the comparison is end-to-end. Core numbers, kmax, and
//! ρ′ must be bit-identical, and the materialized path ≥ 3× faster in
//! aggregate over both h.
//!
//! Run with: `cargo bench -p dsd-bench --bench substrate_peel`

use std::time::{Duration, Instant};

use dsd_core::oracle::{CliqueOracle, MaterializedOracle};
use dsd_core::{decompose, CliqueCoreDecomposition, DensityOracle, Parallelism};
use dsd_datasets::dataset;
use dsd_motif::Pattern;

fn check_identical(a: &CliqueCoreDecomposition, b: &CliqueCoreDecomposition, h: usize) {
    assert_eq!(a.core, b.core, "h = {h}: core numbers diverged");
    assert_eq!(a.kmax, b.kmax, "h = {h}: kmax diverged");
    assert_eq!(a.peel_order, b.peel_order, "h = {h}: peel order diverged");
    assert_eq!(
        a.best_density.to_bits(),
        b.best_density.to_bits(),
        "h = {h}: rho' diverged"
    );
}

fn main() {
    let g = dataset("As-Caida").expect("registry dataset").generate();
    println!(
        "fig9 h-clique workload: As-Caida stand-in, n={} m={}",
        g.num_vertices(),
        g.num_edges()
    );

    let mut total_streaming = Duration::ZERO;
    let mut total_store = Duration::ZERO;
    for h in [3usize, 4] {
        let psi = Pattern::clique(h);

        // Best-of-3 per path keeps the CI assertion off scheduler noise.
        const REPEATS: usize = 3;

        // Streaming baseline: every removal re-enumerates the cliques
        // through the peeled vertex.
        let streaming_oracle = CliqueOracle::new(h);
        let mut streaming = Duration::MAX;
        let mut streaming_dec = None;
        for _ in 0..REPEATS {
            let t = Instant::now();
            let dec = decompose(&g, &streaming_oracle);
            streaming = streaming.min(t.elapsed());
            streaming_dec = Some(dec);
        }
        let streaming_dec = streaming_dec.unwrap();

        // Materialized: one sharded enumeration pass into the columnar
        // store (4 workers — the tentpole's parallel build), then an
        // O(memberships) peel. A fresh oracle per repeat, so the measured
        // time always includes the store build — end to end.
        let mut store = Duration::MAX;
        let mut store_outcome = None;
        for _ in 0..REPEATS {
            let store_oracle = MaterializedOracle::with_policy(&psi, Parallelism::new(4), None);
            let t = Instant::now();
            let dec = decompose(&g, &store_oracle);
            store = store.min(t.elapsed());
            store_outcome = Some((dec, store_oracle.store_stats().expect("store was built")));
        }
        let (store_dec, stats) = store_outcome.unwrap();

        // Serial-build ablation (reported, not asserted).
        let serial_oracle = MaterializedOracle::with_policy(&psi, Parallelism::serial(), None);
        let t = Instant::now();
        let serial_dec = decompose(&g, &serial_oracle);
        let serial_store = t.elapsed();
        check_identical(&serial_dec, &store_dec, h);

        check_identical(&streaming_dec, &store_dec, h);
        assert!(stats.materialized, "h = {h}: store must materialize");

        println!(
            "h={h}: kmax={}, {} instances in {} rows ({:.1} KiB, built {:.1} ms)",
            store_dec.kmax,
            stats.build.instances,
            stats.build.rows,
            stats.build.bytes as f64 / 1024.0,
            stats.build.build_nanos as f64 / 1e6,
        );
        println!(
            "  streaming peel:            {:>9.1} ms",
            streaming.as_secs_f64() * 1e3
        );
        println!(
            "  store peel (4 shards):     {:>9.1} ms ({:.2}x)",
            store.as_secs_f64() * 1e3,
            streaming.as_secs_f64() / store.as_secs_f64()
        );
        println!(
            "  store peel (serial build): {:>9.1} ms ({:.2}x)",
            serial_store.as_secs_f64() * 1e3,
            streaming.as_secs_f64() / serial_store.as_secs_f64()
        );
        total_streaming += streaming;
        total_store += store;
    }

    let speedup = total_streaming.as_secs_f64() / total_store.as_secs_f64();
    println!("aggregate speedup: {speedup:.2}x (acceptance floor: 3x)");
    assert!(
        speedup >= 3.0,
        "materialized decomposition must beat streaming re-enumeration ≥ 3x \
         (measured {speedup:.2}x)"
    );
}
