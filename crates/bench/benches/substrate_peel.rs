//! Bench: store-backed vs streaming (k, Ψ)-core decomposition — the
//! ISSUE-5 acceptance benchmark, on the fig9 h-clique workload (full
//! Algorithm-3 decompositions of the As-Caida stand-in, h ∈ {3, 4}),
//! extended with the ISSUE-9 hardware-speed ablations.
//!
//! Both runs drive the *same* shared bucket-queue peel loop; the only
//! difference is the decrement engine. The streaming baseline pays
//! kClist re-enumeration inside every `removal_decrements` call (the
//! pre-substrate behaviour); the materialized run enumerates once into
//! the columnar `InstanceStore` and then peels with O(memberships
//! touched) alive-count bookkeeping — its measured time **includes** the
//! store build, so the comparison is end-to-end.
//!
//! Per-piece ablations (reported, and bit-identity asserted against the
//! default path):
//!
//! * `DSD_NO_BITSET=1` — merge-only kClist kernels, isolating the
//!   word-packed bitset intersection win;
//! * serial store build — isolating the sharded-build win;
//! * `DSD_ENUM_SHARDS` 1 vs 4 on a general-pattern store build,
//!   isolating the canonical-root sharded pattern enumeration win.
//!
//! Core numbers, kmax, peel order, and ρ′ must be bit-identical across
//! every configuration, and the default store path must beat streaming by
//! the aggregate floor below.
//!
//! Run with: `cargo bench -p dsd-bench --bench substrate_peel`

use std::time::{Duration, Instant};

use dsd_core::oracle::{CliqueOracle, GenericPatternOracle, MaterializedOracle};
use dsd_core::{decompose, CliqueCoreDecomposition, DensityOracle, Parallelism};
use dsd_datasets::dataset;
use dsd_motif::Pattern;

fn check_identical(a: &CliqueCoreDecomposition, b: &CliqueCoreDecomposition, ctx: &str) {
    assert_eq!(a.core, b.core, "{ctx}: core numbers diverged");
    assert_eq!(a.kmax, b.kmax, "{ctx}: kmax diverged");
    assert_eq!(a.peel_order, b.peel_order, "{ctx}: peel order diverged");
    assert_eq!(
        a.best_density.to_bits(),
        b.best_density.to_bits(),
        "{ctx}: rho' diverged"
    );
}

fn main() {
    let g = dataset("As-Caida").expect("registry dataset").generate();
    println!(
        "fig9 h-clique workload: As-Caida stand-in, n={} m={}",
        g.num_vertices(),
        g.num_edges()
    );

    let mut total_streaming = Duration::ZERO;
    let mut total_store = Duration::ZERO;
    for h in [3usize, 4] {
        let psi = Pattern::clique(h);

        // Best-of-3 per path keeps the CI assertion off scheduler noise.
        const REPEATS: usize = 3;

        // Streaming baseline: every removal re-enumerates the cliques
        // through the peeled vertex.
        let streaming_oracle = CliqueOracle::new(h);
        let mut streaming = Duration::MAX;
        let mut streaming_dec = None;
        for _ in 0..REPEATS {
            let t = Instant::now();
            let dec = decompose(&g, &streaming_oracle);
            streaming = streaming.min(t.elapsed());
            streaming_dec = Some(dec);
        }
        let streaming_dec = streaming_dec.unwrap();

        // Materialized, default kernels: one sharded enumeration pass
        // (4 workers, bitset intersections past the density crossover)
        // into the columnar store, then an O(memberships) peel. A fresh
        // oracle per repeat, so the measured time always includes the
        // store build — end to end.
        let mut store = Duration::MAX;
        let mut store_outcome = None;
        for _ in 0..REPEATS {
            let store_oracle = MaterializedOracle::with_policy(&psi, Parallelism::new(4), None);
            let t = Instant::now();
            let dec = decompose(&g, &store_oracle);
            store = store.min(t.elapsed());
            store_outcome = Some((dec, store_oracle.store_stats().expect("store was built")));
        }
        let (store_dec, stats) = store_outcome.unwrap();

        // Bitset-intersection ablation: merge-only kernels everywhere.
        std::env::set_var("DSD_NO_BITSET", "1");
        let merge_oracle = MaterializedOracle::with_policy(&psi, Parallelism::new(4), None);
        let t = Instant::now();
        let merge_dec = decompose(&g, &merge_oracle);
        let merge_store = t.elapsed();
        std::env::remove_var("DSD_NO_BITSET");
        check_identical(&merge_dec, &store_dec, &format!("h = {h}, DSD_NO_BITSET"));

        // Serial-build ablation (reported, not asserted on time).
        let serial_oracle = MaterializedOracle::with_policy(&psi, Parallelism::serial(), None);
        let t = Instant::now();
        let serial_dec = decompose(&g, &serial_oracle);
        let serial_store = t.elapsed();
        check_identical(&serial_dec, &store_dec, &format!("h = {h}, serial build"));

        check_identical(&streaming_dec, &store_dec, &format!("h = {h}"));
        assert!(stats.materialized, "h = {h}: store must materialize");

        println!(
            "h={h}: kmax={}, {} instances in {} rows ({:.1} KiB, built {:.1} ms)",
            store_dec.kmax,
            stats.build.instances,
            stats.build.rows,
            stats.build.bytes as f64 / 1024.0,
            stats.build.build_nanos as f64 / 1e6,
        );
        println!(
            "  build phases: out-CSR {:.2} ms, enumerate {:.2} ms, assemble {:.2} ms",
            stats.build.csr_build_nanos as f64 / 1e6,
            stats.build.enumerate_nanos as f64 / 1e6,
            stats.build.assemble_nanos as f64 / 1e6,
        );
        println!(
            "  streaming peel:            {:>9.1} ms",
            streaming.as_secs_f64() * 1e3
        );
        println!(
            "  store peel (4 shards):     {:>9.1} ms ({:.2}x)",
            store.as_secs_f64() * 1e3,
            streaming.as_secs_f64() / store.as_secs_f64()
        );
        println!(
            "  store peel (no bitset):    {:>9.1} ms ({:.2}x)",
            merge_store.as_secs_f64() * 1e3,
            streaming.as_secs_f64() / merge_store.as_secs_f64()
        );
        println!(
            "  store peel (serial build): {:>9.1} ms ({:.2}x)",
            serial_store.as_secs_f64() * 1e3,
            streaming.as_secs_f64() / serial_store.as_secs_f64()
        );
        total_streaming += streaming;
        total_store += store;
    }

    // General-pattern sharding ablation: a c3-star decomposition whose
    // store build is the dominant cost, 1 shard vs 4 (the env knob routes
    // through `InstanceStore::pattern` exactly as a caller's thread count
    // would).
    let pg = dataset("As-733").expect("registry dataset").generate();
    let psi = Pattern::c3_star();
    println!(
        "\ngeneral-pattern workload: As-733 stand-in, n={} m={}, psi={}",
        pg.num_vertices(),
        pg.num_edges(),
        psi.name()
    );
    let stream_psi = GenericPatternOracle::new(&psi);
    let t = Instant::now();
    let stream_pattern_dec = decompose(&pg, &stream_psi);
    let pattern_streaming = t.elapsed();
    let mut pattern_times = Vec::new();
    let mut pattern_ref: Option<CliqueCoreDecomposition> = None;
    for shards in [1usize, 4] {
        std::env::set_var("DSD_ENUM_SHARDS", shards.to_string());
        let oracle = MaterializedOracle::with_policy(&psi, Parallelism::new(shards), None);
        let t = Instant::now();
        let dec = decompose(&pg, &oracle);
        let elapsed = t.elapsed();
        std::env::remove_var("DSD_ENUM_SHARDS");
        let stats = oracle.store_stats().expect("pattern store was built");
        assert!(stats.materialized, "pattern store must materialize");
        match &pattern_ref {
            None => {
                check_identical(&dec, &stream_pattern_dec, "c3-star store vs streaming");
                pattern_ref = Some(dec);
            }
            Some(reference) => check_identical(
                &dec,
                reference,
                &format!("c3-star, DSD_ENUM_SHARDS={shards}"),
            ),
        }
        println!(
            "  store peel ({shards} shard{}):    {:>9.1} ms ({:.2}x vs streaming; enumerate {:.2} ms)",
            if shards == 1 { "" } else { "s" },
            elapsed.as_secs_f64() * 1e3,
            pattern_streaming.as_secs_f64() / elapsed.as_secs_f64(),
            stats.build.enumerate_nanos as f64 / 1e6,
        );
        pattern_times.push(elapsed);
    }
    println!(
        "  streaming peel:         {:>9.1} ms; sharded enumeration {:.2}x vs serial",
        pattern_streaming.as_secs_f64() * 1e3,
        pattern_times[0].as_secs_f64() / pattern_times[1].as_secs_f64(),
    );
    let pattern_speedup = pattern_streaming.as_secs_f64() / pattern_times[1].as_secs_f64();
    assert!(
        pattern_speedup >= 8.0,
        "materialized c3-star decomposition must beat streaming ≥ 8x \
         (measured {pattern_speedup:.2}x)"
    );

    // The h-clique aggregate is build-dominated once the peel is
    // store-backed, so the floor tracks the single-core build speed (the
    // sharded build only helps on multi-core runners and CI floors must
    // hold on one core). Measured 6.9x single-core; armed at 5x, up from
    // the pre-bitset 3x.
    let speedup = total_streaming.as_secs_f64() / total_store.as_secs_f64();
    println!("\naggregate speedup: {speedup:.2}x (acceptance floor: 5x)");
    assert!(
        speedup >= 5.0,
        "materialized decomposition must beat streaming re-enumeration ≥ 5x \
         (measured {speedup:.2}x)"
    );
}
