//! Bench: incremental k-core maintenance vs evict-and-rebuild — the
//! ISSUE-3 acceptance benchmark.
//!
//! A 64-update stream (alternating inserts of fresh edges and deletes of
//! existing ones) hits a registry graph that must keep an up-to-date
//! classical k-core order after **every** update — the serving contract
//! for an evolving graph:
//!
//! * **incremental** — one registered `DsdService` graph absorbs each
//!   update through `update()`: the engine repairs the k-core order in
//!   place with the subcore traversal, accumulates the edges in an
//!   overlay, and materializes the CSR once at the end of the stream
//!   (lazy rebuild-or-patch);
//! * **evict-and-rebuild** — the pre-dynamic status quo: every update
//!   re-registers a freshly materialized graph and re-peels the k-core
//!   from scratch.
//!
//! Asserted: the final graph and k-core numbers are identical between the
//! two arms (and to a from-scratch decomposition), the incremental engine
//! paid exactly one k-core build for the whole stream, and the
//! incremental arm is **≥ 5× faster** end to end.
//!
//! Run with: `cargo bench -p dsd-bench --bench incremental_maintenance`

use std::collections::HashSet;
use std::time::Instant;

use dsd_core::{k_core_decomposition, DsdService};
use dsd_datasets::registry;
use dsd_graph::{DeltaGraph, EdgeOverlay, Graph, GraphUpdate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const UPDATES: usize = 64;
const SPEEDUP_FLOOR: f64 = 5.0;

/// Alternating effective inserts (fresh edges) and deletes (existing
/// edges), all distinct, so the whole stream does real work in both arms.
fn update_stream(g: &Graph, seed: u64) -> Vec<GraphUpdate> {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let n = g.num_vertices() as u32;
    let mut used: HashSet<(u32, u32)> = HashSet::new();
    let mut stream = Vec::with_capacity(UPDATES);
    while stream.len() < UPDATES {
        if stream.len() % 2 == 0 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            let key = (u.min(v), u.max(v));
            if u != v && !g.has_edge(u, v) && used.insert(key) {
                stream.push(GraphUpdate::Insert(u, v));
            }
        } else {
            let (u, v) = edges[rng.gen_range(0..edges.len())];
            if used.insert((u, v)) {
                stream.push(GraphUpdate::Delete(u, v));
            }
        }
    }
    stream
}

fn main() {
    let dataset = registry::dataset("As-Caida").expect("registry graph");
    let g = dataset.generate();
    let updates = update_stream(&g, 0xD15C);
    println!(
        "incremental-maintenance workload: {} single-edge updates on {} \
         (n={}, m={})",
        updates.len(),
        dataset.name,
        g.num_vertices(),
        g.num_edges()
    );

    // -- Incremental arm: one live graph, per-edge k-core repair ---------
    let service = DsdService::new();
    let engine = service.register("live", g.clone());
    engine.kcore_order(); // the serving steady state: substrate is warm
    let t = Instant::now();
    for update in &updates {
        let stats = service.update("live", &[*update]).expect("registered");
        assert_eq!(
            stats.inserted + stats.deleted,
            1,
            "stream must be effective"
        );
        assert!(stats.kcore_patched, "every update must repair, not rebuild");
    }
    let final_snapshot = engine.graph(); // one lazy CSR materialization
    let incremental_kcore = engine.kcore_order();
    let incremental = t.elapsed();
    assert_eq!(
        engine.cache_stats().kcore_builds,
        1,
        "the whole stream must reuse the single warm k-core build"
    );

    // -- Evict-and-rebuild arm: re-register + re-peel per update --------
    let baseline = DsdService::new();
    baseline.register("live", g.clone());
    baseline.engine("live").unwrap().kcore_order();
    let t = Instant::now();
    let mut current = g.clone();
    let mut rebuilt_kcore = None;
    for update in &updates {
        let mut overlay = EdgeOverlay::default();
        assert!(overlay.apply(&current, update));
        current = DeltaGraph::new(&current, &overlay).materialize();
        let engine = baseline.register("live", current.clone());
        rebuilt_kcore = Some(engine.kcore_order());
    }
    let rebuild = t.elapsed();
    let rebuilt_kcore = rebuilt_kcore.expect("at least one update");

    // -- Correctness: both arms agree with each other and with scratch --
    assert_eq!(*final_snapshot, current, "final graphs diverged");
    assert_eq!(
        incremental_kcore.core, rebuilt_kcore.core,
        "incremental k-core numbers diverged from evict-and-rebuild"
    );
    let scratch = k_core_decomposition(&final_snapshot);
    assert_eq!(incremental_kcore.core, scratch.core);
    assert_eq!(incremental_kcore.kmax, scratch.kmax);

    let speedup = rebuild.as_secs_f64() / incremental.as_secs_f64();
    println!(
        "evict-and-rebuild: {:>9.3} ms ({} CSR rebuilds + full re-peels)",
        rebuild.as_secs_f64() * 1e3,
        updates.len()
    );
    println!(
        "incremental:       {:>9.3} ms ({} subcore repairs + 1 lazy materialization)",
        incremental.as_secs_f64() * 1e3,
        updates.len()
    );
    println!("speedup: {speedup:.2}x (acceptance floor: {SPEEDUP_FLOOR}x)");
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "incremental maintenance must beat evict-and-rebuild by ≥ {SPEEDUP_FLOOR}x, got {speedup:.2}x"
    );
}
