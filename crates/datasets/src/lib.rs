//! `dsd-datasets`: graph generators, paper-figure fixtures, and the
//! synthetic dataset registry.
//!
//! The paper evaluates on ten real graphs (DIP/SNAP/LAW downloads) and
//! three GTgraph synthetic models. Neither the downloads nor GTgraph are
//! available offline, so this crate rebuilds the *distribution families*
//! the evaluation depends on (see `DESIGN.md` §3 for the substitution
//! argument):
//!
//! * [`er`] — Erdős–Rényi G(n, p) (GTgraph "Random");
//! * [`rmat`] — recursive-matrix power-law graphs (GTgraph "R-MAT");
//! * [`ssca`] — planted random-size cliques (GTgraph "SSCA#2");
//! * [`chung_lu`] — power-law degree sequences with a target edge count,
//!   used as stand-ins for the real graphs via their Appendix-A statistics;
//! * [`multi_community()`] — one planted dense cluster per shard-sized
//!   block with a skewed density profile, the sharded-serving workload;
//! * [`planted`] — dense-subgraph planting plus the case-study generators
//!   (collaboration network for Figure 17, PPI-like motif graph for
//!   Figure 21);
//! * [`fixtures`] — the exact small graphs of Figures 1(a), 2(a), 3, 5 and
//!   6(a) with their hand-checkable answers;
//! * [`registry`] — the thirteen evaluation datasets as named, seeded,
//!   scale-annotated synthetic configurations;
//! * [`stats`] — the Appendix-A statistics table (Figure 18) recomputed on
//!   our stand-ins.
//!
//! Every generator is deterministic given its seed.

pub mod chung_lu;
pub mod er;
pub mod fixtures;
pub mod multi_community;
pub mod planted;
pub mod registry;
pub mod rmat;
pub mod ssca;
pub mod stats;

pub use multi_community::{multi_community, MultiCommunity};
pub use registry::{all_datasets, dataset, Dataset, DatasetKind};
pub use stats::{compute_stats, GraphStats};
