//! Chung–Lu power-law generator: the stand-in for the paper's real graphs.
//!
//! Given a target vertex count, edge count, and power-law exponent α (the
//! Appendix-A statistics of each real dataset), vertices receive expected
//! degrees `w_i ∝ (i + i0)^(−1/(α−1))` and `m` edges are sampled with
//! endpoint probability proportional to weight. This reproduces the two
//! structural properties the paper's claims rest on — a heavy-tailed degree
//! distribution and small dense cores — without the original downloads.

use dsd_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// [`chung_lu`] plus a planted clique on the `overlay` highest-weight
/// vertices.
///
/// Chung–Lu sampling has vanishing clustering, but the paper's real graphs
/// are clique-rich (several of their densest subgraphs *are* maximum
/// cliques — Table 5). Planting a modest clique on the hubs restores that
/// structure, so h-clique experiments at h ≥ 4 stay meaningful on the
/// stand-ins.
pub fn chung_lu_with_clique(n: usize, m: usize, alpha: f64, overlay: usize, seed: u64) -> Graph {
    let base = chung_lu(n, m, alpha, seed);
    let overlay = overlay.min(n);
    if overlay < 2 {
        return base;
    }
    let mut b = GraphBuilder::with_capacity(n, base.num_edges() + overlay * overlay / 2);
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    for u in 0..overlay as VertexId {
        for v in (u + 1)..overlay as VertexId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Generates a Chung–Lu graph with `n` vertices, ~`m` edges, and power-law
/// exponent `alpha` (> 1).
pub fn chung_lu(n: usize, m: usize, alpha: f64, seed: u64) -> Graph {
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    if n < 2 || m == 0 {
        return b.build();
    }
    // Zipf-ish weights; i0 shifts the head so the max weight stays sane.
    let exponent = -1.0 / (alpha - 1.0);
    let i0 = 1.0 + (n as f64).powf(0.25);
    let weights: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(exponent)).collect();
    // Cumulative table for O(log n) weighted sampling.
    let mut cum = Vec::with_capacity(n + 1);
    cum.push(0.0f64);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cum.push(acc);
    }
    let total = acc;
    let sample = |rng: &mut StdRng| -> VertexId {
        let x = rng.gen::<f64>() * total;
        // partition_point: first index with cum > x, minus 1.
        let idx = cum.partition_point(|&c| c <= x);
        (idx.saturating_sub(1)).min(n - 1) as VertexId
    };
    // Draw until we land m successful (non-loop) pairs; duplicates are
    // dropped by the builder, so over-draw by a small factor.
    let draws = m + m / 8 + 16;
    for _ in 0..draws {
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(chung_lu(500, 2000, 2.5, 1), chung_lu(500, 2000, 2.5, 1));
    }

    #[test]
    fn edge_count_in_range() {
        let g = chung_lu(2000, 6000, 2.5, 9);
        let m = g.num_edges();
        assert!(
            m > 4500 && m <= 6000 + 800,
            "edge count {m} far from target 6000"
        );
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = chung_lu(3000, 12000, 2.3, 4);
        let mut degs = g.degrees();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            degs[0] as f64 > 5.0 * avg,
            "hub degree {} vs average {avg}",
            degs[0]
        );
    }

    #[test]
    fn clique_overlay_plants_a_clique() {
        let g = chung_lu_with_clique(500, 1500, 2.5, 12, 3);
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                assert!(g.has_edge(u, v), "overlay edge ({u},{v}) missing");
            }
        }
        // Deterministic and a strict supergraph of the base.
        assert_eq!(
            chung_lu_with_clique(500, 1500, 2.5, 12, 3),
            chung_lu_with_clique(500, 1500, 2.5, 12, 3)
        );
        let base = chung_lu(500, 1500, 2.5, 3);
        assert!(g.num_edges() >= base.num_edges());
        // overlay < 2 is a no-op.
        assert_eq!(chung_lu_with_clique(500, 1500, 2.5, 1, 3), base);
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(chung_lu(0, 0, 2.5, 1).num_vertices(), 0);
        assert_eq!(chung_lu(1, 10, 2.5, 1).num_edges(), 0);
        assert_eq!(chung_lu(10, 0, 2.5, 1).num_edges(), 0);
    }
}
