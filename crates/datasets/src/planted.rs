//! Planted-structure generators: ground-truth dense subgraphs and the
//! case-study networks of Figures 17 and 21.

use dsd_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated graph together with its planted ground truth.
#[derive(Clone, Debug)]
pub struct Planted {
    /// The graph.
    pub graph: Graph,
    /// Vertices of the planted dense block (sorted).
    pub planted: Vec<VertexId>,
}

/// Plants a near-clique (G(k, p_dense)) inside a sparse G(n, p_sparse)
/// background. Used by the recovery example and the approximation-ratio
/// tests: for `p_dense` ≫ `p_sparse` the planted block is the densest
/// subgraph with overwhelming probability.
pub fn planted_dense(n: usize, k: usize, p_dense: f64, p_sparse: f64, seed: u64) -> Planted {
    assert!(k <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            let p = if (u as usize) < k && (v as usize) < k {
                p_dense
            } else {
                p_sparse
            };
            if rng.gen::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    Planted {
        graph: b.build(),
        planted: (0..k as VertexId).collect(),
    }
}

/// Figure-17-style collaboration network: `groups` research groups, each a
/// near-clique of `group_size` members (papers among peers → triangles),
/// plus `advisors` hub vertices connected in a star to many students across
/// groups (advisor–student papers → 2-star structure, few triangles).
///
/// Triangle-PDS lands on the tightest group; 2-star-PDS lands on the
/// advisor hubs — the semantic contrast of the case study.
pub fn collaboration_network(
    groups: usize,
    group_size: usize,
    advisors: usize,
    students_per_advisor: usize,
    seed: u64,
) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = groups * group_size + advisors + advisors * students_per_advisor;
    let mut b = GraphBuilder::new(n);
    // Groups: near-cliques (drop 10% of inner edges).
    for g in 0..groups {
        let base = g * group_size;
        for u in 0..group_size {
            for v in (u + 1)..group_size {
                if rng.gen::<f64>() < 0.9 {
                    b.add_edge((base + u) as VertexId, (base + v) as VertexId);
                }
            }
        }
    }
    let adv_base = groups * group_size;
    let stu_base = adv_base + advisors;
    // Advisors: hubs over their own students (no student-student edges).
    for a in 0..advisors {
        let advisor = (adv_base + a) as VertexId;
        for s in 0..students_per_advisor {
            b.add_edge(
                advisor,
                (stu_base + a * students_per_advisor + s) as VertexId,
            );
        }
        // Advisors co-author with one member of each group.
        for g in 0..groups {
            let member = (g * group_size + (a + g) % group_size) as VertexId;
            b.add_edge(advisor, member);
        }
    }
    b.build()
}

/// Figure-21-style PPI network: overlapping functional modules realized as
/// different motifs (a clique module, a cycle module, a star module) hung
/// on a sparse power-law background — so different patterns Ψ select
/// different PDS's, like the yeast case study.
pub fn ppi_like(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 220usize;
    let mut b = GraphBuilder::new(n);
    // Module 1 (vertices 0..8): near-clique — 4-clique-dense.
    for u in 0..8u32 {
        for v in (u + 1)..8 {
            if rng.gen::<f64>() < 0.95 {
                b.add_edge(u, v);
            }
        }
    }
    // Module 2 (8..24): dense bipartite-ish block — diamond(4-cycle)-dense,
    // triangle-free-ish.
    for u in 8..16u32 {
        for v in 16..24u32 {
            if rng.gen::<f64>() < 0.8 {
                b.add_edge(u, v);
            }
        }
    }
    // Module 3 (24..45): hubs with leaves — 2-star/3-star-dense.
    for hub in 24..28u32 {
        for leaf in 28..45u32 {
            if rng.gen::<f64>() < 0.8 {
                b.add_edge(hub, leaf);
            }
        }
    }
    // Sparse background chain + random edges.
    for v in 45..n as u32 {
        b.add_edge(v, v - 1);
        let u = rng.gen_range(0..v);
        b.add_edge(v, u);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_block_is_densest() {
        let p = planted_dense(120, 14, 0.95, 0.02, 77);
        // Count edges inside vs outside the block.
        let inside = p
            .graph
            .edges()
            .filter(|&(u, v)| (u as usize) < 14 && (v as usize) < 14)
            .count();
        let density_in = inside as f64 / 14.0;
        let density_all = p.graph.edge_density();
        assert!(density_in > 2.0 * density_all);
        assert_eq!(p.planted.len(), 14);
    }

    #[test]
    fn collaboration_network_shapes() {
        let g = collaboration_network(3, 6, 2, 8, 1);
        assert_eq!(g.num_vertices(), 3 * 6 + 2 + 16);
        // Advisors have the highest degrees.
        let adv = 3 * 6; // first advisor id
        assert!(g.degree(adv as VertexId) >= 8);
    }

    #[test]
    fn ppi_modules_exist() {
        let g = ppi_like(5);
        assert_eq!(g.num_vertices(), 220);
        // Module 1 is near-complete.
        let m1_edges = g.edges().filter(|&(u, v)| u < 8 && v < 8).count();
        assert!(m1_edges >= 24, "module 1 has {m1_edges} edges");
    }

    #[test]
    fn deterministic() {
        assert_eq!(ppi_like(9), ppi_like(9));
        assert_eq!(
            collaboration_network(2, 5, 1, 4, 3),
            collaboration_network(2, 5, 1, 4, 3)
        );
    }
}
