//! The paper's figure graphs as test fixtures, with their hand-checkable
//! answers documented.

use dsd_graph::Graph;

/// Figure 1(a): a graph whose edge-densest subgraph S1 (7 vertices, 11
/// edges, density 11/7) differs from its triangle-densest subgraph S2
/// (two triangles sharing an edge, triangle-density 1/2).
///
/// The published figure's exact edges aren't recoverable from the text, so
/// we realize the stated properties exactly: S1 = K{3,4} minus one edge
/// (triangle-free, density 11/7) on vertices 0–6, S2 = a diamond on
/// vertices 7–10, joined by a single bridge.
pub fn figure1a() -> Graph {
    let mut edges = Vec::new();
    // K{3,4} on {0,1,2} × {3,4,5,6} minus edge (2,6).
    for a in 0..3u32 {
        for b in 3..7u32 {
            if !(a == 2 && b == 6) {
                edges.push((a, b));
            }
        }
    }
    // S2: diamond (two triangles sharing edge 7-9).
    edges.extend_from_slice(&[(7, 8), (8, 9), (7, 9), (7, 10), (9, 10)]);
    // Bridge.
    edges.push((6, 7));
    Graph::from_edges(11, &edges)
}

/// Vertices of Figure 1(a)'s S1 (the EDS).
pub const FIGURE1A_S1: [u32; 7] = [0, 1, 2, 3, 4, 5, 6];
/// Vertices of Figure 1(a)'s S2 (the triangle-CDS).
pub const FIGURE1A_S2: [u32; 4] = [7, 8, 9, 10];

/// Figure 2(a): A–B, B–C, B–D, C–D (A=0 … D=3). One triangle {B, C, D};
/// its Algorithm-1 flow network (Ψ = triangle) has 10 nodes.
pub fn figure2a() -> Graph {
    Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)])
}

/// Figure 3: 4-clique {A,B,C,D}, triangle {D,E,F}, isolated edge {G,H}
/// (A=0 … H=7). Classical cores: 3-core = {A,B,C,D}; triangle-(k,Ψ)-cores:
/// (3,Ψ)-core = {A,B,C,D}, E/F at 1, G/H at 0.
pub fn figure3() -> Graph {
    let (a, b, c, d, e, f, g_, h) = (0u32, 1, 2, 3, 4, 5, 6, 7);
    Graph::from_edges(
        8,
        &[
            (a, b),
            (a, c),
            (a, d),
            (b, c),
            (b, d),
            (c, d),
            (d, e),
            (e, f),
            (d, f),
            (g_, h),
        ],
    )
}

/// Figure 5's role: a graph where peeling's residual-density bound ρ′
/// locates the EDS in a small high-order core, and the kmax-core (here the
/// K5) is *not* the EDS (the K6 component is denser). K5 on 0–4, K6 on
/// 5–10, pendant 11.
pub fn figure5_like() -> Graph {
    let mut edges = Vec::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            edges.push((u, v));
        }
    }
    for u in 5..11u32 {
        for v in (u + 1)..11 {
            edges.push((u, v));
        }
    }
    edges.push((11, 5));
    Graph::from_edges(12, &edges)
}

/// Figure 6(a): a graph with exactly 4 diamond (4-cycle) instances in two
/// vertex-set groups — g1 = {A,B,C,D} (1 instance), g2 = {A,D,E,F} (3
/// instances, a K4) — plus a tail F–G–H. A=0 … H=7.
pub fn figure6a() -> Graph {
    let (a, b, c, d, e, f, g_, h) = (0u32, 1, 2, 3, 4, 5, 6, 7);
    Graph::from_edges(
        8,
        &[
            (a, b),
            (b, c),
            (c, d),
            (a, d),
            (a, e),
            (a, f),
            (d, e),
            (d, f),
            (e, f),
            (f, g_),
            (g_, h),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1a_shape() {
        let g = figure1a();
        assert_eq!(g.num_vertices(), 11);
        // 11 (S1) + 5 (S2) + 1 bridge.
        assert_eq!(g.num_edges(), 17);
    }

    #[test]
    fn figure2a_shape() {
        let g = figure2a();
        assert_eq!((g.num_vertices(), g.num_edges()), (4, 4));
    }

    #[test]
    fn figure3_shape() {
        let g = figure3();
        assert_eq!((g.num_vertices(), g.num_edges()), (8, 10));
    }

    #[test]
    fn figure5_like_shape() {
        let g = figure5_like();
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 10 + 15 + 1);
    }

    #[test]
    fn figure6a_shape() {
        let g = figure6a();
        assert_eq!((g.num_vertices(), g.num_edges()), (8, 11));
    }
}
