//! Dataset statistics (the structural columns of Appendix A's Figure 18).
//!
//! The core-number columns (kmax, (kmax, Ψ)-core size) live in the bench
//! harness, which may depend on `dsd-core`; this module computes everything
//! derivable from the graph alone.

use dsd_graph::{connected_components, Graph, VertexId};

/// Structural statistics of a graph.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Number of connected components.
    pub num_ccs: usize,
    /// Pseudo-diameter of the largest component (double-sweep BFS lower
    /// bound — exact diameters are quadratic and Figure 18 only reads the
    /// order of magnitude).
    pub pseudo_diameter: usize,
    /// Power-law exponent α fitted by MLE over degrees ≥ 1.
    pub power_law_alpha: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

/// Computes [`GraphStats`].
pub fn compute_stats(g: &Graph) -> GraphStats {
    let cc = connected_components(g);
    // Largest component representative.
    let mut sizes = vec![0usize; cc.num_components];
    for &l in &cc.label {
        if l != u32::MAX {
            sizes[l as usize] += 1;
        }
    }
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i as u32);
    let start = largest.and_then(|l| cc.label.iter().position(|&x| x == l).map(|v| v as VertexId));
    let pseudo_diameter = match start {
        Some(s) if g.num_vertices() > 0 => {
            let (far, _) = bfs_farthest(g, s);
            let (_, dist) = bfs_farthest(g, far);
            dist
        }
        _ => 0,
    };
    GraphStats {
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        num_ccs: cc.num_components,
        pseudo_diameter,
        power_law_alpha: power_law_mle(g),
        max_degree: g.max_degree(),
    }
}

/// BFS returning the farthest vertex and its distance.
fn bfs_farthest(g: &Graph, start: VertexId) -> (VertexId, usize) {
    let mut dist = vec![usize::MAX; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    let mut far = (start, 0usize);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                if dist[u as usize] > far.1 {
                    far = (u, dist[u as usize]);
                }
                queue.push_back(u);
            }
        }
    }
    far
}

/// Clauset–Shalizi–Newman MLE for the tail exponent,
/// `α = 1 + n' / Σ_{d ≥ xmin} ln(d / (xmin − 0.5))`, with `xmin` at the
/// median positive degree. Anchoring at the median is what makes Figure
/// 18's contrast visible: concentrated (ER-like) degree distributions have
/// almost no spread above their median, so α blows up (the paper reports
/// 63.7 for ER), while heavy tails fit α ≈ 2–3.
fn power_law_mle(g: &Graph) -> f64 {
    let mut degs: Vec<usize> = g
        .vertices()
        .map(|v| g.degree(v))
        .filter(|&d| d >= 1)
        .collect();
    if degs.is_empty() {
        return 0.0;
    }
    degs.sort_unstable();
    let xmin = degs[degs.len() / 2].max(1);
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for &d in &degs {
        if d >= xmin {
            count += 1;
            log_sum += (d as f64 / (xmin as f64 - 0.5)).ln();
        }
    }
    if count == 0 || log_sum <= 0.0 {
        0.0
    } else {
        1.0 + count as f64 / log_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_stats() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let s = compute_stats(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.num_ccs, 1);
        assert_eq!(s.pseudo_diameter, 4);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn disconnected_components_counted() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let s = compute_stats(&g);
        assert_eq!(s.num_ccs, 3);
        assert_eq!(s.pseudo_diameter, 1);
    }

    #[test]
    fn power_law_fit_distinguishes_flat_from_skewed() {
        let flat = crate::er::er(2000, 0.01, 3);
        let skewed = crate::chung_lu::chung_lu(2000, 10000, 2.3, 3);
        let a_flat = compute_stats(&flat).power_law_alpha;
        let a_skewed = compute_stats(&skewed).power_law_alpha;
        // Flat degree distributions fit a much larger α (Figure 18 shows
        // ER at 63.7 vs real graphs at 2.3–3.0).
        assert!(
            a_flat > a_skewed,
            "flat α {a_flat} should exceed skewed α {a_skewed}"
        );
    }

    #[test]
    fn empty_graph() {
        let s = compute_stats(&Graph::empty(0));
        assert_eq!(s.vertices, 0);
        assert_eq!(s.pseudo_diameter, 0);
        assert_eq!(s.power_law_alpha, 0.0);
    }
}
