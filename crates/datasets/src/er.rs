//! Erdős–Rényi G(n, p) generator (GTgraph "Random" model).
//!
//! Uses geometric edge skipping so generation is O(m) rather than O(n²):
//! successive present edges in the lexicographic edge enumeration are
//! separated by Geometric(p) gaps.

use dsd_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates G(n, p) with the given seed.
pub fn er(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let total: u64 = n as u64 * (n as u64 - 1) / 2;
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Geometric skipping over the C(n,2) possible edges.
    let log1p = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log1p).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        let (u, v) = unrank_edge(idx, n as u64);
        b.add_edge(u, v);
        idx += 1;
    }
    b.build()
}

/// Maps a lexicographic index to the edge (u, v), u < v.
fn unrank_edge(idx: u64, n: u64) -> (VertexId, VertexId) {
    // Row u starts at offset u*n - u*(u+1)/2 - u... solve by scanning rows
    // arithmetically: row u has n-1-u entries.
    let mut u = 0u64;
    let mut remaining = idx;
    loop {
        let row = n - 1 - u;
        if remaining < row {
            return (u as VertexId, (u + 1 + remaining) as VertexId);
        }
        remaining -= row;
        u += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = er(100, 0.05, 7);
        let b = er(100, 0.05, 7);
        assert_eq!(a, b);
        let c = er(100, 0.05, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn edge_count_near_expectation() {
        let n = 400;
        let p = 0.02;
        let g = er(n, p, 42);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "got {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn extremes() {
        assert_eq!(er(10, 0.0, 1).num_edges(), 0);
        assert_eq!(er(5, 1.0, 1).num_edges(), 10);
        assert_eq!(er(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(er(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn unrank_is_lexicographic() {
        let n = 5u64;
        let mut idx = 0u64;
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                assert_eq!(unrank_edge(idx, n), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn er_degrees_are_flat() {
        // The paper's ER observation: degrees concentrate, defeating core
        // pruning. Check max/min degree ratio is small.
        let g = er(500, 0.05, 3);
        let degs = g.degrees();
        let max = *degs.iter().max().unwrap() as f64;
        let min = *degs.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 4.0, "max {max} min {min}");
    }
}
