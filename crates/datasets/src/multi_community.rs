//! Multi-community synthetic: one planted dense cluster per block, with
//! blocks sized to land on distinct shards of a partitioned engine.
//!
//! The sharded scatter-gather path (`dsd_core`'s `ShardedGraph`) prunes
//! a shard when its located-core bound cannot beat the best certified
//! local density. This generator manufactures exactly that situation:
//! `blocks` vertex blocks, each holding a planted near-clique whose size
//! *shrinks* block by block, so the density profile across blocks is
//! strictly skewed — block 0 holds the global densest subgraph and the
//! tail blocks are provably too sparse to compete. Bridges between
//! adjacent blocks keep the graph connected (they become boundary edges
//! under a block-aligned partition) without disturbing the skew.

use dsd_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A multi-community graph together with its planted ground truth.
#[derive(Clone, Debug)]
pub struct MultiCommunity {
    /// The graph; vertex `v` belongs to block `v / block_size`.
    pub graph: Graph,
    /// The planted dense cluster of each block (sorted, one per block).
    pub communities: Vec<Vec<VertexId>>,
    /// Index of the block holding the densest planted cluster (always 0:
    /// cluster sizes shrink monotonically across blocks).
    pub densest_block: usize,
}

/// Generates `blocks` contiguous blocks of `block_size` vertices, each
/// with a planted near-clique (edge probability 0.95) on its first
/// `block_size/4 - block_index` vertices (floored at 4), a sparse
/// `p_intra` background inside the block, and `⌈p_inter · block_size⌉`
/// random bridge edges between consecutive blocks. Deterministic given
/// `seed`.
pub fn multi_community(
    blocks: usize,
    block_size: usize,
    p_intra: f64,
    p_inter: f64,
    seed: u64,
) -> MultiCommunity {
    assert!(blocks >= 1, "need at least one block");
    assert!(block_size >= 16, "blocks of < 16 vertices cannot skew");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = blocks * block_size;
    let mut b = GraphBuilder::new(n);
    let mut communities = Vec::with_capacity(blocks);
    for blk in 0..blocks {
        let base = blk * block_size;
        let size = (block_size / 4).saturating_sub(blk).max(4);
        for u in 0..size {
            for v in (u + 1)..size {
                if rng.gen::<f64>() < 0.95 {
                    b.add_edge((base + u) as VertexId, (base + v) as VertexId);
                }
            }
        }
        for u in 0..block_size {
            for v in (u + 1)..block_size {
                if rng.gen::<f64>() < p_intra {
                    b.add_edge((base + u) as VertexId, (base + v) as VertexId);
                }
            }
        }
        communities.push((base as VertexId..(base + size) as VertexId).collect());
    }
    let bridges = ((p_inter * block_size as f64).ceil() as usize).max(1);
    for blk in 1..blocks {
        for _ in 0..bridges {
            let u = ((blk - 1) * block_size + rng.gen_range(0..block_size)) as VertexId;
            let v = (blk * block_size + rng.gen_range(0..block_size)) as VertexId;
            b.add_edge(u, v);
        }
    }
    MultiCommunity {
        graph: b.build(),
        communities,
        densest_block: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_edge_density(g: &Graph, members: &[VertexId]) -> f64 {
        let inside = g
            .edges()
            .filter(|&(u, v)| members.contains(&u) && members.contains(&v))
            .count();
        inside as f64 / members.len() as f64
    }

    #[test]
    fn block_zero_holds_the_densest_cluster() {
        let mc = multi_community(4, 64, 0.02, 0.05, 7);
        assert_eq!(mc.graph.num_vertices(), 4 * 64);
        assert_eq!(mc.communities.len(), 4);
        assert_eq!(mc.densest_block, 0);
        let d0 = block_edge_density(&mc.graph, &mc.communities[0]);
        for (blk, community) in mc.communities.iter().enumerate().skip(1) {
            let d = block_edge_density(&mc.graph, community);
            assert!(
                d0 > d,
                "block 0 ({d0:.3}) not denser than block {blk} ({d:.3})"
            );
        }
    }

    #[test]
    fn clusters_shrink_across_blocks() {
        let mc = multi_community(6, 64, 0.01, 0.02, 3);
        for w in mc.communities.windows(2) {
            assert!(w[0].len() > w[1].len());
        }
    }

    #[test]
    fn consecutive_blocks_are_bridged() {
        let mc = multi_community(5, 32, 0.0, 0.1, 11);
        for blk in 1..5usize {
            let crossing = mc
                .graph
                .edges()
                .filter(|&(u, v)| {
                    let (bu, bv) = ((u as usize) / 32, (v as usize) / 32);
                    bu.min(bv) == blk - 1 && bu.max(bv) == blk
                })
                .count();
            assert!(crossing >= 1, "blocks {} and {blk} not bridged", blk - 1);
        }
    }

    #[test]
    fn deterministic() {
        let a = multi_community(4, 64, 0.02, 0.05, 9);
        let b = multi_community(4, 64, 0.02, 0.05, 9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.communities, b.communities);
    }
}
