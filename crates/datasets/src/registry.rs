//! The thirteen evaluation datasets (plus the three Appendix-E extras and
//! the repo's own sharded-serving workload) as named synthetic
//! configurations.
//!
//! Each entry records the paper's reported size (Appendix A, Figure 18),
//! the generator standing in for it, and the scale factor we apply so the
//! whole evaluation runs on one machine. Shapes — who wins, by what
//! factor — are preserved by matching the degree-distribution family; see
//! `DESIGN.md` §3.

use dsd_graph::Graph;

use crate::{chung_lu, er, multi_community, rmat, ssca};

/// Which experiment group a dataset belongs to (mirrors Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Small real graphs — exact algorithms run on these (Fig. 8a–e).
    SmallReal,
    /// Large real graphs — approximation algorithms only (Fig. 8f–j).
    LargeReal,
    /// GTgraph-style synthetic random graphs (Fig. 13–14).
    Synthetic,
    /// Appendix-E extras (Fig. 20).
    Extra,
}

/// How a dataset's stand-in graph is generated.
#[derive(Clone, Copy, Debug)]
enum Generator {
    /// Chung–Lu with (n, m, power-law α) plus a planted clique of size
    /// `overlay` on the highest-weight vertices.
    ///
    /// Real graphs are clique-rich — the paper's Figure 18 reports
    /// (kmax, Ψ)-core sizes of 10–944 and Table 5 observes that several
    /// CDS's *are* maximum cliques — while plain Chung–Lu sampling has
    /// vanishing clustering. The overlay (scaled from the reported
    /// triangle-core size, capped so C(overlay, 6) stays enumerable)
    /// restores the dense near-clique the h ≥ 4 experiments revolve
    /// around.
    ChungLu {
        n: usize,
        m: usize,
        alpha: f64,
        overlay: usize,
    },
    /// SSCA planted cliques (n, max clique size, inter-clique edges/vertex).
    Ssca {
        n: usize,
        max_clique: usize,
        inter: f64,
    },
    /// Erdős–Rényi (n, p).
    Er { n: usize, p: f64 },
    /// R-MAT (scale, edge draws).
    Rmat { scale: u32, m: usize },
    /// Multi-community: one planted dense cluster per `block_size` block,
    /// density skewed across blocks — the sharded-serving workload.
    MultiCommunity { blocks: usize, block_size: usize },
}

/// A named dataset configuration.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Paper's dataset name.
    pub name: &'static str,
    /// Experiment group.
    pub kind: DatasetKind,
    /// Vertex count reported in the paper.
    pub paper_vertices: usize,
    /// Edge count reported in the paper.
    pub paper_edges: usize,
    /// Power-law α reported in Figure 18 (0 where not applicable).
    pub paper_alpha: f64,
    /// Classical kmax reported in Figure 18.
    pub paper_kmax: usize,
    gen: Generator,
    seed: u64,
}

impl Dataset {
    /// Generates the stand-in graph (deterministic).
    pub fn generate(&self) -> Graph {
        match self.gen {
            Generator::ChungLu {
                n,
                m,
                alpha,
                overlay,
            } => chung_lu::chung_lu_with_clique(n, m, alpha, overlay, self.seed),
            Generator::Ssca {
                n,
                max_clique,
                inter,
            } => ssca::ssca(n, max_clique, inter, self.seed),
            Generator::Er { n, p } => er::er(n, p, self.seed),
            Generator::Rmat { scale, m } => {
                rmat::rmat(scale, m, rmat::RmatParams::default(), self.seed)
            }
            Generator::MultiCommunity { blocks, block_size } => {
                multi_community::multi_community(blocks, block_size, 0.02, 0.05, self.seed).graph
            }
        }
    }

    /// Scale factor versus the paper's graph (1.0 = full size).
    pub fn scale(&self) -> f64 {
        let n = match self.gen {
            Generator::ChungLu { n, .. } => n,
            Generator::Ssca { n, .. } => n,
            Generator::Er { n, .. } => n,
            Generator::Rmat { scale, .. } => 1usize << scale,
            Generator::MultiCommunity { blocks, block_size } => blocks * block_size,
        };
        n as f64 / self.paper_vertices as f64
    }
}

/// All datasets in paper order (Table 2 then Table 6).
pub fn all_datasets() -> Vec<Dataset> {
    use DatasetKind::*;
    use Generator::*;
    vec![
        // -- Real small graphs: full scale --------------------------------
        Dataset {
            name: "Yeast",
            kind: SmallReal,
            paper_vertices: 1116,
            paper_edges: 2148,
            paper_alpha: 2.9769,
            paper_kmax: 3,
            gen: ChungLu {
                n: 1116,
                m: 2148,
                alpha: 2.9769,
                overlay: 10,
            },
            seed: 1,
        },
        Dataset {
            name: "Netscience",
            kind: SmallReal,
            paper_vertices: 1589,
            paper_edges: 2742,
            paper_alpha: 2.4053,
            paper_kmax: 171,
            gen: ChungLu {
                n: 1589,
                m: 2742,
                alpha: 2.4053,
                overlay: 20,
            },
            seed: 2,
        },
        Dataset {
            name: "As-733",
            kind: SmallReal,
            paper_vertices: 1486,
            paper_edges: 3172,
            paper_alpha: 2.7204,
            paper_kmax: 39,
            gen: ChungLu {
                n: 1486,
                m: 3172,
                alpha: 2.7204,
                overlay: 24,
            },
            seed: 3,
        },
        Dataset {
            name: "Ca-HepTh",
            kind: SmallReal,
            paper_vertices: 9877,
            paper_edges: 25998,
            paper_alpha: 2.6472,
            paper_kmax: 456,
            gen: ChungLu {
                n: 9877,
                m: 25998,
                alpha: 2.6472,
                overlay: 24,
            },
            seed: 4,
        },
        Dataset {
            name: "As-Caida",
            kind: SmallReal,
            paper_vertices: 26475,
            paper_edges: 106762,
            paper_alpha: 2.7898,
            paper_kmax: 154,
            gen: ChungLu {
                n: 26475,
                m: 106762,
                alpha: 2.7898,
                overlay: 24,
            },
            seed: 5,
        },
        // -- Real large graphs: scaled down -------------------------------
        Dataset {
            name: "DBLP",
            kind: LargeReal,
            paper_vertices: 425_957,
            paper_edges: 1_049_866,
            paper_alpha: 2.3457,
            paper_kmax: 4175,
            gen: ChungLu {
                n: 42_000,
                m: 104_000,
                alpha: 2.3457,
                overlay: 24,
            },
            seed: 6,
        },
        Dataset {
            name: "Cit-Patents",
            kind: LargeReal,
            paper_vertices: 3_774_768,
            paper_edges: 16_518_948,
            paper_alpha: 2.284,
            paper_kmax: 1465,
            gen: ChungLu {
                n: 38_000,
                m: 166_000,
                alpha: 2.284,
                overlay: 24,
            },
            seed: 7,
        },
        Dataset {
            name: "Friendster",
            kind: LargeReal,
            paper_vertices: 20_145_325,
            paper_edges: 106_570_765,
            paper_alpha: 2.4466,
            paper_kmax: 224_532,
            gen: ChungLu {
                n: 40_000,
                m: 212_000,
                alpha: 2.4466,
                overlay: 24,
            },
            seed: 8,
        },
        Dataset {
            name: "Enwiki-2017",
            kind: LargeReal,
            paper_vertices: 5_409_498,
            paper_edges: 122_008_994,
            paper_alpha: 2.4443,
            paper_kmax: 13_435,
            gen: ChungLu {
                n: 12_000,
                m: 270_000,
                alpha: 2.4443,
                overlay: 24,
            },
            seed: 9,
        },
        Dataset {
            name: "UK-2002",
            kind: LargeReal,
            paper_vertices: 18_520_486,
            paper_edges: 298_113_762,
            paper_alpha: 2.4967,
            paper_kmax: 444_153,
            gen: ChungLu {
                n: 15_000,
                m: 240_000,
                alpha: 2.4967,
                overlay: 24,
            },
            seed: 10,
        },
        // -- Synthetic random graphs (GTgraph families) --------------------
        Dataset {
            name: "SSCA",
            kind: Synthetic,
            paper_vertices: 100_000,
            paper_edges: 3_405_676,
            paper_alpha: 7.2754,
            paper_kmax: 4950,
            gen: Ssca {
                n: 20_000,
                max_clique: 20,
                inter: 2.0,
            },
            seed: 11,
        },
        Dataset {
            name: "ER",
            kind: Synthetic,
            paper_vertices: 100_000,
            paper_edges: 4_837_534,
            paper_alpha: 63.6944,
            paper_kmax: 3,
            gen: Er {
                n: 20_000,
                p: 0.0012,
            },
            seed: 12,
        },
        Dataset {
            name: "R-MAT",
            kind: Synthetic,
            paper_vertices: 100_000,
            paper_edges: 2_571_986,
            paper_alpha: 24.653,
            paper_kmax: 2964,
            gen: Rmat {
                scale: 14,
                m: 120_000,
            },
            seed: 13,
        },
        // Not a paper dataset: the sharded-serving workload (one planted
        // dense cluster per shard-sized block, density skewed so bound
        // pruning has sparse shards to skip). `paper_*` fields describe
        // the generated graph itself (scale 1.0).
        Dataset {
            name: "MultiComm",
            kind: Synthetic,
            paper_vertices: 2048,
            paper_edges: 21_000,
            paper_alpha: 0.0,
            paper_kmax: 0,
            gen: MultiCommunity {
                blocks: 8,
                block_size: 256,
            },
            seed: 17,
        },
        // -- Appendix-E extras ---------------------------------------------
        Dataset {
            name: "Flickr",
            kind: Extra,
            paper_vertices: 214_698,
            paper_edges: 2_096_306,
            paper_alpha: 2.4,
            paper_kmax: 0,
            gen: ChungLu {
                n: 15_000,
                m: 146_000,
                alpha: 2.4,
                overlay: 20,
            },
            seed: 14,
        },
        Dataset {
            name: "Google",
            kind: Extra,
            paper_vertices: 875_713,
            paper_edges: 4_322_051,
            paper_alpha: 2.5,
            paper_kmax: 0,
            gen: ChungLu {
                n: 30_000,
                m: 148_000,
                alpha: 2.5,
                overlay: 20,
            },
            seed: 15,
        },
        Dataset {
            name: "Foursquare",
            kind: Extra,
            paper_vertices: 2_127_093,
            paper_edges: 8_640_352,
            paper_alpha: 2.5,
            paper_kmax: 0,
            gen: ChungLu {
                n: 30_000,
                m: 122_000,
                alpha: 2.5,
                overlay: 20,
            },
            seed: 16,
        },
    ]
}

/// Looks a dataset up by (case-insensitive) name.
pub fn dataset(name: &str) -> Option<Dataset> {
    all_datasets()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_paper_tables() {
        let all = all_datasets();
        assert_eq!(all.len(), 17);
        assert_eq!(
            all.iter()
                .filter(|d| d.kind == DatasetKind::SmallReal)
                .count(),
            5
        );
        assert_eq!(
            all.iter()
                .filter(|d| d.kind == DatasetKind::LargeReal)
                .count(),
            5
        );
        assert_eq!(
            all.iter()
                .filter(|d| d.kind == DatasetKind::Synthetic)
                .count(),
            4
        );
        assert_eq!(
            all.iter().filter(|d| d.kind == DatasetKind::Extra).count(),
            3
        );
    }

    #[test]
    fn small_datasets_are_full_scale() {
        for d in all_datasets() {
            if d.kind == DatasetKind::SmallReal {
                assert!((d.scale() - 1.0).abs() < 1e-9, "{} not full scale", d.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(dataset("yeast").is_some());
        assert!(dataset("UK-2002").is_some());
        assert!(dataset("multicomm").is_some());
        assert!(dataset("nope").is_none());
    }

    #[test]
    fn generation_hits_size_targets() {
        let d = dataset("Yeast").unwrap();
        let g = d.generate();
        assert_eq!(g.num_vertices(), 1116);
        // Chung–Lu loses some edges to dedup; stay within 20%.
        let m = g.num_edges() as f64;
        assert!((m - 2148.0).abs() < 0.2 * 2148.0, "m = {m}");
    }

    #[test]
    fn generation_is_deterministic() {
        let d = dataset("As-733").unwrap();
        assert_eq!(d.generate(), d.generate());
    }
}
