//! R-MAT recursive-matrix generator (Chakrabarti, Zhan, Faloutsos; the
//! GTgraph "R-MAT" model the paper uses for its power-law synthetic graph).
//!
//! Each edge picks a quadrant of the adjacency matrix with probabilities
//! (a, b, c, d) recursively until a single cell remains; skew in `a`
//! produces heavy-tailed degrees.

use dsd_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameters. GTgraph defaults: a = 0.45, b = 0.15, c = 0.15,
/// d = 0.25.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.15,
            c: 0.15,
            d: 0.25,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and `m` edge draws
/// (duplicates and self-loops are dropped, so the final edge count is
/// slightly lower — same behaviour as GTgraph).
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> Graph {
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "R-MAT probabilities must sum to 1"
    );
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        let mut half = n / 2;
        while half >= 1 {
            let r: f64 = rng.gen();
            // Independent ±10% noise per quadrant per level, like GTgraph,
            // to avoid exact self-similarity artifacts.
            let a = params.a * (0.9 + 0.2 * rng.gen::<f64>());
            let bq = params.b * (0.9 + 0.2 * rng.gen::<f64>());
            let cq = params.c * (0.9 + 0.2 * rng.gen::<f64>());
            let dq = params.d * (0.9 + 0.2 * rng.gen::<f64>());
            let total = a + bq + cq + dq;
            let r = r * total;
            if r < a {
                // top-left
            } else if r < a + bq {
                v += half;
            } else if r < a + bq + cq {
                u += half;
            } else {
                u += half;
                v += half;
            }
            half /= 2;
        }
        if u != v {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = rmat(8, 2000, RmatParams::default(), 5);
        let b = rmat(8, 2000, RmatParams::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn size_bounds() {
        let g = rmat(10, 5000, RmatParams::default(), 1);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() <= 5000);
        assert!(
            g.num_edges() > 2000,
            "too many collisions: {}",
            g.num_edges()
        );
    }

    fn top_decile_share(g: &Graph) -> f64 {
        let mut degs = g.degrees();
        degs.sort_unstable_by(|x, y| y.cmp(x));
        let top: usize = degs.iter().take(g.num_vertices() / 10).sum();
        let total: usize = degs.iter().sum();
        top as f64 / total as f64
    }

    #[test]
    fn degrees_are_skewed_relative_to_er() {
        // With the (0.45, 0.15, 0.15, 0.25) defaults the top decile carries
        // ≈25% of half-edges; a uniform G(n, p) of the same size carries
        // ≈10–13%. The paper's Fig. 13–14 contrast rests on this gap.
        let g = rmat(10, 8000, RmatParams::default(), 9);
        let flat = crate::er::er(1024, 8000.0 / (1024.0 * 1023.0 / 2.0), 9);
        let skew = top_decile_share(&g);
        let base = top_decile_share(&flat);
        assert!(
            skew > 1.5 * base,
            "R-MAT top-decile {skew:.3} vs ER {base:.3}"
        );
    }
}
