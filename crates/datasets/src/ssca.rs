//! SSCA#2-style generator: random-size planted cliques with inter-clique
//! noise (the GTgraph "SSCA" model — "made by random-sized cliques").

use dsd_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an SSCA#2-like graph: vertices are partitioned into cliques of
/// size `1..=max_clique`, then each vertex gains `inter_edges` random
/// inter-clique edges on average.
pub fn ssca(n: usize, max_clique: usize, inter_edges: f64, seed: u64) -> Graph {
    assert!(max_clique >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Partition into cliques.
    let mut start = 0usize;
    while start < n {
        let size = rng.gen_range(1..=max_clique).min(n - start);
        for u in start..start + size {
            for v in (u + 1)..start + size {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
        start += size;
    }
    // Inter-clique noise.
    let extra = (n as f64 * inter_edges / 2.0) as usize;
    for _ in 0..extra {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(ssca(200, 10, 1.0, 3), ssca(200, 10, 1.0, 3));
    }

    #[test]
    fn contains_planted_cliques() {
        // With max_clique = 8 and no noise, kmax (edge core) should be 7
        // with high probability over a 500-vertex run.
        let g = ssca(500, 8, 0.0, 11);
        let dec = dsd_core_free_kcore(&g);
        assert_eq!(dec, 7, "largest planted clique should be size 8");
    }

    /// Minimal local core-number computation so this crate stays
    /// independent of dsd-core: peel by degree, return kmax.
    fn dsd_core_free_kcore(g: &Graph) -> usize {
        let n = g.num_vertices();
        let mut deg = g.degrees();
        let mut alive = vec![true; n];
        let mut kmax = 0usize;
        for _ in 0..n {
            let v = (0..n)
                .filter(|&v| alive[v])
                .min_by_key(|&v| deg[v])
                .unwrap();
            kmax = kmax.max(deg[v]);
            alive[v] = false;
            for &u in g.neighbors(v as VertexId) {
                if alive[u as usize] {
                    deg[u as usize] -= 1;
                }
            }
        }
        kmax
    }

    #[test]
    fn noise_connects_cliques() {
        let quiet = ssca(300, 6, 0.0, 5);
        let noisy = ssca(300, 6, 2.0, 5);
        assert!(noisy.num_edges() > quiet.num_edges());
    }

    #[test]
    fn single_vertex_cliques_allowed() {
        let g = ssca(10, 1, 0.0, 1);
        assert_eq!(g.num_edges(), 0);
    }
}
