//! Offline stand-in for the tiny slice of the `rand` crate API the
//! workspace's generators use: `StdRng::seed_from_u64`, `gen::<f64>()`,
//! `gen_bool`, and `gen_range` over float/integer ranges.
//!
//! The container this repo builds in has no crates.io access, so the real
//! `rand` cannot be vendored; this path dependency keeps the generator code
//! source-identical to what it would be with the real crate. The generator
//! is SplitMix64 — deterministic per seed, statistically fine for synthetic
//! graph generation, **not** cryptographic.

use core::ops::{Range, RangeInclusive};

/// Seedable generators (the one constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a raw 64-bit generator.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from its standard distribution
    /// (`f64` ∈ [0, 1), full-width integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a `lo..hi` or `lo..=hi` range. Panics when
    /// the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let f: f64 = rng.gen();
        self.start + f * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is ≤ span/2^64 — irrelevant for graph synthesis.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64 behind the name the real crate uses for its default
    /// seedable generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Both endpoints of a small range are reachable.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
