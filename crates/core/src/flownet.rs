//! Flow-network constructions for the exact DSD algorithms.
//!
//! All constructions share the same decision semantics — after a max-flow
//! at guess density `α`, the source side `S` of a minimum st-cut satisfies
//! `S ≠ {s}` iff some subgraph has density **strictly greater than** `α`
//! (Lemma 14), and the graph vertices in `S \ {s}` induce such a subgraph.
//!
//! The primary constructor is factorised: [`build_store_network`] reads a
//! warm [`InstanceStore`]'s columns directly — each grouped row (a
//! multiplicity-weighted vertex set) becomes one Λ-side node, its members
//! CSR slice becomes the arcs, and the `s→v` capacities come from summing
//! the weight column — so building a `construct+`-shaped network
//! (Algorithm 7) costs one pass over the incidence CSR with **zero
//! instance re-enumeration**. Component networks (`CoreExact`'s shrinking
//! restarts) slice the same rows through the incidence CSR of the
//! component's members instead of re-running kClist per restart.
//!
//! The enumeration constructors remain as the streaming fallbacks (no
//! store materialized: byte budget exceeded, `u32` overflow, or a
//! store-less oracle) and as the differential references the factorised
//! path is tested bit-identical against:
//!
//! * [`build_edge_network`] — Goldberg's simplified network for h = 2
//!   (Section 4.1's remark): `s→v` cap `m`, `v→t` cap `m + 2α − deg(v)`,
//!   `u↔v` cap 1 per edge. Always used for h = 2: the graph's own CSR
//!   already *is* the factorised representation of its edge set;
//! * [`build_clique_network`] — Algorithm 1 lines 5–15 for h ≥ 3:
//!   one node per (h−1)-clique instance ψ, `ψ→v` cap ∞ for `v ∈ ψ`,
//!   `v→ψ` cap 1 when `ψ ∪ {v}` is an h-clique;
//! * [`build_pattern_network`] — Algorithm 8 (one node per pattern
//!   instance, `v→ψ` cap 1, `ψ→v` cap `|VΨ|−1`) and Algorithm 7's
//!   historical materialize-then-hash-group `construct+` variant (one
//!   node per *group* of instances sharing a vertex set, capacities
//!   scaled by `|g|`), selected by `grouped`. Units are minted in
//!   canonical vertex-set order, so node ids, checkpoints, and structure
//!   fingerprints are stable across runs and identical to the
//!   store-built network's.
//!
//! Only the `v→t` capacities depend on α — monotone *non-decreasingly* —
//! so a network is built once per candidate subgraph and each
//! binary-search guess is served by the parametric machinery of
//! `dsd_flow::parametric`: [`DensityNetwork::solve`] keeps one solver
//! allocation alive across the probe sequence, checkpoints the flow state
//! of feasible probes (whose α becomes the search's lower bound), and
//! warm-[`resolve`](dsd_flow::MaxFlow::resolve)s every probe whose α
//! dominates the checkpoint instead of paying a from-scratch max-flow —
//! the Gallo–Grigoriadis–Tarjan amortization \[29\] the paper cites as
//! the classical EDS machinery.
//!
//! Networks also outlive a single α-search: the engine's epoch-keyed
//! `NetworkCache` lends them out through the crate-private
//! `NetworkLender` trait, so a repeat
//! request on the same (graph, Ψ) epoch warm-resolves an already-built
//! network. [`DensityNetwork::bytes`] reports their resident size for the
//! serving layer's byte governor; [`DensityNetwork::reset_probe_stats`]
//! fences the reuse accounting between borrowing requests.

use dsd_flow::{
    min_cut_source_side, Dinic, EdgeId, FlowNetwork, MaxFlow, NodeId, ParametricSolver,
    ResolveStats,
};
use dsd_graph::{Graph, InducedSubgraph, VertexId, VertexSet};
use dsd_motif::store::InstanceStore;
use dsd_motif::{kclist, pattern_enum, Pattern};

/// Which max-flow backend solves the min-cut probes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FlowBackend {
    /// Dinic blocking flow (default; matches the reference implementations).
    #[default]
    Dinic,
    /// Highest-label push-relabel with gap heuristic.
    PushRelabel,
}

impl FlowBackend {
    /// Instantiates the backend's solver. Called once per probe
    /// *sequence* (a [`ParametricSolver`] keeps it alive across probes),
    /// not once per probe.
    pub(crate) fn solver(self) -> Box<dyn MaxFlow + Send> {
        match self {
            FlowBackend::Dinic => Box::new(Dinic::new()),
            FlowBackend::PushRelabel => Box::new(dsd_flow::PushRelabel::new()),
        }
    }
}

/// A parametric checkpoint: the network's flow state right after a probe
/// at `alpha`, restorable for any later probe with α ≥ `alpha`.
struct Checkpoint {
    alpha: f64,
    flows: Vec<f64>,
}

/// How a probe gets its flow state.
enum ProbeMode {
    /// Continue from the previous probe's flow (α non-decreasing).
    Resolve,
    /// Restore the checkpointed flow (α dominates the checkpoint's).
    Restore,
    /// From scratch.
    Cold,
}

/// A density-decision flow network over an induced subgraph.
pub struct DensityNetwork {
    net: FlowNetwork,
    s: NodeId,
    t: NodeId,
    /// Parent-graph ids of the vertex nodes; node id of `members[i]` is
    /// `i + 1`.
    members: Vec<VertexId>,
    /// `v→t` edge per vertex plus its α-free base capacity.
    alpha_edges: Vec<(EdgeId, f64)>,
    /// Multiplier applied to α on `v→t` edges (`|VΨ|`, or 2 for Goldberg).
    alpha_scale: f64,
    /// α of the previous probe, for direct warm resolves.
    last_alpha: Option<f64>,
    /// Whether parametric reuse is enabled (see [`Self::set_warm_start`]).
    warm_start: bool,
    /// The probe sequence's solver — one allocation, kept across probes.
    solver: Option<(FlowBackend, ParametricSolver)>,
    /// Flow state at the search's current lower bound (see
    /// [`Self::checkpoint`]).
    checkpoint: Option<Checkpoint>,
    /// Reuse counters from solvers already retired (backend switches).
    retired_stats: ResolveStats,
    /// Accounting already reported to earlier borrowers of a cached
    /// network (see [`Self::reset_probe_stats`]); subtracted from
    /// [`Self::probe_stats`] so each request reports only its own probes.
    stats_baseline: ResolveStats,
    /// Scratch: edge ids whose capacity the current probe changed.
    changed: Vec<EdgeId>,
    /// All α-edge ids, precomputed for the checkpoint-restore path.
    all_alpha_ids: Vec<EdgeId>,
}

impl DensityNetwork {
    fn new(
        net: FlowNetwork,
        s: NodeId,
        t: NodeId,
        members: Vec<VertexId>,
        alpha_edges: Vec<(EdgeId, f64)>,
        alpha_scale: f64,
    ) -> Self {
        let all_alpha_ids = alpha_edges.iter().map(|&(e, _)| e).collect();
        DensityNetwork {
            net,
            s,
            t,
            members,
            alpha_edges,
            alpha_scale,
            last_alpha: None,
            warm_start: true,
            solver: None,
            checkpoint: None,
            retired_stats: ResolveStats::default(),
            stats_baseline: ResolveStats::default(),
            changed: Vec::new(),
            all_alpha_ids,
        }
    }

    /// Number of flow nodes (the Figure-9 metric).
    pub fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    /// Number of directed (forward) edges.
    pub fn num_edges(&self) -> usize {
        self.net.num_edges()
    }

    /// Number of graph vertices carried by the network.
    pub fn num_vertices(&self) -> usize {
        self.members.len()
    }

    /// Enables or disables parametric flow reuse (default: on).
    ///
    /// Only the `v→t` capacities depend on α, and they *increase* with α,
    /// so a probe whose α dominates the last probe (or the checkpointed
    /// lower bound) keeps a feasible flow and only augments the delta —
    /// Gallo–Grigoriadis–Tarjan \[29\]. Disabling forces every probe to a
    /// from-scratch solve (the differential baseline).
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.warm_start = enabled;
        if !enabled {
            self.checkpoint = None;
            self.last_alpha = None;
        }
    }

    /// Lifetime probe-reuse accounting, including probes already reported
    /// to earlier borrowers of a cached network.
    fn lifetime_stats(&self) -> ResolveStats {
        let mut stats = self.retired_stats;
        if let Some((_, solver)) = &self.solver {
            stats += solver.stats();
        }
        stats
    }

    /// Probe-reuse accounting since the last [`Self::reset_probe_stats`]
    /// (network construction, if never reset) — the per-request view a
    /// borrowing solver folds into its `ExactStats`.
    pub fn probe_stats(&self) -> ResolveStats {
        let total = self.lifetime_stats();
        let base = self.stats_baseline;
        ResolveStats {
            probes: total.probes - base.probes,
            resolve_hits: total.resolve_hits - base.resolve_hits,
            augment_work: total.augment_work - base.augment_work,
        }
    }

    /// Fences the probe accounting: later [`Self::probe_stats`] calls
    /// report only probes run after this point. The network cache calls
    /// this when lending a warm network out, so a request never
    /// double-counts a previous borrower's probes.
    pub fn reset_probe_stats(&mut self) {
        self.stats_baseline = self.lifetime_stats();
    }

    /// Estimated resident heap bytes of the network: the edge/adjacency
    /// arrays, member and α-edge tables, and any checkpointed flow. This
    /// is what the engine's network cache reports into `resident_bytes`
    /// for the serving layer's byte governor.
    pub fn bytes(&self) -> usize {
        // Forward + reverse edge records (`Edge {to: u32, cap: f64,
        // flow: f64}` pads to 24 bytes) plus one u32 adjacency-list slot
        // each, plus a Vec header per node.
        let raw_edges = 2 * self.net.num_edges();
        let mut bytes = raw_edges * (24 + std::mem::size_of::<EdgeId>())
            + self.net.num_nodes() * std::mem::size_of::<Vec<EdgeId>>()
            + self.members.len() * std::mem::size_of::<VertexId>()
            + self.alpha_edges.len() * std::mem::size_of::<(EdgeId, f64)>()
            + self.all_alpha_ids.len() * std::mem::size_of::<EdgeId>();
        if let Some(ck) = &self.checkpoint {
            bytes += ck.flows.len() * std::mem::size_of::<f64>();
        }
        bytes
    }

    /// FNV-1a fingerprint of the network's α-independent structure: node
    /// count, terminals, α-scale, every forward edge (endpoints and base
    /// capacity), the α-edge table, and the member mapping. Two builds of
    /// the same logical network — enumeration-built or store-built —
    /// must agree bit-for-bit; flow state and solver history are
    /// excluded, so warm and cold copies of one network also agree.
    pub fn structure_fingerprint(&self) -> u64 {
        let mut is_alpha = vec![false; self.net.num_edges()];
        for &(e, _) in &self.alpha_edges {
            is_alpha[(e / 2) as usize] = true;
        }
        let mut h = Fnv::new();
        h.write_u64(self.net.num_nodes() as u64);
        h.write_u64(self.s as u64);
        h.write_u64(self.t as u64);
        h.write_u64(self.alpha_scale.to_bits());
        for (i, (from, e)) in self.net.forward_edges().enumerate() {
            h.write_u64(from as u64);
            h.write_u64(e.to as u64);
            // α-edges mutate their cap per probe; their α-free base is
            // hashed from the table below instead.
            if !is_alpha[i] {
                h.write_u64(e.cap.to_bits());
            }
        }
        for &(e, base) in &self.alpha_edges {
            h.write_u64(e as u64);
            h.write_u64(base.to_bits());
        }
        for &v in &self.members {
            h.write_u64(v as u64);
        }
        h.finish()
    }

    /// Checkpoints the current flow state for parametric restarts.
    ///
    /// Soundness rule: a checkpoint taken at α may seed any later probe
    /// with α′ ≥ α (capacities only grow from α to α′, so the stored flow
    /// stays feasible). The α-search loop probes strictly above its lower
    /// bound, so callers checkpoint exactly when a probe's α *becomes*
    /// the lower bound: [`Self::solve`] does it on every feasible probe;
    /// seed probes at the initial lower bound call this directly.
    pub fn checkpoint(&mut self) {
        if !self.warm_start {
            return;
        }
        let Some(alpha) = self.last_alpha else { return };
        let mut flows = match self.checkpoint.take() {
            Some(ck) => ck.flows,
            None => Vec::new(),
        };
        self.net.save_flows(&mut flows);
        self.checkpoint = Some(Checkpoint { alpha, flows });
    }

    /// Applies α to the `v→t` capacities, recording which edges changed.
    fn apply_alpha(&mut self, alpha: f64) {
        debug_assert!(
            alpha.is_finite(),
            "non-finite α {alpha} (check tolerance/bounds math)"
        );
        self.changed.clear();
        let scale = self.alpha_scale;
        for i in 0..self.alpha_edges.len() {
            let (e, base) = self.alpha_edges[i];
            let cap = (base + scale * alpha).max(0.0);
            if self.net.edge(e).cap != cap {
                self.net.set_cap(e, cap);
                self.changed.push(e);
            }
        }
    }

    /// Runs one min-cut probe at `alpha`, choosing the cheapest sound
    /// flow-reuse mode, and leaves the network in the post-probe residual
    /// state.
    fn probe(&mut self, alpha: f64, backend: FlowBackend) {
        // A backend switch retires the old solver *and* its flow state —
        // the two backends' (pre)flow conventions must never mix.
        let matches_backend = matches!(&self.solver, Some((b, _)) if *b == backend);
        if !matches_backend {
            if let Some((_, old)) = self.solver.take() {
                self.retired_stats += old.stats();
            }
            self.solver = Some((backend, ParametricSolver::new(backend.solver())));
            self.checkpoint = None;
            self.last_alpha = None;
        }
        let mode = if !self.warm_start {
            ProbeMode::Cold
        } else if self.last_alpha.is_some_and(|last| alpha >= last) {
            ProbeMode::Resolve
        } else if self.checkpoint.as_ref().is_some_and(|ck| ck.alpha <= alpha) {
            ProbeMode::Restore
        } else {
            ProbeMode::Cold
        };
        self.apply_alpha(alpha);
        let (_, solver) = self.solver.as_mut().expect("solver installed above");
        match mode {
            ProbeMode::Resolve => {
                let _ = solver.resolve(&mut self.net, self.s, self.t, &self.changed);
            }
            ProbeMode::Restore => {
                let ck = self.checkpoint.as_ref().expect("restore mode");
                self.net.restore_flows(&ck.flows);
                // Relative to the checkpoint every α-edge may have moved
                // (non-decreasingly); pass them all.
                let _ = solver.resolve(&mut self.net, self.s, self.t, &self.all_alpha_ids);
            }
            ProbeMode::Cold => {
                let _ = solver.solve(&mut self.net, self.s, self.t);
            }
        }
        self.last_alpha = Some(alpha);
    }

    /// The min-cut source side at guess `alpha` as parent-graph vertex
    /// ids (`S \ {s}`, instance nodes dropped), regardless of whether the
    /// cut is non-trivial. Does **not** checkpoint — callers with their
    /// own feasibility rule (the pinned query variant) decide that.
    pub fn min_cut_side(&mut self, alpha: f64, backend: FlowBackend) -> Vec<VertexId> {
        self.probe(alpha, backend);
        let side = min_cut_source_side(&self.net, self.s);
        side.iter()
            .filter(|&&node| node != self.s && (node as usize) <= self.members.len())
            .map(|&node| self.members[node as usize - 1])
            .collect()
    }

    /// Capacity of the cut the last probe left behind (Σ caps of edges
    /// from the residual-reachable side to the rest) — the
    /// differential-test invariant that must not depend on how the flow
    /// state was reached.
    pub fn cut_value(&self) -> f64 {
        // Same reachable set the witness extraction uses — the cut and
        // the witness must never come from different reachability rules.
        let mut seen = vec![false; self.net.num_nodes()];
        for node in min_cut_source_side(&self.net, self.s) {
            seen[node as usize] = true;
        }
        let mut cap = 0.0;
        for (from, e) in self.net.forward_edges() {
            if seen[from as usize] && !seen[e.to as usize] {
                cap += e.cap;
            }
        }
        cap
    }

    /// Decides whether some subgraph beats density `alpha`.
    ///
    /// Returns `Some(vertices)` (parent-graph ids of `S \ {s}`) when such a
    /// subgraph exists, `None` otherwise. Feasible probes checkpoint the
    /// flow state (their α is the search's new lower bound).
    pub fn solve(&mut self, alpha: f64, backend: FlowBackend) -> Option<Vec<VertexId>> {
        let vertices = self.min_cut_side(alpha, backend);
        if vertices.is_empty() {
            None
        } else {
            self.checkpoint();
            Some(vertices)
        }
    }
}

/// Minimal FNV-1a accumulator for the structure fingerprints and the
/// engine's network-cache member keys (stable across runs and processes,
/// unlike the std `RandomState` hashers).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// A pool lending out already-built [`DensityNetwork`]s, keyed by the
/// member set (and pinned query set) the network was built over — the
/// engine's epoch-keyed network cache implements this. `take` transfers
/// ownership to the borrower (concurrent requests each get their own
/// network or a miss, never a shared one); `put` returns it for the next
/// request once the borrower's α-search is done.
pub(crate) trait NetworkLender {
    /// Removes and returns the cached network for `(members, pinned)`,
    /// if one is resident. Implementations reset its probe accounting
    /// before handing it out.
    fn take(&self, members: &[VertexId], pinned: &[VertexId]) -> Option<DensityNetwork>;

    /// Returns a network to the pool under `(members, pinned)`.
    fn put(&self, members: &[VertexId], pinned: &[VertexId], net: DensityNetwork);
}

/// Builds the `construct+`-shaped network (Algorithm 7) for the store's Ψ
/// over `g[members]` straight from the [`InstanceStore`] columns — the
/// factorised path: no instance enumeration, no hash grouping. Each live
/// store row whose members all lie in `members` becomes one unit node
/// with its multiplicity as the weight; `s→v` capacities are the row
/// weights summed per member. Rows are collected once each by walking the
/// incidence CSR with min-member ownership and minted in canonical
/// vertex-set order, so the result is structurally identical
/// ([`DensityNetwork::structure_fingerprint`]) to
/// [`build_pattern_network`]'s grouped network over the same subgraph.
pub fn build_store_network(
    g: &Graph,
    members: &[VertexId],
    store: &InstanceStore,
) -> DensityNetwork {
    let size = store.psi_size();
    let mut members: Vec<VertexId> = members.to_vec();
    members.sort_unstable();
    members.dedup();
    let n = members.len();
    let alive = VertexSet::from_members(g.num_vertices(), &members);
    // Global→local vertex map; the map is monotone, so global id order
    // (store rows are id-sorted) equals local id order and the minted
    // units compare identically to the enumeration path's local-id sort.
    let mut local = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in members.iter().enumerate() {
        local[v as usize] = i as u32;
    }

    // Collect each live member-internal row exactly once: `v` owns the
    // rows whose minimum member it is (members columns are id-sorted).
    let mut rows: Vec<u32> = Vec::new();
    for &v in &members {
        for &row in store.incidence(v) {
            let r = row as usize;
            if store.members(r)[0] == v && store.row_live(r, &alive) {
                rows.push(row);
            }
        }
    }
    // Canonical unit order: by vertex set. Grouped rows have distinct
    // member sets, so the order (and thus every node id downstream) is a
    // total order independent of CSR layout.
    rows.sort_unstable_by(|&a, &b| store.members(a as usize).cmp(store.members(b as usize)));

    let mut deg = vec![0u64; n];
    for &row in &rows {
        let r = row as usize;
        let w = store.weight(r);
        for &v in store.members(r) {
            deg[local[v as usize] as usize] += w;
        }
    }

    let s: NodeId = 0;
    let t: NodeId = (n + rows.len() + 1) as NodeId;
    let mut net = FlowNetwork::new(n + rows.len() + 2);
    let mut alpha_edges = Vec::with_capacity(n);
    for (v, &dv) in deg.iter().enumerate() {
        let node = (v + 1) as NodeId;
        net.add_edge(s, node, dv as f64);
        let e = net.add_edge(node, t, 0.0);
        alpha_edges.push((e, 0.0));
    }
    for (i, &row) in rows.iter().enumerate() {
        let r = row as usize;
        let unit_node = (n + 1 + i) as NodeId;
        let weight = store.weight(r);
        for &v in store.members(r) {
            let node = (local[v as usize] + 1) as NodeId;
            net.add_edge(node, unit_node, weight as f64);
            net.add_edge(unit_node, node, (weight * (size as u64 - 1)) as f64);
        }
    }
    DensityNetwork::new(net, s, t, members, alpha_edges, size as f64)
}

/// Builds Goldberg's h = 2 network over `g[members]`.
pub fn build_edge_network(g: &Graph, members: &[VertexId]) -> DensityNetwork {
    let sub = InducedSubgraph::new(g, members);
    let n = sub.graph.num_vertices();
    let m = sub.graph.num_edges() as f64;
    let s: NodeId = 0;
    let t: NodeId = (n + 1) as NodeId;
    let mut net = FlowNetwork::with_capacity(n + 2, 2 * sub.graph.num_edges() + 2 * n);
    let mut alpha_edges = Vec::with_capacity(n);
    for v in 0..n {
        let node = (v + 1) as NodeId;
        net.add_edge(s, node, m);
        // cap = m + 2α − deg(v): base m − deg(v), α-scale 2.
        let base = m - sub.graph.degree(v as VertexId) as f64;
        let e = net.add_edge(node, t, 0.0);
        alpha_edges.push((e, base));
    }
    for (u, v) in sub.graph.edges() {
        net.add_edge((u + 1) as NodeId, (v + 1) as NodeId, 1.0);
        net.add_edge((v + 1) as NodeId, (u + 1) as NodeId, 1.0);
    }
    DensityNetwork::new(net, s, t, sub.orig, alpha_edges, 2.0)
}

/// Builds the Section-6.3 *pinned* Goldberg network over `g` (already the
/// anchored subgraph): `s→q` has capacity ∞ for every `q ∈ pinned`, so
/// every min cut keeps the pinned vertices on the source side; all other
/// capacities match [`build_edge_network`]. Feasibility is decided by the
/// caller from the returned side's density (the ∞ pins make the trivial
/// `S = {s}` cut impossible), via [`DensityNetwork::min_cut_side`].
pub fn build_query_network(g: &Graph, pinned: &[VertexId]) -> DensityNetwork {
    let n = g.num_vertices();
    let m = g.num_edges() as f64;
    let s: NodeId = 0;
    let t: NodeId = (n + 1) as NodeId;
    let mut net = FlowNetwork::with_capacity(n + 2, 2 * g.num_edges() + 2 * n);
    let mut is_pinned = vec![false; n];
    for &q in pinned {
        is_pinned[q as usize] = true;
    }
    let mut alpha_edges = Vec::with_capacity(n);
    for (v, &pinned) in is_pinned.iter().enumerate() {
        let node = (v + 1) as NodeId;
        let s_cap = if pinned { FlowNetwork::INF } else { m };
        net.add_edge(s, node, s_cap);
        let base = m - g.degree(v as VertexId) as f64;
        let e = net.add_edge(node, t, 0.0);
        alpha_edges.push((e, base));
    }
    for (u, v) in g.edges() {
        net.add_edge((u + 1) as NodeId, (v + 1) as NodeId, 1.0);
        net.add_edge((v + 1) as NodeId, (u + 1) as NodeId, 1.0);
    }
    DensityNetwork::new(net, s, t, g.vertices().collect(), alpha_edges, 2.0)
}

/// Builds the Algorithm-1 network for the h-clique (`h ≥ 3`) over
/// `g[members]`.
pub fn build_clique_network(g: &Graph, members: &[VertexId], h: usize) -> DensityNetwork {
    assert!(h >= 3, "use build_edge_network for h = 2");
    let sub = InducedSubgraph::new(g, members);
    let n = sub.graph.num_vertices();
    let alive = VertexSet::full(n);
    let deg = kclist::clique_degrees_within(&sub.graph, h, &alive);

    // Collect Λ = (h−1)-clique instances.
    let mut lambda: Vec<Vec<VertexId>> = Vec::new();
    kclist::for_each_clique_within(&sub.graph, h - 1, &alive, |c| {
        lambda.push(c.to_vec());
    });

    let s: NodeId = 0;
    let t: NodeId = (n + lambda.len() + 1) as NodeId;
    let mut net = FlowNetwork::new(n + lambda.len() + 2);
    let mut alpha_edges = Vec::with_capacity(n);
    for (v, &dv) in deg.iter().enumerate() {
        let node = (v + 1) as NodeId;
        net.add_edge(s, node, dv as f64);
        let e = net.add_edge(node, t, 0.0);
        alpha_edges.push((e, 0.0));
    }
    let mut scratch: Vec<VertexId> = Vec::new();
    for (i, psi) in lambda.iter().enumerate() {
        let psi_node = (n + 1 + i) as NodeId;
        for &v in psi {
            net.add_edge(psi_node, (v + 1) as NodeId, FlowNetwork::INF);
        }
        // v → ψ when ψ ∪ {v} is an h-clique: v adjacent to every member.
        scratch.clear();
        common_neighbors(&sub.graph, psi, &mut scratch);
        for &v in &scratch {
            net.add_edge((v + 1) as NodeId, psi_node, 1.0);
        }
    }
    DensityNetwork::new(net, s, t, sub.orig, alpha_edges, h as f64)
}

/// Vertices adjacent to every member of `clique` (excluding the members).
fn common_neighbors(g: &Graph, clique: &[VertexId], out: &mut Vec<VertexId>) {
    debug_assert!(!clique.is_empty());
    // Start from the smallest neighbourhood.
    let &anchor = clique
        .iter()
        .min_by_key(|&&v| g.degree(v))
        .expect("non-empty clique");
    'cand: for &v in g.neighbors(anchor) {
        if clique.contains(&v) {
            continue;
        }
        for &u in clique {
            if u != anchor && !g.has_edge(v, u) {
                continue 'cand;
            }
        }
        out.push(v);
    }
}

/// Builds the pattern network over `g[members]`: Algorithm 8 when
/// `grouped = false`, `construct+` (Algorithm 7) when `grouped = true`.
pub fn build_pattern_network(
    g: &Graph,
    members: &[VertexId],
    psi: &Pattern,
    grouped: bool,
) -> DensityNetwork {
    let sub = InducedSubgraph::new(g, members);
    let n = sub.graph.num_vertices();
    let alive = VertexSet::full(n);
    let size = psi.vertex_count();
    let instances = pattern_enum::instances(&sub.graph, psi, &alive);
    let mut deg = vec![0u64; n];
    for inst in &instances {
        for &v in &inst.vertices {
            deg[v as usize] += 1;
        }
    }

    // (vertex set, weight |g|) per flow node: groups or single instances.
    let units: Vec<(Vec<VertexId>, u64)> = if grouped {
        let mut units: Vec<(Vec<VertexId>, u64)> = pattern_enum::group_instances(&instances)
            .into_iter()
            .map(|grp| (grp.vertices, grp.count))
            .collect();
        // Mint unit nodes in canonical vertex-set order. Groups have
        // distinct vertex sets, so this totally orders them regardless of
        // how the grouping enumerated — node ids, checkpoints, and
        // structure fingerprints become stable across runs and equal to
        // the store-built network's ([`build_store_network`]).
        units.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        units
    } else {
        instances
            .into_iter()
            .map(|inst| (inst.vertices, 1))
            .collect()
    };

    let s: NodeId = 0;
    let t: NodeId = (n + units.len() + 1) as NodeId;
    let mut net = FlowNetwork::new(n + units.len() + 2);
    let mut alpha_edges = Vec::with_capacity(n);
    for (v, &dv) in deg.iter().enumerate() {
        let node = (v + 1) as NodeId;
        net.add_edge(s, node, dv as f64);
        let e = net.add_edge(node, t, 0.0);
        alpha_edges.push((e, 0.0));
    }
    for (i, (vs, weight)) in units.iter().enumerate() {
        let unit_node = (n + 1 + i) as NodeId;
        for &v in vs {
            net.add_edge((v + 1) as NodeId, unit_node, *weight as f64);
            net.add_edge(
                unit_node,
                (v + 1) as NodeId,
                (*weight * (size as u64 - 1)) as f64,
            );
        }
    }
    DensityNetwork::new(net, s, t, sub.orig, alpha_edges, size as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(g: &Graph) -> Vec<VertexId> {
        g.vertices().collect()
    }

    /// Figure 1(a)'s EDS intuition: a 4-clique plus a tail. ρopt = 6/4.
    fn k4_tail() -> Graph {
        Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn edge_network_decides_density_threshold() {
        let g = k4_tail();
        let mut net = build_edge_network(&g, &all(&g));
        // ρopt = 1.5 (the K4): feasible below, infeasible at/above.
        let below = net.solve(1.4, FlowBackend::Dinic);
        assert!(below.is_some());
        let mut got = below.unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(net.solve(1.5, FlowBackend::Dinic).is_none());
        assert!(net.solve(2.0, FlowBackend::Dinic).is_none());
    }

    #[test]
    fn edge_network_backends_agree() {
        let g = k4_tail();
        let mut net = build_edge_network(&g, &all(&g));
        for alpha in [0.3, 0.9, 1.3, 1.49, 1.51, 1.9] {
            let a = net.solve(alpha, FlowBackend::Dinic).is_some();
            let b = net.solve(alpha, FlowBackend::PushRelabel).is_some();
            assert_eq!(a, b, "alpha = {alpha}");
        }
    }

    #[test]
    fn clique_network_matches_example_1() {
        // Example 1 / Figure 2: A-B, B-C, B-D, C-D with Ψ = triangle.
        // One triangle {B,C,D}: ρopt = 1/3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        let mut net = build_clique_network(&g, &all(&g), 3);
        // Λ = 4 edges (2-cliques) -> nodes: s + 4 vertices + 4 + t = 10.
        assert_eq!(net.num_nodes(), 10);
        let feasible = net.solve(0.2, FlowBackend::Dinic);
        assert!(feasible.is_some());
        let mut got = feasible.unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        assert!(net.solve(1.0 / 3.0, FlowBackend::Dinic).is_none());
    }

    #[test]
    fn clique_network_on_subset_uses_parent_ids() {
        let g = k4_tail();
        // Restrict to the K4 plus the tail vertex 4.
        let mut net = build_clique_network(&g, &[0, 1, 2, 3, 4], 3);
        let got = net.solve(0.5, FlowBackend::Dinic);
        let mut got = got.unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        // K4 triangle density = 4 triangles / 4 vertices = 1.
        assert!(net.solve(1.0, FlowBackend::Dinic).is_none());
    }

    #[test]
    fn pattern_network_matches_clique_semantics() {
        // For Ψ = triangle, the Algorithm-8 network must make the same
        // decisions as the Algorithm-1 network.
        let g = k4_tail();
        let psi = Pattern::triangle();
        let mut pnet = build_pattern_network(&g, &all(&g), &psi, false);
        let mut gnet = build_pattern_network(&g, &all(&g), &psi, true);
        let mut cnet = build_clique_network(&g, &all(&g), 3);
        for alpha in [0.1, 0.5, 0.9, 0.99, 1.0, 1.5] {
            let a = pnet.solve(alpha, FlowBackend::Dinic).is_some();
            let b = gnet.solve(alpha, FlowBackend::Dinic).is_some();
            let c = cnet.solve(alpha, FlowBackend::Dinic).is_some();
            assert_eq!(a, c, "ungrouped vs clique at {alpha}");
            assert_eq!(b, c, "grouped vs clique at {alpha}");
        }
    }

    #[test]
    fn warm_start_matches_cold_solves() {
        let g = k4_tail();
        // A binary-search-like α sequence: up, up, down, up.
        let alphas = [0.5, 1.0, 1.25, 0.9, 1.4, 1.6, 1.45];
        let mut warm = build_edge_network(&g, &all(&g));
        warm.set_warm_start(true);
        let mut cold = build_edge_network(&g, &all(&g));
        cold.set_warm_start(false);
        for &alpha in &alphas {
            let a = warm.solve(alpha, FlowBackend::Dinic);
            let b = cold.solve(alpha, FlowBackend::Dinic);
            assert_eq!(a.is_some(), b.is_some(), "alpha = {alpha}");
            if let (Some(mut va), Some(mut vb)) = (a, b) {
                va.sort_unstable();
                vb.sort_unstable();
                assert_eq!(va, vb, "alpha = {alpha}");
            }
        }
    }

    #[test]
    fn warm_start_on_clique_network() {
        let g = k4_tail();
        let mut warm = build_clique_network(&g, &all(&g), 3);
        let mut cold = build_clique_network(&g, &all(&g), 3);
        cold.set_warm_start(false);
        for &alpha in &[0.2, 0.6, 0.8, 0.3, 0.95, 1.0, 1.2] {
            assert_eq!(
                warm.solve(alpha, FlowBackend::Dinic).is_some(),
                cold.solve(alpha, FlowBackend::Dinic).is_some(),
                "alpha = {alpha}"
            );
        }
    }

    #[test]
    fn grouped_network_is_never_larger() {
        // K4: three 4-cycles share one vertex set -> grouping shrinks Λ.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (1, 3)]);
        let psi = Pattern::diamond();
        let ungrouped = build_pattern_network(&g, &all(&g), &psi, false);
        let grouped = build_pattern_network(&g, &all(&g), &psi, true);
        assert!(grouped.num_nodes() < ungrouped.num_nodes());
        assert_eq!(ungrouped.num_nodes(), 1 + 4 + 3 + 1);
        assert_eq!(grouped.num_nodes(), 1 + 4 + 1 + 1);
    }

    #[test]
    fn diamond_grouped_and_ungrouped_agree_on_decisions() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (0, 3),
                (0, 2),
                (1, 3),
                (3, 4),
                (4, 5),
            ],
        );
        let psi = Pattern::diamond();
        let mut a = build_pattern_network(&g, &all(&g), &psi, false);
        let mut b = build_pattern_network(&g, &all(&g), &psi, true);
        for alpha in [0.1, 0.4, 0.74, 0.76, 1.0] {
            assert_eq!(
                a.solve(alpha, FlowBackend::Dinic).is_some(),
                b.solve(alpha, FlowBackend::Dinic).is_some(),
                "alpha = {alpha}"
            );
        }
    }
}
