//! The global substrate governor: one byte budget over every engine.
//!
//! Each engine's substrate cache is grow-only between updates — left
//! alone, a catalog serving many graphs and patterns accumulates the sum
//! of *all* their instance stores and decompositions. The governor turns
//! that into a bounded working set: it observes every substrate touch
//! through [`CacheObserver`], keeps an LRU ledger of `(engine, canonical
//! Ψ)` entries with their cache-resident bytes, and when the total
//! crosses the budget it evicts the least-recently-used unpinned entry by
//! calling back into [`DsdEngine::evict_substrate`].
//!
//! Substrates are the factorised materialized views of the serving layer:
//! expensive to build, cheap to share, and — because every consumer holds
//! its own `Arc` — always safe to drop from the cache. Eviction severs
//! only the cache's reference; an in-flight request that already resolved
//! its oracle finishes on it untouched, and the bytes return when the
//! last holder drops. [`SubstrateLease`] adds a working-set pin on top:
//! the pipeline pins the entry a request is about to use so the LRU never
//! thrashes an entry mid-request (the "epoch lease" — safety never
//! depends on it, residency does).
//!
//! Lock order: the governor may take an engine's cache lock (via
//! `evict_substrate`) while holding its own mutex; engines never enter
//! the governor while holding their locks (see [`CacheObserver`]). One
//! subtlety is handled explicitly: upgrading a [`Weak`] engine handle
//! inside the governor's critical section could make this thread the
//! *last* strong reference — dropping it would run the engine's `Drop`,
//! which calls back into the governor and would self-deadlock. Every
//! method therefore defers dropping upgraded handles until after its
//! guard is released.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, Weak};

use crate::engine::{CacheObserver, DsdEngine, PatternKey};

/// One ledgered cache entry: the engine epoch it belongs to, its
/// cache-resident bytes, and its LRU stamp.
struct Entry {
    epoch: u64,
    bytes: u64,
    last_used: u64,
}

#[derive(Default)]
struct GovState {
    /// Engines under governance, by id. `Weak`: the governor must never
    /// keep an evicted engine alive (its `Drop` is what reports the
    /// bytes back).
    engines: HashMap<u64, Weak<DsdEngine<'static>>>,
    /// The ledger: cache-resident bytes per `(engine, canonical Ψ)`.
    entries: HashMap<(u64, PatternKey), Entry>,
    /// Working-set pins held by in-flight requests ([`SubstrateLease`]).
    /// Kept separate from `entries` so a pin outlives ledger churn.
    pins: HashMap<(u64, PatternKey), u32>,
    /// Keys the governor evicted, pending their rebuild (distinguishes a
    /// governor-induced rebuild from a plain cold build in the counters).
    evicted: HashSet<(u64, PatternKey)>,
    /// Logical clock for LRU stamps.
    tick: u64,
    /// Ledger total (Σ `entries[*].bytes`).
    total: u64,
    /// Max ledger total observed at settlement points (after budget
    /// enforcement — the resident footprint the budget actually bounds).
    peak: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    rebuilds: u64,
    violations: u64,
}

/// Cumulative governor counters, from [`SubstrateGovernor::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Requests served from a governed substrate cache.
    pub hits: u64,
    /// Requests that paid a cold substrate build.
    pub misses: u64,
    /// LRU evictions performed to stay under budget.
    pub evictions: u64,
    /// Of the misses, rebuilds of an entry the governor itself evicted —
    /// the thrash signal (a budget far below the working set shows up
    /// here first).
    pub rebuilds: u64,
    /// Settlement points where eviction could not get the ledger under
    /// budget (every remaining entry pinned). Zero in a healthy run.
    pub violations: u64,
    /// Current ledger total in bytes.
    pub resident_bytes: u64,
    /// Max settled ledger total observed.
    pub peak_bytes: u64,
    /// Live ledger entries.
    pub entries: usize,
}

/// The LRU byte governor over all engines in a catalog. Construct with
/// [`SubstrateGovernor::new`], then [`attach`](Self::attach) every engine
/// (a governed [`crate::service::DsdService`] does this on `register`).
pub struct SubstrateGovernor {
    budget: Option<u64>,
    state: Mutex<GovState>,
}

impl SubstrateGovernor {
    /// A governor enforcing `budget` bytes across all attached engines
    /// (`None` = observe and count, never evict).
    pub fn new(budget: Option<u64>) -> Arc<Self> {
        Arc::new(SubstrateGovernor {
            budget,
            state: Mutex::new(GovState::default()),
        })
    }

    /// The configured byte budget.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Puts `engine` under governance: future substrate traffic is
    /// ledgered, and its entries become eviction candidates.
    pub fn attach(self: &Arc<Self>, engine: &Arc<DsdEngine<'static>>) {
        {
            let mut state = self.state.lock().unwrap();
            state.engines.insert(engine.id(), Arc::downgrade(engine));
        }
        engine.set_cache_observer(Some(Arc::clone(self) as Arc<dyn CacheObserver>));
    }

    /// Pins `(engine, key)` against eviction for the lease's lifetime.
    /// Pins nest; the entry rejoins the LRU when the last lease drops.
    pub fn lease(self: &Arc<Self>, engine: u64, key: PatternKey) -> SubstrateLease {
        {
            let mut state = self.state.lock().unwrap();
            *state.pins.entry((engine, key.clone())).or_insert(0) += 1;
        }
        SubstrateLease {
            governor: Arc::clone(self),
            key: (engine, key),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> GovernorStats {
        let state = self.state.lock().unwrap();
        GovernorStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            rebuilds: state.rebuilds,
            violations: state.violations,
            resident_bytes: state.total,
            peak_bytes: state.peak,
            entries: state.entries.len(),
        }
    }

    /// `(ledger, actual)`: the governor's byte total vs. ground truth —
    /// `substrate_bytes()` summed over every live attached engine. The
    /// two agree at quiescence (no solve or update in flight) as long as
    /// all substrate traffic flows through governed `solve` calls;
    /// mid-build they transiently diverge.
    pub fn reconcile(&self) -> (u64, u64) {
        let (ledger, engines): (u64, Vec<Weak<DsdEngine<'static>>>) = {
            let state = self.state.lock().unwrap();
            (state.total, state.engines.values().cloned().collect())
        };
        // Upgrade outside the lock: summing here may be the last strong
        // reference's drop site, which re-enters the governor.
        let actual = engines
            .iter()
            .filter_map(Weak::upgrade)
            .map(|e| e.substrate_bytes())
            .sum();
        (ledger, actual)
    }

    /// Debug-asserts the ledger matches ground truth. Call only at
    /// quiescent points (after a drain); a no-op in release builds.
    pub fn debug_assert_reconciled(&self) {
        if cfg!(debug_assertions) {
            let (ledger, actual) = self.reconcile();
            assert_eq!(
                ledger, actual,
                "governor ledger drifted from summed substrate_bytes()"
            );
        }
    }

    /// Evicts LRU entries until the ledger fits the budget. Returns
    /// engine handles whose drop must be deferred past the caller's
    /// guard release (see the module docs on the self-deadlock hazard).
    fn enforce(&self, state: &mut GovState) -> Vec<Arc<DsdEngine<'static>>> {
        let Some(budget) = self.budget else {
            return Vec::new();
        };
        let mut deferred = Vec::new();
        while state.total > budget {
            let victim = state
                .entries
                .iter()
                .filter(|(key, _)| state.pins.get(*key).copied().unwrap_or(0) == 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(key, _)| key.clone());
            let Some(key) = victim else {
                // Everything left is pinned: the in-flight working set
                // alone exceeds the budget. Count it and stop — shrinking
                // below the pins would only thrash active requests.
                state.violations += 1;
                break;
            };
            let entry = state.entries.remove(&key).expect("victim is ledgered");
            state.total -= entry.bytes;
            state.evictions += 1;
            if let Some(engine) = state.engines.get(&key.0).and_then(Weak::upgrade) {
                engine.evict_substrate(&key.1);
                state.evicted.insert(key);
                deferred.push(engine);
            }
            // A dead engine's entries are stale bookkeeping; dropping
            // them from the ledger is the whole eviction.
        }
        state.peak = state.peak.max(state.total);
        deferred
    }
}

impl CacheObserver for SubstrateGovernor {
    fn on_substrate_used(&self, engine: u64, key: &PatternKey, epoch: u64, _bytes: u64, hit: bool) {
        let mut deferred;
        {
            let mut state = self.state.lock().unwrap();
            state.tick += 1;
            let tick = state.tick;
            if hit {
                state.hits += 1;
            } else {
                state.misses += 1;
                if state.evicted.remove(&(engine, key.clone())) {
                    state.rebuilds += 1;
                }
            }
            // Re-read the footprint inside the critical section: the
            // engine-side value can go stale against this governor's own
            // concurrent evictions (record-after-evict would resurrect a
            // dead entry); a read under the governor lock cannot, because
            // evictions only happen under it too.
            let handle = state.engines.get(&engine).and_then(Weak::upgrade);
            let bytes = handle.as_ref().map_or(0, |e| e.key_bytes(key, epoch));
            let ledger_key = (engine, key.clone());
            if bytes == 0 {
                // Nothing cache-resident for this key (streaming-only
                // substrate, or the epoch moved on before accounting).
                if let Some(old) = state.entries.remove(&ledger_key) {
                    state.total -= old.bytes;
                }
            } else {
                let old = state.entries.insert(
                    ledger_key,
                    Entry {
                        epoch,
                        bytes,
                        last_used: tick,
                    },
                );
                state.total += bytes;
                if let Some(old) = old {
                    state.total -= old.bytes;
                    debug_assert!(old.epoch <= epoch, "engine epochs only advance");
                }
            }
            deferred = self.enforce(&mut state);
            deferred.extend(handle);
        }
        drop(deferred);
    }

    fn on_substrate_repaired(&self, engine: u64, key: &PatternKey, epoch: u64, _bytes: u64) {
        let mut deferred;
        {
            let mut state = self.state.lock().unwrap();
            state.tick += 1;
            let tick = state.tick;
            // Resize the entry in place at the new epoch — a repair is
            // cache maintenance, not a request, so hit/miss/rebuild
            // counters stay untouched and an already-ledgered entry keeps
            // its LRU stamp. As in `on_substrate_used`, the footprint is
            // re-read inside the critical section; 0 means the key's
            // cache half was dropped rather than repaired (e.g. the
            // decomposition) and the entry falls out.
            let handle = state.engines.get(&engine).and_then(Weak::upgrade);
            let bytes = handle.as_ref().map_or(0, |e| e.key_bytes(key, epoch));
            let ledger_key = (engine, key.clone());
            if bytes == 0 {
                if let Some(old) = state.entries.remove(&ledger_key) {
                    state.total -= old.bytes;
                }
            } else {
                let last_used = state.entries.get(&ledger_key).map_or(tick, |e| e.last_used);
                let old = state.entries.insert(
                    ledger_key,
                    Entry {
                        epoch,
                        bytes,
                        last_used,
                    },
                );
                state.total += bytes;
                if let Some(old) = old {
                    state.total -= old.bytes;
                    debug_assert!(old.epoch <= epoch, "engine epochs only advance");
                }
            }
            deferred = self.enforce(&mut state);
            deferred.extend(handle);
        }
        drop(deferred);
    }

    fn on_engine_release(&self, engine: u64, _bytes: u64) {
        let mut state = self.state.lock().unwrap();
        // Every ledger entry for this engine is gone wholesale (epoch
        // bump or engine drop) — the per-entry bytes are authoritative,
        // the reported sum is advisory.
        let stale: Vec<(u64, PatternKey)> = state
            .entries
            .keys()
            .filter(|(id, _)| *id == engine)
            .cloned()
            .collect();
        for key in stale {
            let entry = state.entries.remove(&key).expect("key just enumerated");
            state.total -= entry.bytes;
        }
        state.evicted.retain(|(id, _)| *id != engine);
    }
}

/// An eviction pin on one `(engine, Ψ)` substrate entry, from
/// [`SubstrateGovernor::lease`]. Dropping it releases the pin.
pub struct SubstrateLease {
    governor: Arc<SubstrateGovernor>,
    key: (u64, PatternKey),
}

impl Drop for SubstrateLease {
    fn drop(&mut self) {
        let mut state = self.governor.state.lock().unwrap();
        if let Some(count) = state.pins.get_mut(&self.key) {
            *count -= 1;
            if *count == 0 {
                state.pins.remove(&self.key);
            }
        }
    }
}
