//! The admission-controlled request pipeline.
//!
//! [`DsdServer`] wraps a governed [`DsdService`] in a hand-rolled
//! thread+channel runtime (the workspace is dependency-free — plain
//! `std::sync` primitives, no async executor): one bounded FIFO queue per
//! registered graph, a shared worker pool pulling across the queues
//! round-robin, and per-ticket completion channels.
//!
//! The scheduling rules, in order of importance:
//!
//! * **Per-graph FIFO, cross-graph freedom.** Queries on one graph run
//!   concurrently; an update barriers *only its own graph's queue* — it
//!   dispatches once that graph's in-flight queries drain, runs alone,
//!   and later same-graph jobs wait behind it. Other graphs' traffic
//!   flows the whole time. (This generalizes the batch CLI's
//!   flush-before-update rule from "one global barrier" to "one barrier
//!   per graph".)
//! * **Bounded admission.** Each graph queue holds at most
//!   [`ServeConfig::queue_depth`] jobs; a submit beyond that is shed
//!   immediately with [`ServeError::Overloaded`] instead of growing an
//!   unbounded backlog — the caller owns the retry policy.
//! * **Deadlines shed at dispatch.** A job whose deadline passed while
//!   queued is failed with [`ServeError::DeadlineExceeded`] without
//!   running; a job dispatched in time may additionally have its
//!   α-search probe count clamped ([`ServeConfig::deadline_step_budget`])
//!   so one slow exact solve cannot blow through its deadline unbounded
//!   (the answer then degrades to [`crate::Guarantee::Heuristic`], never
//!   to a wrong density).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dsd_graph::{Graph, GraphUpdate};

use crate::engine::{pattern_key, ApplyStats, DsdEngine, DsdRequest, Objective, Solution};
use crate::serve::governor::{GovernorStats, SubstrateGovernor, SubstrateLease};
use crate::service::DsdService;
use crate::shard::ShardedGraph;

/// Sizing and policy knobs for a [`DsdServer`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads pulling jobs across all graph queues. `0` spawns
    /// none — jobs then only run via [`DsdServer::step`], which tests use
    /// to drive the pipeline deterministically.
    pub workers: usize,
    /// Max queued jobs per graph; submits beyond this shed with
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Global substrate byte budget enforced by the governor across every
    /// registered engine (`None` = account but never evict).
    pub substrate_budget: Option<u64>,
    /// Deadline attached to every submitted job, measured from submit
    /// (`None` = jobs never expire).
    pub deadline: Option<Duration>,
    /// When a deadline is set, clamp each query's α-search to at most
    /// this many min-cut probes (0 = no clamp; deadlines then only shed
    /// jobs still queued at expiry).
    pub deadline_step_budget: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            substrate_budget: None,
            deadline: None,
            deadline_step_budget: 0,
        }
    }
}

/// Why the pipeline refused or failed a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The graph's queue is full; retry after backoff.
    Overloaded {
        /// The saturated graph.
        graph: String,
        /// Its configured queue depth.
        depth: usize,
    },
    /// The job names a graph the catalog does not hold.
    UnknownGraph(String),
    /// The request was never routed ([`DsdRequest::on`] was not called).
    Unrouted,
    /// The job's deadline passed before a worker could start it.
    DeadlineExceeded,
    /// The server shut down before the job ran.
    ShutDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { graph, depth } => {
                write!(f, "queue for graph {graph:?} is full ({depth} jobs)")
            }
            ServeError::UnknownGraph(name) => {
                write!(f, "no graph named {name:?} in the catalog")
            }
            ServeError::Unrouted => {
                write!(f, "request names no graph (build it with .on(name))")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline passed before dispatch"),
            ServeError::ShutDown => write!(f, "server shut down before the job ran"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What a completed job produced.
#[derive(Clone, Debug)]
pub enum ServeOutcome {
    /// A query's solution (boxed: a `Solution` is large next to the
    /// other variant and tickets move outcomes through channels).
    Solved(Box<Solution>),
    /// An update batch's apply stats.
    Updated(ApplyStats),
}

impl ServeOutcome {
    /// The solution, if this was a query.
    pub fn solution(self) -> Option<Solution> {
        match self {
            ServeOutcome::Solved(s) => Some(*s),
            ServeOutcome::Updated(_) => None,
        }
    }
}

/// A claim on one submitted job's result; redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeOutcome, ServeError>>,
}

impl Ticket {
    /// Blocks until the job completes (or the server drops it).
    pub fn wait(self) -> Result<ServeOutcome, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShutDown))
    }

    /// Non-blocking poll; `None` while the job is still pending.
    pub fn poll(&self) -> Option<Result<ServeOutcome, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// Pipeline-level counters, from [`DsdServer::stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs admitted to a queue.
    pub submitted: u64,
    /// Jobs that ran to completion (success or in-run failure).
    pub completed: u64,
    /// Submits shed with [`ServeError::Overloaded`].
    pub shed_overload: u64,
    /// Jobs shed at dispatch with [`ServeError::DeadlineExceeded`].
    pub shed_deadline: u64,
    /// Jobs currently queued across all graphs.
    pub queued: usize,
    /// Jobs currently executing.
    pub in_flight: usize,
    /// The governor's counters.
    pub governor: GovernorStats,
}

enum JobKind {
    Query(DsdRequest),
    Update(Vec<GraphUpdate>),
}

struct Job {
    graph: String,
    kind: JobKind,
    tx: mpsc::Sender<Result<ServeOutcome, ServeError>>,
    deadline: Option<Instant>,
}

#[derive(Default)]
struct GraphQueue {
    jobs: VecDeque<Job>,
    running_queries: usize,
    update_running: bool,
}

#[derive(Default)]
struct PipeState {
    graphs: HashMap<String, GraphQueue>,
    /// Round-robin dispatch order over `graphs`.
    order: Vec<String>,
    cursor: usize,
    queued: usize,
    in_flight: usize,
    shutdown: bool,
    submitted: u64,
    completed: u64,
    shed_overload: u64,
    shed_deadline: u64,
}

struct Shared {
    service: DsdService,
    governor: Arc<SubstrateGovernor>,
    config: ServeConfig,
    /// Graphs registered sharded: the catalog holds their spine engine
    /// (so `engine`/`evict`/catalog listing behave uniformly), this map
    /// holds the scatter-gather executor jobs dispatch through.
    sharded: Mutex<HashMap<String, Arc<ShardedGraph>>>,
    state: Mutex<PipeState>,
    /// Workers park here when no job is dispatchable.
    work: Condvar,
    /// [`DsdServer::drain`] parks here until the pipeline is empty.
    idle: Condvar,
}

/// The serving runtime: a governed catalog plus the admission-controlled
/// worker pipeline. See the module docs for the scheduling rules.
pub struct DsdServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl DsdServer {
    /// Builds the runtime and spawns its worker pool.
    pub fn new(config: ServeConfig) -> Self {
        let governor = SubstrateGovernor::new(config.substrate_budget);
        let service = DsdService::new().with_governor(Arc::clone(&governor));
        let shared = Arc::new(Shared {
            service,
            governor,
            config,
            sharded: Mutex::new(HashMap::new()),
            state: Mutex::new(PipeState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        DsdServer { shared, workers }
    }

    /// Registers (or replaces) a graph: the engine joins the governed
    /// catalog and gets its own FIFO queue.
    pub fn register(&self, name: impl Into<String>, graph: Graph) -> Arc<DsdEngine<'static>> {
        let name = name.into();
        let engine = self.shared.service.register(name.clone(), graph);
        let mut state = self.shared.state.lock().unwrap();
        if !state.graphs.contains_key(&name) {
            state.graphs.insert(name.clone(), GraphQueue::default());
            state.order.push(name);
        }
        engine
    }

    /// Registers (or replaces) a graph served *sharded*: the CSR is
    /// partitioned into `shards` degeneracy-contiguous per-shard engines
    /// plus a whole-graph spine (see [`ShardedGraph`]). The spine joins
    /// the governed catalog under `name` — so [`DsdServer::engine`],
    /// eviction, and stats behave exactly as for [`DsdServer::register`]
    /// — while every shard engine also attaches to the governor, keeping
    /// the global substrate budget authoritative over the whole fleet.
    /// Jobs still flow through the one logical per-graph queue; dispatch
    /// fans queries out across the shard engines and routes update
    /// batches to only the shards they touch.
    pub fn register_sharded(
        &self,
        name: impl Into<String>,
        graph: Graph,
        shards: usize,
    ) -> Arc<ShardedGraph> {
        let name = name.into();
        let sharded = Arc::new(ShardedGraph::new(graph, shards));
        for i in 0..sharded.num_shards() {
            self.shared.governor.attach(sharded.shard_engine(i));
        }
        // The service's governor attaches the spine on registration.
        self.shared
            .service
            .register_engine(name.clone(), Arc::clone(sharded.spine_engine()));
        let replaced = self
            .shared
            .sharded
            .lock()
            .unwrap()
            .insert(name.clone(), Arc::clone(&sharded));
        drop(replaced);
        let mut state = self.shared.state.lock().unwrap();
        if !state.graphs.contains_key(&name) {
            state.graphs.insert(name.clone(), GraphQueue::default());
            state.order.push(name);
        }
        sharded
    }

    /// The sharded executor serving `name`, if it was registered via
    /// [`DsdServer::register_sharded`].
    pub fn sharded(&self, name: &str) -> Option<Arc<ShardedGraph>> {
        self.shared.sharded.lock().unwrap().get(name).cloned()
    }

    /// Removes a graph. Queued jobs for it fail with
    /// [`ServeError::UnknownGraph`]; its engine's bytes leave the
    /// governor's ledger once the last in-flight holder drops it.
    pub fn evict(&self, name: &str) -> bool {
        let present = self.shared.service.evict(name);
        drop(self.shared.sharded.lock().unwrap().remove(name));
        let mut state = self.shared.state.lock().unwrap();
        if let Some(mut q) = state.graphs.remove(name) {
            state.queued -= q.jobs.len();
            for job in q.jobs.drain(..) {
                let _ = job.tx.send(Err(ServeError::UnknownGraph(name.to_string())));
            }
            state.order.retain(|g| g != name);
            state.cursor = 0;
        }
        notify_if_idle(&self.shared, &state);
        present
    }

    /// The engine serving `name`, if registered.
    pub fn engine(&self, name: &str) -> Option<Arc<DsdEngine<'static>>> {
        self.shared.service.engine(name)
    }

    /// The governor enforcing the global substrate budget.
    pub fn governor(&self) -> &Arc<SubstrateGovernor> {
        &self.shared.governor
    }

    /// Current pipeline + governor counters.
    pub fn stats(&self) -> ServeStats {
        let state = self.shared.state.lock().unwrap();
        ServeStats {
            submitted: state.submitted,
            completed: state.completed,
            shed_overload: state.shed_overload,
            shed_deadline: state.shed_deadline,
            queued: state.queued,
            in_flight: state.in_flight,
            governor: self.shared.governor.stats(),
        }
    }

    /// Enqueues a routed query. Fails fast (without queueing) when the
    /// graph is unknown or its queue is full.
    pub fn submit(&self, req: DsdRequest) -> Result<Ticket, ServeError> {
        let Some(name) = req.graph_name() else {
            return Err(ServeError::Unrouted);
        };
        let name = name.to_string();
        self.enqueue(name, JobKind::Query(req))
    }

    /// Enqueues an update batch for `name`. It obeys the same admission
    /// control as queries and barriers only that graph's queue.
    pub fn submit_update(
        &self,
        name: impl Into<String>,
        updates: Vec<GraphUpdate>,
    ) -> Result<Ticket, ServeError> {
        self.enqueue(name.into(), JobKind::Update(updates))
    }

    fn enqueue(&self, name: String, kind: JobKind) -> Result<Ticket, ServeError> {
        let deadline = self.shared.config.deadline.map(|d| Instant::now() + d);
        let (tx, rx) = mpsc::channel();
        let mut state = self.shared.state.lock().unwrap();
        if state.shutdown {
            return Err(ServeError::ShutDown);
        }
        let depth = self.shared.config.queue_depth;
        let Some(queue) = state.graphs.get_mut(&name) else {
            return Err(ServeError::UnknownGraph(name));
        };
        if queue.jobs.len() >= depth {
            state.shed_overload += 1;
            return Err(ServeError::Overloaded { graph: name, depth });
        }
        queue.jobs.push_back(Job {
            graph: name,
            kind,
            tx,
            deadline,
        });
        state.queued += 1;
        state.submitted += 1;
        drop(state);
        self.shared.work.notify_one();
        Ok(Ticket { rx })
    }

    /// Runs at most one queued job on the calling thread; returns whether
    /// one was dispatchable. With `workers: 0` this is the only engine of
    /// progress — tests use it to sequence the pipeline deterministically.
    pub fn step(&self) -> bool {
        let job = {
            let mut state = self.shared.state.lock().unwrap();
            match take_next(&mut state) {
                Some(job) => job,
                None => return false,
            }
        };
        run_job(&self.shared, job);
        true
    }

    /// Blocks until every queued and in-flight job has completed, then
    /// debug-asserts the governor's ledger against ground truth. Requires
    /// `workers > 0` (with none, drive [`DsdServer::step`] instead).
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().unwrap();
        while state.queued > 0 || state.in_flight > 0 {
            state = self.shared.idle.wait(state).unwrap();
        }
        drop(state);
        self.shared.governor.debug_assert_reconciled();
    }

    /// Stops the pipeline: queued jobs fail with [`ServeError::ShutDown`],
    /// in-flight jobs finish, workers exit.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            let mut dropped = 0;
            for queue in state.graphs.values_mut() {
                dropped += queue.jobs.len();
                for job in queue.jobs.drain(..) {
                    let _ = job.tx.send(Err(ServeError::ShutDown));
                }
            }
            state.queued -= dropped;
        }
        self.shared.work.notify_all();
        self.shared.idle.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("serve worker panicked");
        }
    }
}

impl Drop for DsdServer {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Picks the next dispatchable job round-robin across graph queues,
/// updating the dispatch bookkeeping. The per-graph rules: a graph with a
/// running update dispatches nothing; a front-of-queue query dispatches
/// any time; a front-of-queue update dispatches only once the graph's
/// in-flight queries drain (and never jumps the FIFO — later same-graph
/// jobs wait behind it).
fn take_next(state: &mut PipeState) -> Option<Job> {
    let graphs = state.order.len();
    for i in 0..graphs {
        let at = (state.cursor + i) % graphs;
        let name = &state.order[at];
        let queue = state.graphs.get_mut(name).expect("order tracks graphs");
        if queue.update_running {
            continue;
        }
        let is_update = match queue.jobs.front() {
            Some(job) => matches!(job.kind, JobKind::Update(_)),
            None => continue,
        };
        if is_update {
            if queue.running_queries > 0 {
                continue;
            }
            queue.update_running = true;
        } else {
            queue.running_queries += 1;
        }
        let job = queue.jobs.pop_front().expect("front just inspected");
        state.queued -= 1;
        state.in_flight += 1;
        state.cursor = (at + 1) % graphs;
        return Some(job);
    }
    None
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(job) = take_next(&mut state) {
                    break job;
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        run_job(shared, job);
    }
}

/// Executes one dispatched job and settles the pipeline bookkeeping.
fn run_job(shared: &Shared, job: Job) {
    let Job {
        graph,
        kind,
        tx,
        deadline,
    } = job;
    let is_update = matches!(kind, JobKind::Update(_));
    let expired = deadline.is_some_and(|d| Instant::now() > d);

    let result = if expired {
        Err(ServeError::DeadlineExceeded)
    } else {
        match kind {
            JobKind::Query(mut req) => match shared.service.engine(&graph) {
                Some(engine) => {
                    let cap = shared.config.deadline_step_budget;
                    if deadline.is_some() && cap > 0 {
                        let cap = req.step_budget_limit().map_or(cap, |b| b.min(cap));
                        req = req.step_budget(cap);
                    }
                    let sharded = shared.sharded.lock().unwrap().get(&graph).cloned();
                    // Pin the substrate entries this query is about to use
                    // so the LRU doesn't thrash them mid-request — for a
                    // sharded graph that's the spine plus every shard
                    // engine the scatter phase will touch. The query
                    // variant runs on the (in-place-repaired, unevicted)
                    // classical k-core order and needs no pin; its cached
                    // flow network is take/put (out of the cache while
                    // lent), so eviction can never touch it mid-request.
                    let _leases: Vec<SubstrateLease> =
                        if matches!(req.objective_ref(), Objective::WithQuery(_)) {
                            Vec::new()
                        } else {
                            let key = pattern_key(req.psi());
                            let mut leases = vec![shared.governor.lease(engine.id(), key.clone())];
                            if let Some(s) = &sharded {
                                leases.extend((0..s.num_shards()).map(|i| {
                                    shared.governor.lease(s.shard_engine(i).id(), key.clone())
                                }));
                            }
                            leases
                        };
                    let solution = match &sharded {
                        Some(s) => s.solve(&req),
                        None => engine.solve(&req),
                    };
                    Ok(ServeOutcome::Solved(Box::new(solution)))
                }
                None => Err(ServeError::UnknownGraph(graph.clone())),
            },
            JobKind::Update(updates) => {
                let sharded = shared.sharded.lock().unwrap().get(&graph).cloned();
                match (sharded, shared.service.engine(&graph)) {
                    // The sharded path barriers only the shards the batch
                    // touches; the queue-level update barrier still covers
                    // the whole logical graph (spine + shards) because
                    // they share one GraphQueue.
                    (Some(s), _) => Ok(ServeOutcome::Updated(s.apply(&updates).spine)),
                    (None, Some(engine)) => Ok(ServeOutcome::Updated(engine.apply(&updates))),
                    (None, None) => Err(ServeError::UnknownGraph(graph.clone())),
                }
            }
        }
    };

    let mut state = shared.state.lock().unwrap();
    state.in_flight -= 1;
    if expired {
        state.shed_deadline += 1;
    } else {
        state.completed += 1;
    }
    if let Some(queue) = state.graphs.get_mut(&graph) {
        if is_update {
            queue.update_running = false;
        } else {
            queue.running_queries -= 1;
        }
    }
    // Finishing can unblock a barriered update (or the jobs behind one);
    // wake the pool to re-scan.
    if state.queued > 0 {
        shared.work.notify_all();
    }
    notify_if_idle(shared, &state);
    drop(state);
    let _ = tx.send(result);
}

fn notify_if_idle(shared: &Shared, state: &PipeState) {
    if state.queued == 0 && state.in_flight == 0 {
        shared.idle.notify_all();
    }
}
