//! `dsd_core::serve`: the self-limiting serving runtime.
//!
//! [`crate::service::DsdService`] gives one process a catalog of live
//! graphs with warm substrate caches; this module makes that shape safe
//! to run *indefinitely* under mixed traffic. Two failure modes of the
//! bare catalog motivate it:
//!
//! 1. **Unbounded memory.** Engine caches are grow-only between updates:
//!    every (graph, Ψ) pair a workload ever touches stays resident. The
//!    [`SubstrateGovernor`] puts one LRU byte budget over all engines —
//!    substrates are treated as the factorised materialized views they
//!    are (expensive to build, cheap to share, first to evict under
//!    pressure), and `Arc` reference counting makes eviction safe for
//!    requests already holding the substrate.
//! 2. **Unbounded latency.** A synchronous batch head-of-line-blocks
//!    behind its slowest solve, and one hot graph's update stalls every
//!    other graph. The [`DsdServer`] pipeline gives each graph its own
//!    bounded FIFO (updates barrier only their own graph), sheds load
//!    typed ([`ServeError::Overloaded`]) instead of queueing without
//!    bound, and enforces per-request deadlines through the α-search
//!    step-budget knob.
//!
//! ```
//! use dsd_core::serve::{DsdServer, ServeConfig, ServeOutcome};
//! use dsd_core::DsdRequest;
//! use dsd_graph::Graph;
//! use dsd_motif::Pattern;
//!
//! let server = DsdServer::new(ServeConfig {
//!     workers: 2,
//!     queue_depth: 16,
//!     substrate_budget: Some(64 << 20),
//!     ..ServeConfig::default()
//! });
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
//! server.register("toy", g);
//!
//! let ticket = server.submit(DsdRequest::new(&Pattern::triangle()).on("toy")).unwrap();
//! match ticket.wait().unwrap() {
//!     ServeOutcome::Solved(s) => assert_eq!(s.vertices, vec![0, 1, 2, 3]),
//!     ServeOutcome::Updated(_) => unreachable!(),
//! }
//! server.drain();
//! ```

mod governor;
mod pipeline;

pub use governor::{GovernorStats, SubstrateGovernor, SubstrateLease};
pub use pipeline::{DsdServer, ServeConfig, ServeError, ServeOutcome, ServeStats, Ticket};
