//! Algorithm 4 (`CoreExact`) and its pattern generalization `CorePExact`.
//!
//! The core-based exact algorithm rides the shared
//! [`mod@crate::alpha_search`] loop (one search implementation for every
//! exact solver, with parametric flow reuse across probes) and applies
//! three optimizations on top of Algorithm 1's framework:
//!
//! 1. **Tighter α bounds** — Theorem 1 gives `ρopt ∈ [kmax/|VΨ|, kmax]`,
//!    and the densest *residual* graph seen during core decomposition
//!    tightens the lower bound further (Pruning1: ρ′).
//! 2. **Locating the CDS in a core** — Lemma 7 places the CDS inside the
//!    `(⌈ρopt⌉, Ψ)`-core, so the flow network is built on the located
//!    `(k″, Ψ)`-core's connected components (Pruning2 lifts `k″` with the
//!    densest component's density ρ″) instead of the whole graph.
//! 3. **Shrinking networks** — every time the binary search raises the
//!    lower bound `l`, the component is re-intersected with the
//!    `(⌈l⌉, Ψ)`-core, so later min-cut probes run on smaller networks
//!    (Pruning3 additionally localizes the stopping gap to `|VC|`).
//!
//! Deviation noted for reviewers: Algorithm 4 as printed shares the upper
//! bound `u` across components, which would starve the binary search of
//! later components once an earlier one converges; we keep `u` per
//! component (initialized to the global `kmax` bound), which is sound and
//! matches the published evaluation's behaviour. We also seed the answer
//! with the ρ′/ρ″-achieving subgraph so the optimum is returned even when
//! no strictly-denser subgraph exists (`S = {s}` everywhere).

use std::time::Instant;

use dsd_graph::{connected_components_within, Graph, VertexId, VertexSet};
use dsd_motif::Pattern;

use crate::alpha_search::{alpha_search, effective_gap, DecisionProbe, ExactStats};
use crate::clique_core::{decompose, CliqueCoreDecomposition};
use crate::exact::{acquire_network, release_network};
use crate::flownet::{DensityNetwork, FlowBackend, NetworkLender};
use crate::oracle::{density, oracle_for, DensityOracle};
use crate::types::DsdResult;

/// Pruning/backend switches (Figure 10's P1/P2/P3 ablation) plus the
/// engine's per-request precision/budget knobs.
#[derive(Clone, Copy, Debug)]
pub struct CoreExactConfig {
    /// Pruning1: locate via the densest residual graph ρ′.
    pub pruning1: bool,
    /// Pruning2: lift the located core with per-component densities ρ″.
    pub pruning2: bool,
    /// Pruning3: component-local binary-search stopping gap.
    pub pruning3: bool,
    /// Parametric flow reuse across probes (GGT-style resolve from the
    /// checkpointed lower-bound flow). On by default; disable for the
    /// from-scratch-per-probe ablation (`exact_probes` bench).
    pub parametric: bool,
    /// Max-flow backend for the min-cut probes.
    pub backend: FlowBackend,
    /// Extra binary-search stopping tolerance on α (the effective gap is
    /// `max(Lemma-12 gap, tolerance)`; `None` keeps the certified-exact
    /// default).
    pub tolerance: Option<f64>,
    /// Cap on total min-cut probes across all components of one
    /// CoreExact run; when exhausted the best subgraph found so far is
    /// returned. Composite callers that run CoreExact repeatedly (the
    /// top-k scan) apply the cap per round, not per request.
    pub step_budget: Option<usize>,
}

impl Default for CoreExactConfig {
    fn default() -> Self {
        CoreExactConfig {
            pruning1: true,
            pruning2: true,
            pruning3: true,
            parametric: true,
            backend: FlowBackend::Dinic,
            tolerance: None,
            step_budget: None,
        }
    }
}

/// Instrumentation from a CoreExact run (Figures 9–10, Table 3).
#[derive(Clone, Debug, Default)]
pub struct CoreExactStats {
    /// Wall time of the (k, Ψ)-core decomposition.
    pub decomposition_nanos: u128,
    /// Total wall time.
    pub total_nanos: u128,
    /// Binary-search probes and the flow-network node count at each
    /// (Figure 9's series; index 0 is the first located network).
    pub exact: ExactStats,
    /// kmax of the decomposition.
    pub kmax: u64,
    /// ρ′ — best residual density (Pruning1 lower bound).
    pub rho_prime: f64,
    /// Core order the CDS was located in after pruning.
    pub located_k: u64,
    /// Vertices in the located core.
    pub located_size: usize,
}

/// Exact per-region density optima from a scatter phase, used by the
/// sharded cross-shard merge to skip located-core components that
/// provably cannot beat the running lower bound.
///
/// A *region* is a vertex-disjoint block of the graph (a shard). A
/// certificate for region `r` states the **exact** maximum Ψ-density over
/// all subgraphs fully contained in `r`. Regions are vertex-induced, so a
/// subgraph confined to one region has identical instance counts locally
/// and globally; when a connected component of the located core lies
/// entirely inside a certified region whose bound is at most the current
/// lower bound `l`, the seed probe at `l` (strictly-greater feasibility,
/// Lemma 14) would provably return infeasible and mutate nothing — the
/// component can be skipped without touching the search trajectory, which
/// keeps the sharded answer bit-identical to the unsharded one.
#[derive(Clone, Debug, Default)]
pub struct RegionCertificates {
    /// `region[v]` = region id of vertex `v`; `u32::MAX` = unassigned.
    region: Vec<u32>,
    /// `bound[r]` = certified exact optimum density inside region `r`;
    /// `f64::INFINITY` marks a region without a certificate (e.g. a shard
    /// whose local solve was budget-clipped and is not exact).
    bound: Vec<f64>,
}

impl RegionCertificates {
    /// Builds certificates from a vertex→region assignment and per-region
    /// exact optima. Pass `f64::INFINITY` for regions without a certified
    /// exact bound.
    pub fn new(region: Vec<u32>, bound: Vec<f64>) -> RegionCertificates {
        RegionCertificates { region, bound }
    }

    /// The certified exact density bound covering `members`, if all of
    /// them lie inside one certified region.
    fn component_bound(&self, members: &[VertexId]) -> Option<f64> {
        let first = *members.first()?;
        let r = *self.region.get(first as usize)?;
        if r == u32::MAX {
            return None;
        }
        if members
            .iter()
            .any(|&v| self.region.get(v as usize) != Some(&r))
        {
            return None;
        }
        let bound = *self.bound.get(r as usize)?;
        bound.is_finite().then_some(bound)
    }
}

fn ceil_k(x: f64) -> u64 {
    if x <= 0.0 {
        0
    } else {
        x.ceil() as u64
    }
}

/// Intersects `members` with the `(k, Ψ)`-core (by global core numbers).
fn restrict_to_core(members: &[VertexId], dec: &CliqueCoreDecomposition, k: u64) -> Vec<VertexId> {
    members
        .iter()
        .copied()
        .filter(|&v| dec.core[v as usize] >= k)
        .collect()
}

fn density_of(oracle: &dyn DensityOracle, g: &Graph, vs: &[VertexId]) -> f64 {
    let set = VertexSet::from_members(g.num_vertices(), vs);
    density(oracle, g, &set)
}

/// The per-component probe of CoreExact's α-search (Algorithm 4 lines
/// 10–17): decides feasibility on the component's flow network, scores
/// every witness against the run-global best, and — the Pruning3 restart
/// — rebuilds the network on the smaller `(⌈α⌉, Ψ)`-core intersection
/// once a feasible α outgrows the core level the component was built at.
struct ComponentProbe<'a> {
    g: &'a Graph,
    psi: &'a Pattern,
    oracle: &'a dyn DensityOracle,
    dec: &'a CliqueCoreDecomposition,
    backend: FlowBackend,
    parametric: bool,
    comp: Vec<VertexId>,
    comp_k: u64,
    net: DensityNetwork,
    best_rho: &'a mut f64,
    best_vs: &'a mut Vec<VertexId>,
    /// Flow-reuse counters of networks already replaced by a shrink.
    retired_flow: dsd_flow::ResolveStats,
    /// Network cache the shrink restarts borrow from / return to.
    lender: Option<&'a dyn NetworkLender>,
}

impl ComponentProbe<'_> {
    /// Total flow-reuse accounting across every network this component
    /// probed (including the shrink-retired ones).
    fn flow_stats(&self) -> dsd_flow::ResolveStats {
        let mut stats = self.retired_flow;
        stats += self.net.probe_stats();
        stats
    }
}

impl DecisionProbe for ComponentProbe<'_> {
    type Witness = ();

    fn probe(&mut self, alpha: f64) -> Option<()> {
        let w = self.net.solve(alpha, self.backend)?;
        let rho_w = density_of(self.oracle, self.g, &w);
        if rho_w > *self.best_rho {
            *self.best_rho = rho_w;
            *self.best_vs = w;
        }
        // Line 17: a higher lower bound lets us relocate the component in
        // a deeper core and rebuild smaller.
        let ak = ceil_k(alpha);
        if ak > self.comp_k {
            let shrunk = restrict_to_core(&self.comp, self.dec, ak);
            if shrunk.len() < self.comp.len() && shrunk.len() >= self.psi.vertex_count() {
                self.retired_flow += self.net.probe_stats();
                // Slice the shrunk component's network out of the store
                // columns (or the lender's cache) — no kClist re-run per
                // restart — and hand the outgrown one back for a later
                // request that relocates at the same level.
                let fresh =
                    acquire_network(self.g, &shrunk, self.psi, true, self.oracle, self.lender);
                let outgrown = std::mem::replace(&mut self.net, fresh);
                release_network(&self.comp, outgrown, self.lender);
                self.comp = shrunk;
                self.net.set_warm_start(self.parametric);
            }
            self.comp_k = ak;
        }
        Some(())
    }

    fn network_nodes(&self) -> usize {
        self.net.num_nodes()
    }
}

/// Runs CoreExact (cliques) / CorePExact (general patterns) with the given
/// configuration, building the substrates cold.
pub fn core_exact_with(
    g: &Graph,
    psi: &Pattern,
    config: CoreExactConfig,
) -> (DsdResult, CoreExactStats) {
    let oracle = oracle_for(psi);
    let t_dec = Instant::now();
    let dec = decompose(g, oracle.as_ref());
    let dec_nanos = t_dec.elapsed().as_nanos();
    let (result, mut stats) = core_exact_from(g, psi, config, oracle.as_ref(), &dec);
    stats.decomposition_nanos = dec_nanos;
    stats.total_nanos += dec_nanos;
    (result, stats)
}

/// The flow/binary-search phase of CoreExact against caller-provided
/// (possibly warm) substrates: the density oracle and the (k, Ψ)-core
/// decomposition. `decomposition_nanos` is left at 0 — warm callers paid
/// that cost on an earlier request.
pub fn core_exact_from(
    g: &Graph,
    psi: &Pattern,
    config: CoreExactConfig,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
) -> (DsdResult, CoreExactStats) {
    core_exact_from_certified(g, psi, config, oracle, dec, None)
}

/// [`core_exact_from`] with optional scatter-phase region certificates:
/// a located-core component confined to one certified region whose exact
/// bound cannot beat the running lower bound is skipped outright (counted
/// in [`ExactStats::pruned_components`], with a 0 recorded in
/// `network_nodes` in place of its never-built network). Skips fire only
/// when the seed probe would provably be infeasible, so the result is
/// bit-identical to the uncertified run.
pub fn core_exact_from_certified(
    g: &Graph,
    psi: &Pattern,
    config: CoreExactConfig,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
    certs: Option<&RegionCertificates>,
) -> (DsdResult, CoreExactStats) {
    core_exact_certified_with_lender(g, psi, config, oracle, dec, certs, None)
}

/// [`core_exact_from_certified`] with a network lender: every component
/// network (including Pruning3's shrink restarts) is borrowed from the
/// lender's cache when warm and returned afterwards, so repeat requests
/// on an unchanged graph skip construction entirely.
pub(crate) fn core_exact_certified_with_lender(
    g: &Graph,
    psi: &Pattern,
    config: CoreExactConfig,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
    certs: Option<&RegionCertificates>,
    lender: Option<&dyn NetworkLender>,
) -> (DsdResult, CoreExactStats) {
    let t_total = Instant::now();
    let size = psi.vertex_count() as f64;
    let mut stats = CoreExactStats {
        kmax: dec.kmax,
        rho_prime: dec.best_density,
        ..CoreExactStats::default()
    };

    if dec.kmax == 0 {
        stats.total_nanos = t_total.elapsed().as_nanos();
        return (DsdResult::empty(), stats);
    }

    // Lower bound and initial answer. Theorem 1 guarantees the (kmax,
    // Ψ)-core achieves at least kmax/|VΨ|; Pruning1 may beat it with the
    // ρ′-achieving residual graph.
    let kmax_bound = dec.kmax as f64 / size;
    let mut best_vs: Vec<VertexId>;
    let mut best_rho: f64;
    {
        let core_vs = dec.max_core().to_vec();
        let core_rho = density_of(oracle, g, &core_vs);
        if config.pruning1 && dec.best_density > core_rho {
            best_vs = dec.best_residual();
            best_rho = dec.best_density;
        } else {
            best_vs = core_vs;
            best_rho = core_rho;
        }
    }
    let mut l = if config.pruning1 {
        dec.best_density.max(kmax_bound)
    } else {
        kmax_bound
    };

    // Step 2: locate the CDS in the (k″, Ψ)-core.
    let mut k_loc = ceil_k(l).max(1);
    let mut core_set = dec.core_set(k_loc);
    if config.pruning2 {
        // ρ″: densest connected component of the located core.
        let ccs = connected_components_within(g, &core_set);
        let mut rho2 = 0.0f64;
        let mut rho2_vs: Vec<VertexId> = Vec::new();
        for members in ccs.all_members() {
            let rho = density_of(oracle, g, &members);
            if rho > rho2 {
                rho2 = rho;
                rho2_vs = members;
            }
        }
        if rho2 > best_rho {
            best_rho = rho2;
            best_vs = rho2_vs;
        }
        if rho2 > l {
            l = rho2;
        }
        let k2 = ceil_k(rho2);
        if k2 > k_loc {
            k_loc = k2;
            core_set = dec.core_set(k_loc);
        }
    }
    stats.located_k = k_loc;
    stats.located_size = core_set.len();

    // Step 3: per-component α-search on shrinking networks, all riding
    // the shared loop with one probe budget across components.
    let u_global = dec.kmax as f64;
    let budget = config.step_budget.unwrap_or(usize::MAX);
    let ccs = connected_components_within(g, &core_set);
    for mut comp in ccs.all_members() {
        if stats.exact.iterations >= budget {
            stats.exact.budget_exhausted = true;
            break;
        }
        // Line 6: if l has outgrown the located core level, shrink first.
        let mut comp_k = k_loc;
        let lk = ceil_k(l);
        if lk > comp_k {
            comp = restrict_to_core(&comp, dec, lk);
            comp_k = lk;
        }
        if comp.len() < psi.vertex_count() {
            continue;
        }
        // Certified skip: if the component sits inside one region whose
        // exact optimum cannot beat l, the seed probe below would return
        // infeasible without mutating anything — skip building the
        // network at all, mirroring the probe's budget accounting.
        if let Some(bound) = certs.and_then(|c| c.component_bound(&comp)) {
            if bound <= l {
                stats.exact.iterations += 1;
                stats.exact.network_nodes.push(0);
                stats.exact.pruned_components += 1;
                continue;
            }
        }
        let gap = effective_gap(
            if config.pruning3 {
                comp.len()
            } else {
                g.num_vertices()
            },
            config.tolerance,
        );
        let mut net = acquire_network(g, &comp, psi, true, oracle, lender);
        net.set_warm_start(config.parametric);
        let mut probe = ComponentProbe {
            g,
            psi,
            oracle,
            dec,
            backend: config.backend,
            parametric: config.parametric,
            comp,
            comp_k,
            net,
            best_rho: &mut best_rho,
            best_vs: &mut best_vs,
            retired_flow: dsd_flow::ResolveStats::default(),
            lender,
        };
        // Lines 7-9: can this component beat the current lower bound at
        // all? (A feasible seed probe at l also checkpoints the flow
        // state the parametric chain warm-resolves from.)
        stats.exact.iterations += 1;
        stats.exact.network_nodes.push(probe.network_nodes());
        if probe.probe(l).is_some() {
            let outcome = alpha_search(&mut probe, (l, u_global), gap, budget, &mut stats.exact);
            l = outcome.lower;
        }
        stats.exact.absorb_flow(probe.flow_stats());
        release_network(&probe.comp, probe.net, lender);
    }

    best_vs.sort_unstable();
    stats.total_nanos = t_total.elapsed().as_nanos();
    (
        DsdResult {
            vertices: best_vs,
            density: best_rho,
        },
        stats,
    )
}

/// Runs CoreExact / CorePExact with the default (all prunings) config.
pub fn core_exact(g: &Graph, psi: &Pattern) -> (DsdResult, CoreExactStats) {
    core_exact_with(g, psi, CoreExactConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact;

    fn assert_same_density(g: &Graph, psi: &Pattern) {
        let (e, _) = exact(g, psi, FlowBackend::Dinic);
        let (c, _) = core_exact(g, psi);
        assert!(
            (e.density - c.density).abs() < 1e-7,
            "{}: exact {} vs core-exact {}",
            psi.name(),
            e.density,
            c.density
        );
    }

    /// Figure 5's graph: S1 = 7-vertex component of density 15/7, S2 = a
    /// 5-clique-ish block, S3 = the 3-core. We build a graph with kmax = 4
    /// where the peeling lower bound ρ′ locates the EDS in the 3-core.
    fn figure5_like() -> Graph {
        // Component X: K5 on {0..4} (density 2.0), component Y: 7 vertices
        // {5..11} with 15 edges (density 15/7 ≈ 2.14 > 2.0).
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        // 7-vertex graph with 15 edges: K6 on {5..10} (15 edges) — that's
        // 6 vertices; add vertex 11 with one edge to stay at density
        // 15/12? Use K6 plus pendant: 16 edges / 7 = 2.28 > 2.28... keep
        // K6 {5..10} (density 2.5) and pendant 11-5.
        for u in 5..11u32 {
            for v in (u + 1)..11 {
                edges.push((u, v));
            }
        }
        edges.push((11, 5));
        Graph::from_edges(12, &edges)
    }

    #[test]
    fn matches_exact_on_edge_density() {
        let g = figure5_like();
        assert_same_density(&g, &Pattern::edge());
        let (r, _) = core_exact(&g, &Pattern::edge());
        // K6 has density 2.5, K5 2.0.
        assert_eq!(r.vertices, vec![5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn matches_exact_on_triangle_density() {
        let g = figure5_like();
        assert_same_density(&g, &Pattern::triangle());
        let (r, _) = core_exact(&g, &Pattern::triangle());
        // K6 has C(6,3)/6 = 20/6 triangles per vertex vs K5's 10/5 = 2.
        assert_eq!(r.vertices, vec![5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn all_pruning_combinations_agree() {
        let g = figure5_like();
        let (reference, _) = exact(&g, &Pattern::triangle(), FlowBackend::Dinic);
        for p1 in [false, true] {
            for p2 in [false, true] {
                for p3 in [false, true] {
                    let config = CoreExactConfig {
                        pruning1: p1,
                        pruning2: p2,
                        pruning3: p3,
                        ..CoreExactConfig::default()
                    };
                    let (r, _) = core_exact_with(&g, &Pattern::triangle(), config);
                    assert!(
                        (r.density - reference.density).abs() < 1e-7,
                        "prunings {p1}{p2}{p3}: {} vs {}",
                        r.density,
                        reference.density
                    );
                }
            }
        }
    }

    #[test]
    fn empty_graph_and_no_instance_cases() {
        let g = Graph::empty(5);
        let (r, s) = core_exact(&g, &Pattern::triangle());
        assert!(r.is_empty());
        assert_eq!(s.kmax, 0);
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let (r2, _) = core_exact(&star, &Pattern::triangle());
        assert!(r2.is_empty());
    }

    #[test]
    fn pattern_core_exact_matches_pexact() {
        let g = figure5_like();
        for psi in [Pattern::two_star(), Pattern::diamond(), Pattern::c3_star()] {
            assert_same_density(&g, &psi);
        }
    }

    #[test]
    fn network_sizes_shrink_or_hold() {
        // On a graph with a big sparse fringe, the located network must be
        // much smaller than the graph.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        for i in 6..60u32 {
            edges.push((i, (i * 7) % 6));
        }
        let g = Graph::from_edges(60, &edges);
        let (r, stats) = core_exact(&g, &Pattern::triangle());
        assert_eq!(r.vertices, vec![0, 1, 2, 3, 4, 5]);
        assert!(
            stats.located_size <= 8,
            "located {} vertices",
            stats.located_size
        );
        // Every recorded network is far smaller than a whole-graph build.
        let (_, full_stats) = exact(&g, &Pattern::triangle(), FlowBackend::Dinic);
        let full = full_stats.network_nodes[0];
        for &nodes in &stats.exact.network_nodes {
            assert!(nodes < full, "core network {nodes} vs full {full}");
        }
    }

    #[test]
    fn rho_prime_bounds_kmax_over_psi() {
        let g = figure5_like();
        let (_, stats) = core_exact(&g, &Pattern::triangle());
        assert!(stats.rho_prime + 1e-9 >= stats.kmax as f64 / 3.0 || stats.rho_prime > 0.0);
        assert!(stats.located_k >= 1);
    }
}
