//! `DsdService`: a thread-safe, multi-graph catalog with batched request
//! execution — the synchronous substrate of the serving stack.
//!
//! Historically this *was* the serving layer: a synchronous catalog whose
//! `solve_batch` ran one batch to completion on scoped workers, with
//! grow-only per-engine substrate caches. That shape survives here as
//! the execution core, but production serving now goes through
//! [`crate::serve`]: [`crate::serve::DsdServer`] layers per-graph
//! admission queues, worker pooling, deadlines, and a global substrate
//! byte budget (the [`crate::serve::SubstrateGovernor`]) on top of this
//! catalog. Use `DsdService` directly for offline batch workloads where
//! "run everything, then return" is the right contract; use the serve
//! pipeline when traffic is continuous and memory must stay bounded.
//!
//! One process, many datasets, many clients: the service keeps a catalog
//! of named graphs, each behind its own [`DsdEngine`] (so each dataset's
//! substrates warm independently), and executes request batches across a
//! pool of scoped worker threads. The throughput levers, in order:
//!
//! 1. **Substrate reuse** — engines live as long as their catalog entry,
//!    so every request after the first per (graph, Ψ) is served warm;
//! 2. **Batch deduplication** — [`DsdService::solve_batch`] groups
//!    requests by (graph, Ψ) and interleaves the groups across workers,
//!    so a mixed batch pays one decomposition build per distinct group
//!    (the engine's build-once locking makes racing warmers safe);
//! 3. **Parallel execution** — requests run on `Parallelism::threads()`
//!    scoped workers pulling from a shared queue.
//!
//! Registered graphs are **live**: [`DsdService::update`] applies edge
//! insert/delete batches to a named graph in place (incremental k-core
//! repair + conservative Ψ-substrate invalidation, see
//! [`DsdEngine::apply`]), so update and query traffic interleave without
//! evicting and re-registering.
//!
//! ```
//! use dsd_core::service::DsdService;
//! use dsd_core::{DsdRequest, Objective, Parallelism};
//! use dsd_graph::Graph;
//! use dsd_motif::Pattern;
//!
//! let service = DsdService::with_parallelism(Parallelism::new(4));
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
//! service.register("toy", g);
//!
//! let psi = Pattern::triangle();
//! let batch = vec![
//!     DsdRequest::new(&psi).on("toy"),
//!     DsdRequest::new(&psi).on("toy").objective(Objective::TopK(2)),
//! ];
//! let outcome = service.solve_batch(batch);
//! assert_eq!(outcome.solutions.len(), 2);
//! assert_eq!(outcome.stats.groups, 1, "same (graph, Ψ) → one group");
//! let cds = outcome.solutions[0].as_ref().unwrap();
//! assert_eq!(cds.vertices, vec![0, 1, 2, 3]);
//! ```
//!
//! **Determinism note:** answers are bit-identical to serial execution for
//! every pinned method. [`crate::Method::Auto`] resolves against the cache
//! state it happens to observe, which under concurrency depends on which
//! request warmed the substrate first — pin a method per request when
//! bit-for-bit reproducibility across *runs* matters.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use dsd_graph::{Graph, GraphUpdate};

use crate::engine::{pattern_key, ApplyStats, DsdEngine, DsdRequest, PatternKey, Solution};
use crate::parallelism::Parallelism;
use crate::serve::SubstrateGovernor;

/// Why the service could not serve a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The request names a graph the catalog does not hold.
    UnknownGraph(String),
    /// The request was never routed ([`DsdRequest::on`] was not called).
    Unrouted,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownGraph(name) => {
                write!(f, "no graph named {name:?} in the catalog")
            }
            ServiceError::Unrouted => {
                write!(f, "request names no graph (build it with .on(name))")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Batch-level instrumentation returned by [`DsdService::solve_batch`].
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// End-to-end wall time of the batch.
    pub wall_nanos: u128,
    /// Number of requests in the batch (including failed routings).
    pub requests: usize,
    /// Distinct (graph, Ψ) groups among the routable requests.
    pub groups: usize,
    /// (k, Ψ)-core decomposition builds paid by this batch, summed over
    /// the engines it touched. Equals `groups` when every group issued at
    /// least one decomposition-backed request against a cold engine; lower
    /// when engines were already warm or a group was all query-variant
    /// requests (those use the classical k-core order instead).
    pub substrate_builds: usize,
    /// Decomposition cache hits during the batch (the dedup win).
    pub substrate_hits: usize,
    /// Min-cut probes run by the batch's α-searches (summed over the
    /// successfully solved requests).
    pub flow_probes: usize,
    /// Of those, probes served warm by parametric resolve (flow-state
    /// reuse) instead of a from-scratch max-flow.
    pub flow_resolve_hits: usize,
    /// Instance-store columns materialized by this batch's requests
    /// (bytes, summed over solutions that paid a cold oracle build).
    pub store_bytes_built: u64,
    /// Instance-store enumeration time paid by this batch (nanoseconds,
    /// same summation rule as [`BatchStats::store_bytes_built`]).
    pub store_build_nanos: u128,
    /// Flow-network cache hits during the batch: solves whose
    /// [`DensityNetwork`](crate::flownet::DensityNetwork) was taken warm
    /// from an engine's epoch-keyed network cache instead of being
    /// rebuilt from the instance store (summed over touched engines).
    pub network_hits: usize,
    /// Flow-network cache misses during the batch (cold network builds).
    pub network_misses: usize,
    /// Resident substrate-cache bytes across the engines this batch
    /// touched, measured after the batch (stores + decompositions).
    pub substrate_bytes: u64,
    /// Of [`BatchStats::substrate_bytes`], the portion held by cached
    /// flow networks (already included in the total).
    pub network_bytes: u64,
    /// Per-worker busy time (solving requests, not queue waits).
    pub worker_busy_nanos: Vec<u128>,
}

impl BatchStats {
    /// Mean fraction of the batch wall time each worker spent solving.
    pub fn utilization(&self) -> f64 {
        if self.wall_nanos == 0 || self.worker_busy_nanos.is_empty() {
            return 0.0;
        }
        let busy: u128 = self.worker_busy_nanos.iter().sum();
        busy as f64 / (self.wall_nanos as f64 * self.worker_busy_nanos.len() as f64)
    }
}

/// Result of a batch: per-request solutions (in request order) plus
/// batch-level stats.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// One slot per submitted request, order-preserving.
    pub solutions: Vec<Result<Solution, ServiceError>>,
    /// Batch-level instrumentation.
    pub stats: BatchStats,
}

/// A thread-safe catalog of named graphs, each served by its own
/// cache-reusing [`DsdEngine`], plus a batched executor over them.
///
/// All methods take `&self`; the service is `Send + Sync` and is meant to
/// sit in an `Arc` at the top of a server.
pub struct DsdService {
    catalog: RwLock<HashMap<String, Arc<DsdEngine<'static>>>>,
    parallelism: Parallelism,
    substrate_budget: Option<u64>,
    governor: Option<Arc<SubstrateGovernor>>,
}

impl Default for DsdService {
    fn default() -> Self {
        Self::with_parallelism(Parallelism::serial())
    }
}

impl DsdService {
    /// An empty serving catalog executing batches serially.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty serving catalog with the given worker configuration for
    /// batch execution. Registered engines keep *serial* substrate passes:
    /// the batch workers are the parallelism, and nesting a
    /// `ParallelCliqueOracle` inside each worker would oversubscribe the
    /// machine (workers × oracle threads). Configure an engine's own
    /// parallelism via [`DsdEngine::with_parallelism`] when it serves
    /// single requests outside a batch.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        DsdService {
            catalog: RwLock::new(HashMap::new()),
            parallelism,
            substrate_budget: Some(crate::oracle::DEFAULT_STORE_BUDGET),
            governor: None,
        }
    }

    /// Puts the catalog under a [`SubstrateGovernor`]: every engine
    /// registered *after* this call is attached, so its substrate bytes
    /// are ledgered against the governor's global budget and its entries
    /// become eviction candidates. [`Self::evict`] and engine drop report
    /// released bytes back through the same ledger.
    pub fn with_governor(mut self, governor: Arc<SubstrateGovernor>) -> Self {
        self.governor = Some(governor);
        self
    }

    /// The service's worker-count configuration.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Sets the per-engine instance-store byte budget applied to graphs
    /// registered *after* this call (`None` = unlimited, `Some(0)` =
    /// never materialize; see [`DsdEngine::with_substrate_budget`]).
    pub fn with_substrate_budget(mut self, budget: Option<u64>) -> Self {
        self.substrate_budget = budget;
        self
    }

    /// Resident substrate-cache bytes summed over every registered engine.
    pub fn substrate_bytes(&self) -> u64 {
        let catalog = self.catalog.read().unwrap();
        catalog.values().map(|e| e.substrate_bytes()).sum()
    }

    /// Registers (or replaces) a graph under `name` and returns its
    /// engine. Replacing drops the old engine's substrates once the last
    /// in-flight request holding its `Arc` finishes — requests already
    /// routed keep their consistent view.
    pub fn register(&self, name: impl Into<String>, graph: Graph) -> Arc<DsdEngine<'static>> {
        let engine = Arc::new(DsdEngine::new(graph).with_substrate_budget(self.substrate_budget));
        if let Some(governor) = &self.governor {
            governor.attach(&engine);
        }
        let replaced = self
            .catalog
            .write()
            .unwrap()
            .insert(name.into(), Arc::clone(&engine));
        // Dropped outside the catalog lock: a replaced engine's Drop
        // reports its bytes to the governor, which may call back into
        // engine locks.
        drop(replaced);
        engine
    }

    /// Registers (or replaces) a graph under `name` with a caller-built
    /// engine — the sharded subsystem's spine joins the catalog this way
    /// while its shard engines attach to the governor separately. Same
    /// replacement semantics as [`Self::register`].
    pub fn register_engine(
        &self,
        name: impl Into<String>,
        engine: Arc<DsdEngine<'static>>,
    ) -> Arc<DsdEngine<'static>> {
        if let Some(governor) = &self.governor {
            governor.attach(&engine);
        }
        let replaced = self
            .catalog
            .write()
            .unwrap()
            .insert(name.into(), Arc::clone(&engine));
        drop(replaced);
        engine
    }

    /// Removes `name` from the catalog; returns whether it was present.
    /// In-flight requests on the evicted engine run to completion; under
    /// a governor, the engine's drop then reports its released bytes so
    /// the global ledger never drifts from reality.
    pub fn evict(&self, name: &str) -> bool {
        let removed = self.catalog.write().unwrap().remove(name);
        removed.is_some()
    }

    /// The engine serving `name`, if registered.
    pub fn engine(&self, name: &str) -> Option<Arc<DsdEngine<'static>>> {
        self.catalog.read().unwrap().get(name).cloned()
    }

    /// Sorted names of all registered graphs.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.read().unwrap().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.catalog.read().unwrap().len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.catalog.read().unwrap().is_empty()
    }

    /// Serves one routed request (built with [`DsdRequest::on`]).
    pub fn solve(&self, req: &DsdRequest) -> Result<Solution, ServiceError> {
        Ok(self.route(req)?.solve(req))
    }

    /// Applies a batch of edge updates to the named graph **in place** —
    /// no re-registration, no substrate cold start beyond what the batch
    /// invalidates (see [`DsdEngine::apply`]). Requests already in flight
    /// against the graph finish on their pre-update snapshot; later
    /// requests see the new epoch.
    pub fn update(&self, name: &str, updates: &[GraphUpdate]) -> Result<ApplyStats, ServiceError> {
        let engine = self
            .engine(name)
            .ok_or_else(|| ServiceError::UnknownGraph(name.to_string()))?;
        Ok(engine.apply(updates))
    }

    fn route(&self, req: &DsdRequest) -> Result<Arc<DsdEngine<'static>>, ServiceError> {
        let name = req.graph_name().ok_or(ServiceError::Unrouted)?;
        self.engine(name)
            .ok_or_else(|| ServiceError::UnknownGraph(name.to_string()))
    }

    /// Executes a batch of routed requests across the service's worker
    /// pool and returns per-request solutions in request order.
    ///
    /// Requests are grouped by (graph, canonical Ψ) and the groups are
    /// interleaved round-robin onto the work queue, so workers start on
    /// distinct groups and same-group stragglers land as cache hits — a
    /// mixed batch pays each distinct substrate exactly once (see
    /// [`BatchStats`]). Builds on *different* engines proceed
    /// concurrently; builds of different Ψ on the *same* engine serialize
    /// behind that engine's build-once write lock, so per-graph cold-start
    /// wall time is the sum of that graph's distinct substrate builds.
    pub fn solve_batch(&self, requests: Vec<DsdRequest>) -> BatchOutcome {
        // Empty batch: nothing to route, group, or solve — return zeroed
        // stats without spawning workers.
        if requests.is_empty() {
            return BatchOutcome {
                solutions: Vec::new(),
                stats: BatchStats::default(),
            };
        }
        let t0 = Instant::now();
        let n = requests.len();

        // Route every request up front; failures keep their slot.
        let mut solutions: Vec<Option<Result<Solution, ServiceError>>> = Vec::with_capacity(n);
        let mut runnable: Vec<(usize, Arc<DsdEngine<'static>>, DsdRequest)> = Vec::new();
        for (i, req) in requests.into_iter().enumerate() {
            match self.route(&req) {
                Ok(engine) => {
                    solutions.push(None);
                    runnable.push((i, engine, req));
                }
                Err(e) => solutions.push(Some(Err(e))),
            }
        }

        // Group by (graph, canonical Ψ); remember each touched engine once
        // for before/after cache accounting.
        let mut groups: HashMap<(String, PatternKey), Vec<usize>> = HashMap::new();
        let mut engines: HashMap<String, Arc<DsdEngine<'static>>> = HashMap::new();
        for (slot, (_, engine, req)) in runnable.iter().enumerate() {
            let name = req.graph_name().unwrap_or_default().to_string();
            engines
                .entry(name.clone())
                .or_insert_with(|| Arc::clone(engine));
            groups
                .entry((name, pattern_key(req.psi())))
                .or_default()
                .push(slot);
        }
        let before: Vec<_> = engines.values().map(|e| e.cache_stats()).collect();

        // Round-robin across groups: the first `workers` queue entries are
        // from distinct groups whenever possible, so workers warm distinct
        // substrates concurrently instead of piling onto one build.
        let mut group_lists: Vec<&Vec<usize>> = groups.values().collect();
        group_lists.sort_unstable_by_key(|slots| slots[0]);
        let mut queue: Vec<usize> = Vec::with_capacity(runnable.len());
        let mut depth = 0;
        loop {
            let mut any = false;
            for slots in &group_lists {
                if let Some(&slot) = slots.get(depth) {
                    queue.push(slot);
                    any = true;
                }
            }
            if !any {
                break;
            }
            depth += 1;
        }

        let workers = self.parallelism.threads().min(queue.len().max(1));
        let cursor = AtomicUsize::new(0);
        let solved: Vec<Mutex<Option<Solution>>> =
            runnable.iter().map(|_| Mutex::new(None)).collect();
        let mut worker_busy_nanos = vec![0u128; workers];

        if workers <= 1 {
            for &slot in &queue {
                let (_, engine, req) = &runnable[slot];
                let t = Instant::now();
                let solution = engine.solve(req);
                worker_busy_nanos[0] += t.elapsed().as_nanos();
                *solved[slot].lock().unwrap() = Some(solution);
            }
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for _ in 0..workers {
                    let queue = &queue;
                    let runnable = &runnable;
                    let solved = &solved;
                    let cursor = &cursor;
                    handles.push(scope.spawn(move || {
                        let mut busy = 0u128;
                        loop {
                            let at = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&slot) = queue.get(at) else {
                                return busy;
                            };
                            let (_, engine, req) = &runnable[slot];
                            let t = Instant::now();
                            let solution = engine.solve(req);
                            busy += t.elapsed().as_nanos();
                            *solved[slot].lock().unwrap() = Some(solution);
                        }
                    }));
                }
                for (i, handle) in handles.into_iter().enumerate() {
                    worker_busy_nanos[i] = handle.join().expect("batch worker panicked");
                }
            });
        }

        for (slot, cell) in solved.into_iter().enumerate() {
            let index = runnable[slot].0;
            let solution = cell
                .into_inner()
                .unwrap()
                .expect("every queued request was solved");
            solutions[index] = Some(Ok(solution));
        }

        let after: Vec<_> = engines.values().map(|e| e.cache_stats()).collect();
        let mut substrate_builds = 0;
        let mut substrate_hits = 0;
        let mut network_hits = 0;
        let mut network_misses = 0;
        for (b, a) in before.iter().zip(&after) {
            substrate_builds += a.decomposition_builds - b.decomposition_builds;
            substrate_hits += a.decomposition_hits - b.decomposition_hits;
            network_hits += a.network_hits - b.network_hits;
            network_misses += a.network_misses - b.network_misses;
        }

        let solutions: Vec<Result<Solution, ServiceError>> = solutions
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect();
        let mut flow_probes = 0;
        let mut flow_resolve_hits = 0;
        let mut store_bytes_built = 0u64;
        let mut store_build_nanos = 0u128;
        for s in solutions.iter().flatten() {
            flow_probes += s.stats.flow_iterations;
            flow_resolve_hits += s.stats.flow_resolve_hits;
            // Attribute each store to the request that paid the cold
            // oracle build (cache hits reuse the same columns).
            if !s.stats.substrate.oracle_cache_hit {
                if let Some(store) = &s.stats.store {
                    store_bytes_built += store.build.bytes as u64;
                    store_build_nanos += store.build.build_nanos;
                }
            }
        }
        let substrate_bytes: u64 = engines.values().map(|e| e.substrate_bytes()).sum();
        let network_bytes: u64 = engines.values().map(|e| e.network_bytes()).sum();

        BatchOutcome {
            solutions,
            stats: BatchStats {
                wall_nanos: t0.elapsed().as_nanos(),
                requests: n,
                groups: groups.len(),
                substrate_builds,
                substrate_hits,
                flow_probes,
                flow_resolve_hits,
                store_bytes_built,
                store_build_nanos,
                network_hits,
                network_misses,
                substrate_bytes,
                network_bytes,
                worker_busy_nanos,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Objective, Outcome};
    use crate::Method;
    use dsd_motif::Pattern;

    fn toy() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn service_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DsdService>();
        assert_send_sync::<BatchOutcome>();
    }

    #[test]
    fn catalog_register_evict_list() {
        let service = DsdService::new();
        assert!(service.is_empty());
        service.register("a", toy());
        service.register("b", toy());
        assert_eq!(service.list(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(service.len(), 2);
        assert!(service.engine("a").is_some());
        assert!(service.engine("missing").is_none());
        assert!(service.evict("a"));
        assert!(!service.evict("a"));
        assert_eq!(service.list(), vec!["b".to_string()]);
    }

    #[test]
    fn solve_routes_by_name() {
        let service = DsdService::new();
        service.register("toy", toy());
        let psi = Pattern::triangle();
        let s = service
            .solve(&DsdRequest::new(&psi).on("toy").method(Method::CoreExact))
            .unwrap();
        assert_eq!(s.vertices, vec![0, 1, 2, 3]);
        assert_eq!(s.outcome, Outcome::Found);

        assert_eq!(
            service.solve(&DsdRequest::new(&psi)).unwrap_err(),
            ServiceError::Unrouted
        );
        assert_eq!(
            service
                .solve(&DsdRequest::new(&psi).on("nope"))
                .unwrap_err(),
            ServiceError::UnknownGraph("nope".into())
        );
    }

    #[test]
    fn batch_preserves_order_and_reports_errors_in_place() {
        let service = DsdService::with_parallelism(Parallelism::new(3));
        service.register("toy", toy());
        let psi = Pattern::triangle();
        let batch = vec![
            DsdRequest::new(&psi).on("toy").method(Method::CoreExact),
            DsdRequest::new(&psi).on("gone"),
            DsdRequest::new(&psi)
                .on("toy")
                .objective(Objective::TopK(2)),
            DsdRequest::new(&psi),
        ];
        let outcome = service.solve_batch(batch);
        assert_eq!(outcome.solutions.len(), 4);
        assert_eq!(outcome.stats.requests, 4);
        assert_eq!(outcome.stats.groups, 1);
        assert!(outcome.solutions[0].is_ok());
        assert_eq!(
            outcome.solutions[1].as_ref().unwrap_err(),
            &ServiceError::UnknownGraph("gone".into())
        );
        assert!(outcome.solutions[2].is_ok());
        assert_eq!(
            outcome.solutions[3].as_ref().unwrap_err(),
            &ServiceError::Unrouted
        );
        // One group → one substrate build, the second request hit.
        assert_eq!(outcome.stats.substrate_builds, 1);
        assert_eq!(outcome.stats.substrate_hits, 1);
    }

    #[test]
    fn update_routes_by_name_and_advances_epoch() {
        let service = DsdService::new();
        service.register("toy", toy());
        let psi = Pattern::triangle();
        let before = service
            .solve(&DsdRequest::new(&psi).on("toy").method(Method::CoreExact))
            .unwrap();
        assert_eq!(before.stats.epoch, 0);

        let stats = service
            .update("toy", &[dsd_graph::GraphUpdate::Insert(3, 5)])
            .unwrap();
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.epoch, 1);

        let after = service
            .solve(&DsdRequest::new(&psi).on("toy").method(Method::CoreExact))
            .unwrap();
        assert_eq!(after.stats.epoch, 1);
        // Same answer as a cold engine over the updated graph.
        let updated = Graph::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (0, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
            ],
        );
        let cold = DsdEngine::new(updated);
        let expect = cold.request(&psi).method(Method::CoreExact).solve();
        assert_eq!(after.vertices, expect.vertices);
        assert_eq!(after.density.to_bits(), expect.density.to_bits());

        assert_eq!(
            service.update("gone", &[]).unwrap_err(),
            ServiceError::UnknownGraph("gone".into())
        );
    }

    /// The empty-batch fast path: zeroed stats, no worker bookkeeping,
    /// no wall-clock measured (the early return never starts the timer).
    #[test]
    fn empty_batch_is_fine() {
        let service = DsdService::with_parallelism(Parallelism::new(4));
        let outcome = service.solve_batch(Vec::new());
        assert!(outcome.solutions.is_empty());
        assert_eq!(outcome.stats.requests, 0);
        assert_eq!(outcome.stats.groups, 0);
        assert_eq!(outcome.stats.wall_nanos, 0);
        assert!(outcome.stats.worker_busy_nanos.is_empty());
        assert_eq!(outcome.stats.utilization(), 0.0);
    }

    #[test]
    fn batch_groups_by_canonical_pattern() {
        let service = DsdService::new();
        service.register("toy", toy());
        // The paw, two labelings → one group.
        let paw_a = Pattern::c3_star();
        let paw_b = Pattern::new("paw-b", 4, &[(1, 2), (2, 3), (1, 3), (2, 0)]);
        let outcome = service.solve_batch(vec![
            DsdRequest::new(&paw_a).on("toy").method(Method::PeelApp),
            DsdRequest::new(&paw_b).on("toy").method(Method::PeelApp),
        ]);
        assert_eq!(outcome.stats.groups, 1);
        assert_eq!(outcome.stats.substrate_builds, 1);
        let a = outcome.solutions[0].as_ref().unwrap();
        let b = outcome.solutions[1].as_ref().unwrap();
        assert_eq!(a.vertices, b.vertices);
    }
}
