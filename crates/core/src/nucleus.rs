//! Nucleus-decomposition baseline (Sariyüce, Seshadhri, Pinar, PVLDB 2018).
//!
//! The paper compares its core decomposition against the local
//! `(1, h)`-nucleus algorithm ("AND": asynchronous nucleus decomposition):
//! every vertex starts at its clique-degree and repeatedly replaces its
//! value with the **h-index** of `{min over the other members of each
//! clique containing it}`, converging to exactly the clique-core numbers.
//! We materialize the clique incidence once (the same cost Algorithm 3
//! pays for initial degrees) and iterate asynchronously to a fixpoint.

use dsd_graph::{Graph, VertexId};
use dsd_motif::kclist;

use crate::approx::ApproxResult;
use crate::oracle::{density, oracle_for};
use crate::types::DsdResult;
use dsd_graph::VertexSet;
use dsd_motif::Pattern;

/// Clique-core numbers via local h-index iteration.
#[derive(Clone, Debug)]
pub struct NucleusDecomposition {
    /// Converged clique-core numbers.
    pub core: Vec<u64>,
    /// Maximum clique-core number.
    pub kmax: u64,
    /// Number of full sweeps until the fixpoint.
    pub rounds: usize,
}

/// h-index of a list of values: the largest `x` such that at least `x`
/// values are ≥ `x`. Consumes/reorders the scratch buffer.
fn h_index(values: &mut [u64]) -> u64 {
    values.sort_unstable_by(|a, b| b.cmp(a));
    let mut h = 0u64;
    for (i, &v) in values.iter().enumerate() {
        if v >= (i + 1) as u64 {
            h = (i + 1) as u64;
        } else {
            break;
        }
    }
    h
}

/// Runs the (1, h)-nucleus decomposition for the h-clique.
pub fn nucleus_decomposition(g: &Graph, h: usize) -> NucleusDecomposition {
    assert!(h >= 2);
    let n = g.num_vertices();
    // Materialize clique incidence.
    let mut cliques: Vec<Vec<VertexId>> = Vec::new();
    kclist::for_each_clique(g, h, |c| cliques.push(c.to_vec()));
    let mut incidence: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, c) in cliques.iter().enumerate() {
        for &v in c {
            incidence[v as usize].push(i as u32);
        }
    }
    // τ₀ = clique-degree.
    let mut tau: Vec<u64> = incidence.iter().map(|inc| inc.len() as u64).collect();
    let mut rounds = 0usize;
    let mut scratch: Vec<u64> = Vec::new();
    loop {
        rounds += 1;
        let mut changed = false;
        for v in 0..n {
            if incidence[v].is_empty() {
                continue;
            }
            scratch.clear();
            for &ci in &incidence[v] {
                let value = cliques[ci as usize]
                    .iter()
                    .filter(|&&u| u as usize != v)
                    .map(|&u| tau[u as usize])
                    .min()
                    .unwrap_or(0);
                scratch.push(value);
            }
            let new_tau = h_index(&mut scratch);
            if new_tau != tau[v] {
                // Asynchronous update: later vertices in this sweep see it.
                tau[v] = new_tau;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let kmax = tau.iter().copied().max().unwrap_or(0);
    NucleusDecomposition {
        core: tau,
        kmax,
        rounds,
    }
}

/// The Nucleus approximation baseline: the (kmax, Ψ)-core extracted from
/// the nucleus decomposition (same output as IncApp/CoreApp).
pub fn nucleus_app(g: &Graph, h: usize) -> ApproxResult {
    let dec = nucleus_decomposition(g, h);
    let vertices: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| dec.core[v as usize] >= dec.kmax && dec.kmax > 0)
        .collect();
    let psi = Pattern::clique(h);
    let oracle = oracle_for(&psi);
    let set = VertexSet::from_members(g.num_vertices(), &vertices);
    let rho = density(oracle.as_ref(), g, &set);
    ApproxResult {
        result: DsdResult {
            vertices,
            density: rho,
        },
        kmax: dec.kmax,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique_core::decompose;
    use crate::oracle::oracle_for;

    fn random_graph(seed: u64, n: usize, percent: u64) -> Graph {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = dsd_graph::GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if next() % 100 < percent {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn h_index_basics() {
        assert_eq!(h_index(&mut [3, 3, 3]), 3);
        assert_eq!(h_index(&mut [5, 1, 1]), 1);
        assert_eq!(h_index(&mut []), 0);
        assert_eq!(h_index(&mut [10, 9, 8, 7]), 4);
    }

    #[test]
    fn converges_to_clique_core_numbers() {
        for seed in 1..10u64 {
            let g = random_graph(seed, 14, 35);
            for h in 2..=4usize {
                let nuc = nucleus_decomposition(&g, h);
                let oracle = oracle_for(&Pattern::clique(h));
                let dec = decompose(&g, oracle.as_ref());
                assert_eq!(nuc.core, dec.core, "seed {seed} h {h}");
                assert_eq!(nuc.kmax, dec.kmax);
            }
        }
    }

    #[test]
    fn h2_matches_classical_core_numbers() {
        let g = random_graph(42, 20, 25);
        let nuc = nucleus_decomposition(&g, 2);
        let classical = crate::kcore::k_core_decomposition(&g);
        for v in g.vertices() {
            assert_eq!(nuc.core[v as usize], classical.core[v as usize] as u64);
        }
    }

    #[test]
    fn nucleus_app_matches_inc_app() {
        let g = random_graph(7, 16, 40);
        for h in 2..=4usize {
            let a = nucleus_app(&g, h);
            let b = crate::approx::inc_app(&g, &Pattern::clique(h));
            assert_eq!(a.kmax, b.kmax, "h {h}");
            assert_eq!(a.result.vertices, b.result.vertices, "h {h}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(4);
        let nuc = nucleus_decomposition(&g, 3);
        assert_eq!(nuc.kmax, 0);
        assert_eq!(nuc.core, vec![0; 4]);
    }
}
