//! Algorithm 5 (`IncApp`) and Algorithm 6 (`CoreApp`): core-based
//! `1/|VΨ|`-approximations.
//!
//! Both return the `(kmax, Ψ)`-core, which Lemma 8 proves is a
//! `1/|VΨ|`-approximation of the CDS. `IncApp` computes it bottom-up by
//! full core decomposition. `CoreApp` computes it top-down: sort vertices
//! by an upper bound `γ(v, Ψ)` of their clique-core numbers, decompose the
//! subgraph induced by the current top-`|W|` prefix, and double `|W|` until
//! every remaining vertex's `γ` falls below the best `kmax` found —
//! at which point the found core is provably the global one.

use dsd_graph::{Graph, VertexId, VertexSet};
use dsd_motif::binomial;
use dsd_motif::pattern::{Pattern, PatternKind};

use crate::clique_core::{decompose, CliqueCoreDecomposition};
use crate::kcore::{k_core_decomposition, KCoreDecomposition};
use crate::oracle::{density, oracle_for, DensityOracle};
use crate::types::DsdResult;

/// Result of an approximation run: the (kmax, Ψ)-core and its order.
#[derive(Clone, Debug)]
pub struct ApproxResult {
    /// The approximate densest subgraph (the (kmax, Ψ)-core).
    pub result: DsdResult,
    /// The maximum clique-core number found.
    pub kmax: u64,
}

/// Algorithm 5: full decomposition, return the (kmax, Ψ)-core.
pub fn inc_app(g: &Graph, psi: &Pattern) -> ApproxResult {
    let oracle = oracle_for(psi);
    let dec = decompose(g, oracle.as_ref());
    inc_app_from(g, oracle.as_ref(), &dec)
}

/// [`inc_app`] against caller-provided (possibly warm) substrates: reads
/// the (kmax, Ψ)-core straight out of the decomposition.
pub fn inc_app_from(
    g: &Graph,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
) -> ApproxResult {
    let core = dec.max_core();
    finish(g, oracle, core.to_vec(), dec.kmax)
}

/// [`inc_app`] for h-cliques with the initial clique-degree pass — the
/// dominant cost on large graphs — parallelized over the configured
/// workers (Section 6.3's parallelizability remark).
pub fn inc_app_parallel(g: &Graph, h: usize, parallelism: crate::Parallelism) -> ApproxResult {
    let oracle = crate::oracle::ParallelCliqueOracle::new(h, parallelism);
    let dec = decompose(g, &oracle);
    let core = dec.max_core();
    finish(g, &oracle, core.to_vec(), dec.kmax)
}

fn finish(
    g: &Graph,
    oracle: &dyn DensityOracle,
    mut vertices: Vec<VertexId>,
    kmax: u64,
) -> ApproxResult {
    vertices.sort_unstable();
    let set = VertexSet::from_members(g.num_vertices(), &vertices);
    let rho = density(oracle, g, &set);
    ApproxResult {
        result: DsdResult {
            vertices,
            density: rho,
        },
        kmax,
    }
}

/// The γ(v, Ψ) upper bound of Algorithm 6 line 1.
///
/// * Cliques: `γ(v) = C(x, h−1)` with `x` the classical core number — a
///   sound bound on the clique-*core* number (the min-degree vertex of the
///   (k, Ψ)-core has classical degree ≥ its clique count's support).
/// * Stars / diamond: the Appendix-D closed forms make the *exact* degree
///   as cheap as any bound, so γ = deg.
/// * General patterns: γ = exact degree via enumeration (the same cost
///   PeelApp pays up front).
pub fn gamma_bounds(g: &Graph, psi: &Pattern) -> Vec<u64> {
    let oracle = oracle_for(psi);
    gamma_bounds_from(g, psi, oracle.as_ref(), None)
}

/// [`gamma_bounds`] against caller-provided (possibly warm) substrates:
/// the oracle for degree-based bounds and, for cliques, the classical
/// k-core order (computed cold when absent).
pub fn gamma_bounds_from(
    g: &Graph,
    psi: &Pattern,
    oracle: &dyn DensityOracle,
    kcore: Option<&KCoreDecomposition>,
) -> Vec<u64> {
    match psi.kind() {
        PatternKind::Clique(h) => {
            let gamma_of = |cores: &KCoreDecomposition| {
                cores
                    .core
                    .iter()
                    .map(|&x| binomial(x as u64, h as u64 - 1))
                    .collect()
            };
            match kcore {
                Some(cores) => gamma_of(cores),
                None => gamma_of(&k_core_decomposition(g)),
            }
        }
        _ => oracle.degrees(g, &VertexSet::full(g.num_vertices())),
    }
}

/// Default initial frontier size for [`core_app`]'s doubling schedule,
/// shared with the engine so the free function stays a bit-identical shim.
pub const CORE_APP_DEFAULT_SEED: usize = 64;

/// Algorithm 6: top-down (kmax, Ψ)-core discovery with frontier doubling.
pub fn core_app(g: &Graph, psi: &Pattern) -> ApproxResult {
    core_app_with_seed(g, psi, CORE_APP_DEFAULT_SEED)
}

/// [`core_app`] with an explicit initial frontier size (the paper leaves
/// the seed open; doubling makes total work a geometric series regardless).
pub fn core_app_with_seed(g: &Graph, psi: &Pattern, seed: usize) -> ApproxResult {
    let oracle = oracle_for(psi);
    core_app_from(g, psi, oracle.as_ref(), seed, None)
}

/// [`core_app`] against caller-provided (possibly warm) substrates.
pub fn core_app_from(
    g: &Graph,
    psi: &Pattern,
    oracle: &dyn DensityOracle,
    seed: usize,
    kcore: Option<&KCoreDecomposition>,
) -> ApproxResult {
    let n = g.num_vertices();
    if n == 0 {
        return ApproxResult {
            result: DsdResult::empty(),
            kmax: 0,
        };
    }
    let gamma = gamma_bounds_from(g, psi, oracle, kcore);
    // Vertices sorted by γ descending (line 2).
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by(|&a, &b| gamma[b as usize].cmp(&gamma[a as usize]));

    let mut w_len = seed.clamp(1, n);
    let mut kmax = 0u64;
    let mut s_star: Vec<VertexId> = Vec::new();

    loop {
        let members = &order[..w_len];
        let mut alive = VertexSet::from_members(n, members);
        let mut deg = oracle.degrees(g, &alive);
        // Onion peel of G[W] from the running kmax upwards (Algorithm 6
        // lines 7-14). We restart at `kmax` rather than the paper's
        // `kmax + 1`: growing W can grow the (kmax, Ψ)-core without raising
        // kmax, and S* must track the *current* core, not the first-found
        // subset of it (the earlier core stays inside the new one, so the
        // re-peel is never wasted).
        let kl = alive.iter().map(|v| deg[v as usize]).min().unwrap_or(0);
        let mut k = kl.max(kmax).max(1);
        loop {
            // Cascade-remove everything of degree < k.
            let mut queue: Vec<VertexId> = alive.iter().filter(|&v| deg[v as usize] < k).collect();
            while let Some(v) = queue.pop() {
                if !alive.contains(v) {
                    continue;
                }
                for (u, amount) in oracle.removal_decrements(g, &alive, v) {
                    let du = &mut deg[u as usize];
                    *du -= amount.min(*du);
                    if *du < k && alive.contains(u) {
                        queue.push(u);
                    }
                }
                alive.remove(v);
            }
            if alive.is_empty() {
                break;
            }
            if k >= kmax {
                kmax = k;
                s_star = alive.to_vec();
            }
            k += 1;
        }
        if w_len == n {
            break;
        }
        // Stopping criterion (line 4): every vertex outside W has γ < kmax,
        // hence clique-core number < kmax, hence the global core is inside W.
        let max_remaining_gamma = gamma[order[w_len] as usize];
        if max_remaining_gamma < kmax {
            break;
        }
        w_len = (w_len * 2).min(n);
    }

    if kmax == 0 {
        // The (0, Ψ)-core is the whole graph (density 0 either way).
        return finish(g, oracle, g.vertices().collect(), 0);
    }
    finish(g, oracle, s_star, kmax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact;
    use crate::flownet::FlowBackend;

    fn planted() -> Graph {
        // K7 planted in a 40-vertex sparse ring.
        let mut edges = Vec::new();
        for u in 0..7u32 {
            for v in (u + 1)..7 {
                edges.push((u, v));
            }
        }
        for i in 7..40u32 {
            edges.push((i, if i == 39 { 7 } else { i + 1 }));
            edges.push((i, i % 7));
        }
        Graph::from_edges(40, &edges)
    }

    #[test]
    fn inc_app_and_core_app_agree() {
        let g = planted();
        for psi in [
            Pattern::edge(),
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::two_star(),
            Pattern::diamond(),
        ] {
            let a = inc_app(&g, &psi);
            let b = core_app(&g, &psi);
            assert_eq!(a.kmax, b.kmax, "{}: kmax", psi.name());
            assert_eq!(
                a.result.vertices,
                b.result.vertices,
                "{}: core set",
                psi.name()
            );
        }
    }

    #[test]
    fn core_app_seed_invariance() {
        let g = planted();
        let psi = Pattern::triangle();
        let reference = core_app_with_seed(&g, &psi, 64);
        for seed in [1, 2, 5, 17, 40, 1000] {
            let r = core_app_with_seed(&g, &psi, seed);
            assert_eq!(r.kmax, reference.kmax, "seed {seed}");
            assert_eq!(r.result.vertices, reference.result.vertices, "seed {seed}");
        }
    }

    #[test]
    fn parallel_inc_app_matches_sequential() {
        let g = planted();
        for h in 2..=4usize {
            let seq = inc_app(&g, &Pattern::clique(h));
            for threads in [1, 2, 4] {
                let par = inc_app_parallel(&g, h, crate::Parallelism::new(threads));
                assert_eq!(par.kmax, seq.kmax, "h {h} threads {threads}");
                assert_eq!(par.result.vertices, seq.result.vertices);
            }
        }
    }

    #[test]
    fn core_wider_than_first_frontier_is_fully_returned() {
        // 30 disjoint K5s: the (4, edge)-core is all 150 vertices, far more
        // than the 64-vertex seed frontier. A stale S* from the first
        // frontier would miss most of it (regression test for the
        // frontier-growth bug latent in Algorithm 6's `k > kmax` guard).
        let mut edges = Vec::new();
        for c in 0..30u32 {
            for i in 0..5u32 {
                for j in (i + 1)..5 {
                    edges.push((5 * c + i, 5 * c + j));
                }
            }
        }
        let g = Graph::from_edges(150, &edges);
        let psi = Pattern::edge();
        let a = inc_app(&g, &psi);
        let b = core_app_with_seed(&g, &psi, 64);
        assert_eq!(a.kmax, 4);
        assert_eq!(b.kmax, 4);
        assert_eq!(a.result.vertices.len(), 150);
        assert_eq!(b.result.vertices, a.result.vertices);
    }

    #[test]
    fn approximation_guarantee() {
        let g = planted();
        for psi in [Pattern::edge(), Pattern::triangle()] {
            let approx = core_app(&g, &psi);
            let (opt, _) = exact(&g, &psi, FlowBackend::Dinic);
            assert!(
                approx.result.density + 1e-9 >= opt.density / psi.vertex_count() as f64,
                "{}",
                psi.name()
            );
        }
    }

    #[test]
    fn theorem1_bounds_on_returned_core() {
        let g = planted();
        let psi = Pattern::triangle();
        let r = core_app(&g, &psi);
        let lower = r.kmax as f64 / 3.0;
        assert!(r.result.density + 1e-9 >= lower);
        assert!(r.result.density <= r.kmax as f64 + 1e-9);
    }

    #[test]
    fn zero_instance_graph_returns_whole_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = core_app(&g, &Pattern::triangle());
        assert_eq!(r.kmax, 0);
        assert_eq!(r.result.vertices, vec![0, 1, 2, 3]);
        assert_eq!(r.result.density, 0.0);
        let i = inc_app(&g, &Pattern::triangle());
        assert_eq!(i.kmax, 0);
    }

    #[test]
    fn gamma_is_sound_upper_bound_on_core_numbers() {
        let g = planted();
        for psi in [Pattern::edge(), Pattern::triangle(), Pattern::clique(4)] {
            let gamma = gamma_bounds(&g, &psi);
            let oracle = oracle_for(&psi);
            let dec = decompose(&g, oracle.as_ref());
            for v in g.vertices() {
                assert!(
                    gamma[v as usize] >= dec.core[v as usize],
                    "{}: γ({v}) = {} < core {}",
                    psi.name(),
                    gamma[v as usize],
                    dec.core[v as usize]
                );
            }
        }
    }
}
