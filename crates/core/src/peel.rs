//! Algorithm 2 (`PeelApp`): the greedy `1/|VΨ|`-approximation.
//!
//! Repeatedly removes the vertex with minimum instance-degree and returns
//! the densest residual graph encountered. The peel itself is the same loop
//! as the core decomposition (Algorithm 3); the only extra work PeelApp
//! performs is density tracking, which the shared engine in
//! [`crate::clique_core`] already does incrementally
//! (`μ ← μ − deg(v)` on each removal).

use dsd_graph::Graph;
use dsd_motif::Pattern;

use crate::clique_core::{decompose, CliqueCoreDecomposition};
use crate::oracle::oracle_for;
use crate::types::DsdResult;

/// Runs PeelApp: returns the densest residual subgraph `S*` seen while
/// greedily peeling minimum-degree vertices.
///
/// Guarantee: `ρ(S*, Ψ) ≥ ρopt / |VΨ|` (Lemma 10, generalizing Charikar's
/// 0.5-approximation for edges).
pub fn peel_app(g: &Graph, psi: &Pattern) -> DsdResult {
    let oracle = oracle_for(psi);
    let dec = decompose(g, oracle.as_ref());
    peel_app_from(&dec)
}

/// [`peel_app`] against a caller-provided (possibly warm) decomposition —
/// the peel itself *is* the decomposition, so a warm call is O(|S*|).
pub fn peel_app_from(dec: &CliqueCoreDecomposition) -> DsdResult {
    if dec.mu == 0 {
        return DsdResult::empty();
    }
    let mut vertices = dec.best_residual();
    vertices.sort_unstable();
    DsdResult {
        vertices,
        density: dec.best_density,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact;
    use crate::flownet::FlowBackend;

    fn k_plus_fringe() -> Graph {
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        edges.extend_from_slice(&[(6, 0), (7, 1), (8, 2), (6, 7), (7, 8)]);
        Graph::from_edges(9, &edges)
    }

    #[test]
    fn approximation_guarantee_holds() {
        let g = k_plus_fringe();
        for psi in [
            Pattern::edge(),
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::two_star(),
            Pattern::diamond(),
        ] {
            let approx = peel_app(&g, &psi);
            let (opt, _) = exact(&g, &psi, FlowBackend::Dinic);
            let ratio_floor = opt.density / psi.vertex_count() as f64;
            assert!(
                approx.density + 1e-9 >= ratio_floor,
                "{}: {} < {}",
                psi.name(),
                approx.density,
                ratio_floor
            );
            assert!(
                approx.density <= opt.density + 1e-9,
                "approx beats optimum?"
            );
        }
    }

    #[test]
    fn peel_finds_clique_exactly_when_clique_dominates() {
        let g = k_plus_fringe();
        let r = peel_app(&g, &Pattern::edge());
        // Greedy peeling strips the fringe before touching the K6.
        assert_eq!(r.vertices, vec![0, 1, 2, 3, 4, 5]);
        assert!((r.density - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_on_no_instances() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(peel_app(&g, &Pattern::triangle()).is_empty());
    }
}
