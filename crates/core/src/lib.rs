//! `dsd-core`: core-based densest subgraph discovery.
//!
//! Rust implementation of *Fang, Yu, Cheng, Lakshmanan, Lin. "Efficient
//! Algorithms for Densest Subgraph Discovery." PVLDB 12(11), 2019* — the
//! (k, Ψ)-core machinery plus every algorithm the paper introduces or
//! compares against:
//!
//! | Paper name | Here | Kind |
//! |---|---|---|
//! | Algorithm 1 `Exact` | [`exact::exact`] (clique Ψ) | exact |
//! | Algorithm 2 `PeelApp` | [`peel::peel_app`] | 1/\|VΨ\| approx |
//! | Algorithm 3 core decomposition | [`clique_core::decompose`] | substrate |
//! | Algorithm 4 `CoreExact` | [`core_exact::core_exact`] | exact |
//! | Algorithm 5 `IncApp` | [`approx::inc_app`] | approx |
//! | Algorithm 6 `CoreApp` | [`approx::core_app`] | approx |
//! | Algorithm 7 `construct+` | [`flownet::build_pattern_network`] / [`flownet::build_store_network`] | substrate |
//! | Algorithm 8 `PExact` | [`exact::exact`] (pattern Ψ) | exact |
//! | `CorePExact` | [`core_exact::core_exact`] (pattern Ψ) | exact |
//! | `Nucleus` baseline | [`nucleus::nucleus_app`] | approx |
//! | `EMcore` baseline | [`emcore::emcore_max_core`] | approx |
//! | Sec. 6.3 query variant | [`query::densest_with_query`] | exact |
//!
//! # Quickstart
//!
//! One-off calls go through the free functions; query *workloads* go
//! through [`engine::DsdEngine`], which owns the graph and memoizes the
//! expensive substrates (Ψ-instance lists, (k, Ψ)-core decompositions, the
//! classical k-core order) across requests:
//!
//! ```
//! use dsd_core::engine::{DsdEngine, Objective};
//! use dsd_core::Method;
//! use dsd_motif::Pattern;
//! use dsd_graph::Graph;
//!
//! // Two triangles sharing an edge, plus a tail.
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
//! let engine = DsdEngine::new(g);
//! let psi = Pattern::triangle();
//!
//! // Method::Auto picks a guarantee-preserving algorithm cost-based.
//! let cds = engine.request(&psi).solve();
//! assert_eq!(cds.vertices, vec![0, 1, 2, 3]);
//! assert!((cds.density - 0.5).abs() < 1e-9);
//!
//! // Same Ψ again — substrates come out of the cache.
//! let top = engine.request(&psi).objective(Objective::TopK(2)).solve();
//! assert!(top.stats.substrate.decomposition_cache_hit);
//! ```
//!
//! The free-function form still works and now shims through a throwaway
//! engine:
//!
//! ```
//! use dsd_core::{densest_subgraph, Method};
//! use dsd_motif::Pattern;
//! use dsd_graph::Graph;
//!
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
//! let cds = densest_subgraph(&g, &Pattern::triangle(), Method::CoreExact);
//! assert_eq!(cds.vertices, vec![0, 1, 2, 3]);
//! ```

pub mod alpha_search;
pub mod approx;
pub mod bounds;
pub mod bucket_queue;
pub mod budget;
pub mod clique_core;
pub mod core_exact;
pub mod dynamic;
pub mod emcore;
pub mod engine;
pub mod exact;
pub mod flownet;
pub mod hierarchy;
pub mod kcore;
pub mod nucleus;
pub mod oracle;
pub mod parallelism;
pub mod peel;
pub mod query;
pub mod serve;
pub mod service;
pub mod shard;
pub mod size_constrained;
pub mod top_k;
pub mod types;

pub use alpha_search::{
    alpha_search, density_gap, effective_gap, DecisionProbe, NetworkProbe, SearchOutcome,
};
pub use approx::{core_app, core_app_from, inc_app, inc_app_from, inc_app_parallel, ApproxResult};
pub use bounds::{density_bounds, locate_core_order, DensityBounds};
pub use budget::parse_byte_budget;
pub use clique_core::{decompose, CliqueCoreDecomposition};
pub use core_exact::{
    core_exact, core_exact_from, core_exact_from_certified, core_exact_with, CoreExactConfig,
    CoreExactStats, RegionCertificates,
};
pub use dsd_graph::GraphUpdate;
pub use dsd_motif::store::StoreBuildStats;
pub use dynamic::{repair_delete, repair_insert};
pub use emcore::emcore_max_core;
pub use engine::{
    pattern_key, ApplyStats, BoundRequest, CacheObserver, DsdEngine, DsdRequest, EngineCacheStats,
    GraphSnapshot, Guarantee, Objective, Outcome, PatternKey, RepairPolicy, Solution, SolveStats,
    MULTI_EDGE_DELTA_MAX,
};
pub use exact::{exact, exact_with, ExactOpts, ExactStats};
pub use flownet::FlowBackend;
pub use hierarchy::{core_hierarchy, core_spectrum, first_level_with_density, CoreLevel};
pub use kcore::{k_core_decomposition, KCoreDecomposition};
pub use nucleus::{nucleus_app, nucleus_decomposition};
pub use oracle::{
    density, oracle_for, oracle_for_with, oracle_with_budget, oracle_with_policy, DensityOracle,
    InstancePeeler, MaterializedOracle, StoreFallback, StoreStats, DEFAULT_STORE_BUDGET,
};
pub use parallelism::Parallelism;
pub use peel::{peel_app, peel_app_from};
pub use query::{densest_with_query, densest_with_query_from};
pub use serve::{
    DsdServer, GovernorStats, ServeConfig, ServeError, ServeOutcome, ServeStats, SubstrateGovernor,
    SubstrateLease, Ticket,
};
pub use service::{BatchOutcome, BatchStats, DsdService, ServiceError};
pub use shard::{ShardPlan, ShardPlanner, ShardReport, ShardedApply, ShardedGraph, ShardedSolve};
pub use size_constrained::{
    densest_at_least_k, densest_at_least_k_certified, densest_at_least_k_from, densest_at_most_k,
    densest_at_most_k_from, SizeConstrainedOutcome,
};
pub use top_k::{top_k_densest, top_k_densest_certified, top_k_densest_from};
pub use types::DsdResult;

use dsd_graph::Graph;
use dsd_motif::Pattern;

/// Solution method for a densest-subgraph request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Flow-based exact baseline (Algorithm 1 / Algorithm 8).
    Exact,
    /// Core-based exact (Algorithm 4; `CorePExact` for patterns).
    CoreExact,
    /// Greedy peeling approximation (Algorithm 2).
    PeelApp,
    /// Bottom-up (kmax, Ψ)-core approximation (Algorithm 5).
    IncApp,
    /// Top-down (kmax, Ψ)-core approximation (Algorithm 6).
    CoreApp,
    /// Cost-based automatic selection among the methods above, restricted
    /// to the ones that preserve the `1/|VΨ|` guarantee (see
    /// [`engine::DsdEngine`]).
    Auto,
}

/// One-call entry point: the densest subgraph of `g` w.r.t. Ψ-density.
///
/// Exact methods return the true CDS/PDS; approximation methods return a
/// subgraph whose density is within `1/|VΨ|` of optimal (and in practice
/// much closer — see `EXPERIMENTS.md`). Shims through a throwaway
/// [`engine::DsdEngine`]; build one yourself to reuse substrates across
/// calls.
pub fn densest_subgraph(g: &Graph, psi: &Pattern, method: Method) -> DsdResult {
    DsdEngine::over(g)
        .request(psi)
        .method(method)
        .solve()
        .to_result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_run_and_respect_guarantees() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (0, 3),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
            ],
        );
        let psi = Pattern::triangle();
        let opt = densest_subgraph(&g, &psi, Method::Exact);
        for method in [
            Method::CoreExact,
            Method::PeelApp,
            Method::IncApp,
            Method::CoreApp,
        ] {
            let r = densest_subgraph(&g, &psi, method);
            assert!(
                r.density + 1e-9 >= opt.density / 3.0,
                "{method:?} broke the approximation guarantee"
            );
            assert!(
                r.density <= opt.density + 1e-9,
                "{method:?} beat the optimum"
            );
        }
        let core = densest_subgraph(&g, &psi, Method::CoreExact);
        assert!((core.density - opt.density).abs() < 1e-9);
    }
}
