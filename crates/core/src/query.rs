//! Section 6.3's CDS variant: the densest subgraph **containing a set of
//! query vertices** Q (edge-density), located via cores.
//!
//! Steps, following the paper's sketch: (1) classical core decomposition;
//! (2) `x` = minimum core number over Q, so the x-core contains Q and has
//! density ≥ x/2 — a lower bound on the constrained optimum; (3) locate the
//! answer inside a *Q-anchored* ⌈x/2⌉-core (peeling never removes Q); (4)
//! α-search with a *pinned* Goldberg network (`s→q` capacity ∞ for
//! `q ∈ Q`, forcing Q into the source side of every min cut), riding the
//! shared [`mod@crate::alpha_search`] loop. The pinned network is built once
//! and every probe runs through the parametric resolve machinery —
//! previously this path rebuilt the network *and* re-solved from scratch
//! at every guess.

use dsd_graph::{Graph, InducedSubgraph, VertexId, VertexSet};

use crate::alpha_search::{alpha_search, density_gap, DecisionProbe, ExactStats};
use crate::flownet::{build_query_network, DensityNetwork, FlowBackend, NetworkLender};
use crate::kcore::{k_core_decomposition, KCoreDecomposition};
use crate::types::DsdResult;

/// Finds the densest (edge-density) subgraph containing all of `query`.
///
/// Returns `None` when `query` is empty or contains out-of-range vertices.
pub fn densest_with_query(g: &Graph, query: &[VertexId]) -> Option<DsdResult> {
    let cores = k_core_decomposition(g);
    densest_with_query_from(g, query, &cores, FlowBackend::Dinic).map(|(r, _)| r)
}

/// The pinned-network probe: the min cut always keeps Q on the source
/// side (the ∞ pins make `S = {s}` impossible), so feasibility is decided
/// by the returned side's *density* rather than cut non-triviality.
/// Feasible probes checkpoint the flow state for the parametric chain.
struct QueryProbe<'a> {
    net: &'a mut DensityNetwork,
    g: &'a Graph,
    backend: FlowBackend,
}

impl DecisionProbe for QueryProbe<'_> {
    type Witness = Vec<VertexId>;

    fn probe(&mut self, alpha: f64) -> Option<Vec<VertexId>> {
        let side = self.net.min_cut_side(alpha, self.backend);
        if side.is_empty() {
            return None;
        }
        let density = induced_edges(self.g, &side) as f64 / side.len() as f64;
        if density > alpha {
            self.net.checkpoint();
            Some(side)
        } else {
            None
        }
    }

    fn network_nodes(&self) -> usize {
        self.net.num_nodes()
    }
}

/// [`densest_with_query`] against a caller-provided (possibly warm)
/// classical core decomposition and an explicit max-flow backend. Also
/// returns the α-search instrumentation (probe counts, flow reuse).
pub fn densest_with_query_from(
    g: &Graph,
    query: &[VertexId],
    cores: &KCoreDecomposition,
    backend: FlowBackend,
) -> Option<(DsdResult, ExactStats)> {
    densest_with_query_lender(g, query, cores, backend, None)
}

/// [`densest_with_query_from`] with a network lender: the pinned network
/// is borrowed from the lender's cache — keyed by the anchored-core
/// member set *and* the pinned query set — when a warm one is resident,
/// and returned afterwards. The Q-anchored peel re-derives the same
/// member set on an unchanged graph, so repeat queries warm-resolve.
pub(crate) fn densest_with_query_lender(
    g: &Graph,
    query: &[VertexId],
    cores: &KCoreDecomposition,
    backend: FlowBackend,
    lender: Option<&dyn NetworkLender>,
) -> Option<(DsdResult, ExactStats)> {
    let n = g.num_vertices();
    if query.is_empty() || query.iter().any(|&q| q as usize >= n) {
        return None;
    }
    let x = query
        .iter()
        .map(|&q| cores.core[q as usize])
        .min()
        .expect("query non-empty");
    let k = x.div_ceil(2);

    // Q-anchored k-core: peel non-query vertices with degree < k.
    let mut alive = VertexSet::full(n);
    let is_query = {
        let mut mask = vec![false; n];
        for &q in query {
            mask[q as usize] = true;
        }
        mask
    };
    let mut deg: Vec<usize> = g.degrees();
    let mut stack: Vec<VertexId> = alive
        .iter()
        .filter(|&v| !is_query[v as usize] && deg[v as usize] < k as usize)
        .collect();
    while let Some(v) = stack.pop() {
        if !alive.contains(v) {
            continue;
        }
        alive.remove(v);
        for &u in g.neighbors(v) {
            if alive.contains(u) {
                deg[u as usize] -= 1;
                if !is_query[u as usize] && deg[u as usize] < k as usize {
                    stack.push(u);
                }
            }
        }
    }

    let sub = InducedSubgraph::from_set(g, &alive);
    let local_query: Vec<VertexId> = sub
        .orig
        .iter()
        .enumerate()
        .filter(|(_, &v)| is_query[v as usize])
        .map(|(i, _)| i as VertexId)
        .collect();
    debug_assert_eq!(local_query.len(), query.len());

    // α-search with the pinned network, built once for the whole probe
    // sequence. The seed probe at l both captures the x-core-quality
    // answer (robust when no strictly-denser subgraph exists) and
    // checkpoints the parametric chain — every later probe has α > l.
    let l = x as f64 / 2.0;
    let u = cores.kmax as f64;
    let mut stats = ExactStats {
        initial_bounds: (l, u),
        ..ExactStats::default()
    };
    let mut net = match lender.and_then(|l| l.take(&sub.orig, query)) {
        Some(net) => net,
        None => build_query_network(&sub.graph, &local_query),
    };
    stats.iterations += 1;
    stats.network_nodes.push(net.num_nodes());
    let seed = net.min_cut_side(l, backend);
    net.checkpoint();
    let mut best = if seed.is_empty() { None } else { Some(seed) };

    let gap = density_gap(sub.graph.num_vertices());
    let outcome = {
        let mut probe = QueryProbe {
            net: &mut net,
            g: &sub.graph,
            backend,
        };
        alpha_search(&mut probe, (l, u), gap, usize::MAX, &mut stats)
    };
    if let Some(side) = outcome.witness {
        best = Some(side);
    }
    stats.absorb_flow(net.probe_stats());
    if let Some(l) = lender {
        l.put(&sub.orig, query, net);
    }

    let side = best?;
    let mut vertices: Vec<VertexId> = side.iter().map(|&v| sub.to_parent(v)).collect();
    vertices.sort_unstable();
    let m_in = induced_edges(&sub.graph, &side);
    Some((
        DsdResult {
            density: m_in as f64 / side.len() as f64,
            vertices,
        },
        stats,
    ))
}

fn induced_edges(g: &Graph, members: &[VertexId]) -> usize {
    let set = VertexSet::from_members(g.num_vertices(), members);
    set.iter()
        .map(|v| {
            g.neighbors(v)
                .iter()
                .filter(|&&u| u > v && set.contains(u))
                .count()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cliques joined by a path: K5 {0..4} — 5-6 — K4 {7..10}.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        for u in 7..11u32 {
            for v in (u + 1)..11 {
                edges.push((u, v));
            }
        }
        edges.extend_from_slice(&[(4, 5), (5, 6), (6, 7)]);
        Graph::from_edges(11, &edges)
    }

    #[test]
    fn unconstrained_query_in_dense_part_returns_that_clique() {
        let g = two_cliques();
        let r = densest_with_query(&g, &[0]).unwrap();
        assert_eq!(r.vertices, vec![0, 1, 2, 3, 4]);
        assert!((r.density - 2.0).abs() < 1e-9);
    }

    #[test]
    fn query_in_sparse_part_forces_inclusion() {
        let g = two_cliques();
        let r = densest_with_query(&g, &[9]).unwrap();
        assert!(r.vertices.contains(&9));
        // Subgraphs may be disconnected: best with vertex 9 is K5 ∪ K4 at
        // (10 + 6) / 9 edges per vertex.
        assert_eq!(r.vertices, vec![0, 1, 2, 3, 4, 7, 8, 9, 10]);
        assert!((r.density - 16.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn query_spanning_both_cliques() {
        let g = two_cliques();
        let r = densest_with_query(&g, &[0, 9]).unwrap();
        assert!(r.vertices.contains(&0) && r.vertices.contains(&9));
        assert!(
            (r.density - 16.0 / 9.0).abs() < 1e-9,
            "density {}",
            r.density
        );
    }

    #[test]
    fn brute_force_validation_on_small_graph() {
        // 6-vertex graph; check optimal density over all subsets ⊇ {q}.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        for q in 0..6u32 {
            let r = densest_with_query(&g, &[q]).unwrap();
            let mut best = 0.0f64;
            for mask in 1u32..(1 << 6) {
                if mask & (1 << q) == 0 {
                    continue;
                }
                let members: Vec<VertexId> = (0..6).filter(|&v| mask & (1 << v) != 0).collect();
                let m_in = induced_edges(&g, &members);
                best = best.max(m_in as f64 / members.len() as f64);
            }
            assert!(
                (r.density - best).abs() < 1e-6,
                "q = {q}: got {} want {}",
                r.density,
                best
            );
        }
    }

    #[test]
    fn invalid_queries() {
        let g = two_cliques();
        assert!(densest_with_query(&g, &[]).is_none());
        assert!(densest_with_query(&g, &[99]).is_none());
    }

    /// The pinned-network probe sequence genuinely reuses flow state: all
    /// probes after the seed warm-resolve, and both backends agree.
    #[test]
    fn parametric_reuse_and_backend_agreement() {
        let g = two_cliques();
        let cores = k_core_decomposition(&g);
        for q in [vec![0], vec![9], vec![0, 9]] {
            let (rd, sd) = densest_with_query_from(&g, &q, &cores, FlowBackend::Dinic).unwrap();
            let (rp, sp) =
                densest_with_query_from(&g, &q, &cores, FlowBackend::PushRelabel).unwrap();
            assert_eq!(rd.vertices, rp.vertices, "query {q:?}");
            assert_eq!(rd.density.to_bits(), rp.density.to_bits(), "query {q:?}");
            for (name, s) in [("dinic", &sd), ("push-relabel", &sp)] {
                assert!(s.iterations >= 2, "{name}: {q:?}");
                assert_eq!(
                    s.resolve_hits,
                    s.iterations - 1,
                    "{name} {q:?}: every probe after the seed must warm-resolve"
                );
            }
        }
    }
}
