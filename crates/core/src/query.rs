//! Section 6.3's CDS variant: the densest subgraph **containing a set of
//! query vertices** Q (edge-density), located via cores.
//!
//! Steps, following the paper's sketch: (1) classical core decomposition;
//! (2) `x` = minimum core number over Q, so the x-core contains Q and has
//! density ≥ x/2 — a lower bound on the constrained optimum; (3) locate the
//! answer inside a *Q-anchored* ⌈x/2⌉-core (peeling never removes Q); (4)
//! binary-search α with a Goldberg network in which `s→q` has capacity ∞
//! for q ∈ Q, pinning Q into the source side of every min-cut.

use dsd_flow::{min_cut_source_side, FlowNetwork, NodeId};
use dsd_graph::{Graph, InducedSubgraph, VertexId, VertexSet};

use crate::exact::density_gap;
use crate::flownet::FlowBackend;
use crate::kcore::{k_core_decomposition, KCoreDecomposition};
use crate::types::DsdResult;

/// Finds the densest (edge-density) subgraph containing all of `query`.
///
/// Returns `None` when `query` is empty or contains out-of-range vertices.
pub fn densest_with_query(g: &Graph, query: &[VertexId]) -> Option<DsdResult> {
    let cores = k_core_decomposition(g);
    densest_with_query_from(g, query, &cores, FlowBackend::Dinic)
}

/// [`densest_with_query`] against a caller-provided (possibly warm)
/// classical core decomposition and an explicit max-flow backend.
pub fn densest_with_query_from(
    g: &Graph,
    query: &[VertexId],
    cores: &KCoreDecomposition,
    backend: FlowBackend,
) -> Option<DsdResult> {
    let n = g.num_vertices();
    if query.is_empty() || query.iter().any(|&q| q as usize >= n) {
        return None;
    }
    let x = query
        .iter()
        .map(|&q| cores.core[q as usize])
        .min()
        .expect("query non-empty");
    let k = x.div_ceil(2);

    // Q-anchored k-core: peel non-query vertices with degree < k.
    let mut alive = VertexSet::full(n);
    let is_query = {
        let mut mask = vec![false; n];
        for &q in query {
            mask[q as usize] = true;
        }
        mask
    };
    let mut deg: Vec<usize> = g.degrees();
    let mut stack: Vec<VertexId> = alive
        .iter()
        .filter(|&v| !is_query[v as usize] && deg[v as usize] < k as usize)
        .collect();
    while let Some(v) = stack.pop() {
        if !alive.contains(v) {
            continue;
        }
        alive.remove(v);
        for &u in g.neighbors(v) {
            if alive.contains(u) {
                deg[u as usize] -= 1;
                if !is_query[u as usize] && deg[u as usize] < k as usize {
                    stack.push(u);
                }
            }
        }
    }

    let sub = InducedSubgraph::from_set(g, &alive);
    let local_query: Vec<VertexId> = sub
        .orig
        .iter()
        .enumerate()
        .filter(|(_, &v)| is_query[v as usize])
        .map(|(i, _)| i as VertexId)
        .collect();
    debug_assert_eq!(local_query.len(), query.len());

    // Binary search α with the pinned Goldberg network. Feasibility is
    // decided by the density of the returned source side (robust against
    // the ∞-pinned capacities making "S = {s}" impossible).
    let mut l = x as f64 / 2.0;
    let mut u = cores.kmax as f64;
    let mut best = best_side_at(&sub.graph, &local_query, l, backend);
    let gap = density_gap(sub.graph.num_vertices());
    while u - l >= gap {
        let alpha = (l + u) / 2.0;
        match feasible_side(&sub.graph, &local_query, alpha, backend) {
            Some(side) => {
                l = alpha;
                best = Some(side);
            }
            None => u = alpha,
        }
    }
    let side = best?;
    let mut vertices: Vec<VertexId> = side.iter().map(|&v| sub.to_parent(v)).collect();
    vertices.sort_unstable();
    let m_in = induced_edges(&sub.graph, &side);
    Some(DsdResult {
        density: m_in as f64 / side.len() as f64,
        vertices,
    })
}

fn induced_edges(g: &Graph, members: &[VertexId]) -> usize {
    let set = VertexSet::from_members(g.num_vertices(), members);
    set.iter()
        .map(|v| {
            g.neighbors(v)
                .iter()
                .filter(|&&u| u > v && set.contains(u))
                .count()
        })
        .sum()
}

/// Best source-side at guess α, or `None` when its density is ≤ α.
fn feasible_side(
    g: &Graph,
    query: &[VertexId],
    alpha: f64,
    backend: FlowBackend,
) -> Option<Vec<VertexId>> {
    let side = min_cut_side(g, query, alpha, backend);
    let density = induced_edges(g, &side) as f64 / side.len() as f64;
    if density > alpha {
        Some(side)
    } else {
        None
    }
}

/// Source side at guess α regardless of feasibility (used to seed the
/// answer with the x-core-quality subgraph).
fn best_side_at(
    g: &Graph,
    query: &[VertexId],
    alpha: f64,
    backend: FlowBackend,
) -> Option<Vec<VertexId>> {
    let side = min_cut_side(g, query, alpha, backend);
    if side.is_empty() {
        None
    } else {
        Some(side)
    }
}

fn min_cut_side(g: &Graph, query: &[VertexId], alpha: f64, backend: FlowBackend) -> Vec<VertexId> {
    let n = g.num_vertices();
    let m = g.num_edges() as f64;
    let s: NodeId = 0;
    let t: NodeId = (n + 1) as NodeId;
    let mut net = FlowNetwork::with_capacity(n + 2, 2 * g.num_edges() + 2 * n);
    let query_set: std::collections::HashSet<VertexId> = query.iter().copied().collect();
    for v in 0..n {
        let node = (v + 1) as NodeId;
        let s_cap = if query_set.contains(&(v as VertexId)) {
            FlowNetwork::INF
        } else {
            m
        };
        net.add_edge(s, node, s_cap);
        net.add_edge(node, t, m + 2.0 * alpha - g.degree(v as VertexId) as f64);
    }
    for (u, v) in g.edges() {
        net.add_edge((u + 1) as NodeId, (v + 1) as NodeId, 1.0);
        net.add_edge((v + 1) as NodeId, (u + 1) as NodeId, 1.0);
    }
    let mut solver = backend.solver();
    let _ = solver.max_flow(&mut net, s, t);
    min_cut_source_side(&net, s)
        .into_iter()
        .filter(|&node| node != s && (node as usize) <= n)
        .map(|node| (node - 1) as VertexId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cliques joined by a path: K5 {0..4} — 5-6 — K4 {7..10}.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        for u in 7..11u32 {
            for v in (u + 1)..11 {
                edges.push((u, v));
            }
        }
        edges.extend_from_slice(&[(4, 5), (5, 6), (6, 7)]);
        Graph::from_edges(11, &edges)
    }

    #[test]
    fn unconstrained_query_in_dense_part_returns_that_clique() {
        let g = two_cliques();
        let r = densest_with_query(&g, &[0]).unwrap();
        assert_eq!(r.vertices, vec![0, 1, 2, 3, 4]);
        assert!((r.density - 2.0).abs() < 1e-9);
    }

    #[test]
    fn query_in_sparse_part_forces_inclusion() {
        let g = two_cliques();
        let r = densest_with_query(&g, &[9]).unwrap();
        assert!(r.vertices.contains(&9));
        // Subgraphs may be disconnected: best with vertex 9 is K5 ∪ K4 at
        // (10 + 6) / 9 edges per vertex.
        assert_eq!(r.vertices, vec![0, 1, 2, 3, 4, 7, 8, 9, 10]);
        assert!((r.density - 16.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn query_spanning_both_cliques() {
        let g = two_cliques();
        let r = densest_with_query(&g, &[0, 9]).unwrap();
        assert!(r.vertices.contains(&0) && r.vertices.contains(&9));
        assert!(
            (r.density - 16.0 / 9.0).abs() < 1e-9,
            "density {}",
            r.density
        );
    }

    #[test]
    fn brute_force_validation_on_small_graph() {
        // 6-vertex graph; check optimal density over all subsets ⊇ {q}.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        for q in 0..6u32 {
            let r = densest_with_query(&g, &[q]).unwrap();
            let mut best = 0.0f64;
            for mask in 1u32..(1 << 6) {
                if mask & (1 << q) == 0 {
                    continue;
                }
                let members: Vec<VertexId> = (0..6).filter(|&v| mask & (1 << v) != 0).collect();
                let m_in = induced_edges(&g, &members);
                best = best.max(m_in as f64 / members.len() as f64);
            }
            assert!(
                (r.density - best).abs() < 1e-6,
                "q = {q}: got {} want {}",
                r.density,
                best
            );
        }
    }

    #[test]
    fn invalid_queries() {
        let g = two_cliques();
        assert!(densest_with_query(&g, &[]).is_none());
        assert!(densest_with_query(&g, &[99]).is_none());
    }
}
