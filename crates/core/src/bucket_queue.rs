//! A hybrid monotone min-queue for peel loops.
//!
//! Algorithm 3 pops the minimum-degree vertex `n` times over a stream of
//! decrements. Classical bin-sort peeling (Batagelj–Zaveršnik) is O(1)
//! amortized per operation but needs one bucket per attainable degree —
//! impractical for unbounded `u64` pattern degrees. A binary heap handles
//! any degree but costs O(log n) per touch. This queue takes both: dense
//! lazy buckets for degrees below a bound (where almost all peel traffic
//! lives on skewed graphs) and an overflow heap for the hub tail above it.
//!
//! Entries are *lazy*: every degree change pushes a fresh entry and stale
//! ones are filtered at pop time against the caller's current degree
//! array, exactly like the heap-based loop this replaces. The pop order is
//! min-degree first; ties are popped in unspecified (but deterministic)
//! order, which any min-degree peel may do — core numbers are tie-break
//! invariant (see `clique_core`'s debug cross-check).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dsd_graph::VertexId;

/// Degrees at or above this many buckets go to the overflow heap. 64Ki
/// buckets ≈ 1.5 MiB of `Vec` headers — trivial next to any store, while
/// covering the entire degree range of most real decompositions.
const MAX_BUCKETS: u64 = 1 << 16;

/// Hybrid bucket/heap min-queue over `(degree, vertex)` entries.
pub struct PeelQueue {
    /// `buckets[d]` holds (possibly stale) entries for degree `d < bound`.
    buckets: Vec<Vec<VertexId>>,
    /// Lowest bucket that may be non-empty.
    cursor: usize,
    /// Entries with degree ≥ `bound` (lazy, like the buckets).
    overflow: BinaryHeap<Reverse<(u64, VertexId)>>,
}

impl PeelQueue {
    /// A queue sized for initial degrees up to `max_degree`.
    pub fn new(max_degree: u64) -> Self {
        let bound = max_degree.saturating_add(1).min(MAX_BUCKETS) as usize;
        PeelQueue {
            buckets: (0..bound).map(|_| Vec::new()).collect(),
            cursor: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Number of dense buckets; degrees ≥ this bound overflow to the heap.
    pub fn bound(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Queues (a possibly additional entry for) `v` at degree `deg`.
    pub fn push(&mut self, deg: u64, v: VertexId) {
        if deg < self.bound() {
            let d = deg as usize;
            self.buckets[d].push(v);
            self.cursor = self.cursor.min(d);
        } else {
            self.overflow.push(Reverse((deg, v)));
        }
    }

    /// Pops the queued entry with minimum degree, staleness *not*
    /// filtered — callers skip entries whose degree no longer matches
    /// (every live vertex always has a fresh entry at its current degree,
    /// so skipping stale ones never loses the true minimum).
    pub fn pop(&mut self) -> Option<(u64, VertexId)> {
        while self.cursor < self.buckets.len() {
            if let Some(v) = self.buckets[self.cursor].pop() {
                return Some((self.cursor as u64, v));
            }
            self.cursor += 1;
        }
        self.overflow.pop().map(|Reverse(entry)| entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the queue with the caller-side staleness filter, returning
    /// the accepted pop sequence.
    fn drain(q: &mut PeelQueue, deg: &[u64], live: &mut [bool]) -> Vec<(u64, VertexId)> {
        let mut out = Vec::new();
        while let Some((d, v)) = q.pop() {
            if !live[v as usize] || d != deg[v as usize] {
                continue;
            }
            live[v as usize] = false;
            out.push((d, v));
        }
        out
    }

    #[test]
    fn pops_in_min_degree_order_across_bound() {
        let mut q = PeelQueue::new(10);
        assert_eq!(q.bound(), 11);
        let deg = vec![7u64, 2, 9, 2, 5];
        for (v, &d) in deg.iter().enumerate() {
            q.push(d, v as VertexId);
        }
        let mut live = vec![true; 5];
        let popped = drain(&mut q, &deg, &mut live);
        let degrees: Vec<u64> = popped.iter().map(|&(d, _)| d).collect();
        assert_eq!(degrees, vec![2, 2, 5, 7, 9]);
    }

    #[test]
    fn overflow_heap_takes_huge_degrees() {
        let mut q = PeelQueue::new(u64::MAX);
        assert_eq!(q.bound(), MAX_BUCKETS);
        let deg = vec![3u64, u64::MAX / 2, 1 << 20, 4];
        for (v, &d) in deg.iter().enumerate() {
            q.push(d, v as VertexId);
        }
        let mut live = vec![true; 4];
        let popped = drain(&mut q, &deg, &mut live);
        let order: Vec<VertexId> = popped.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, vec![0, 3, 2, 1]);
    }

    #[test]
    fn stale_entries_are_skippable_and_min_is_never_lost() {
        let mut q = PeelQueue::new(100);
        let mut deg = vec![50u64, 60];
        q.push(50, 0);
        q.push(60, 1);
        // Vertex 1 decays below vertex 0 in two steps; each decrement
        // pushes a fresh entry like the peel loop does.
        deg[1] = 40;
        q.push(40, 1);
        deg[1] = 10;
        q.push(10, 1);
        let mut live = vec![true; 2];
        let popped = drain(&mut q, &deg, &mut live);
        assert_eq!(popped, vec![(10, 1), (50, 0)]);
    }

    #[test]
    fn cursor_rewinds_on_lower_push_after_pop() {
        let mut q = PeelQueue::new(16);
        let mut deg = vec![5u64, 9];
        q.push(5, 0);
        q.push(9, 1);
        assert_eq!(q.pop(), Some((5, 0)));
        // Simulate a decrement caused by peeling vertex 0.
        deg[1] = 3;
        q.push(3, 1);
        assert_eq!(q.pop(), Some((3, 1)));
        let _ = deg;
    }

    #[test]
    fn crossover_peel_order_matches_heap_reference() {
        // Degrees straddling the dense-bucket/overflow-heap boundary
        // (2^16), including vertices that *decay across it*: entries born
        // in the overflow heap whose fresh re-pushes land in the dense
        // buckets. Final degrees are all distinct (decayed vertices are
        // exactly those ≡ 0 mod 3 and the decrement is a multiple of 3,
        // so decayed and undecayed finals can never collide), so the
        // accepted pop sequence is fully determined and must match a
        // plain lazy BinaryHeap fed the identical push script.
        let n: u64 = 400;
        let mut q = PeelQueue::new(MAX_BUCKETS + 100);
        assert_eq!(q.bound(), MAX_BUCKETS);
        let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
        let mut deg = vec![0u64; n as usize];
        let mut push_both = |deg: u64, v: VertexId, q: &mut PeelQueue| {
            q.push(deg, v);
            heap.push(Reverse((deg, v)));
        };
        for v in 0..n {
            deg[v as usize] = MAX_BUCKETS + 100 - v;
            push_both(deg[v as usize], v as VertexId, &mut q);
        }
        // Finals include both sides of the boundary exactly: v = 100 ends
        // at 2^16, v = 101 at 2^16 - 1.
        assert!(deg.contains(&MAX_BUCKETS) && deg.contains(&(MAX_BUCKETS - 1)));
        for v in (0..n).step_by(3) {
            // Two-step decay like a peel loop's decrements; many cross
            // from the overflow heap into the dense buckets.
            deg[v as usize] -= 37;
            push_both(deg[v as usize], v as VertexId, &mut q);
            deg[v as usize] -= 38;
            push_both(deg[v as usize], v as VertexId, &mut q);
        }
        let mut live = vec![true; n as usize];
        let popped = drain(&mut q, &deg, &mut live);
        assert_eq!(popped.len(), n as usize);
        let mut heap_live = vec![true; n as usize];
        let mut reference = Vec::new();
        while let Some(Reverse((d, v))) = heap.pop() {
            if !heap_live[v as usize] || d != deg[v as usize] {
                continue;
            }
            heap_live[v as usize] = false;
            reference.push((d, v));
        }
        assert_eq!(popped, reference);
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q = PeelQueue::new(0);
        assert_eq!(q.pop(), None);
        q.push(0, 7);
        assert_eq!(q.pop(), Some((0, 7)));
        assert_eq!(q.pop(), None);
    }
}
