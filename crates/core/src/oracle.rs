//! Density oracles: a uniform interface over h-cliques and general patterns.
//!
//! Every DSD algorithm in the paper needs exactly two primitives from Ψ:
//! per-vertex instance counts (clique-/pattern-degrees, Definitions 3 and 9)
//! and the degree *decrements* caused by peeling a vertex (the inner loop of
//! Algorithm 3). The oracle dispatches to the cheapest sound implementation:
//!
//! * h-cliques → kClist enumeration (`dsd-motif::kclist`);
//! * x-stars and diamonds → Appendix-D closed forms (`dsd-motif::special`);
//! * anything else → generic backtracking enumeration
//!   (`dsd-motif::pattern_enum`).

use dsd_graph::{Graph, VertexId, VertexSet};
use dsd_motif::pattern::{Pattern, PatternKind};
use dsd_motif::{kclist, pattern_enum, special};

use crate::parallelism::Parallelism;

/// Degree/decrement oracle for a fixed pattern Ψ.
///
/// Oracles are shared across threads by the engine's substrate cache, so
/// the trait is bounded `Send + Sync`; implementations must make any
/// internal memoization thread-safe (see [`MaterializedPatternOracle`]).
pub trait DensityOracle: Send + Sync {
    /// `|VΨ|`, the number of pattern vertices.
    fn psi_size(&self) -> usize;

    /// Instance-degrees `deg(v, Ψ)` of every vertex of `g[alive]`
    /// (0 outside `alive`).
    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64>;

    /// Degree losses `(u, amount)` suffered by *other* alive vertices when
    /// `v` is removed. `v` must still be in `alive` when called; the caller
    /// removes it afterwards. `v`'s own loss equals its current degree.
    fn removal_decrements(&self, g: &Graph, alive: &VertexSet, v: VertexId)
        -> Vec<(VertexId, u64)>;

    /// Total number of instances `μ(g[alive], Ψ)`.
    ///
    /// Default: `Σ deg / |VΨ|`.
    fn count(&self, g: &Graph, alive: &VertexSet) -> u64 {
        let total: u64 = self.degrees(g, alive).iter().sum();
        total / self.psi_size() as u64
    }
}

/// h-clique oracle backed by kClist.
pub struct CliqueOracle {
    h: usize,
}

impl CliqueOracle {
    /// Oracle for the h-clique, `h >= 2`.
    pub fn new(h: usize) -> Self {
        assert!(h >= 2, "h-clique density needs h >= 2");
        CliqueOracle { h }
    }
}

impl DensityOracle for CliqueOracle {
    fn psi_size(&self) -> usize {
        self.h
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        kclist::clique_degrees_within(g, self.h, alive)
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        let mut acc = std::collections::HashMap::new();
        kclist::for_each_clique_containing(g, self.h, v, alive, |others| {
            for &u in others {
                *acc.entry(u).or_insert(0u64) += 1;
            }
        });
        let mut out: Vec<(VertexId, u64)> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn count(&self, g: &Graph, alive: &VertexSet) -> u64 {
        kclist::count_cliques_within(g, self.h, alive)
    }
}

/// h-clique oracle whose bulk degree pass runs on multiple threads
/// (Section 6.3's parallelizability remark; decremental updates stay
/// sequential because peeling is inherently ordered).
pub struct ParallelCliqueOracle {
    inner: CliqueOracle,
    threads: usize,
}

impl ParallelCliqueOracle {
    /// Oracle for the h-clique using the configured workers for degree
    /// passes.
    pub fn new(h: usize, parallelism: Parallelism) -> Self {
        ParallelCliqueOracle {
            inner: CliqueOracle::new(h),
            threads: parallelism.threads(),
        }
    }
}

impl DensityOracle for ParallelCliqueOracle {
    fn psi_size(&self) -> usize {
        self.inner.h
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        dsd_motif::clique_degrees_parallel_within(g, self.inner.h, alive, self.threads)
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        self.inner.removal_decrements(g, alive, v)
    }

    fn count(&self, g: &Graph, alive: &VertexSet) -> u64 {
        self.inner.count(g, alive)
    }
}

/// x-star oracle using the Appendix-D closed forms.
pub struct StarOracle {
    x: usize,
}

impl DensityOracle for StarOracle {
    fn psi_size(&self) -> usize {
        self.x + 1
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        special::star_degrees(g, self.x, alive)
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        special::star_decrements(g, self.x, alive, v)
    }
}

/// Diamond (4-cycle) oracle using the Appendix-D grouping.
pub struct DiamondOracle;

impl DensityOracle for DiamondOracle {
    fn psi_size(&self) -> usize {
        4
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        special::diamond_degrees(g, alive)
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        special::diamond_decrements(g, alive, v)
    }
}

/// Generic pattern oracle via backtracking enumeration.
///
/// Every query re-enumerates; see [`MaterializedPatternOracle`] for the
/// decomposition-friendly variant that enumerates once.
pub struct GenericPatternOracle {
    pattern: Pattern,
}

impl DensityOracle for GenericPatternOracle {
    fn psi_size(&self) -> usize {
        self.pattern.vertex_count()
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        pattern_enum::pattern_degrees(g, &self.pattern, alive)
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        let mut acc = std::collections::HashMap::new();
        for inst in pattern_enum::instances_containing(g, &self.pattern, v, alive) {
            for &u in &inst.vertices {
                if u != v {
                    *acc.entry(u).or_insert(0u64) += 1;
                }
            }
        }
        let mut out: Vec<(VertexId, u64)> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn count(&self, g: &Graph, alive: &VertexSet) -> u64 {
        pattern_enum::count_instances(g, &self.pattern, alive)
    }
}

/// A pattern oracle that enumerates the instance set **once** and answers
/// every later query from the materialized incidence lists.
///
/// Pattern-core decomposition (Algorithm 3) calls `removal_decrements`
/// once per vertex; re-running anchored subgraph matching each time (as
/// [`GenericPatternOracle`] does) dominates CorePExact's runtime. This
/// oracle trades memory (`O(Σ instance sizes)`) for `O(|ψ|)`-per-dead-
/// instance updates — the in-memory analogue of the paper's remark that
/// pattern-degrees should be computed by one enumeration pass \[53\].
///
/// The materialization is keyed to the first graph it sees; using one
/// oracle value across different graphs is a bug (debug-asserted). The
/// cache is a [`std::sync::OnceLock`], so concurrent first queries from
/// several threads still materialize exactly once.
pub struct MaterializedPatternOracle {
    pattern: Pattern,
    cache: std::sync::OnceLock<InstanceCache>,
}

struct InstanceCache {
    /// Fingerprint of the graph the cache was built for.
    fingerprint: (usize, usize),
    /// Member lists of all instances in the full graph.
    instances: Vec<Vec<VertexId>>,
    /// `incidence[v]` = indices into `instances` containing `v`.
    incidence: Vec<Vec<u32>>,
}

impl MaterializedPatternOracle {
    /// Creates the oracle for `psi`.
    pub fn new(psi: &Pattern) -> Self {
        MaterializedPatternOracle {
            pattern: psi.clone(),
            cache: std::sync::OnceLock::new(),
        }
    }

    fn cache(&self, g: &Graph) -> &InstanceCache {
        let cache = self.cache.get_or_init(|| {
            let alive = VertexSet::full(g.num_vertices());
            let instances: Vec<Vec<VertexId>> = pattern_enum::instances(g, &self.pattern, &alive)
                .into_iter()
                .map(|inst| inst.vertices)
                .collect();
            let mut incidence = vec![Vec::new(); g.num_vertices()];
            for (i, inst) in instances.iter().enumerate() {
                for &v in inst {
                    incidence[v as usize].push(i as u32);
                }
            }
            InstanceCache {
                fingerprint: (g.num_vertices(), g.num_edges()),
                instances,
                incidence,
            }
        });
        debug_assert_eq!(
            cache.fingerprint,
            (g.num_vertices(), g.num_edges()),
            "MaterializedPatternOracle reused across graphs"
        );
        cache
    }
}

impl DensityOracle for MaterializedPatternOracle {
    fn psi_size(&self) -> usize {
        self.pattern.vertex_count()
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        let cache = self.cache(g);
        let mut deg = vec![0u64; g.num_vertices()];
        for inst in &cache.instances {
            if inst.iter().all(|&v| alive.contains(v)) {
                for &v in inst {
                    deg[v as usize] += 1;
                }
            }
        }
        deg
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        let cache = self.cache(g);
        let mut acc = std::collections::HashMap::new();
        for &idx in &cache.incidence[v as usize] {
            let inst = &cache.instances[idx as usize];
            // The instance is live iff all members (v included) are alive;
            // v must still be alive by the oracle contract, and callers
            // that have already removed v get the same semantics because
            // `v`'s own membership is exempted.
            if inst.iter().all(|&u| u == v || alive.contains(u)) {
                for &u in inst {
                    if u != v {
                        *acc.entry(u).or_insert(0u64) += 1;
                    }
                }
            }
        }
        let mut out: Vec<(VertexId, u64)> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn count(&self, g: &Graph, alive: &VertexSet) -> u64 {
        let cache = self.cache(g);
        cache
            .instances
            .iter()
            .filter(|inst| inst.iter().all(|&v| alive.contains(v)))
            .count() as u64
    }
}

/// Picks the cheapest sound oracle for `psi`.
///
/// General patterns get the materialized oracle: one enumeration pass,
/// then O(1)-amortized decrement queries (the decomposition workload).
pub fn oracle_for(psi: &Pattern) -> Box<dyn DensityOracle> {
    oracle_for_with(psi, Parallelism::serial())
}

/// [`oracle_for`] with a worker-count configuration: h-clique bulk degree
/// passes run on the configured workers (other pattern kinds have no
/// parallel path yet and ignore the setting).
pub fn oracle_for_with(psi: &Pattern, parallelism: Parallelism) -> Box<dyn DensityOracle> {
    match psi.kind() {
        PatternKind::Clique(h) if !parallelism.is_serial() => {
            Box::new(ParallelCliqueOracle::new(h, parallelism))
        }
        PatternKind::Clique(h) => Box::new(CliqueOracle::new(h)),
        PatternKind::Star(x) => Box::new(StarOracle { x }),
        PatternKind::Diamond => Box::new(DiamondOracle),
        PatternKind::General => Box::new(MaterializedPatternOracle::new(psi)),
    }
}

/// Pattern-density `ρ(g[alive], Ψ) = μ / |alive|` (Definitions 4 and 10).
pub fn density(oracle: &dyn DensityOracle, g: &Graph, alive: &VertexSet) -> f64 {
    if alive.is_empty() {
        0.0
    } else {
        oracle.count(g, alive) as f64 / alive.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(g: &Graph) -> VertexSet {
        VertexSet::full(g.num_vertices())
    }

    fn wheel6() -> Graph {
        // Hub 0 + 6-cycle rim.
        Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 1),
            ],
        )
    }

    #[test]
    fn oracle_dispatch_matches_generic_on_all_figure7_patterns() {
        let g = wheel6();
        let alive = full(&g);
        for p in Pattern::figure7() {
            let fast = oracle_for(&p);
            let generic = GenericPatternOracle { pattern: p.clone() };
            assert_eq!(
                fast.degrees(&g, &alive),
                generic.degrees(&g, &alive),
                "degrees mismatch for {}",
                p.name()
            );
            assert_eq!(
                fast.count(&g, &alive),
                generic.count(&g, &alive),
                "count mismatch for {}",
                p.name()
            );
        }
    }

    #[test]
    fn clique_oracle_decrements_match_instance_loss() {
        let g = wheel6();
        let oracle = CliqueOracle::new(3);
        let mut alive = full(&g);
        let before = oracle.degrees(&g, &alive);
        let dec = oracle.removal_decrements(&g, &alive, 0);
        alive.remove(0);
        let after = oracle.degrees(&g, &alive);
        for (v, amount) in dec {
            assert_eq!(before[v as usize] - after[v as usize], amount);
        }
    }

    #[test]
    fn generic_oracle_decrements_match_instance_loss() {
        let g = wheel6();
        let psi = Pattern::two_triangle();
        let oracle = oracle_for(&psi);
        let mut alive = full(&g);
        let before = oracle.degrees(&g, &alive);
        let dec = oracle.removal_decrements(&g, &alive, 0);
        alive.remove(0);
        let after = oracle.degrees(&g, &alive);
        let decmap: std::collections::HashMap<_, _> = dec.into_iter().collect();
        for v in alive.iter() {
            let expect = before[v as usize] - after[v as usize];
            assert_eq!(decmap.get(&v).copied().unwrap_or(0), expect, "v = {v}");
        }
    }

    #[test]
    fn materialized_oracle_matches_generic_everywhere() {
        let g = wheel6();
        for p in Pattern::figure7() {
            let mat = MaterializedPatternOracle::new(&p);
            let gen = GenericPatternOracle { pattern: p.clone() };
            let mut alive = full(&g);
            assert_eq!(
                mat.degrees(&g, &alive),
                gen.degrees(&g, &alive),
                "{}",
                p.name()
            );
            assert_eq!(mat.count(&g, &alive), gen.count(&g, &alive), "{}", p.name());
            // After removals too.
            for victim in [0u32, 3] {
                assert_eq!(
                    mat.removal_decrements(&g, &alive, victim),
                    gen.removal_decrements(&g, &alive, victim),
                    "{} victim {victim}",
                    p.name()
                );
                alive.remove(victim);
                assert_eq!(
                    mat.degrees(&g, &alive),
                    gen.degrees(&g, &alive),
                    "{} after removing {victim}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn materialized_oracle_full_decomposition_matches() {
        let g = wheel6();
        let psi = Pattern::two_triangle();
        let mat = MaterializedPatternOracle::new(&psi);
        let gen = GenericPatternOracle {
            pattern: psi.clone(),
        };
        let a = crate::clique_core::decompose(&g, &mat);
        let b = crate::clique_core::decompose(&g, &gen);
        assert_eq!(a.core, b.core);
        assert_eq!(a.kmax, b.kmax);
        assert!((a.best_density - b.best_density).abs() < 1e-12);
    }

    #[test]
    fn density_of_triangle_cds_figure_1a() {
        // S2 from Figure 1(a): 4 vertices, two triangles -> ρ = 2/4.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)]);
        let oracle = oracle_for(&Pattern::triangle());
        assert!((density(oracle.as_ref(), &g, &full(&g)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_of_empty_set_is_zero() {
        let g = wheel6();
        let oracle = oracle_for(&Pattern::edge());
        assert_eq!(density(oracle.as_ref(), &g, &VertexSet::empty(7)), 0.0);
    }
}
