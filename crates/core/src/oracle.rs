//! Density oracles: a uniform interface over h-cliques and general
//! patterns, backed by one columnar instance substrate.
//!
//! Every DSD algorithm in the paper needs exactly two primitives from Ψ:
//! per-vertex instance counts (clique-/pattern-degrees, Definitions 3 and
//! 9) and the degree *decrements* caused by peeling a vertex (the inner
//! loop of Algorithm 3). Since the Lemma-6 analysis makes instance
//! enumeration the dominant cost of both, the default oracle for cliques
//! (h ≥ 3) and general patterns is the [`MaterializedOracle`]: it
//! enumerates the instance set **once** into a u32-indexed
//! [`InstanceStore`] (CSR-of-members + CSR-of-incidence, built in parallel
//! for cliques, sharded by degeneracy-ordered root) and answers every
//! degree, count, and decrement query from the columns. Peel loops get an
//! [`InstancePeeler`] with alive-count-per-row bookkeeping, making a full
//! decomposition O(total memberships) after the single enumeration pass.
//!
//! A byte budget guards the materialization: when the store would overflow
//! its `u32` indexing or the configured budget ([`oracle_with_budget`]),
//! the oracle transparently falls back to the streaming implementations —
//! kClist re-enumeration for cliques, anchored backtracking for general
//! patterns — which are always available as:
//!
//! * h-cliques → kClist enumeration (`dsd-motif::kclist`);
//! * x-stars and diamonds → Appendix-D closed forms (`dsd-motif::special`,
//!   always streaming: their closed forms beat materialization);
//! * anything else → generic backtracking enumeration
//!   (`dsd-motif::pattern_enum`).

use std::sync::Arc;

use dsd_graph::{DeltaGraph, Graph, VertexId, VertexSet};
use dsd_motif::pattern::{Pattern, PatternKind};
use dsd_motif::store::{InstanceStore, StoreBuildStats, StoreError, StoreRepairStats};
use dsd_motif::{kclist, pattern_enum, special};

use crate::parallelism::Parallelism;

/// Default byte budget for instance materialization: stores past this
/// size fall back to streaming oracles (override per engine with
/// [`crate::engine::DsdEngine::with_substrate_budget`]).
pub const DEFAULT_STORE_BUDGET: u64 = 512 << 20;

/// Degree/decrement oracle for a fixed pattern Ψ.
///
/// Oracles are shared across threads by the engine's substrate cache, so
/// the trait is bounded `Send + Sync`; implementations must make any
/// internal memoization thread-safe (see [`MaterializedOracle`]).
pub trait DensityOracle: Send + Sync {
    /// `|VΨ|`, the number of pattern vertices.
    fn psi_size(&self) -> usize;

    /// Instance-degrees `deg(v, Ψ)` of every vertex of `g[alive]`
    /// (0 outside `alive`).
    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64>;

    /// Degree losses `(u, amount)` suffered by *other* alive vertices when
    /// `v` is removed. `v` must still be in `alive` when called; the caller
    /// removes it afterwards. `v`'s own loss equals its current degree.
    fn removal_decrements(&self, g: &Graph, alive: &VertexSet, v: VertexId)
        -> Vec<(VertexId, u64)>;

    /// Total number of instances `μ(g[alive], Ψ)`.
    ///
    /// Default: `Σ deg / |VΨ|`.
    fn count(&self, g: &Graph, alive: &VertexSet) -> u64 {
        let total: u64 = self.degrees(g, alive).iter().sum();
        total / self.psi_size() as u64
    }

    /// A stateful decrement engine for one peel of `g[alive]`, when the
    /// oracle can offer one cheaper than per-call [`Self::removal_decrements`]
    /// (the store-backed oracle can: O(memberships touched) per removal).
    /// `None` keeps the caller on the streaming path.
    fn peeler<'a>(&'a self, g: &Graph, alive: &VertexSet) -> Option<Box<dyn InstancePeeler + 'a>> {
        let _ = (g, alive);
        None
    }

    /// Instance-store accounting, when this oracle materialized (or tried
    /// to materialize) one. `None` for pure streaming oracles and for a
    /// [`MaterializedOracle`] no query has touched yet.
    fn store_stats(&self) -> Option<StoreStats> {
        None
    }

    /// Cache-resident bytes this oracle currently holds (the materialized
    /// instance store, for the store-backed oracle; 0 for pure streaming
    /// oracles). This is the quantity a serving-layer byte governor
    /// ledgers: the oracle is a *droppable store handle* — releasing the
    /// engine's reference frees these bytes once in-flight requests
    /// holding their own `Arc` finish, and later requests rebuild.
    fn resident_bytes(&self) -> u64 {
        0
    }

    /// The materialized [`InstanceStore`] for `g`, when this oracle holds
    /// one — the factorised flow-construction input: exact solvers build
    /// their `DensityNetwork` straight from these columns
    /// (`dsd_core::flownet::build_store_network`) instead of
    /// re-enumerating instances. Materializes on first call for oracles
    /// that build lazily; `None` keeps the caller on the enumeration
    /// constructors (streaming oracles, or a build that fell back).
    fn store(&self, g: &Graph) -> Option<&InstanceStore> {
        let _ = g;
        None
    }

    /// Asks the oracle to carry its state across an edge batch instead of
    /// being dropped. `g_new` is the post-batch graph; `g_mid` is `g_new`
    /// minus the inserted edges (the caller passes `g_new` itself when
    /// nothing was inserted — only the general-pattern recount reads it);
    /// `inserted` / `removed` are the *net* edge changes.
    ///
    /// Default: [`SubstrateRepair::Keep`] — correct for every oracle that
    /// recomputes from the `g` argument of each query, which is all the
    /// streaming oracles. Oracles holding a graph-keyed materialization
    /// must override and either return a repaired replacement or request
    /// a rebuild (see [`MaterializedOracle`]).
    fn repair_for_update(
        &self,
        g_new: &Graph,
        g_mid: &Graph,
        inserted: &[(VertexId, VertexId)],
        removed: &[(VertexId, VertexId)],
    ) -> SubstrateRepair {
        let _ = (g_new, g_mid, inserted, removed);
        SubstrateRepair::Keep
    }

    /// Whether [`Self::repair_for_edge`] can carry this oracle across a
    /// single edge update *without* a materialized post-update CSR. The
    /// engine uses this to keep one-edge batches in the overlay: when every
    /// cached oracle answers `true`, `apply` skips the O(n + m) CSR rebuild
    /// entirely and repairs against the [`DeltaGraph`] view.
    ///
    /// Default: `true` — correct for every oracle that recomputes from the
    /// `g` argument of each query (all the streaming oracles, whose
    /// [`Self::repair_for_edge`] default keeps them as-is). Oracles holding
    /// a graph-keyed materialization must override **both** methods
    /// together (see [`MaterializedOracle`]), answering `false` for shapes
    /// whose repair needs a real CSR.
    fn single_edge_repairable(&self) -> bool {
        true
    }

    /// Repairs the oracle across exactly one effective edge change,
    /// reading adjacency only from the overlay `view` (= the post-update
    /// graph). `insert` says whether `{u, v}` was inserted (else deleted).
    ///
    /// Default: [`SubstrateRepair::Keep`], matching the
    /// [`Self::repair_for_update`] default and sound under the same
    /// condition (the oracle holds no graph-keyed state).
    fn repair_for_edge(
        &self,
        view: DeltaGraph<'_>,
        insert: bool,
        u: VertexId,
        v: VertexId,
    ) -> SubstrateRepair {
        let _ = (view, insert, u, v);
        SubstrateRepair::Keep
    }
}

/// Outcome of [`DensityOracle::repair_for_update`].
pub enum SubstrateRepair {
    /// The oracle is valid as-is on the new graph (streaming oracles, or
    /// a store-backed oracle nothing has materialized yet).
    Keep,
    /// A repaired replacement oracle, answer-identical to a cold rebuild
    /// on the new graph, plus the repair's instrumentation.
    Repaired(Arc<dyn DensityOracle>, StoreRepairStats),
    /// No sound cheap repair exists (prior streaming fallback whose
    /// verdict may flip, or the repair tripped the byte/capacity guards):
    /// drop the entry and rebuild lazily.
    Rebuild,
}

/// One peel run's decrement engine (see [`DensityOracle::peeler`]).
///
/// Not `Sync`: a peeler is owned by a single decomposition and mutates its
/// alive-count bookkeeping as vertices are removed.
pub trait InstancePeeler {
    /// Initial degrees of the peeled subgraph (0 outside it).
    fn degrees(&self) -> Vec<u64>;

    /// Removes `v` (which must still be un-removed), invoking
    /// `sink(u, amount)` once per other surviving vertex `u` that loses
    /// `amount` instances, in ascending `u` order.
    fn remove(&mut self, v: VertexId, sink: &mut dyn FnMut(VertexId, u64));
}

/// Why a [`MaterializedOracle`] is answering from the streaming fallback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreFallback {
    /// The store would exceed the byte budget.
    Budget,
    /// The instance set overflows u32 indexing.
    Capacity,
}

/// Instance-store accounting surfaced through [`DensityOracle::store_stats`]
/// into `SolveStats`/`BatchStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Whether the store was materialized (`false` = streaming fallback).
    pub materialized: bool,
    /// Why materialization was refused, when it was.
    pub fallback: Option<StoreFallback>,
    /// The build's instrumentation — rows, memberships, bytes, wall time,
    /// shards (all zero on fallback).
    pub build: StoreBuildStats,
}

/// h-clique oracle backed by kClist re-enumeration (the streaming path).
pub struct CliqueOracle {
    h: usize,
}

impl CliqueOracle {
    /// Oracle for the h-clique, `h >= 2`.
    pub fn new(h: usize) -> Self {
        assert!(h >= 2, "h-clique density needs h >= 2");
        CliqueOracle { h }
    }
}

impl DensityOracle for CliqueOracle {
    fn psi_size(&self) -> usize {
        self.h
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        kclist::clique_degrees_within(g, self.h, alive)
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        let mut acc = std::collections::HashMap::new();
        kclist::for_each_clique_containing(g, self.h, v, alive, |others| {
            for &u in others {
                *acc.entry(u).or_insert(0u64) += 1;
            }
        });
        let mut out: Vec<(VertexId, u64)> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn count(&self, g: &Graph, alive: &VertexSet) -> u64 {
        kclist::count_cliques_within(g, self.h, alive)
    }
}

/// h-clique oracle whose bulk degree pass runs on multiple threads
/// (Section 6.3's parallelizability remark; decremental updates stay
/// sequential because peeling is inherently ordered).
pub struct ParallelCliqueOracle {
    inner: CliqueOracle,
    threads: usize,
}

impl ParallelCliqueOracle {
    /// Oracle for the h-clique using the configured workers for degree
    /// passes.
    pub fn new(h: usize, parallelism: Parallelism) -> Self {
        ParallelCliqueOracle {
            inner: CliqueOracle::new(h),
            threads: parallelism.threads(),
        }
    }
}

impl DensityOracle for ParallelCliqueOracle {
    fn psi_size(&self) -> usize {
        self.inner.h
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        dsd_motif::clique_degrees_parallel_within(g, self.inner.h, alive, self.threads)
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        self.inner.removal_decrements(g, alive, v)
    }

    fn count(&self, g: &Graph, alive: &VertexSet) -> u64 {
        self.inner.count(g, alive)
    }
}

/// x-star oracle using the Appendix-D closed forms.
pub struct StarOracle {
    x: usize,
}

impl StarOracle {
    /// Oracle for the x-star (hub plus `x` leaves).
    pub fn new(x: usize) -> Self {
        StarOracle { x }
    }
}

impl DensityOracle for StarOracle {
    fn psi_size(&self) -> usize {
        self.x + 1
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        special::star_degrees(g, self.x, alive)
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        special::star_decrements(g, self.x, alive, v)
    }
}

/// Diamond (4-cycle) oracle using the Appendix-D grouping.
pub struct DiamondOracle;

impl DensityOracle for DiamondOracle {
    fn psi_size(&self) -> usize {
        4
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        special::diamond_degrees(g, alive)
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        special::diamond_decrements(g, alive, v)
    }
}

/// Generic pattern oracle via backtracking re-enumeration (the streaming
/// path; [`MaterializedOracle`] wraps it for the decomposition workload).
pub struct GenericPatternOracle {
    pattern: Pattern,
}

impl GenericPatternOracle {
    /// Streaming oracle for `psi`.
    pub fn new(psi: &Pattern) -> Self {
        GenericPatternOracle {
            pattern: psi.clone(),
        }
    }
}

impl DensityOracle for GenericPatternOracle {
    fn psi_size(&self) -> usize {
        self.pattern.vertex_count()
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        pattern_enum::pattern_degrees(g, &self.pattern, alive)
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        let mut acc = std::collections::HashMap::new();
        for inst in pattern_enum::instances_containing(g, &self.pattern, v, alive) {
            for &u in &inst.vertices {
                if u != v {
                    *acc.entry(u).or_insert(0u64) += 1;
                }
            }
        }
        let mut out: Vec<(VertexId, u64)> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn count(&self, g: &Graph, alive: &VertexSet) -> u64 {
        pattern_enum::count_instances(g, &self.pattern, alive)
    }
}

/// The store-backed oracle: one enumeration pass into an [`InstanceStore`],
/// then every degree/count/decrement query — and the peel loops through
/// [`DensityOracle::peeler`] — is a columnar scan.
///
/// The materialization is keyed to the first graph it sees; using one
/// oracle value across different graphs is a bug (debug-asserted). The
/// store sits in a [`std::sync::OnceLock`], so concurrent first queries
/// from several threads still materialize exactly once. Builds that would
/// exceed the byte budget or `u32` indexing fall back to the wrapped
/// streaming oracle, recorded in [`StoreStats::fallback`].
pub struct MaterializedOracle {
    psi: Pattern,
    streaming: Box<dyn DensityOracle>,
    budget: Option<u64>,
    threads: usize,
    /// Dead-row compaction fraction `(num, den)` handed to the store
    /// (`None` = the store's built-in default).
    compact: Option<(usize, usize)>,
    state: std::sync::OnceLock<StoreState>,
}

struct StoreState {
    /// Fingerprint of the graph the store was built for.
    fingerprint: (usize, usize),
    /// `None` when the build fell back to streaming.
    store: Option<InstanceStore>,
    stats: StoreStats,
}

impl MaterializedOracle {
    /// Store-backed oracle for `psi` with the default budget, building
    /// clique stores serially.
    pub fn new(psi: &Pattern) -> Self {
        Self::with_policy(psi, Parallelism::serial(), Some(DEFAULT_STORE_BUDGET))
    }

    /// Store-backed oracle with an explicit worker count (clique store
    /// builds shard across them) and byte budget (`None` = unlimited).
    pub fn with_policy(psi: &Pattern, parallelism: Parallelism, budget: Option<u64>) -> Self {
        MaterializedOracle {
            psi: psi.clone(),
            streaming: streaming_for(psi, parallelism),
            budget,
            threads: parallelism.threads(),
            compact: None,
            state: std::sync::OnceLock::new(),
        }
    }

    /// Overrides the store's dead-row compaction fraction: repairs compact
    /// once tombstoned rows exceed `num / den` of all rows. Answers are
    /// identical for every setting; this trades repair latency spikes for
    /// steady-state scan width.
    pub fn with_compaction(mut self, num: usize, den: usize) -> Self {
        assert!(den > 0, "compaction fraction needs a nonzero denominator");
        self.compact = Some((num, den));
        self
    }

    fn state(&self, g: &Graph) -> &StoreState {
        let state = self.state.get_or_init(|| {
            let alive = VertexSet::full(g.num_vertices());
            let built = match self.psi.kind() {
                PatternKind::Clique(h) => {
                    InstanceStore::cliques(g, h, &alive, self.threads, self.budget)
                }
                _ => InstanceStore::pattern(g, &self.psi, &alive, self.threads, self.budget),
            };
            let fingerprint = (g.num_vertices(), g.num_edges());
            match built {
                Ok((mut store, build)) => {
                    if let Some((num, den)) = self.compact {
                        store.set_compaction_fraction(num, den);
                    }
                    StoreState {
                        fingerprint,
                        store: Some(store),
                        stats: StoreStats {
                            materialized: true,
                            fallback: None,
                            build,
                        },
                    }
                }
                Err(e) => StoreState {
                    fingerprint,
                    store: None,
                    stats: StoreStats {
                        materialized: false,
                        fallback: Some(match e {
                            StoreError::BudgetExceeded { .. } => StoreFallback::Budget,
                            StoreError::CapacityExceeded { .. } => StoreFallback::Capacity,
                        }),
                        build: StoreBuildStats::default(),
                    },
                },
            }
        });
        debug_assert_eq!(
            state.fingerprint,
            (g.num_vertices(), g.num_edges()),
            "MaterializedOracle reused across graphs"
        );
        state
    }

    /// A fresh oracle pre-seeded with a repaired store, keyed to the
    /// post-update graph's `fingerprint`. `stats` is the predecessor's
    /// accounting; the size columns are refreshed from the store.
    fn seeded_replacement(
        &self,
        fingerprint: (usize, usize),
        store: InstanceStore,
        mut stats: StoreStats,
    ) -> MaterializedOracle {
        stats.build.instances = store.total_instances();
        stats.build.rows = store.rows();
        stats.build.memberships = store.memberships();
        stats.build.bytes = store.bytes();
        let replacement = MaterializedOracle {
            psi: self.psi.clone(),
            streaming: streaming_for(&self.psi, Parallelism::new(self.threads)),
            budget: self.budget,
            threads: self.threads,
            compact: self.compact,
            state: std::sync::OnceLock::new(),
        };
        let seeded = replacement.state.set(StoreState {
            fingerprint,
            store: Some(store),
            stats,
        });
        debug_assert!(seeded.is_ok(), "fresh OnceLock accepts the seed");
        replacement
    }
}

impl DensityOracle for MaterializedOracle {
    fn psi_size(&self) -> usize {
        self.psi.vertex_count()
    }

    fn degrees(&self, g: &Graph, alive: &VertexSet) -> Vec<u64> {
        match &self.state(g).store {
            Some(store) => store.degrees_within(alive),
            None => self.streaming.degrees(g, alive),
        }
    }

    fn removal_decrements(
        &self,
        g: &Graph,
        alive: &VertexSet,
        v: VertexId,
    ) -> Vec<(VertexId, u64)> {
        let store = match &self.state(g).store {
            Some(store) => store,
            None => return self.streaming.removal_decrements(g, alive, v),
        };
        let mut acc = std::collections::HashMap::new();
        for &row in store.incidence(v) {
            let row = row as usize;
            // The row is live iff it is not repair-tombstoned and all
            // members (v included) are alive; `v` itself is exempted so
            // callers that already removed it from the mask get the same
            // semantics.
            if !store.row_tombstoned(row)
                && store
                    .members(row)
                    .iter()
                    .all(|&u| u == v || alive.contains(u))
            {
                let w = store.weight(row);
                for &u in store.members(row) {
                    if u != v {
                        *acc.entry(u).or_insert(0u64) += w;
                    }
                }
            }
        }
        let mut out: Vec<(VertexId, u64)> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn count(&self, g: &Graph, alive: &VertexSet) -> u64 {
        match &self.state(g).store {
            Some(store) => store.count_within(alive),
            None => self.streaming.count(g, alive),
        }
    }

    fn peeler<'a>(&'a self, g: &Graph, alive: &VertexSet) -> Option<Box<dyn InstancePeeler + 'a>> {
        self.state(g)
            .store
            .as_ref()
            .map(|store| Box::new(StorePeeler::new(store, alive)) as Box<dyn InstancePeeler + 'a>)
    }

    fn store_stats(&self) -> Option<StoreStats> {
        self.state.get().map(|s| s.stats)
    }

    fn resident_bytes(&self) -> u64 {
        self.state
            .get()
            .and_then(|s| s.store.as_ref())
            .map_or(0, |store| store.bytes() as u64)
    }

    fn store(&self, g: &Graph) -> Option<&InstanceStore> {
        self.state(g).store.as_ref()
    }

    fn repair_for_update(
        &self,
        g_new: &Graph,
        g_mid: &Graph,
        inserted: &[(VertexId, VertexId)],
        removed: &[(VertexId, VertexId)],
    ) -> SubstrateRepair {
        let state = match self.state.get() {
            // Nothing materialized yet: the first query will build against
            // the new graph anyway.
            None => return SubstrateRepair::Keep,
            Some(s) => s,
        };
        let Some(store) = &state.store else {
            // A prior build fell back to streaming; the fallback verdict
            // may flip on the new graph, so re-decide from scratch.
            return SubstrateRepair::Rebuild;
        };
        let mut store = store.clone();
        let alive = VertexSet::full(g_new.num_vertices());
        let repaired = match self.psi.kind() {
            PatternKind::Clique(_) => {
                store.repair_cliques(g_new, inserted, removed, &alive, self.budget)
            }
            _ => store.repair_pattern(
                g_new,
                g_mid,
                &self.psi,
                inserted,
                removed,
                &alive,
                self.budget,
            ),
        };
        let repair = match repaired {
            Ok(r) => r,
            Err(_) => return SubstrateRepair::Rebuild,
        };
        let replacement = self.seeded_replacement(
            (g_new.num_vertices(), g_new.num_edges()),
            store,
            state.stats,
        );
        SubstrateRepair::Repaired(Arc::new(replacement), repair)
    }

    fn single_edge_repairable(&self) -> bool {
        // Clique stores admit a pure-incidence delete walk and an
        // insert enumeration anchored on the new edge; general-pattern
        // repair needs the mid-batch graph, which this path never
        // materializes.
        matches!(self.psi.kind(), PatternKind::Clique(_))
    }

    fn repair_for_edge(
        &self,
        view: DeltaGraph<'_>,
        insert: bool,
        u: VertexId,
        v: VertexId,
    ) -> SubstrateRepair {
        let PatternKind::Clique(h) = self.psi.kind() else {
            return SubstrateRepair::Rebuild;
        };
        let state = match self.state.get() {
            // Nothing materialized yet: the first query builds against
            // whatever graph it sees.
            None => return SubstrateRepair::Keep,
            Some(s) => s,
        };
        let Some(store) = &state.store else {
            return SubstrateRepair::Rebuild;
        };
        let mut store = store.clone();
        let repair = if insert {
            // Every new h-clique is {u, v} plus an (h-2)-clique inside
            // their common neighbourhood. Read adjacency from the view:
            // overlay edges among the commons are invisible to the base
            // CSR.
            let mut common: Vec<VertexId> = Vec::new();
            view.for_each_neighbor_impl(u, |w| {
                if w != v && view.has_edge(w, v) {
                    common.push(w);
                }
            });
            common.sort_unstable();
            let mut fresh: Vec<VertexId> = Vec::new();
            match h {
                2 => {
                    fresh.push(u.min(v));
                    fresh.push(u.max(v));
                }
                3 => {
                    for &w in &common {
                        let mut row = [u, v, w];
                        row.sort_unstable();
                        fresh.extend_from_slice(&row);
                    }
                }
                _ => {
                    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
                    for (i, &a) in common.iter().enumerate() {
                        for (j, &b) in common.iter().enumerate().skip(i + 1) {
                            if view.has_edge(a, b) {
                                edges.push((i as VertexId, j as VertexId));
                            }
                        }
                    }
                    let small = Graph::from_edges(common.len(), &edges);
                    let small_alive = VertexSet::full(common.len());
                    kclist::for_each_clique_within(&small, h - 2, &small_alive, |c| {
                        let mut row: Vec<VertexId> = Vec::with_capacity(h);
                        row.push(u);
                        row.push(v);
                        row.extend(c.iter().map(|&i| common[i as usize]));
                        row.sort_unstable();
                        fresh.extend_from_slice(&row);
                    });
                }
            }
            match store.repair_edge_insert_rows(fresh, self.budget) {
                Ok(r) => r,
                Err(_) => return SubstrateRepair::Rebuild,
            }
        } else {
            // A row dies iff it contains both endpoints: a pure incidence
            // walk, no adjacency reads at all.
            store.repair_edge_delete(u, v)
        };
        let replacement =
            self.seeded_replacement((view.num_vertices(), view.num_edges()), store, state.stats);
        SubstrateRepair::Repaired(Arc::new(replacement), repair)
    }
}

/// The streaming fallback for `psi` (see [`oracle_with_budget`]'s policy).
fn streaming_for(psi: &Pattern, parallelism: Parallelism) -> Box<dyn DensityOracle> {
    match psi.kind() {
        PatternKind::Clique(h) if !parallelism.is_serial() => {
            Box::new(ParallelCliqueOracle::new(h, parallelism))
        }
        PatternKind::Clique(h) => Box::new(CliqueOracle::new(h)),
        PatternKind::Star(x) => Box::new(StarOracle::new(x)),
        PatternKind::Diamond => Box::new(DiamondOracle),
        PatternKind::General => Box::new(GenericPatternOracle::new(psi)),
    }
}

/// Store-backed peel engine: alive-member counts per row make each removal
/// O(memberships of the dying rows) instead of a re-enumeration.
struct StorePeeler<'s> {
    store: &'s InstanceStore,
    /// Alive members per row; a row is live iff this equals `|VΨ|`.
    live_members: Vec<u32>,
    /// Dense decrement accumulator (`0` outside `touched`).
    scratch: Vec<u64>,
    touched: Vec<VertexId>,
}

impl<'s> StorePeeler<'s> {
    fn new(store: &'s InstanceStore, alive: &VertexSet) -> Self {
        let mut live_members = vec![0u32; store.rows()];
        for (row, counter) in live_members.iter_mut().enumerate() {
            // Repair-tombstoned rows stay at 0: never live (|VΨ| ≥ 2)
            // and skipped by `remove`, so the counter cannot underflow.
            if store.row_tombstoned(row) {
                continue;
            }
            *counter = store
                .members(row)
                .iter()
                .filter(|&&v| alive.contains(v))
                .count() as u32;
        }
        StorePeeler {
            store,
            live_members,
            scratch: vec![0u64; alive.universe()],
            touched: Vec::new(),
        }
    }
}

impl InstancePeeler for StorePeeler<'_> {
    fn degrees(&self) -> Vec<u64> {
        let psi = self.store.psi_size() as u32;
        let mut deg = vec![0u64; self.scratch.len()];
        for (row, &count) in self.live_members.iter().enumerate() {
            if count == psi {
                let w = self.store.weight(row);
                for &v in self.store.members(row) {
                    deg[v as usize] += w;
                }
            }
        }
        deg
    }

    fn remove(&mut self, v: VertexId, sink: &mut dyn FnMut(VertexId, u64)) {
        let psi = self.store.psi_size() as u32;
        for &row in self.store.incidence(v) {
            let row = row as usize;
            if self.store.row_tombstoned(row) {
                continue;
            }
            let count = &mut self.live_members[row];
            let was_live = *count == psi;
            *count -= 1;
            if was_live {
                let w = self.store.weight(row);
                for &u in self.store.members(row) {
                    if u != v {
                        if self.scratch[u as usize] == 0 {
                            self.touched.push(u);
                        }
                        self.scratch[u as usize] += w;
                    }
                }
            }
        }
        self.touched.sort_unstable();
        for &u in &self.touched {
            sink(u, self.scratch[u as usize]);
            self.scratch[u as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Picks the cheapest sound oracle for `psi` with the default budget and
/// no parallelism.
pub fn oracle_for(psi: &Pattern) -> Box<dyn DensityOracle> {
    oracle_for_with(psi, Parallelism::serial())
}

/// [`oracle_for`] with a worker-count configuration (clique store builds
/// and streaming clique degree passes shard across the workers), at the
/// default byte budget.
pub fn oracle_for_with(psi: &Pattern, parallelism: Parallelism) -> Box<dyn DensityOracle> {
    oracle_with_budget(psi, parallelism, Some(DEFAULT_STORE_BUDGET))
}

/// The full oracle policy: h-cliques (h ≥ 3) and general patterns
/// materialize an [`InstanceStore`] capped at `budget` bytes (`None` =
/// unlimited, `Some(0)` = never materialize), falling back to streaming
/// when the store would not fit; edges keep the direct kClist path (the
/// store would just duplicate the graph's own CSR) and stars/diamonds keep
/// their closed forms.
pub fn oracle_with_budget(
    psi: &Pattern,
    parallelism: Parallelism,
    budget: Option<u64>,
) -> Box<dyn DensityOracle> {
    oracle_with_policy(psi, parallelism, budget, None)
}

/// [`oracle_with_budget`] with an explicit dead-row compaction fraction
/// for materialized stores (`None` = the store default). The engine's
/// [`crate::engine::RepairPolicy`] lands here.
pub fn oracle_with_policy(
    psi: &Pattern,
    parallelism: Parallelism,
    budget: Option<u64>,
    compact: Option<(usize, usize)>,
) -> Box<dyn DensityOracle> {
    match psi.kind() {
        PatternKind::Clique(2) if !parallelism.is_serial() => {
            Box::new(ParallelCliqueOracle::new(2, parallelism))
        }
        PatternKind::Clique(2) => Box::new(CliqueOracle::new(2)),
        PatternKind::Clique(_) | PatternKind::General => {
            let mut oracle = MaterializedOracle::with_policy(psi, parallelism, budget);
            if let Some((num, den)) = compact {
                oracle = oracle.with_compaction(num, den);
            }
            Box::new(oracle)
        }
        PatternKind::Star(x) => Box::new(StarOracle::new(x)),
        PatternKind::Diamond => Box::new(DiamondOracle),
    }
}

/// Pattern-density `ρ(g[alive], Ψ) = μ / |alive|` (Definitions 4 and 10).
pub fn density(oracle: &dyn DensityOracle, g: &Graph, alive: &VertexSet) -> f64 {
    if alive.is_empty() {
        0.0
    } else {
        oracle.count(g, alive) as f64 / alive.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(g: &Graph) -> VertexSet {
        VertexSet::full(g.num_vertices())
    }

    fn wheel6() -> Graph {
        // Hub 0 + 6-cycle rim.
        Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 1),
            ],
        )
    }

    #[test]
    fn oracle_dispatch_matches_generic_on_all_figure7_patterns() {
        let g = wheel6();
        let alive = full(&g);
        for p in Pattern::figure7() {
            let fast = oracle_for(&p);
            let generic = GenericPatternOracle::new(&p);
            assert_eq!(
                fast.degrees(&g, &alive),
                generic.degrees(&g, &alive),
                "degrees mismatch for {}",
                p.name()
            );
            assert_eq!(
                fast.count(&g, &alive),
                generic.count(&g, &alive),
                "count mismatch for {}",
                p.name()
            );
        }
    }

    #[test]
    fn clique_oracle_decrements_match_instance_loss() {
        let g = wheel6();
        let oracle = CliqueOracle::new(3);
        let mut alive = full(&g);
        let before = oracle.degrees(&g, &alive);
        let dec = oracle.removal_decrements(&g, &alive, 0);
        alive.remove(0);
        let after = oracle.degrees(&g, &alive);
        for (v, amount) in dec {
            assert_eq!(before[v as usize] - after[v as usize], amount);
        }
    }

    #[test]
    fn generic_oracle_decrements_match_instance_loss() {
        let g = wheel6();
        let psi = Pattern::two_triangle();
        let oracle = oracle_for(&psi);
        let mut alive = full(&g);
        let before = oracle.degrees(&g, &alive);
        let dec = oracle.removal_decrements(&g, &alive, 0);
        alive.remove(0);
        let after = oracle.degrees(&g, &alive);
        let decmap: std::collections::HashMap<_, _> = dec.into_iter().collect();
        for v in alive.iter() {
            let expect = before[v as usize] - after[v as usize];
            assert_eq!(decmap.get(&v).copied().unwrap_or(0), expect, "v = {v}");
        }
    }

    #[test]
    fn materialized_oracle_matches_streaming_everywhere() {
        let g = wheel6();
        for p in Pattern::figure7() {
            let mat = MaterializedOracle::new(&p);
            let stream = GenericPatternOracle::new(&p);
            let mut alive = full(&g);
            assert_eq!(
                mat.degrees(&g, &alive),
                stream.degrees(&g, &alive),
                "{}",
                p.name()
            );
            assert_eq!(
                mat.count(&g, &alive),
                stream.count(&g, &alive),
                "{}",
                p.name()
            );
            let stats = mat.store_stats().expect("store was consulted");
            assert!(stats.materialized, "{}", p.name());
            // After removals too.
            for victim in [0u32, 3] {
                assert_eq!(
                    mat.removal_decrements(&g, &alive, victim),
                    stream.removal_decrements(&g, &alive, victim),
                    "{} victim {victim}",
                    p.name()
                );
                alive.remove(victim);
                assert_eq!(
                    mat.degrees(&g, &alive),
                    stream.degrees(&g, &alive),
                    "{} after removing {victim}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn materialized_clique_oracle_matches_kclist() {
        let g = wheel6();
        for h in [3usize, 4] {
            let psi = Pattern::clique(h);
            let mat = MaterializedOracle::new(&psi);
            let stream = CliqueOracle::new(h);
            let mut alive = full(&g);
            assert_eq!(mat.degrees(&g, &alive), stream.degrees(&g, &alive));
            assert_eq!(mat.count(&g, &alive), stream.count(&g, &alive));
            assert_eq!(
                mat.removal_decrements(&g, &alive, 0),
                stream.removal_decrements(&g, &alive, 0)
            );
            alive.remove(0);
            assert_eq!(mat.degrees(&g, &alive), stream.degrees(&g, &alive));
        }
    }

    #[test]
    fn budget_fallback_still_answers_and_reports() {
        let g = wheel6();
        let psi = Pattern::triangle();
        let capped = MaterializedOracle::with_policy(&psi, Parallelism::serial(), Some(0));
        let stream = CliqueOracle::new(3);
        let alive = full(&g);
        assert_eq!(capped.degrees(&g, &alive), stream.degrees(&g, &alive));
        assert_eq!(capped.count(&g, &alive), stream.count(&g, &alive));
        let stats = capped.store_stats().unwrap();
        assert!(!stats.materialized);
        assert_eq!(stats.fallback, Some(StoreFallback::Budget));
        assert_eq!(stats.build.bytes, 0);
        assert!(
            capped.peeler(&g, &alive).is_none(),
            "fallback oracle offers no store peeler"
        );
    }

    #[test]
    fn peeler_decrements_match_stateless_decrements() {
        let g = wheel6();
        let psi = Pattern::triangle();
        let oracle = MaterializedOracle::new(&psi);
        let mut alive = full(&g);
        let mut peeler = oracle.peeler(&g, &alive).expect("materialized");
        assert_eq!(peeler.degrees(), oracle.degrees(&g, &alive));
        for victim in [0u32, 4, 2] {
            let expect = oracle.removal_decrements(&g, &alive, victim);
            let mut got: Vec<(VertexId, u64)> = Vec::new();
            peeler.remove(victim, &mut |u, amount| got.push((u, amount)));
            assert_eq!(got, expect, "victim {victim}");
            alive.remove(victim);
        }
    }

    #[test]
    fn materialized_oracle_full_decomposition_matches() {
        let g = wheel6();
        let psi = Pattern::two_triangle();
        let mat = MaterializedOracle::new(&psi);
        let stream = GenericPatternOracle::new(&psi);
        let a = crate::clique_core::decompose(&g, &mat);
        let b = crate::clique_core::decompose(&g, &stream);
        assert_eq!(a.core, b.core);
        assert_eq!(a.kmax, b.kmax);
        assert!((a.best_density - b.best_density).abs() < 1e-12);
    }

    #[test]
    fn density_of_triangle_cds_figure_1a() {
        // S2 from Figure 1(a): 4 vertices, two triangles -> ρ = 2/4.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)]);
        let oracle = oracle_for(&Pattern::triangle());
        assert!((density(oracle.as_ref(), &g, &full(&g)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_of_empty_set_is_zero() {
        let g = wheel6();
        let oracle = oracle_for(&Pattern::edge());
        assert_eq!(density(oracle.as_ref(), &g, &VertexSet::empty(7)), 0.0);
    }
}
