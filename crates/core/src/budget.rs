//! Byte-size budget flag parsing shared by the `dsd` CLI surfaces.
//!
//! Every serving surface that accepts a substrate budget
//! (`dsd batch --substrate-budget`, `dsd serve --budget`, the top-level
//! `--substrate-budget`) speaks the same little grammar:
//! `<bytes>` | `<n>k` | `<n>m` | `<n>g` (binary multiples, case
//! insensitive) | `0` (degenerate zero budget) | `unlimited`.

/// Parses a byte-size budget flag value.
///
/// Returns `None` for malformed input; `Some(None)` for `unlimited`;
/// `Some(Some(bytes))` otherwise. Suffix multiplication is checked, so
/// overflowing values (e.g. `99999999999g`) are rejected rather than
/// wrapped.
///
/// ```
/// use dsd_core::budget::parse_byte_budget;
/// assert_eq!(parse_byte_budget("64m"), Some(Some(64 << 20)));
/// assert_eq!(parse_byte_budget("unlimited"), Some(None));
/// assert_eq!(parse_byte_budget("64mb"), None);
/// ```
pub fn parse_byte_budget(s: &str) -> Option<Option<u64>> {
    if s.eq_ignore_ascii_case("unlimited") {
        return Some(None);
    }
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    // `u64::from_str` accepts a leading `+`, which the grammar does not.
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let base: u64 = digits.parse().ok()?;
    Some(Some(base.checked_mul(1u64 << shift)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_bytes_and_suffixes() {
        assert_eq!(parse_byte_budget("0"), Some(Some(0)));
        assert_eq!(parse_byte_budget("12345"), Some(Some(12345)));
        assert_eq!(parse_byte_budget("4k"), Some(Some(4 << 10)));
        assert_eq!(parse_byte_budget("4K"), Some(Some(4 << 10)));
        assert_eq!(parse_byte_budget("64m"), Some(Some(64 << 20)));
        assert_eq!(parse_byte_budget("64M"), Some(Some(64 << 20)));
        assert_eq!(parse_byte_budget("2g"), Some(Some(2 << 30)));
        assert_eq!(parse_byte_budget("2G"), Some(Some(2 << 30)));
    }

    #[test]
    fn unlimited_is_case_insensitive() {
        assert_eq!(parse_byte_budget("unlimited"), Some(None));
        assert_eq!(parse_byte_budget("UNLIMITED"), Some(None));
        assert_eq!(parse_byte_budget("Unlimited"), Some(None));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "k",
            "m",
            "g",
            "-1",
            "+1",
            "+0",
            "+64m",
            "1.5m",
            "64mb",
            "64 m",
            " 64",
            "64 ",
            "m64",
            "0x10",
            "four",
            "unlimitedd",
            "un",
        ] {
            assert_eq!(parse_byte_budget(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn overflow_is_rejected_not_wrapped() {
        assert_eq!(
            parse_byte_budget("18446744073709551615"),
            Some(Some(u64::MAX))
        );
        assert_eq!(parse_byte_budget("18446744073709551616"), None);
        assert_eq!(parse_byte_budget("99999999999999999999g"), None);
        assert_eq!(parse_byte_budget("18014398509481984k"), None); // 2^54 k = 2^64
    }

    #[test]
    fn zero_with_suffix_is_zero() {
        assert_eq!(parse_byte_budget("0k"), Some(Some(0)));
        assert_eq!(parse_byte_budget("0g"), Some(Some(0)));
    }
}
