//! Shared result types.

use dsd_graph::VertexId;

/// A densest-subgraph answer: the vertex set and its Ψ-density.
#[derive(Clone, Debug, PartialEq)]
pub struct DsdResult {
    /// Sorted member vertices of the reported subgraph (empty when the
    /// graph contains no instance of Ψ at all).
    pub vertices: Vec<VertexId>,
    /// `ρ(G[vertices], Ψ)` — instances over vertex count.
    pub density: f64,
}

impl DsdResult {
    /// The empty result (density 0).
    pub fn empty() -> Self {
        DsdResult {
            vertices: Vec::new(),
            density: 0.0,
        }
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}
