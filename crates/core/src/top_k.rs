//! Top-k densest subgraphs by iterative peel-and-remove.
//!
//! The paper's introduction motivates DSD as a building block — index
//! construction, visualization, piggybacking — where one subgraph is
//! rarely enough. Following the standard disjoint top-k scheme (cf. the
//! locally-densest-subgraph line of work the paper cites [54, 57]): find
//! the densest subgraph, delete its vertices, and repeat on the residual
//! graph. Each round uses the core-based exact algorithm, so the whole
//! scan stays fast; the returned subgraphs are vertex-disjoint and have
//! non-increasing density.

use dsd_graph::{Graph, InducedSubgraph, VertexSet};
use dsd_motif::Pattern;

use crate::alpha_search::ExactStats;
use crate::clique_core::CliqueCoreDecomposition;
use crate::core_exact::{
    core_exact_certified_with_lender, core_exact_with, CoreExactConfig, RegionCertificates,
};
use crate::flownet::NetworkLender;
use crate::oracle::DensityOracle;
use crate::types::DsdResult;

/// Finds up to `k` vertex-disjoint densest subgraphs, densest first.
///
/// Stops early when the residual graph has no Ψ instance left. Vertex ids
/// refer to the original graph.
pub fn top_k_densest(g: &Graph, psi: &Pattern, k: usize) -> Vec<DsdResult> {
    let oracle = crate::oracle::oracle_for(psi);
    let dec = crate::clique_core::decompose(g, oracle.as_ref());
    top_k_densest_from(g, psi, k, CoreExactConfig::default(), oracle.as_ref(), &dec).subgraphs
}

/// Result of a [`top_k_densest_from`] scan.
#[derive(Clone, Debug)]
pub struct TopKScan {
    /// Vertex-disjoint densest subgraphs, densest first.
    pub subgraphs: Vec<DsdResult>,
    /// Whether any round's binary search was cut short by the config's
    /// step budget (the affected rounds are then not certified optimal).
    pub budget_exhausted: bool,
    /// α-search instrumentation merged across all rounds (probe counts,
    /// network sizes, flow reuse).
    pub exact: ExactStats,
}

/// [`top_k_densest`] against caller-provided (possibly warm) substrates.
///
/// The first (densest) round runs on the full graph and so can reuse the
/// warm decomposition; later rounds operate on residual induced subgraphs
/// whose core structure genuinely changed, and rebuild cold.
pub fn top_k_densest_from(
    g: &Graph,
    psi: &Pattern,
    k: usize,
    config: CoreExactConfig,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
) -> TopKScan {
    top_k_densest_certified(g, psi, k, config, oracle, dec, None)
}

/// [`top_k_densest_from`] with optional scatter-phase region
/// certificates. Certificates speak about the *full* graph, so they only
/// apply to round 0 (the unconstrained scan on the whole graph); residual
/// rounds delete vertices and rebuild cold, where the per-region optima
/// no longer bound anything.
pub fn top_k_densest_certified(
    g: &Graph,
    psi: &Pattern,
    k: usize,
    config: CoreExactConfig,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
    certs: Option<&RegionCertificates>,
) -> TopKScan {
    top_k_certified_with_lender(g, psi, k, config, oracle, dec, certs, None)
}

/// [`top_k_densest_certified`] with a network lender for round 0 (the
/// full-graph scan, where the warm substrates and cached networks apply);
/// residual rounds delete vertices and always build cold.
#[allow(clippy::too_many_arguments)]
pub(crate) fn top_k_certified_with_lender(
    g: &Graph,
    psi: &Pattern,
    k: usize,
    config: CoreExactConfig,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
    certs: Option<&RegionCertificates>,
    lender: Option<&dyn NetworkLender>,
) -> TopKScan {
    let mut out = Vec::with_capacity(k);
    let mut alive = VertexSet::full(g.num_vertices());
    let mut exact = ExactStats::default();
    for round in 0..k {
        if alive.len() < psi.vertex_count() {
            break;
        }
        let (vertices, density) = if round == 0 {
            let (first, stats) =
                core_exact_certified_with_lender(g, psi, config, oracle, dec, certs, lender);
            exact.merge(&stats.exact);
            (first.vertices, first.density)
        } else {
            let sub = InducedSubgraph::from_set(g, &alive);
            let (local, stats) = core_exact_with(&sub.graph, psi, config);
            exact.merge(&stats.exact);
            (sub.to_parent_vec(&local.vertices), local.density)
        };
        if vertices.is_empty() {
            break;
        }
        for &v in &vertices {
            alive.remove(v);
        }
        out.push(DsdResult { vertices, density });
    }
    TopKScan {
        budget_exhausted: exact.budget_exhausted,
        exact,
        subgraphs: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Three cliques of decreasing size, connected by a path.
    fn three_cliques() -> Graph {
        let mut edges = Vec::new();
        let blocks: [&[u32]; 3] = [&[0, 1, 2, 3, 4, 5], &[6, 7, 8, 9, 10], &[11, 12, 13, 14]];
        for block in blocks {
            for (i, &u) in block.iter().enumerate() {
                for &v in &block[i + 1..] {
                    edges.push((u, v));
                }
            }
        }
        edges.extend_from_slice(&[(5, 6), (10, 11)]);
        Graph::from_edges(15, &edges)
    }

    #[test]
    fn finds_cliques_in_density_order() {
        let g = three_cliques();
        let tops = top_k_densest(&g, &Pattern::edge(), 3);
        assert_eq!(tops.len(), 3);
        assert_eq!(tops[0].vertices, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(tops[1].vertices, vec![6, 7, 8, 9, 10]);
        assert_eq!(tops[2].vertices, vec![11, 12, 13, 14]);
        for w in tops.windows(2) {
            assert!(w[0].density + 1e-9 >= w[1].density);
        }
    }

    #[test]
    fn results_are_vertex_disjoint() {
        let g = three_cliques();
        let tops = top_k_densest(&g, &Pattern::triangle(), 3);
        let mut seen: HashSet<u32> = HashSet::new();
        for t in &tops {
            for &v in &t.vertices {
                assert!(seen.insert(v), "vertex {v} appears twice");
            }
        }
    }

    #[test]
    fn stops_when_instances_run_out() {
        let g = three_cliques();
        // Only 3 blocks contain 4-cliques; asking for 10 returns 3.
        let tops = top_k_densest(&g, &Pattern::clique(4), 10);
        assert_eq!(tops.len(), 3);
        // Asking on a triangle-free graph returns nothing.
        let tree = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(top_k_densest(&tree, &Pattern::triangle(), 5).is_empty());
    }

    #[test]
    fn k_zero_and_first_equals_core_exact() {
        let g = three_cliques();
        assert!(top_k_densest(&g, &Pattern::edge(), 0).is_empty());
        let top1 = top_k_densest(&g, &Pattern::edge(), 1);
        let (direct, _) = crate::core_exact::core_exact(&g, &Pattern::edge());
        assert_eq!(top1[0].vertices, direct.vertices);
        assert!((top1[0].density - direct.density).abs() < 1e-12);
    }
}
