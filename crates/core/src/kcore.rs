//! Classical k-core decomposition (Batagelj–Zaversnik, O(n + m)).
//!
//! Used three ways in the paper: directly for the h = 2 (edge-density) case,
//! as the source of the `γ(v, Ψ) = C(x, h−1)` upper bounds in CoreApp
//! (Algorithm 6 line 1), and as the substrate for the EMcore baseline.
//!
//! Under edge updates the decomposition is repaired in place instead of
//! re-peeled — see [`crate::dynamic`] for the single-edge subcore repair
//! and `DsdEngine::apply` for the batch rebuild-or-patch policy.

use dsd_graph::{Graph, VertexId, VertexSet};

/// The classical core decomposition of a graph.
#[derive(Clone, Debug)]
pub struct KCoreDecomposition {
    /// `core[v]` = classical core number of `v`.
    pub core: Vec<u32>,
    /// Maximum core number.
    pub kmax: u32,
}

impl KCoreDecomposition {
    /// The k-core as a vertex set: vertices with core number ≥ `k`
    /// (Definition 5; the largest subgraph with min degree ≥ k).
    pub fn k_core(&self, k: u32) -> VertexSet {
        let mut s = VertexSet::empty(self.core.len());
        for (v, &c) in self.core.iter().enumerate() {
            if c >= k {
                s.insert(v as VertexId);
            }
        }
        s
    }

    /// The kmax-core.
    pub fn max_core(&self) -> VertexSet {
        self.k_core(self.kmax)
    }
}

/// Runs the bucket-peel core decomposition on the whole graph.
pub fn k_core_decomposition(g: &Graph) -> KCoreDecomposition {
    k_core_decomposition_within(g, &VertexSet::full(g.num_vertices()))
}

/// Core decomposition of the subgraph induced by `alive` (vertices outside
/// report core number 0).
pub fn k_core_decomposition_within(g: &Graph, alive: &VertexSet) -> KCoreDecomposition {
    let n = g.num_vertices();
    let mut core = vec![0u32; n];
    if alive.is_empty() {
        return KCoreDecomposition { core, kmax: 0 };
    }
    let members: Vec<VertexId> = alive.to_vec();
    let mut deg = vec![0usize; n];
    let mut max_deg = 0usize;
    for &v in &members {
        deg[v as usize] = alive.restricted_degree(g, v);
        max_deg = max_deg.max(deg[v as usize]);
    }
    // Bucket structure over the members only.
    let mut bin = vec![0usize; max_deg + 2];
    for &v in &members {
        bin[deg[v as usize] + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut vert = vec![0 as VertexId; members.len()];
    let mut pos = vec![usize::MAX; n];
    {
        let mut cursor = bin.clone();
        for &v in &members {
            let d = deg[v as usize];
            pos[v as usize] = cursor[d];
            vert[cursor[d]] = v;
            cursor[d] += 1;
        }
    }
    let mut kmax = 0u32;
    let mut running = 0usize;
    for i in 0..vert.len() {
        let v = vert[i];
        running = running.max(deg[v as usize]);
        core[v as usize] = running as u32;
        kmax = kmax.max(running as u32);
        for &u in g.neighbors(v) {
            let u = u as usize;
            if pos[u] == usize::MAX || pos[u] <= i {
                continue;
            }
            let du = deg[u];
            if du > deg[v as usize] {
                // Swap u to the front of its degree block and shrink it.
                let pu = pos[u];
                let pw = bin[du].max(i + 1);
                let w = vert[pw];
                if u as VertexId != w {
                    vert[pu] = w;
                    pos[w as usize] = pu;
                    vert[pw] = u as VertexId;
                    pos[u] = pw;
                }
                bin[du] = pw + 1;
                deg[u] = du - 1;
            }
        }
    }
    KCoreDecomposition { core, kmax }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3(a): vertices A..H = 0..7. {A,B,C,D} is a 4-clique (the
    /// 3-core); E-F hang off it; G-H form a separate edge. The whole graph
    /// is the 0-core and 1-core; the ellipse structure gives 2-core
    /// {A,B,C,D,E?}... We encode a graph consistent with the paper's
    /// description: 3-core = {A,B,C,D}.
    fn figure3a() -> Graph {
        let (a, b, c, d, e, f, g_, h) = (0u32, 1, 2, 3, 4, 5, 6, 7);
        Graph::from_edges(
            8,
            &[
                (a, b),
                (a, c),
                (a, d),
                (b, c),
                (b, d),
                (c, d),
                (d, e),
                (e, f),
                (d, f),
                (g_, h),
            ],
        )
    }

    #[test]
    fn figure3a_cores() {
        let dec = k_core_decomposition(&figure3a());
        // 4-clique is the 3-core.
        assert_eq!(dec.kmax, 3);
        assert_eq!(dec.max_core().to_vec(), vec![0, 1, 2, 3]);
        // Triangle D-E-F puts E,F in the 2-core.
        assert_eq!(dec.core[4], 2);
        assert_eq!(dec.core[5], 2);
        // Isolated edge G-H is 1-core only.
        assert_eq!(dec.core[6], 1);
        assert_eq!(dec.core[7], 1);
    }

    #[test]
    fn cores_are_nested() {
        let dec = k_core_decomposition(&figure3a());
        for k in 0..dec.kmax {
            let lo = dec.k_core(k);
            let hi = dec.k_core(k + 1);
            for v in hi.iter() {
                assert!(lo.contains(v), "k-cores must be nested");
            }
        }
    }

    #[test]
    fn k_core_has_min_degree_k() {
        let g = figure3a();
        let dec = k_core_decomposition(&g);
        for k in 1..=dec.kmax {
            let core = dec.k_core(k);
            for v in core.iter() {
                assert!(
                    core.restricted_degree(&g, v) >= k as usize,
                    "vertex {v} in {k}-core with degree < {k}"
                );
            }
        }
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let dec = k_core_decomposition(&Graph::empty(4));
        assert_eq!(dec.kmax, 0);
        assert_eq!(dec.core, vec![0; 4]);
        let dec0 = k_core_decomposition(&Graph::empty(0));
        assert_eq!(dec0.kmax, 0);
    }

    #[test]
    fn restricted_decomposition() {
        let g = figure3a();
        let mut alive = VertexSet::full(8);
        alive.remove(0); // break the 4-clique
        let dec = k_core_decomposition_within(&g, &alive);
        assert_eq!(dec.kmax, 2); // triangle B,C,D and triangle D,E,F remain
        assert_eq!(dec.core[0], 0);
    }

    #[test]
    fn core_number_le_degree() {
        let g = figure3a();
        let dec = k_core_decomposition(&g);
        for v in g.vertices() {
            assert!(dec.core[v as usize] as usize <= g.degree(v));
        }
    }
}
