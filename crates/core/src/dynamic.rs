//! Incremental maintenance of the classical k-core decomposition under
//! single-edge updates (the subcore/purecore *traversal* repair of the
//! streaming k-core literature).
//!
//! Both repairs exploit the locality theorems for core numbers: inserting
//! or deleting one edge `{u, v}` with `r = min(core(u), core(v))` can only
//! change the core numbers of vertices whose current core number is
//! exactly `r`, and each such number moves by at most 1. The repair
//! therefore touches only the *subcore* around the edge instead of
//! re-peeling the graph:
//!
//! * **insert** — collect the candidate subcore (core-`r` vertices
//!   connected to the root endpoint through core-`r` vertices), seed each
//!   candidate with its support (neighbours of core ≥ `r`), and peel
//!   candidates whose support cannot reach `r + 1`; survivors are promoted
//!   to `r + 1`;
//! * **delete** — lazily compute each affected vertex's support
//!   (neighbours of core ≥ `r`) and cascade demotions to `r - 1` from the
//!   endpoints while any support drops below `r`.
//!
//! Repairs run against any [`AdjacencyView`] — in particular the
//! [`dsd_graph::DeltaGraph`] overlay view, so a batch of updates can be
//! maintained edge by edge without materializing a CSR per edge. For
//! batches too large for per-edge repair to win, callers fall back to the
//! from-scratch bucket peel ([`crate::kcore::k_core_decomposition`]) — the
//! rebuild-or-patch policy implemented by `DsdEngine::apply`.

use std::collections::VecDeque;

use dsd_graph::{AdjacencyView, VertexId};

use crate::kcore::KCoreDecomposition;

/// Per-vertex BFS state of the insertion repair.
const UNSEEN: u8 = 0;
/// In the candidate set (max-core degree > r, reachable from the root).
const CANDIDATE: u8 = 1;
/// Visited but unpromotable (max-core degree ≤ r) — not expanded, and not
/// counted as a supporter.
const REJECTED: u8 = 2;

/// Repairs `dec` after the undirected edge `{u, v}` was **inserted**.
///
/// `adj` must already contain the edge; `dec` must be the decomposition of
/// the graph *without* it. Runs the pruned traversal insertion algorithm:
/// candidates are the core-`r` vertices reachable from the root through
/// vertices whose *max-core degree* (neighbours of core ≥ `r`) exceeds
/// `r` — the pure subcore. Vertices failing that bound can never reach
/// the `(r+1)`-core, and any promoted vertex must be connected to the new
/// edge through promoted vertices (otherwise its certificate existed
/// before the insertion), so the pruned closure is exhaustive.
pub fn repair_insert<A: AdjacencyView>(
    adj: &A,
    dec: &mut KCoreDecomposition,
    u: VertexId,
    v: VertexId,
) {
    debug_assert!(u != v, "self-loops never enter the graph");
    let core = &mut dec.core;
    let (cu, cv) = (core[u as usize], core[v as usize]);
    let r = cu.min(cv);
    let root = if cu <= cv { u } else { v };

    let mcd = |core: &[u32], w: VertexId| {
        let mut d = 0u32;
        adj.for_each_neighbor(w, |x| {
            if core[x as usize] >= r {
                d += 1;
            }
        });
        d
    };

    // Any promotion chain starts at the root; an unpromotable root means
    // the insertion changes nothing.
    if mcd(core, root) <= r {
        return;
    }

    let mut status = vec![UNSEEN; core.len()];
    let mut slot = vec![u32::MAX; core.len()];
    let mut members: Vec<VertexId> = vec![root];
    status[root as usize] = CANDIDATE;
    slot[root as usize] = 0;
    let mut at = 0usize;
    while at < members.len() {
        let w = members[at];
        at += 1;
        adj.for_each_neighbor(w, |x| {
            if core[x as usize] == r && status[x as usize] == UNSEEN {
                if mcd(core, x) > r {
                    status[x as usize] = CANDIDATE;
                    slot[x as usize] = members.len() as u32;
                    members.push(x);
                } else {
                    status[x as usize] = REJECTED;
                }
            }
        });
    }

    // Support of a candidate: neighbours that can keep it in the
    // (r + 1)-core — old core > r, or a not-yet-evicted candidate.
    let mut support: Vec<u32> = members
        .iter()
        .map(|&w| {
            let mut d = 0u32;
            adj.for_each_neighbor(w, |x| {
                if core[x as usize] > r || status[x as usize] == CANDIDATE {
                    d += 1;
                }
            });
            d
        })
        .collect();

    // Peel candidates that cannot reach r + 1 supporters.
    let mut evicted = vec![false; members.len()];
    let mut queued = vec![false; members.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for i in 0..members.len() {
        if support[i] <= r {
            queued[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        evicted[i] = true;
        adj.for_each_neighbor(members[i], |x| {
            if status[x as usize] == CANDIDATE {
                let j = slot[x as usize] as usize;
                if !evicted[j] {
                    support[j] -= 1;
                    if support[j] <= r && !queued[j] {
                        queued[j] = true;
                        queue.push_back(j);
                    }
                }
            }
        });
    }

    // Survivors join the (r + 1)-core.
    let mut promoted = false;
    for (i, &w) in members.iter().enumerate() {
        if !evicted[i] {
            core[w as usize] = r + 1;
            promoted = true;
        }
    }
    if promoted {
        dec.kmax = dec.kmax.max(r + 1);
    }
}

/// Repairs `dec` after the undirected edge `{u, v}` was **deleted**.
///
/// `adj` must no longer contain the edge; `dec` must be the decomposition
/// of the graph *with* it. Cascades demotions from the endpoints; each
/// demoted vertex loses exactly 1, and only the touched region pays.
pub fn repair_delete<A: AdjacencyView>(
    adj: &A,
    dec: &mut KCoreDecomposition,
    u: VertexId,
    v: VertexId,
) {
    debug_assert!(u != v, "self-loops never enter the graph");
    let r = dec.core[u as usize].min(dec.core[v as usize]);
    if r == 0 {
        return; // a core-0 endpoint had no edges to lose
    }

    // Lazily computed support: #{neighbours with current core ≥ r}, with
    // `u32::MAX` as the not-yet-computed sentinel. Entries stay exact
    // under demotions — a vertex first touched after a neighbour's
    // demotion computes the post-demotion count, one touched before is
    // decremented exactly once when that neighbour demotes.
    let mut support = vec![u32::MAX; dec.core.len()];
    let mut queue: VecDeque<VertexId> = VecDeque::new();

    let count = |core: &[u32], x: VertexId| {
        let mut d = 0u32;
        adj.for_each_neighbor(x, |y| {
            if core[y as usize] >= r {
                d += 1;
            }
        });
        d
    };

    for w in [u, v] {
        if dec.core[w as usize] == r && support[w as usize] == u32::MAX {
            let d = count(&dec.core, w);
            support[w as usize] = d;
            if d < r {
                queue.push_back(w);
            }
        }
    }

    let mut any_demoted = false;
    while let Some(w) = queue.pop_front() {
        if dec.core[w as usize] != r {
            continue; // already demoted (duplicate queue entry)
        }
        dec.core[w as usize] = r - 1;
        any_demoted = true;
        let mut to_touch: Vec<VertexId> = Vec::new();
        adj.for_each_neighbor(w, |x| {
            if dec.core[x as usize] == r {
                to_touch.push(x);
            }
        });
        for x in to_touch {
            let d = &mut support[x as usize];
            if *d == u32::MAX {
                *d = count(&dec.core, x);
            } else {
                *d -= 1;
            }
            if *d < r {
                queue.push_back(x);
            }
        }
    }

    // The kmax-shell can only empty out when the repair ran at level kmax.
    if any_demoted && r == dec.kmax {
        dec.kmax = dec.core.iter().copied().max().unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::k_core_decomposition;
    use dsd_graph::testing::XorShift;
    use dsd_graph::{DeltaGraph, EdgeOverlay, Graph, GraphUpdate};

    /// Applies one effective update through an overlay and repairs the
    /// decomposition, returning the previous core numbers.
    fn apply_and_repair(
        base: &Graph,
        overlay: &mut EdgeOverlay,
        dec: &mut KCoreDecomposition,
        update: GraphUpdate,
    ) -> Option<Vec<u32>> {
        if !overlay.apply(base, &update) {
            return None;
        }
        let before = dec.core.clone();
        let view = DeltaGraph::new(base, overlay);
        let (u, v) = update.endpoints();
        match update {
            GraphUpdate::Insert(..) => repair_insert(&view, dec, u, v),
            GraphUpdate::Delete(..) => repair_delete(&view, dec, u, v),
        }
        Some(before)
    }

    #[test]
    fn insert_promotes_isolated_pair() {
        let base = Graph::empty(3);
        let mut overlay = EdgeOverlay::default();
        let mut dec = k_core_decomposition(&base);
        apply_and_repair(&base, &mut overlay, &mut dec, GraphUpdate::Insert(0, 2)).unwrap();
        assert_eq!(dec.core, vec![1, 0, 1]);
        assert_eq!(dec.kmax, 1);
    }

    #[test]
    fn closing_a_square_promotes_the_cycle() {
        let base = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut overlay = EdgeOverlay::default();
        let mut dec = k_core_decomposition(&base);
        assert_eq!(dec.kmax, 1);
        apply_and_repair(&base, &mut overlay, &mut dec, GraphUpdate::Insert(3, 0)).unwrap();
        assert_eq!(dec.core, vec![2, 2, 2, 2]);
        assert_eq!(dec.kmax, 2);
    }

    #[test]
    fn deleting_a_cycle_edge_demotes_everyone() {
        let base = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut overlay = EdgeOverlay::default();
        let mut dec = k_core_decomposition(&base);
        assert_eq!(dec.kmax, 2);
        apply_and_repair(&base, &mut overlay, &mut dec, GraphUpdate::Delete(1, 2)).unwrap();
        assert_eq!(dec.core, vec![1, 1, 1, 1]);
        assert_eq!(dec.kmax, 1);
    }

    #[test]
    fn random_update_streams_match_scratch_and_move_by_at_most_one() {
        let mut rng = XorShift::new(0xD15C0);
        for _ in 0..40 {
            let base = rng.random_graph(4, 16, 25);
            let n = base.num_vertices();
            let mut overlay = EdgeOverlay::default();
            let mut dec = k_core_decomposition(&base);
            for _ in 0..24 {
                let u = (rng.next() % n as u64) as u32;
                let v = (rng.next() % n as u64) as u32;
                let update = if rng.next().is_multiple_of(2) {
                    GraphUpdate::Insert(u, v)
                } else {
                    GraphUpdate::Delete(u, v)
                };
                let Some(before) = apply_and_repair(&base, &mut overlay, &mut dec, update) else {
                    continue;
                };
                let scratch = k_core_decomposition(&DeltaGraph::new(&base, &overlay).materialize());
                assert_eq!(dec.core, scratch.core, "after {update:?}");
                assert_eq!(dec.kmax, scratch.kmax, "kmax after {update:?}");
                for (w, &old) in before.iter().enumerate() {
                    let delta = dec.core[w] as i64 - old as i64;
                    assert!(delta.abs() <= 1, "|Δcore({w})| = {delta} after {update:?}");
                }
            }
        }
    }
}
