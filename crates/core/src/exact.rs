//! Algorithm 1 (`Exact`) and Algorithm 8 (`PExact`): flow-based exact DSD
//! riding the shared [`mod@crate::alpha_search`] loop over the guessed
//! density α.
//!
//! The network is constructed over the entire graph (the size weakness
//! that `CoreExact` repairs by locating in a core), but each guess is no
//! longer solved from scratch: the probe sequence runs on one parametric
//! solver that warm-resolves from the checkpointed lower-bound flow, so
//! the whole search costs amortized about one max-flow (see
//! [`crate::flownet::DensityNetwork`]). Dispatch:
//! h = 2 → Goldberg's simplified network; h-clique (h ≥ 3) → Algorithm 1's
//! (h−1)-clique network; general pattern → Algorithm 8's instance network.

use dsd_graph::{Graph, VertexId, VertexSet};
use dsd_motif::pattern::{Pattern, PatternKind};

use crate::alpha_search::{alpha_search, effective_gap, NetworkProbe};
use crate::flownet::{
    build_clique_network, build_edge_network, build_pattern_network, build_store_network,
    DensityNetwork, FlowBackend, NetworkLender,
};
use crate::oracle::{density, oracle_for, DensityOracle};
use crate::types::DsdResult;

pub use crate::alpha_search::{density_gap, ExactStats};

/// Per-request knobs for the flow/binary-search framework.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactOpts {
    /// Max-flow backend for the min-cut probes.
    pub backend: FlowBackend,
    /// Extra binary-search stopping tolerance on α. The effective gap is
    /// `max(1/(n(n−1)), tolerance)` — Lemma 12's separation keeps the
    /// default exact; a larger tolerance trades certified precision for
    /// fewer probes.
    pub tolerance: Option<f64>,
    /// Cap on min-cut probes; when exhausted the best witness so far is
    /// returned and [`ExactStats::budget_exhausted`] is set. When the
    /// budget starves the search before *any* feasible probe, one extra
    /// probe at α = 0 runs (and is counted in the stats) so the result is
    /// never a bogus empty answer on a graph with instances.
    pub step_budget: Option<usize>,
}

/// Builds the Algorithm-1/8 network for Ψ over `g[members]`.
///
/// `grouped` selects `construct+` (Algorithm 7) for general patterns; it is
/// ignored for cliques, whose Algorithm-1 network has no duplicate vertex
/// sets to group.
pub(crate) fn build_network_for(
    g: &Graph,
    members: &[VertexId],
    psi: &Pattern,
    grouped: bool,
) -> DensityNetwork {
    match psi.kind() {
        PatternKind::Clique(2) => build_edge_network(g, members),
        PatternKind::Clique(h) => build_clique_network(g, members, h),
        _ => build_pattern_network(g, members, psi, grouped),
    }
}

/// [`build_network_for`], preferring the factorised store-built
/// construction when `oracle` holds a materialized [`InstanceStore`] —
/// zero instance re-enumeration; decision- and witness-identical to the
/// enumeration constructors (the residual-reachable source side is the
/// unique inclusion-minimal min-cut, independent of formulation). h = 2
/// keeps the Goldberg network: the graph CSR already is the factorised
/// edge set, so a store would only add nodes.
pub(crate) fn build_network_for_with(
    g: &Graph,
    members: &[VertexId],
    psi: &Pattern,
    grouped: bool,
    oracle: &dyn DensityOracle,
) -> DensityNetwork {
    if !matches!(psi.kind(), PatternKind::Clique(2)) {
        if let Some(store) = oracle.store(g) {
            return build_store_network(g, members, store);
        }
    }
    build_network_for(g, members, psi, grouped)
}

/// Acquires the network for `g[members]`: from the lender's cache when a
/// warm one is resident, else freshly (store-built when possible).
pub(crate) fn acquire_network(
    g: &Graph,
    members: &[VertexId],
    psi: &Pattern,
    grouped: bool,
    oracle: &dyn DensityOracle,
    lender: Option<&dyn NetworkLender>,
) -> DensityNetwork {
    if let Some(lender) = lender {
        if let Some(net) = lender.take(members, &[]) {
            return net;
        }
    }
    build_network_for_with(g, members, psi, grouped, oracle)
}

/// Returns a network to the lender's cache for the next request.
pub(crate) fn release_network(
    members: &[VertexId],
    net: DensityNetwork,
    lender: Option<&dyn NetworkLender>,
) {
    if let Some(lender) = lender {
        lender.put(members, &[], net);
    }
}

/// Runs `Exact` (cliques) / `PExact` (patterns) on the whole graph.
pub fn exact(g: &Graph, psi: &Pattern, backend: FlowBackend) -> (DsdResult, ExactStats) {
    let oracle = oracle_for(psi);
    exact_with(
        g,
        psi,
        oracle.as_ref(),
        ExactOpts {
            backend,
            ..ExactOpts::default()
        },
    )
}

/// [`exact`] against a caller-provided (possibly warm) density oracle and
/// per-request knobs — the engine entry point.
pub fn exact_with(
    g: &Graph,
    psi: &Pattern,
    oracle: &dyn DensityOracle,
    opts: ExactOpts,
) -> (DsdResult, ExactStats) {
    exact_with_lender(g, psi, oracle, opts, None)
}

/// [`exact_with`] with a network lender: the α-search borrows its
/// [`DensityNetwork`] from the lender's cache when one is warm (and
/// returns it afterwards), so repeat requests on an unchanged graph pay
/// only the flow resolve.
pub(crate) fn exact_with_lender(
    g: &Graph,
    psi: &Pattern,
    oracle: &dyn DensityOracle,
    opts: ExactOpts,
    lender: Option<&dyn NetworkLender>,
) -> (DsdResult, ExactStats) {
    let n = g.num_vertices();
    let alive = VertexSet::full(n);
    let degrees = oracle.degrees(g, &alive);
    let max_deg = degrees.iter().copied().max().unwrap_or(0);
    let mut stats = ExactStats::default();
    if max_deg == 0 {
        return (DsdResult::empty(), stats);
    }

    let bounds = (0.0f64, max_deg as f64);
    stats.initial_bounds = bounds;
    let gap = effective_gap(n, opts.tolerance);
    let budget = opts.step_budget.unwrap_or(usize::MAX);
    let members: Vec<VertexId> = g.vertices().collect();
    // Store-built (construct+-shaped) when the oracle materialized;
    // otherwise PExact's ungrouped Algorithm-8 network — construct+
    // grouping without a store belongs to CorePExact.
    let mut net = acquire_network(g, &members, psi, false, oracle, lender);
    let outcome = alpha_search(
        &mut NetworkProbe::new(&mut net, opts.backend),
        bounds,
        gap,
        budget,
        &mut stats,
    );
    let mut best = outcome.witness.unwrap_or_default();
    if best.is_empty() {
        // μ > 0 guarantees α = 0 is feasible, so an empty witness means an
        // exhausted step budget starved the search before any feasible
        // probe. Fall back to one counted probe at the proven-feasible
        // guess rather than returning a bogus empty answer (see the
        // `step_budget` docs).
        stats.iterations += 1;
        stats.network_nodes.push(net.num_nodes());
        best = net.solve(0.0, opts.backend).unwrap_or_default();
    }
    stats.absorb_flow(net.probe_stats());
    release_network(&members, net, lender);
    debug_assert!(!best.is_empty(), "μ > 0 guarantees a feasible guess");
    best.sort_unstable();
    let set = VertexSet::from_members(n, &best);
    let rho = density(oracle, g, &set);
    (
        DsdResult {
            vertices: best,
            density: rho,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_d(g: &Graph, psi: &Pattern) -> DsdResult {
        exact(g, psi, FlowBackend::Dinic).0
    }

    /// Figure 1(a)-style: K4 with a tail — EDS is the K4 at ρ = 1.5.
    #[test]
    fn eds_of_k4_tail() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        );
        let r = exact_d(&g, &Pattern::edge());
        assert_eq!(r.vertices, vec![0, 1, 2, 3]);
        assert!((r.density - 1.5).abs() < 1e-9);
    }

    /// The paper's running example: with Ψ = edge the densest subgraph is
    /// S1 (density 11/7); with Ψ = triangle it is S2.
    #[test]
    fn triangle_cds_differs_from_eds() {
        // Build: S1 = 7-vertex 11-edge near-clique with no triangles...
        // Simplest contrast graph: C5 (edge-density 1, no triangles) vs
        // two triangles sharing an edge (4 vertices, 5 edges, 2 triangles).
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 0)];
        edges.extend_from_slice(&[(5, 6), (6, 7), (5, 7), (5, 8), (7, 8)]);
        let g = Graph::from_edges(9, &edges);
        let eds = exact_d(&g, &Pattern::edge());
        // K4-e has density 5/4 > C5's 1.
        assert_eq!(eds.vertices, vec![5, 6, 7, 8]);
        let cds = exact_d(&g, &Pattern::triangle());
        assert_eq!(cds.vertices, vec![5, 6, 7, 8]);
        assert!((cds.density - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_instances_gives_empty() {
        // A star has no triangles.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let r = exact_d(&g, &Pattern::triangle());
        assert!(r.is_empty());
        assert_eq!(r.density, 0.0);
    }

    #[test]
    fn whole_clique_is_its_own_cds() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, &edges);
        for h in 2..=5 {
            let r = exact_d(&g, &Pattern::clique(h));
            assert_eq!(r.vertices, vec![0, 1, 2, 3, 4], "h = {h}");
        }
    }

    #[test]
    fn pexact_diamond_on_figure6_style_graph() {
        // K4 on {0,3,4,5} (3 diamonds), 4-cycle 0-1-2-3 (1 diamond),
        // tail 5-6-7. PDS = the K4: 3/4 beats 4/6-ish supersets.
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (0, 3),
                (0, 4),
                (0, 5),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (6, 7),
            ],
        );
        let r = exact_d(&g, &Pattern::diamond());
        assert_eq!(r.vertices, vec![0, 3, 4, 5]);
        assert!((r.density - 0.75).abs() < 1e-9);
    }

    #[test]
    fn pexact_two_star_picks_hub() {
        // A big star: 2-star density maximized by the full star.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let r = exact_d(&g, &Pattern::two_star());
        assert_eq!(r.vertices, vec![0, 1, 2, 3, 4, 5]);
        // C(5,2) = 10 wedges over 6 vertices.
        assert!((r.density - 10.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn backends_agree() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (4, 6),
                (3, 6),
            ],
        );
        for psi in [Pattern::edge(), Pattern::triangle()] {
            let a = exact(&g, &psi, FlowBackend::Dinic).0;
            let b = exact(&g, &psi, FlowBackend::PushRelabel).0;
            assert_eq!(a.vertices, b.vertices, "{}", psi.name());
            assert!((a.density - b.density).abs() < 1e-9);
        }
    }
}
