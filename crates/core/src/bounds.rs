//! Density bounds (Section 5.2) as a standalone, documented API.
//!
//! These are the inequalities everything else leans on:
//!
//! * **Theorem 1**: `k/|VΨ| ≤ ρ(Rk, Ψ) ≤ kmax` for every (k, Ψ)-core Rk;
//! * **Lemma 4**: removing any `U ⊆ V(D)` from the CDS `D` kills at least
//!   `ρopt · |U|` instances;
//! * **Lemma 5**: `ρopt ≤ kmax`;
//! * **Lemma 7**: the CDS lies inside the `(⌈ρopt⌉, Ψ)`-core;
//! * **Lemma 8**: the (kmax, Ψ)-core is a `1/|VΨ|`-approximation;
//! * **Lemma 12**: distinct subgraph densities differ by ≥ `1/(n(n−1))`.
//!
//! The functions here expose the bounds as queryable values so callers
//! (and tests) don't re-derive them inline.

use crate::clique_core::CliqueCoreDecomposition;

/// Bounds on ρopt derived from a (k, Ψ)-core decomposition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DensityBounds {
    /// Lower bound on ρopt (the best of `kmax/|VΨ|` and the peel's ρ′).
    pub lower: f64,
    /// Upper bound on ρopt (`kmax`, Lemma 5).
    pub upper: f64,
    /// Core order the CDS is guaranteed to lie within (Lemma 7 applied to
    /// the lower bound).
    pub locate_k: u64,
}

/// Computes [`DensityBounds`] from a decomposition.
///
/// `use_residual` additionally applies the peel's residual-density lower
/// bound ρ′ (Pruning1); without it only Theorem 1's `kmax/|VΨ|` is used.
pub fn density_bounds(
    dec: &CliqueCoreDecomposition,
    psi_size: usize,
    use_residual: bool,
) -> DensityBounds {
    let theorem1 = dec.kmax as f64 / psi_size as f64;
    let lower = if use_residual {
        dec.best_density.max(theorem1)
    } else {
        theorem1
    };
    DensityBounds {
        lower,
        upper: dec.kmax as f64,
        locate_k: locate_core_order(lower),
    }
}

/// Lemma 7 applied to an *achieved* lower bound `rho`: the CDS lies inside
/// the `(⌈rho⌉, Ψ)`-core. Safe for any `rho ≤ ρopt` because `⌈·⌉` is
/// monotone.
pub fn locate_core_order(rho: f64) -> u64 {
    if rho <= 0.0 {
        0
    } else {
        rho.ceil() as u64
    }
}

/// Lemma 12's separation: two distinct subgraph densities of an n-vertex
/// graph differ by at least `1/(n(n−1))` — the binary-search stopping gap.
pub fn density_separation(n: usize) -> f64 {
    crate::exact::density_gap(n)
}

/// Lemma 8's guarantee: the worst-case ratio of the (kmax, Ψ)-core's
/// density to ρopt.
pub fn approximation_ratio(psi_size: usize) -> f64 {
    1.0 / psi_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique_core::decompose;
    use crate::core_exact::core_exact;
    use crate::oracle::{density, oracle_for};
    use dsd_graph::Graph;
    use dsd_motif::Pattern;

    /// Figure 4(a): kmax = 2 with the lower bound attained — a 4-cycle has
    /// density 4/4 = 1 = kmax/|VΨ|.
    #[test]
    fn figure4a_lower_bound_attained() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let oracle = oracle_for(&Pattern::edge());
        let dec = decompose(&g, oracle.as_ref());
        assert_eq!(dec.kmax, 2);
        let rho = density(oracle.as_ref(), &g, &dec.max_core());
        assert!((rho - 1.0).abs() < 1e-12, "4-cycle attains k/|VΨ| exactly");
    }

    /// Figure 4(b): the x-th graph in the family (a chain of x diamonds)
    /// has kmax = 2 and density (1 + 4x)/(2 + 2x) → 2 = kmax as x → ∞,
    /// approaching the upper bound.
    fn figure4b(x: usize) -> Graph {
        // A "book" of x four-cycles sharing the spine edge {0, 1}: page i
        // adds vertices p_i, q_i with the cycle 0-p_i-1-q_i-0. That gives
        // n = 2 + 2x and m = 1 + 4x — exactly the paper's counting — with
        // every page vertex at degree 2, so kmax = 2.
        let mut edges = vec![(0u32, 1u32)];
        for i in 0..x {
            let p = (2 + 2 * i) as u32;
            let q = (3 + 2 * i) as u32;
            edges.push((0, p));
            edges.push((p, 1));
            edges.push((1, q));
            edges.push((q, 0));
        }
        Graph::from_edges(2 + 2 * x, &edges)
    }

    #[test]
    fn figure4b_density_approaches_upper_bound() {
        let oracle = oracle_for(&Pattern::edge());
        let mut last = 0.0;
        for x in [1usize, 2, 4, 8, 16] {
            let g = figure4b(x);
            let dec = decompose(&g, oracle.as_ref());
            assert_eq!(dec.kmax, 2, "x = {x}");
            let rho = density(oracle.as_ref(), &g, &dec.max_core());
            assert!(rho >= last - 1e-12, "density must increase with x");
            assert!(rho <= 2.0 + 1e-12, "bounded by kmax");
            last = rho;
        }
        assert!(last > 1.5, "by x = 16 density is well past the lower bound");
    }

    #[test]
    fn bounds_bracket_rho_opt() {
        let g = figure4b(4);
        let psi = Pattern::edge();
        let oracle = oracle_for(&psi);
        let dec = decompose(&g, oracle.as_ref());
        let bounds = density_bounds(&dec, 2, true);
        let (opt, _) = core_exact(&g, &psi);
        assert!(bounds.lower <= opt.density + 1e-9);
        assert!(opt.density <= bounds.upper + 1e-9);
        // The CDS must lie inside the located core.
        let core = dec.core_set(bounds.locate_k);
        for &v in &opt.vertices {
            assert!(core.contains(v));
        }
    }

    #[test]
    fn residual_bound_dominates_theorem1() {
        let g = figure4b(4);
        let oracle = oracle_for(&Pattern::edge());
        let dec = decompose(&g, oracle.as_ref());
        let with = density_bounds(&dec, 2, true);
        let without = density_bounds(&dec, 2, false);
        assert!(with.lower >= without.lower);
        assert_eq!(with.upper, without.upper);
    }

    #[test]
    fn helpers() {
        assert_eq!(locate_core_order(0.0), 0);
        assert_eq!(locate_core_order(2.0), 2);
        assert_eq!(locate_core_order(2.1), 3);
        assert!((approximation_ratio(3) - 1.0 / 3.0).abs() < 1e-15);
        assert!((density_separation(10) - 1.0 / 90.0).abs() < 1e-15);
    }
}
