//! `DsdEngine`: a long-lived, cache-reusing query engine over one graph.
//!
//! The paper frames CDS/PDS discovery as a *query workload*: the same graph
//! is probed repeatedly with different patterns Ψ, objectives, and methods.
//! Every algorithm in this crate leans on one of three expensive substrates:
//!
//! * the **density oracle** for Ψ (which for general patterns materializes
//!   the full instance list once — Algorithm 7's `construct+` precondition);
//! * the **(k, Ψ)-core decomposition** (Algorithm 3) — the dominant cost of
//!   `CoreExact`, `PeelApp`, `IncApp`, DalkS and DamkS alike;
//! * the **classical k-core order** — the γ bounds of `CoreApp`
//!   (Algorithm 6) and the Section-6.3 query variant's locator.
//!
//! The engine owns the graph and memoizes all three, keyed by Ψ's canonical
//! form (isomorphic patterns share one entry), so a request workload pays
//! each substrate once instead of once per call. The free functions
//! (`densest_subgraph` & co.) remain as thin shims that spin up a throwaway
//! engine per call.
//!
//! The engine is `Send + Sync`: the substrate cache sits behind an
//! [`RwLock`] with double-checked build-once locking, so N threads warming
//! the same Ψ pay exactly one decomposition build (the losers of the race
//! block on the write lock and then hit the cache), while disjoint warm
//! requests share the read lock and proceed concurrently. Share an engine
//! across threads with [`std::sync::Arc`] or scoped borrows; for serving
//! many named graphs from one process, and for batched execution, see
//! [`crate::service::DsdService`].
//!
//! ```
//! use dsd_core::engine::{DsdEngine, Objective};
//! use dsd_core::Method;
//! use dsd_graph::Graph;
//! use dsd_motif::Pattern;
//!
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
//! let engine = DsdEngine::new(g);
//! let psi = Pattern::triangle();
//!
//! // First request builds the (k, Ψ)-core decomposition...
//! let cds = engine.request(&psi).method(Method::CoreExact).solve();
//! assert_eq!(cds.vertices, vec![0, 1, 2, 3]);
//!
//! // ...which every later request with the same Ψ reuses.
//! let top2 = engine.request(&psi).objective(Objective::TopK(2)).solve();
//! assert!(top2.stats.substrate.decomposition_cache_hit);
//! ```

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use dsd_graph::{Graph, VertexId};
use dsd_motif::Pattern;

use crate::approx::{core_app_from, inc_app_from};
use crate::clique_core::{decompose, CliqueCoreDecomposition};
use crate::core_exact::{core_exact_from, CoreExactConfig};
use crate::exact::{exact_with, ExactOpts};
use crate::flownet::FlowBackend;
use crate::kcore::{k_core_decomposition, KCoreDecomposition};
use crate::oracle::{oracle_for_with, DensityOracle};
use crate::parallelism::Parallelism;
use crate::peel::peel_app_from;
use crate::query::densest_with_query_from;
use crate::size_constrained::{densest_at_least_k_from, densest_at_most_k_from};
use crate::top_k::top_k_densest_from;
use crate::types::DsdResult;
use crate::Method;

/// What a request asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Objective {
    /// The densest subgraph (the paper's CDS/PDS problem).
    Densest,
    /// Up to `k` vertex-disjoint densest subgraphs, densest first.
    TopK(usize),
    /// Densest subgraph with at least `k` vertices (DalkS).
    AtLeastK(usize),
    /// Densest subgraph with at most `k` vertices (DamkS, heuristic).
    AtMostK(usize),
    /// Densest edge-density subgraph containing every listed vertex
    /// (Section 6.3's query variant; Ψ is ignored — the variant is
    /// defined for edge density).
    WithQuery(Vec<VertexId>),
}

/// How a request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A non-empty subgraph was found.
    Found,
    /// The request was valid but the graph has no Ψ instance (density 0).
    Empty,
    /// The request itself was unsatisfiable (out-of-range query vertices,
    /// `k = 0`, `k` above the vertex count, ...).
    Invalid,
}

/// The quality certificate attached to a [`Solution`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Guarantee {
    /// Certified optimal for the requested objective.
    Exact,
    /// Density within the given multiplicative factor of optimal
    /// (`1/|VΨ|` for the core approximations, `1/3` for DalkS on edges).
    Ratio(f64),
    /// Binary search stopped at the requested α tolerance: the density is
    /// within this additive gap of optimal.
    AdditiveGap(f64),
    /// No guarantee (DamkS, or a step budget cut the search short).
    Heuristic,
}

/// Which substrates a request reused vs built.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubstrateUse {
    /// The Ψ density oracle came out of the engine cache.
    pub oracle_cache_hit: bool,
    /// The (k, Ψ)-core decomposition came out of the engine cache.
    pub decomposition_cache_hit: bool,
    /// The classical k-core order came out of the engine cache (`false`
    /// also when the method never needed it).
    pub kcore_cache_hit: bool,
}

/// Always-populated instrumentation carried by every [`Solution`].
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// Total wall time of the request.
    pub total_nanos: u128,
    /// Wall time this request spent building the (k, Ψ)-core
    /// decomposition (0 on a cache hit).
    pub decomposition_nanos: u128,
    /// Min-cut probes performed. Populated for `Densest` via
    /// Exact/CoreExact; 0 for the probe-free peel/core methods and for
    /// objectives that don't surface per-probe accounting (top-k and the
    /// query variant track time only).
    pub flow_iterations: usize,
    /// Flow-network node count at each probe (the Figure-9 series).
    pub network_nodes: Vec<usize>,
    /// kmax of the (k, Ψ)-core decomposition, when one was consulted.
    pub kmax: Option<u64>,
    /// Substrate cache accounting.
    pub substrate: SubstrateUse,
}

/// The one result shape every objective/method path returns.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Sorted member vertices of the (best) reported subgraph.
    pub vertices: Vec<VertexId>,
    /// Ψ-density of the (best) reported subgraph.
    pub density: f64,
    /// Every reported subgraph: one entry for scalar objectives, up to `k`
    /// for [`Objective::TopK`], empty when nothing was found.
    pub subgraphs: Vec<DsdResult>,
    /// The method that actually ran (never [`Method::Auto`]).
    pub method: Method,
    /// The objective the request asked for.
    pub objective: Objective,
    /// How the request ended.
    pub outcome: Outcome,
    /// The quality certificate for `density`.
    pub guarantee: Guarantee,
    /// Instrumentation (always populated).
    pub stats: SolveStats,
}

impl Solution {
    /// The best subgraph as the legacy [`DsdResult`] shape.
    pub fn to_result(&self) -> DsdResult {
        DsdResult {
            vertices: self.vertices.clone(),
            density: self.density,
        }
    }

    /// Number of member vertices of the best subgraph.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether no subgraph was found.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Cumulative substrate-cache counters for one engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCacheStats {
    /// Ψ-oracle cache hits / builds.
    pub oracle_hits: usize,
    /// Ψ-oracle cold builds.
    pub oracle_builds: usize,
    /// (k, Ψ)-core decomposition cache hits.
    pub decomposition_hits: usize,
    /// (k, Ψ)-core decomposition cold builds.
    pub decomposition_builds: usize,
    /// Classical k-core cache hits.
    pub kcore_hits: usize,
    /// Classical k-core cold builds.
    pub kcore_builds: usize,
}

/// Cache key for a pattern: vertex count + the canonical edge list under
/// vertex relabeling ([`Pattern::canonical_edges`]), so isomorphic
/// patterns with different labelings share one cached substrate.
pub(crate) type PatternKey = (usize, Vec<(u8, u8)>);

pub(crate) fn pattern_key(psi: &Pattern) -> PatternKey {
    (psi.vertex_count(), psi.canonical_edges())
}

/// `(substrate, cache_hit)` pair.
type Cached<T> = (T, bool);

/// Result of a decomposition lookup: the oracle, the decomposition (each
/// with its cache-hit flag), and the build time this call paid (0 on hit).
type DecompositionLookup = (
    Cached<Arc<dyn DensityOracle>>,
    Cached<Arc<CliqueCoreDecomposition>>,
    u128,
);

#[derive(Default)]
struct SubstrateCache {
    oracles: HashMap<PatternKey, Arc<dyn DensityOracle>>,
    decompositions: HashMap<PatternKey, Arc<CliqueCoreDecomposition>>,
    kcore: Option<Arc<KCoreDecomposition>>,
}

/// A long-lived query engine owning one graph plus its memoized substrates.
///
/// Construction is free — substrates are built lazily on first use and
/// reused by every later request (see the module docs for an example).
/// The engine is `Send + Sync`; wrap it in an [`Arc`] (or hand out scoped
/// borrows) to serve requests from many threads over one substrate cache.
/// The lifetime parameter supports zero-copy engines over borrowed graphs
/// ([`DsdEngine::over`]); owning engines are `DsdEngine<'static>`.
pub struct DsdEngine<'g> {
    graph: Cow<'g, Graph>,
    parallelism: Parallelism,
    cache: RwLock<SubstrateCache>,
    counters: Mutex<EngineCacheStats>,
}

impl DsdEngine<'static> {
    /// An engine that owns its graph — the shape to use for serving.
    pub fn new(graph: Graph) -> Self {
        DsdEngine {
            graph: Cow::Owned(graph),
            parallelism: Parallelism::serial(),
            cache: RwLock::new(SubstrateCache::default()),
            counters: Mutex::new(EngineCacheStats::default()),
        }
    }
}

impl<'g> DsdEngine<'g> {
    /// A zero-copy engine over a borrowed graph — what the free-function
    /// shims use.
    pub fn over(graph: &'g Graph) -> Self {
        DsdEngine {
            graph: Cow::Borrowed(graph),
            parallelism: Parallelism::serial(),
            cache: RwLock::new(SubstrateCache::default()),
            counters: Mutex::new(EngineCacheStats::default()),
        }
    }

    /// Sets the worker count used for parallelizable substrate passes
    /// (currently the h-clique bulk degree pass). Answers are identical
    /// for every setting; this is a throughput knob only.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The engine's worker-count configuration.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The engine's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Cumulative cache accounting across all requests so far.
    pub fn cache_stats(&self) -> EngineCacheStats {
        *self.counters.lock().unwrap()
    }

    /// Starts building a request for pattern Ψ (defaults: Densest,
    /// `Method::Auto`, Dinic backend, exact tolerance, no step budget),
    /// bound to this engine — call `.solve()` on the result. To build a
    /// free-standing request (for [`crate::service::DsdService`] routing
    /// or batching), use [`DsdRequest::new`].
    pub fn request(&self, psi: &Pattern) -> BoundRequest<'_, 'g> {
        BoundRequest {
            engine: self,
            req: DsdRequest::new(psi),
        }
    }

    /// Pre-builds the Ψ substrates (oracle + decomposition), so later
    /// requests are served warm. Returns the decomposition build time in
    /// nanoseconds (0 when it was already cached — including when another
    /// thread won the build race and this call only waited for it).
    pub fn warm(&self, psi: &Pattern) -> u128 {
        let (_, _, nanos) = self.decomposition(psi);
        nanos
    }

    fn count(&self, bump: impl FnOnce(&mut EngineCacheStats)) {
        bump(&mut self.counters.lock().unwrap());
    }

    /// The memoized density oracle for Ψ. The bool reports a cache hit.
    ///
    /// Double-checked locking: the fast path shares a read lock; a miss
    /// upgrades to the write lock and re-checks, so racing threads build
    /// at most one oracle per Ψ.
    fn oracle(&self, psi: &Pattern) -> Cached<Arc<dyn DensityOracle>> {
        self.oracle_keyed(psi, pattern_key(psi))
    }

    /// [`Self::oracle`] with the canonical key already computed, so
    /// callers that need the key themselves (the decomposition lookup)
    /// don't pay the canonicalization twice.
    fn oracle_keyed(&self, psi: &Pattern, key: PatternKey) -> Cached<Arc<dyn DensityOracle>> {
        if let Some(oracle) = self.cache.read().unwrap().oracles.get(&key) {
            let oracle = Arc::clone(oracle);
            self.count(|c| c.oracle_hits += 1);
            return (oracle, true);
        }
        let mut cache = self.cache.write().unwrap();
        if let Some(oracle) = cache.oracles.get(&key) {
            let oracle = Arc::clone(oracle);
            drop(cache);
            self.count(|c| c.oracle_hits += 1);
            return (oracle, true);
        }
        let oracle: Arc<dyn DensityOracle> = Arc::from(oracle_for_with(psi, self.parallelism));
        cache.oracles.insert(key, Arc::clone(&oracle));
        drop(cache);
        self.count(|c| c.oracle_builds += 1);
        (oracle, false)
    }

    /// The memoized (k, Ψ)-core decomposition plus its oracle. The u128 is
    /// the decomposition build time paid by *this* call (0 on a hit).
    ///
    /// The cold build runs while holding the write lock. That is the
    /// build-once guarantee: concurrent warmers of the same Ψ block until
    /// the winner's decomposition lands, then read it as a hit — N threads
    /// pay one build. (Requests for *already-cached* substrates of other
    /// patterns also wait out the build; a serving workload warms its
    /// patterns up front, so the write lock is cold-start-only.)
    fn decomposition(&self, psi: &Pattern) -> DecompositionLookup {
        let key = pattern_key(psi);
        let (oracle, oracle_hit) = self.oracle_keyed(psi, key.clone());
        if let Some(dec) = self.cache.read().unwrap().decompositions.get(&key) {
            let dec = Arc::clone(dec);
            self.count(|c| c.decomposition_hits += 1);
            return ((oracle, oracle_hit), (dec, true), 0);
        }
        let mut cache = self.cache.write().unwrap();
        if let Some(dec) = cache.decompositions.get(&key) {
            let dec = Arc::clone(dec);
            drop(cache);
            self.count(|c| c.decomposition_hits += 1);
            return ((oracle, oracle_hit), (dec, true), 0);
        }
        let t = Instant::now();
        let dec = Arc::new(decompose(self.graph(), oracle.as_ref()));
        let nanos = t.elapsed().as_nanos();
        cache.decompositions.insert(key, Arc::clone(&dec));
        drop(cache);
        self.count(|c| c.decomposition_builds += 1);
        ((oracle, oracle_hit), (dec, false), nanos)
    }

    /// The memoized classical k-core order. The bool reports a cache hit.
    /// Same double-checked build-once discipline as [`Self::decomposition`].
    fn kcore(&self) -> (Arc<KCoreDecomposition>, bool) {
        if let Some(kc) = &self.cache.read().unwrap().kcore {
            let kc = Arc::clone(kc);
            self.count(|c| c.kcore_hits += 1);
            return (kc, true);
        }
        let mut cache = self.cache.write().unwrap();
        if let Some(kc) = &cache.kcore {
            let kc = Arc::clone(kc);
            drop(cache);
            self.count(|c| c.kcore_hits += 1);
            return (kc, true);
        }
        let kc = Arc::new(k_core_decomposition(self.graph()));
        cache.kcore = Some(Arc::clone(&kc));
        drop(cache);
        self.count(|c| c.kcore_builds += 1);
        (kc, false)
    }

    /// `Method::Auto`'s cost-based selector.
    ///
    /// Every candidate it can pick preserves the `1/|VΨ|` approximation
    /// guarantee (exact methods trivially, the core family by Lemma 8):
    ///
    /// * warm decomposition → `CoreExact` when the located core is small
    ///   enough for cheap flow probes, else `PeelApp` (which is free given
    ///   the decomposition);
    /// * cold + small graph → `CoreExact`;
    /// * cold + large graph → `CoreApp` (top-down, avoids the full
    ///   decomposition the exact path would have to pay).
    ///
    /// Note the warm/cold split makes Auto's choice depend on cache state:
    /// under concurrent execution, pin an explicit method when bit-for-bit
    /// reproducibility across runs matters (see `service::DsdService`).
    fn auto_method(&self, psi: &Pattern) -> Method {
        /// Located-core size above which warm flow probes are judged too
        /// expensive for an auto-selected request.
        const WARM_FLOW_VERTEX_CAP: usize = 20_000;
        /// Cold-start work bound: edges × pattern size as a proxy for the
        /// enumeration + decomposition cost of the exact path.
        const COLD_EXACT_WORK_CAP: usize = 1_000_000;

        let key = pattern_key(psi);
        let cached: Option<Arc<CliqueCoreDecomposition>> =
            self.cache.read().unwrap().decompositions.get(&key).cloned();
        if let Some(dec) = cached {
            if dec.kmax == 0 {
                return Method::PeelApp;
            }
            // Same location rule CoreExact itself applies (Lemma 7 on the
            // Pruning1 lower bound), via the shared bounds helpers.
            let bounds = crate::bounds::density_bounds(&dec, psi.vertex_count(), true);
            let k_loc = bounds.locate_k.max(1);
            let located = dec.core_set(k_loc).len();
            if located <= WARM_FLOW_VERTEX_CAP {
                Method::CoreExact
            } else {
                Method::PeelApp
            }
        } else if self.graph().num_edges().saturating_mul(psi.vertex_count()) <= COLD_EXACT_WORK_CAP
        {
            Method::CoreExact
        } else {
            Method::CoreApp
        }
    }

    /// Runs a free-standing request against this engine. Any graph name
    /// the request carries ([`DsdRequest::on`]) is ignored here — routing
    /// by name is [`crate::service::DsdService`]'s job.
    pub fn solve(&self, req: &DsdRequest) -> Solution {
        let t0 = Instant::now();
        let objective = req.objective.clone();
        let mut solution = match &req.objective {
            Objective::Densest => self.solve_densest(req),
            Objective::TopK(k) => self.solve_top_k(req, *k),
            Objective::AtLeastK(k) => self.solve_at_least_k(req, *k),
            Objective::AtMostK(k) => self.solve_at_most_k(req, *k),
            Objective::WithQuery(query) => self.solve_with_query(req, query.clone()),
        };
        solution.objective = objective;
        solution.stats.total_nanos = t0.elapsed().as_nanos();
        solution
    }

    fn solve_densest(&self, req: &DsdRequest) -> Solution {
        let g = self.graph();
        let psi = &req.psi;
        let method = match req.method {
            Method::Auto => self.auto_method(psi),
            m => m,
        };
        let mut stats = SolveStats::default();
        let ratio = 1.0 / psi.vertex_count() as f64;

        let (result, guarantee) = match method {
            Method::Exact => {
                let (oracle, oracle_hit) = self.oracle(psi);
                stats.substrate.oracle_cache_hit = oracle_hit;
                let opts = ExactOpts {
                    backend: req.backend,
                    tolerance: req.tolerance,
                    step_budget: req.step_budget,
                };
                let (r, es) = exact_with(g, psi, oracle.as_ref(), opts);
                stats.flow_iterations = es.iterations;
                stats.network_nodes = es.network_nodes;
                let guarantee = exact_guarantee(es.budget_exhausted, req.tolerance);
                (r, guarantee)
            }
            Method::CoreExact => {
                let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
                stats.substrate.oracle_cache_hit = oracle_hit;
                stats.substrate.decomposition_cache_hit = dec_hit;
                stats.decomposition_nanos = dec_nanos;
                stats.kmax = Some(dec.kmax);
                let config = CoreExactConfig {
                    backend: req.backend,
                    tolerance: req.tolerance,
                    step_budget: req.step_budget,
                    ..CoreExactConfig::default()
                };
                let (r, ces) = core_exact_from(g, psi, config, oracle.as_ref(), &dec);
                stats.flow_iterations = ces.exact.iterations;
                stats.network_nodes = ces.exact.network_nodes;
                let guarantee = exact_guarantee(ces.exact.budget_exhausted, req.tolerance);
                (r, guarantee)
            }
            Method::PeelApp => {
                let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
                let _ = oracle;
                stats.substrate.oracle_cache_hit = oracle_hit;
                stats.substrate.decomposition_cache_hit = dec_hit;
                stats.decomposition_nanos = dec_nanos;
                stats.kmax = Some(dec.kmax);
                (peel_app_from(&dec), Guarantee::Ratio(ratio))
            }
            Method::IncApp => {
                let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
                stats.substrate.oracle_cache_hit = oracle_hit;
                stats.substrate.decomposition_cache_hit = dec_hit;
                stats.decomposition_nanos = dec_nanos;
                stats.kmax = Some(dec.kmax);
                let r = inc_app_from(g, oracle.as_ref(), &dec);
                (r.result, Guarantee::Ratio(ratio))
            }
            Method::CoreApp => {
                let (oracle, oracle_hit) = self.oracle(psi);
                stats.substrate.oracle_cache_hit = oracle_hit;
                // γ bounds for cliques come from the classical k-core order.
                let kcore = if matches!(psi.kind(), dsd_motif::pattern::PatternKind::Clique(_)) {
                    let (kc, kc_hit) = self.kcore();
                    stats.substrate.kcore_cache_hit = kc_hit;
                    Some(kc)
                } else {
                    None
                };
                let r = core_app_from(
                    g,
                    psi,
                    oracle.as_ref(),
                    crate::approx::CORE_APP_DEFAULT_SEED,
                    kcore.as_deref(),
                );
                stats.kmax = Some(r.kmax);
                (r.result, Guarantee::Ratio(ratio))
            }
            Method::Auto => unreachable!("Auto resolves before dispatch"),
        };

        let outcome = if result.is_empty() {
            Outcome::Empty
        } else {
            Outcome::Found
        };
        Solution {
            vertices: result.vertices.clone(),
            density: result.density,
            subgraphs: if result.is_empty() {
                Vec::new()
            } else {
                vec![result]
            },
            method,
            objective: Objective::Densest,
            outcome,
            guarantee,
            stats,
        }
    }

    fn solve_top_k(&self, req: &DsdRequest, k: usize) -> Solution {
        let g = self.graph();
        let psi = &req.psi;
        // Validate before paying for the decomposition.
        if k == 0 {
            return invalid(Method::CoreExact, Objective::TopK(k), SolveStats::default());
        }
        let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
        let mut stats = SolveStats::default();
        stats.substrate.oracle_cache_hit = oracle_hit;
        stats.substrate.decomposition_cache_hit = dec_hit;
        stats.decomposition_nanos = dec_nanos;
        stats.kmax = Some(dec.kmax);
        let config = CoreExactConfig {
            backend: req.backend,
            tolerance: req.tolerance,
            step_budget: req.step_budget,
            ..CoreExactConfig::default()
        };
        let scan = top_k_densest_from(g, psi, k, config, oracle.as_ref(), &dec);
        let (vertices, density) = scan
            .subgraphs
            .first()
            .map(|r| (r.vertices.clone(), r.density))
            .unwrap_or_default();
        let outcome = if scan.subgraphs.is_empty() {
            Outcome::Empty
        } else {
            Outcome::Found
        };
        Solution {
            vertices,
            density,
            subgraphs: scan.subgraphs,
            method: Method::CoreExact,
            objective: Objective::TopK(k),
            outcome,
            guarantee: exact_guarantee(scan.budget_exhausted, req.tolerance),
            stats,
        }
    }

    fn solve_at_least_k(&self, req: &DsdRequest, k: usize) -> Solution {
        let g = self.graph();
        let psi = &req.psi;
        // Validate before paying for the decomposition.
        if k == 0 || k > g.num_vertices() {
            return invalid(
                Method::PeelApp,
                Objective::AtLeastK(k),
                SolveStats::default(),
            );
        }
        let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
        let mut stats = SolveStats::default();
        stats.substrate.oracle_cache_hit = oracle_hit;
        stats.substrate.decomposition_cache_hit = dec_hit;
        stats.decomposition_nanos = dec_nanos;
        stats.kmax = Some(dec.kmax);
        // Andersen–Chellapilla's 1/3 bound is proved for edge density.
        let guarantee = if psi.vertex_count() == 2 {
            Guarantee::Ratio(1.0 / 3.0)
        } else {
            Guarantee::Heuristic
        };
        match densest_at_least_k_from(g, k, oracle.as_ref(), &dec) {
            Some(r) => Solution {
                vertices: r.vertices.clone(),
                density: r.density,
                subgraphs: vec![r],
                method: Method::PeelApp,
                objective: Objective::AtLeastK(k),
                outcome: Outcome::Found,
                guarantee,
                stats,
            },
            None => invalid(Method::PeelApp, Objective::AtLeastK(k), stats),
        }
    }

    fn solve_at_most_k(&self, req: &DsdRequest, k: usize) -> Solution {
        let g = self.graph();
        let psi = &req.psi;
        // Validate before paying for the decomposition.
        if k == 0 {
            return invalid(
                Method::PeelApp,
                Objective::AtMostK(k),
                SolveStats::default(),
            );
        }
        let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
        let mut stats = SolveStats::default();
        stats.substrate.oracle_cache_hit = oracle_hit;
        stats.substrate.decomposition_cache_hit = dec_hit;
        stats.decomposition_nanos = dec_nanos;
        stats.kmax = Some(dec.kmax);
        match densest_at_most_k_from(g, psi, k, oracle.as_ref(), &dec) {
            Some(r) => Solution {
                vertices: r.vertices.clone(),
                density: r.density,
                subgraphs: vec![r],
                method: Method::PeelApp,
                objective: Objective::AtMostK(k),
                outcome: Outcome::Found,
                guarantee: Guarantee::Heuristic,
                stats,
            },
            None => invalid(Method::PeelApp, Objective::AtMostK(k), stats),
        }
    }

    fn solve_with_query(&self, req: &DsdRequest, query: Vec<VertexId>) -> Solution {
        let g = self.graph();
        // Validate before paying for the k-core order.
        let n = g.num_vertices();
        if query.is_empty() || query.iter().any(|&q| q as usize >= n) {
            return invalid(
                Method::Exact,
                Objective::WithQuery(query),
                SolveStats::default(),
            );
        }
        let (kcore, kcore_hit) = self.kcore();
        let mut stats = SolveStats::default();
        stats.substrate.kcore_cache_hit = kcore_hit;
        stats.kmax = Some(kcore.kmax as u64);
        match densest_with_query_from(g, &query, &kcore, req.backend) {
            Some(r) => Solution {
                vertices: r.vertices.clone(),
                density: r.density,
                subgraphs: vec![r],
                method: Method::Exact,
                objective: Objective::WithQuery(query),
                outcome: Outcome::Found,
                guarantee: Guarantee::Exact,
                stats,
            },
            None => invalid(Method::Exact, Objective::WithQuery(query), stats),
        }
    }
}

fn exact_guarantee(budget_exhausted: bool, tolerance: Option<f64>) -> Guarantee {
    if budget_exhausted {
        Guarantee::Heuristic
    } else {
        match tolerance {
            Some(t) if t > 0.0 => Guarantee::AdditiveGap(t),
            _ => Guarantee::Exact,
        }
    }
}

fn invalid(method: Method, objective: Objective, stats: SolveStats) -> Solution {
    Solution {
        vertices: Vec::new(),
        density: 0.0,
        subgraphs: Vec::new(),
        method,
        objective,
        outcome: Outcome::Invalid,
        guarantee: Guarantee::Heuristic,
        stats,
    }
}

/// A free-standing request specification: pattern, objective, method, and
/// solver knobs, plus (optionally) the name of the catalog graph it
/// targets. `DsdRequest` is plain `Send` data — build it anywhere, ship it
/// to a [`DsdEngine::solve`] call, a
/// [`crate::service::DsdService::solve`], or a
/// [`crate::service::DsdService::solve_batch`] workload.
///
/// For the common bound form, [`DsdEngine::request`] returns a
/// [`BoundRequest`] with the same builder methods plus `.solve()`.
#[derive(Clone, Debug)]
pub struct DsdRequest {
    graph: Option<String>,
    psi: Pattern,
    objective: Objective,
    method: Method,
    backend: FlowBackend,
    tolerance: Option<f64>,
    step_budget: Option<usize>,
}

impl DsdRequest {
    /// A request for pattern Ψ with the defaults: [`Objective::Densest`],
    /// [`Method::Auto`], Dinic backend, exact tolerance, no step budget.
    pub fn new(psi: &Pattern) -> Self {
        DsdRequest {
            graph: None,
            psi: psi.clone(),
            objective: Objective::Densest,
            method: Method::Auto,
            backend: FlowBackend::Dinic,
            tolerance: None,
            step_budget: None,
        }
    }

    /// Routes the request to the named catalog graph (used by
    /// [`crate::service::DsdService`]; ignored by [`DsdEngine::solve`]).
    pub fn on(mut self, graph: impl Into<String>) -> Self {
        self.graph = Some(graph.into());
        self
    }

    /// The catalog graph this request targets, when routed.
    pub fn graph_name(&self) -> Option<&str> {
        self.graph.as_deref()
    }

    /// The request's pattern Ψ.
    pub fn psi(&self) -> &Pattern {
        &self.psi
    }

    /// Sets the objective (default [`Objective::Densest`]).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the method (default [`Method::Auto`]).
    ///
    /// Only [`Objective::Densest`] dispatches on the method; the other
    /// objectives have a fixed algorithm (top-k iterates CoreExact,
    /// DalkS/DamkS are peel-based, the query variant is flow-exact) and
    /// record that algorithm in [`Solution::method`] regardless of this
    /// setting.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Sets the max-flow backend for min-cut probes (default Dinic).
    /// Ignored by the probe-free peel/core methods.
    pub fn flow_backend(mut self, backend: FlowBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets an α-tolerance for the binary search: the answer's density is
    /// then within `tolerance` of optimal instead of certified exact.
    ///
    /// Applies to the binary-search objectives/methods (Densest via
    /// Exact/CoreExact, and top-k); the peel/core methods and the query
    /// variant have no α search and ignore it.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = Some(tolerance);
        self
    }

    /// Caps the number of min-cut probes; an exhausted budget returns the
    /// best subgraph found so far (guarantee degrades to `Heuristic`).
    ///
    /// Applies to the same binary-search paths as [`Self::tolerance`].
    /// For [`Objective::TopK`] the cap is per round (each of the up-to-`k`
    /// CoreExact scans gets its own budget), so a request's probe total is
    /// bounded by `k × probes`.
    pub fn step_budget(mut self, probes: usize) -> Self {
        self.step_budget = Some(probes);
        self
    }
}

/// A [`DsdRequest`] bound to an engine, created by [`DsdEngine::request`];
/// exposes the same builder methods and is consumed by
/// [`BoundRequest::solve`].
pub struct BoundRequest<'e, 'g> {
    engine: &'e DsdEngine<'g>,
    req: DsdRequest,
}

impl<'e, 'g> BoundRequest<'e, 'g> {
    /// See [`DsdRequest::objective`].
    pub fn objective(mut self, objective: Objective) -> Self {
        self.req = self.req.objective(objective);
        self
    }

    /// See [`DsdRequest::method`].
    pub fn method(mut self, method: Method) -> Self {
        self.req = self.req.method(method);
        self
    }

    /// See [`DsdRequest::flow_backend`].
    pub fn flow_backend(mut self, backend: FlowBackend) -> Self {
        self.req = self.req.flow_backend(backend);
        self
    }

    /// See [`DsdRequest::tolerance`].
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.req = self.req.tolerance(tolerance);
        self
    }

    /// See [`DsdRequest::step_budget`].
    pub fn step_budget(mut self, probes: usize) -> Self {
        self.req = self.req.step_budget(probes);
        self
    }

    /// Runs the request against the engine's warm substrates.
    pub fn solve(self) -> Solution {
        self.engine.solve(&self.req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serving layer's whole premise, checked at compile time.
    #[test]
    fn engine_and_request_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DsdEngine<'static>>();
        assert_send_sync::<DsdEngine<'_>>();
        assert_send_sync::<DsdRequest>();
        assert_send_sync::<Solution>();
        assert_send_sync::<EngineCacheStats>();
    }

    /// Isomorphic patterns with different labelings share one substrate
    /// cache entry (the `PatternKey` canonicalization).
    #[test]
    fn isomorphic_patterns_share_substrates() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
        let engine = DsdEngine::over(&g);
        // The paw, spelled with the pendant on two different vertices.
        let paw_a = Pattern::c3_star();
        let paw_b = Pattern::new("paw-b", 4, &[(1, 2), (2, 3), (1, 3), (2, 0)]);
        assert_ne!(paw_a.edges(), paw_b.edges());

        let a = engine.request(&paw_a).method(Method::PeelApp).solve();
        let b = engine.request(&paw_b).method(Method::PeelApp).solve();
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.density.to_bits(), b.density.to_bits());
        assert!(
            b.stats.substrate.decomposition_cache_hit,
            "relabeled pattern must hit the canonical cache entry"
        );
        let stats = engine.cache_stats();
        assert_eq!(stats.decomposition_builds, 1);
        assert_eq!(stats.oracle_builds, 1);
    }
}
