//! `DsdEngine`: a long-lived, cache-reusing query engine over one graph.
//!
//! The paper frames CDS/PDS discovery as a *query workload*: the same graph
//! is probed repeatedly with different patterns Ψ, objectives, and methods.
//! Every algorithm in this crate leans on one of three expensive substrates:
//!
//! * the **density oracle** for Ψ (which for general patterns materializes
//!   the full instance list once — Algorithm 7's `construct+` precondition);
//! * the **(k, Ψ)-core decomposition** (Algorithm 3) — the dominant cost of
//!   `CoreExact`, `PeelApp`, `IncApp`, DalkS and DamkS alike;
//! * the **classical k-core order** — the γ bounds of `CoreApp`
//!   (Algorithm 6) and the Section-6.3 query variant's locator.
//!
//! The engine owns the graph and memoizes all three, keyed by Ψ's canonical
//! form (isomorphic patterns share one entry), so a request workload pays
//! each substrate once instead of once per call. The free functions
//! (`densest_subgraph` & co.) remain as thin shims that spin up a throwaway
//! engine per call.
//!
//! The engine is `Send + Sync`: the substrate cache sits behind an
//! [`RwLock`] with double-checked build-once locking, so N threads warming
//! the same Ψ pay exactly one decomposition build (the losers of the race
//! block on the write lock and then hit the cache), while disjoint warm
//! requests share the read lock and proceed concurrently. Share an engine
//! across threads with [`std::sync::Arc`] or scoped borrows; for serving
//! many named graphs from one process, and for batched execution, see
//! [`crate::service::DsdService`].
//!
//! The graph is **not** frozen: [`DsdEngine::apply`] takes a batch of
//! [`GraphUpdate`]s, advances a *graph epoch*, repairs the classical
//! k-core order in place (the incremental maintenance of
//! [`crate::dynamic`]) and conservatively invalidates the Ψ-substrates.
//! Every request runs against a consistent [`GraphSnapshot`] and records
//! its epoch in [`SolveStats::epoch`]; requests in flight during an update
//! finish on their pre-update snapshot.
//!
//! ```
//! use dsd_core::engine::{DsdEngine, Objective};
//! use dsd_core::Method;
//! use dsd_graph::Graph;
//! use dsd_motif::Pattern;
//!
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
//! let engine = DsdEngine::new(g);
//! let psi = Pattern::triangle();
//!
//! // First request builds the (k, Ψ)-core decomposition...
//! let cds = engine.request(&psi).method(Method::CoreExact).solve();
//! assert_eq!(cds.vertices, vec![0, 1, 2, 3]);
//!
//! // ...which every later request with the same Ψ reuses.
//! let top2 = engine.request(&psi).objective(Objective::TopK(2)).solve();
//! assert!(top2.stats.substrate.decomposition_cache_hit);
//! ```

use std::collections::{HashMap, HashSet};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use dsd_graph::{DeltaGraph, EdgeOverlay, Graph, GraphUpdate, VertexId};
use dsd_motif::Pattern;

use crate::approx::{core_app_from, inc_app_from};
use crate::clique_core::{decompose, CliqueCoreDecomposition};
use crate::core_exact::{core_exact_certified_with_lender, CoreExactConfig, RegionCertificates};
use crate::dynamic::{repair_delete, repair_insert};
use crate::exact::{exact_with_lender, ExactOpts};
use crate::flownet::{DensityNetwork, FlowBackend, Fnv, NetworkLender};
use crate::kcore::{k_core_decomposition, KCoreDecomposition};
use crate::oracle::{
    oracle_with_policy, DensityOracle, StoreStats, SubstrateRepair, DEFAULT_STORE_BUDGET,
};
use crate::parallelism::Parallelism;
use crate::peel::peel_app_from;
use crate::query::densest_with_query_lender;
use crate::size_constrained::{densest_at_least_k_certified, densest_at_most_k_from};
use crate::top_k::top_k_certified_with_lender;
use crate::types::DsdResult;
use crate::Method;

/// What a request asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Objective {
    /// The densest subgraph (the paper's CDS/PDS problem).
    Densest,
    /// Up to `k` vertex-disjoint densest subgraphs, densest first.
    TopK(usize),
    /// Densest subgraph with at least `k` vertices (DalkS).
    AtLeastK(usize),
    /// Densest subgraph with at most `k` vertices (DamkS, heuristic).
    AtMostK(usize),
    /// Densest edge-density subgraph containing every listed vertex
    /// (Section 6.3's query variant; Ψ is ignored — the variant is
    /// defined for edge density).
    WithQuery(Vec<VertexId>),
}

/// How a request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A non-empty subgraph was found.
    Found,
    /// The request was valid but the graph has no Ψ instance (density 0).
    Empty,
    /// The request itself was unsatisfiable (out-of-range query vertices,
    /// `k = 0`, `k` above the vertex count, ...).
    Invalid,
}

/// The quality certificate attached to a [`Solution`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Guarantee {
    /// Certified optimal for the requested objective.
    Exact,
    /// Density within the given multiplicative factor of optimal
    /// (`1/|VΨ|` for the core approximations, `1/3` for DalkS on edges).
    Ratio(f64),
    /// Binary search stopped at the requested α tolerance: the density is
    /// within this additive gap of optimal.
    AdditiveGap(f64),
    /// No guarantee (DamkS, or a step budget cut the search short).
    Heuristic,
}

/// Which substrates a request reused vs built.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubstrateUse {
    /// The Ψ density oracle came out of the engine cache.
    pub oracle_cache_hit: bool,
    /// The (k, Ψ)-core decomposition came out of the engine cache.
    pub decomposition_cache_hit: bool,
    /// The classical k-core order came out of the engine cache (`false`
    /// also when the method never needed it).
    pub kcore_cache_hit: bool,
}

/// Always-populated instrumentation carried by every [`Solution`].
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// Total wall time of the request.
    pub total_nanos: u128,
    /// Wall time this request spent building the (k, Ψ)-core
    /// decomposition (0 on a cache hit).
    pub decomposition_nanos: u128,
    /// Min-cut probes performed. Populated for every α-search-backed
    /// path — `Densest` via Exact/CoreExact, top-k, the query variant,
    /// and the size-constrained exact attempts; 0 for the probe-free
    /// peel/core methods.
    pub flow_iterations: usize,
    /// Flow-network node count at each probe (the Figure-9 series).
    pub network_nodes: Vec<usize>,
    /// Probes served warm by parametric resolve (flow-state reuse across
    /// the α-search) instead of a from-scratch max-flow.
    pub flow_resolve_hits: usize,
    /// Total augmenting work (edge scans) inside the flow solvers.
    pub flow_augment_work: u64,
    /// Located-core components skipped via scatter-phase region
    /// certificates (the sharded merge path; 0 for single-engine solves).
    pub pruned_components: usize,
    /// kmax of the (k, Ψ)-core decomposition, when one was consulted.
    pub kmax: Option<u64>,
    /// Substrate cache accounting.
    pub substrate: SubstrateUse,
    /// Instance-store accounting for the request's Ψ-oracle: rows, bytes,
    /// build time, and whether materialization fell back to streaming.
    /// `None` when the request never consulted a store-capable oracle
    /// (stars, diamonds, edges, the query variant).
    pub store: Option<StoreStats>,
    /// Graph epoch this request was answered against: 0 for a graph that
    /// has never been updated, bumped by every effective
    /// [`DsdEngine::apply`] batch. Requests in flight during an update
    /// keep their pre-update snapshot (and report its epoch here).
    pub epoch: u64,
}

/// The one result shape every objective/method path returns.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Sorted member vertices of the (best) reported subgraph.
    pub vertices: Vec<VertexId>,
    /// Ψ-density of the (best) reported subgraph.
    pub density: f64,
    /// Every reported subgraph: one entry for scalar objectives, up to `k`
    /// for [`Objective::TopK`], empty when nothing was found.
    pub subgraphs: Vec<DsdResult>,
    /// The method that actually ran (never [`Method::Auto`]).
    pub method: Method,
    /// The objective the request asked for.
    pub objective: Objective,
    /// How the request ended.
    pub outcome: Outcome,
    /// The quality certificate for `density`.
    pub guarantee: Guarantee,
    /// Instrumentation (always populated).
    pub stats: SolveStats,
}

impl Solution {
    /// The best subgraph as the legacy [`DsdResult`] shape.
    pub fn to_result(&self) -> DsdResult {
        DsdResult {
            vertices: self.vertices.clone(),
            density: self.density,
        }
    }

    /// Number of member vertices of the best subgraph.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether no subgraph was found.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Cumulative substrate-cache counters for one engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCacheStats {
    /// Ψ-oracle cache hits / builds.
    pub oracle_hits: usize,
    /// Ψ-oracle cold builds.
    pub oracle_builds: usize,
    /// (k, Ψ)-core decomposition cache hits.
    pub decomposition_hits: usize,
    /// (k, Ψ)-core decomposition cold builds.
    pub decomposition_builds: usize,
    /// Classical k-core cache hits.
    pub kcore_hits: usize,
    /// Classical k-core cold builds.
    pub kcore_builds: usize,
    /// Flow networks served warm from the network cache (the α-search
    /// skipped construction entirely and only paid the parametric
    /// resolve).
    pub network_hits: usize,
    /// Flow-network cache misses: the solve built (or store-sliced) a
    /// fresh network. Every miss on a cacheable path later `put`s the
    /// network back, so misses bound the cache's entry churn.
    pub network_misses: usize,
}

/// Cache key for a pattern: vertex count + the canonical edge list under
/// vertex relabeling ([`Pattern::canonical_edges`]), so isomorphic
/// patterns with different labelings share one cached substrate. This is
/// also the unit the serving layer's substrate governor ledgers: one
/// `(engine, PatternKey)` pair names one evictable cache entry.
pub type PatternKey = (usize, Vec<(u8, u8)>);

/// The canonical [`PatternKey`] for Ψ.
pub fn pattern_key(psi: &Pattern) -> PatternKey {
    (psi.vertex_count(), psi.canonical_edges())
}

/// Batches with up to this many net edge changes ride the multi-edge
/// delta-view fast path in [`DsdEngine::apply`] (when every cached oracle
/// supports per-edge repair): the post-batch CSR merge is deferred to the
/// next snapshot and Ψ-stores are repaired edge by edge against prefix
/// overlay views. Past it, per-edge repair loses to one materialization
/// plus the batched delta-enumeration repair.
pub const MULTI_EDGE_DELTA_MAX: usize = 8;

/// Process-unique engine ids, so a cross-engine ledger (the serve-layer
/// governor) can key entries without holding engine references.
static ENGINE_IDS: AtomicU64 = AtomicU64::new(1);

/// Receiver for engine substrate-cache events, implemented by the serving
/// layer's byte governor ([`crate::serve::SubstrateGovernor`]).
///
/// Call discipline (what keeps this deadlock-free): the engine invokes
/// these callbacks only *after* releasing its own state/cache locks, while
/// an implementation is allowed to call back into
/// [`DsdEngine::evict_substrate`] (which takes the cache write lock) from
/// inside a callback. The reverse order — engine lock held while entering
/// the observer — never happens.
pub trait CacheObserver: Send + Sync {
    /// A request touched the substrate entry `(engine, key)` at `epoch`;
    /// at notification time its cache-resident footprint was `bytes` (0
    /// when the epoch moved on before accounting — the entry is already
    /// gone). The value is advisory: it can go stale between the engine's
    /// read and the observer's bookkeeping, so an implementation keeping
    /// an exact ledger should re-read the footprint itself inside its own
    /// critical section. `hit` reports whether the request was served
    /// from cache.
    fn on_substrate_used(&self, engine: u64, key: &PatternKey, epoch: u64, bytes: u64, hit: bool);

    /// The engine released `bytes` of cache-resident substrates wholesale:
    /// an [`DsdEngine::apply`] epoch bump, or the engine dropping. Every
    /// ledger entry for this engine is now stale.
    fn on_engine_release(&self, engine: u64, bytes: u64);

    /// An [`DsdEngine::apply`] batch carried the substrate entry
    /// `(engine, key)` across an epoch bump by in-place repair: the entry
    /// now lives at `epoch` (the *new* epoch) with a possibly changed
    /// footprint, advisorily `bytes` at notification time (0 when the
    /// entry was dropped rather than repaired — e.g. its decomposition
    /// half, which always drops). A ledger-keeping observer should
    /// *resize* its entry in place — not drop it wholesale — re-reading
    /// the authoritative footprint inside its own critical section, as
    /// with [`Self::on_substrate_used`]. Default: no-op.
    fn on_substrate_repaired(&self, engine: u64, key: &PatternKey, epoch: u64, bytes: u64) {
        let _ = (engine, key, epoch, bytes);
    }
}

/// `(substrate, cache_hit)` pair.
type Cached<T> = (T, bool);

/// Result of a decomposition lookup: the oracle, the decomposition (each
/// with its cache-hit flag), and the build time this call paid (0 on hit).
type DecompositionLookup = (
    Cached<Arc<dyn DensityOracle>>,
    Cached<Arc<CliqueCoreDecomposition>>,
    u128,
);

#[derive(Default)]
struct SubstrateCache {
    /// Graph epoch the cached substrates belong to. Lookups and inserts
    /// from a request working on a different snapshot are skipped, so a
    /// concurrent [`DsdEngine::apply`] can never mix substrates across
    /// graph versions.
    epoch: u64,
    oracles: HashMap<PatternKey, Arc<dyn DensityOracle>>,
    decompositions: HashMap<PatternKey, Arc<CliqueCoreDecomposition>>,
    kcore: Option<Arc<KCoreDecomposition>>,
}

/// Epoch-keyed cache of solved [`DensityNetwork`]s — the third substrate
/// tier, below the oracle and decomposition: repeat exact/top-k/query
/// requests on an unchanged graph borrow a warm network (flow state and
/// all) and pay only the parametric resolve, never re-constructing from
/// instances. Entries are keyed by `(canonical Ψ, member/pinned-set
/// fingerprint)` so the full-graph network, each located-core component,
/// and each Q-anchored query network get their own slot. Take/put
/// semantics (an entry is *removed* while lent) keep concurrent requests
/// on the same key safe: the loser of the race simply builds fresh and
/// the last `put` back wins the slot.
#[derive(Default)]
struct NetworkCache {
    /// Graph epoch the cached networks were solved against; mismatched
    /// takes and puts are skipped, exactly like [`SubstrateCache::epoch`].
    epoch: u64,
    /// Lent-out-able networks plus their byte footprint at insert time
    /// (recorded once so the eviction ledger stays stable while the
    /// network sits untouched in the cache).
    entries: HashMap<(PatternKey, u64), (DensityNetwork, usize)>,
}

impl NetworkCache {
    fn bytes(&self) -> u64 {
        self.entries.values().map(|(_, b)| *b as u64).sum()
    }
}

/// Stable fingerprint of a network's member (and pinned-query) vertex
/// sets — the second half of a [`NetworkCache`] key. Order-insensitive:
/// callers pass sets, and e.g. a query's pin list arrives in user order.
fn member_fingerprint(members: &[VertexId], pinned: &[VertexId]) -> u64 {
    let mut h = Fnv::new();
    for set in [members, pinned] {
        let mut sorted: Vec<VertexId> = set.to_vec();
        sorted.sort_unstable();
        h.write_u64(sorted.len() as u64);
        for v in sorted {
            h.write_u64(v as u64);
        }
    }
    h.finish()
}

/// The engine-side [`NetworkLender`]: adapts one solve call's `(Ψ key,
/// snapshot epoch)` context onto the engine's [`NetworkCache`]. Lives on
/// the stack of the solve arm and is handed down the α-search entry
/// points by reference.
struct EngineLender<'a, 'g> {
    engine: &'a DsdEngine<'g>,
    key: PatternKey,
    epoch: u64,
}

impl NetworkLender for EngineLender<'_, '_> {
    fn take(&self, members: &[VertexId], pinned: &[VertexId]) -> Option<DensityNetwork> {
        let fp = member_fingerprint(members, pinned);
        let entry = {
            let mut cache = self.engine.networks.lock().unwrap();
            if cache.epoch == self.epoch {
                cache.entries.remove(&(self.key.clone(), fp))
            } else {
                None
            }
        };
        match entry {
            Some((mut net, _)) => {
                // Zero the probe ledger so this request's SolveStats
                // report only its own resolves, not the whole history of
                // the cached network.
                net.reset_probe_stats();
                self.engine.count(|c| c.network_hits += 1);
                Some(net)
            }
            None => {
                self.engine.count(|c| c.network_misses += 1);
                None
            }
        }
    }

    fn put(&self, members: &[VertexId], pinned: &[VertexId], net: DensityNetwork) {
        let fp = member_fingerprint(members, pinned);
        let bytes = net.bytes();
        let mut cache = self.engine.networks.lock().unwrap();
        if cache.epoch == self.epoch {
            cache.entries.insert((self.key.clone(), fp), (net, bytes));
        }
        // A stale put (the graph moved on mid-solve) just drops the
        // network — it was solved against a snapshot nobody will ask
        // about again.
    }
}

/// The engine's graph storage: either a borrowed zero-copy CSR or an
/// owned, shareable one.
enum GraphSlot<'g> {
    Borrowed(&'g Graph),
    Owned(Arc<Graph>),
}

impl GraphSlot<'_> {
    fn graph(&self) -> &Graph {
        match self {
            GraphSlot::Borrowed(g) => g,
            GraphSlot::Owned(g) => g,
        }
    }
}

impl<'g> Clone for GraphSlot<'g> {
    fn clone(&self) -> Self {
        match self {
            GraphSlot::Borrowed(g) => GraphSlot::Borrowed(g),
            GraphSlot::Owned(g) => GraphSlot::Owned(Arc::clone(g)),
        }
    }
}

/// Mutable graph state behind the engine's state lock: the last
/// materialized CSR, the overlay of updates applied since then, and the
/// version counter.
struct GraphState<'g> {
    slot: GraphSlot<'g>,
    /// Updates applied since `slot` was materialized. Non-empty only
    /// between an [`DsdEngine::apply`] and the next snapshot request —
    /// queries always run on a fully materialized CSR.
    pending: EdgeOverlay,
    epoch: u64,
}

/// A consistent, immutable view of the engine's graph at one epoch —
/// what every request solves against. Dereferences to [`Graph`].
///
/// Snapshots taken before an [`DsdEngine::apply`] remain valid (and keep
/// their epoch) while the engine moves on; they share the underlying CSR
/// by reference count, so holding one is cheap.
pub struct GraphSnapshot<'g> {
    slot: GraphSlot<'g>,
    epoch: u64,
}

impl GraphSnapshot<'_> {
    /// The graph epoch this snapshot belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Deref for GraphSnapshot<'_> {
    type Target = Graph;

    fn deref(&self) -> &Graph {
        self.slot.graph()
    }
}

/// What one [`DsdEngine::apply`] batch did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Graph epoch after the batch (unchanged when the whole batch was
    /// no-ops).
    pub epoch: u64,
    /// Edges actually inserted.
    pub inserted: usize,
    /// Edges actually deleted.
    pub deleted: usize,
    /// No-op updates: duplicate inserts, deletes of absent edges,
    /// self-loops, out-of-range endpoints.
    pub ignored: usize,
    /// Whether the cached classical k-core order was repaired in place
    /// (`false` when it was absent, or dropped for a batch too large for
    /// per-edge repair to win).
    pub kcore_patched: bool,
    /// Ψ-substrates dropped (oracles + decompositions): decompositions
    /// always drop on an effective batch (peel order has no cheap
    /// repair), oracles drop only when in-place repair was refused.
    pub substrates_dropped: usize,
    /// Ψ-oracles whose instance store was repaired in place — the entry
    /// survives the epoch bump, answer-identical to a cold rebuild.
    pub substrates_repaired: usize,
    /// Ψ-oracles dropped for lazy rebuild because no sound cheap repair
    /// existed (prior streaming fallback, byte/capacity guard, batch over
    /// the repair threshold). Subset of [`ApplyStats::substrates_dropped`].
    pub substrates_rebuilt: usize,
    /// Store rows tombstoned across every in-place repair of this batch.
    pub rows_tombstoned: usize,
    /// Whether the batch stayed in the edge overlay: the single-update
    /// fast path repaired the Ψ-stores against the overlay view and
    /// deferred the O(n + m) CSR merge to the next graph snapshot.
    pub csr_deferred: bool,
    /// Resident bytes released by the dropped Ψ-substrates (instance
    /// stores + decomposition arrays) — stale stores are never served
    /// across an epoch, so this is exactly the rebuild debt the batch
    /// created. Repaired stores are not counted: they stay resident.
    pub bytes_freed: u64,
    /// Wall time of the batch.
    pub total_nanos: u128,
}

/// Knobs governing in-place Ψ-substrate repair in [`DsdEngine::apply`]
/// (install with [`DsdEngine::with_repair_policy`]).
///
/// PR 8 hard-coded a 512-edge repair ceiling and a 1/4 dead-row compaction
/// fraction; this costs them instead. The ceiling compares a **weighted**
/// batch cost (inserts delta-enumerate new instances; deletes are pure
/// incidence walks, so they weigh less) against a threshold that scales
/// with the measured resident store bytes — the sharded rebuild a repair
/// avoids grows with the store, so bigger stores tolerate bigger batches.
/// Answers are identical for every setting; these trade repair latency
/// against rebuild debt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairPolicy {
    /// Base ceiling on the weighted net batch cost (default 512, PR 8's
    /// constant).
    pub max_batch: usize,
    /// Weight of one inserted edge relative to one deleted edge in the
    /// batch cost (default 2).
    pub insert_weight: usize,
    /// Dead-row compaction fraction `(num, den)`: a repaired store
    /// compacts once tombstoned rows exceed `num / den` of all rows
    /// (default `(1, 4)`, the store's built-in constant).
    pub compact_dead: (usize, usize),
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy {
            max_batch: 512,
            insert_weight: 2,
            compact_dead: (1, 4),
        }
    }
}

impl RepairPolicy {
    /// Weighted cost of a net batch of `inserted` + `deleted` edges.
    pub fn batch_cost(&self, inserted: usize, deleted: usize) -> usize {
        inserted
            .saturating_mul(self.insert_weight)
            .saturating_add(deleted)
    }

    /// The effective repair ceiling given `resident` store bytes: one
    /// extra [`Self::max_batch`] per 32 MiB resident, capped at 16x.
    pub fn scaled_max_batch(&self, resident: u64) -> usize {
        let steps = (resident / (32 << 20)).min(15) as usize;
        self.max_batch.saturating_mul(steps + 1)
    }
}

/// A long-lived query engine owning one graph plus its memoized substrates.
///
/// Construction is free — substrates are built lazily on first use and
/// reused by every later request (see the module docs for an example).
/// The engine is `Send + Sync`; wrap it in an [`Arc`] (or hand out scoped
/// borrows) to serve requests from many threads over one substrate cache.
/// The lifetime parameter supports zero-copy engines over borrowed graphs
/// ([`DsdEngine::over`]); owning engines are `DsdEngine<'static>`.
pub struct DsdEngine<'g> {
    id: u64,
    state: RwLock<GraphState<'g>>,
    parallelism: Parallelism,
    substrate_budget: Option<u64>,
    repair_policy: RepairPolicy,
    cache: RwLock<SubstrateCache>,
    /// Warm flow networks (take/put, epoch-keyed). Lock order: always
    /// after `cache` when both are held — `apply`, `key_bytes` and
    /// `evict_substrate` follow it; the lender takes only this lock.
    networks: Mutex<NetworkCache>,
    counters: Mutex<EngineCacheStats>,
    observer: RwLock<Option<Arc<dyn CacheObserver>>>,
}

impl DsdEngine<'static> {
    /// An engine that owns its graph — the shape to use for serving.
    pub fn new(graph: Graph) -> Self {
        Self::with_slot(GraphSlot::Owned(Arc::new(graph)))
    }
}

impl<'g> DsdEngine<'g> {
    /// A zero-copy engine over a borrowed graph — what the free-function
    /// shims use. Updates still work: the first effective
    /// [`DsdEngine::apply`] copies on write into an owned graph.
    pub fn over(graph: &'g Graph) -> Self {
        Self::with_slot(GraphSlot::Borrowed(graph))
    }

    fn with_slot(slot: GraphSlot<'g>) -> Self {
        DsdEngine {
            id: ENGINE_IDS.fetch_add(1, Ordering::Relaxed),
            state: RwLock::new(GraphState {
                slot,
                pending: EdgeOverlay::default(),
                epoch: 0,
            }),
            parallelism: Parallelism::serial(),
            substrate_budget: Some(DEFAULT_STORE_BUDGET),
            repair_policy: RepairPolicy::default(),
            cache: RwLock::new(SubstrateCache::default()),
            networks: Mutex::new(NetworkCache::default()),
            counters: Mutex::new(EngineCacheStats::default()),
            observer: RwLock::new(None),
        }
    }

    /// This engine's process-unique id — the stable half of the serving
    /// layer's `(engine, Ψ)` ledger key.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Installs (or clears) the substrate-cache observer. At most one is
    /// active; the serving layer's governor installs itself here when the
    /// engine joins a governed catalog.
    pub fn set_cache_observer(&self, observer: Option<Arc<dyn CacheObserver>>) {
        *self.observer.write().unwrap() = observer;
    }

    fn notify(&self, f: impl FnOnce(&dyn CacheObserver)) {
        let guard = self.observer.read().unwrap();
        if let Some(obs) = guard.as_deref() {
            f(obs);
        }
    }

    /// Drops the cached Ψ-substrates (oracle + decomposition) for one
    /// canonical key, returning the cache-resident bytes released. The
    /// eviction hook of the serve-layer governor: in-flight requests that
    /// already cloned the `Arc`s finish unaffected — eviction only severs
    /// the cache's reference, so the bytes are reclaimed once the last
    /// snapshot-holder drops. Does *not* notify the observer (the governor
    /// is the caller and updates its own ledger).
    pub fn evict_substrate(&self, key: &PatternKey) -> u64 {
        let mut cache = self.cache.write().unwrap();
        let mut freed = 0u64;
        if let Some(oracle) = cache.oracles.remove(key) {
            freed += oracle.resident_bytes();
        }
        if let Some(dec) = cache.decompositions.remove(key) {
            freed += dec.bytes() as u64;
        }
        // Cached flow networks ride the same eviction unit: they are
        // derived from this key's substrates and cheaper to rebuild than
        // the store, so they never outlive it in the ledger.
        let mut networks = self.networks.lock().unwrap();
        networks.entries.retain(|(k, _), (_, bytes)| {
            if k == key {
                freed += *bytes as u64;
                false
            } else {
                true
            }
        });
        freed
    }

    /// Cache-resident bytes of the entry for `key`, observed at `epoch`
    /// (0 when the cache has moved to a different epoch or holds nothing
    /// for the key). The governor re-reads this under its own lock when
    /// ledgering, so a record is always fresh relative to its own
    /// evictions (an engine-side pre-read could go stale in between).
    pub(crate) fn key_bytes(&self, key: &PatternKey, epoch: u64) -> u64 {
        let cache = self.cache.read().unwrap();
        if cache.epoch != epoch {
            return 0;
        }
        let store = cache.oracles.get(key).map_or(0, |o| o.resident_bytes());
        let dec = cache
            .decompositions
            .get(key)
            .map_or(0, |d| d.bytes() as u64);
        let networks = self.networks.lock().unwrap();
        let nets: u64 = if networks.epoch == epoch {
            networks
                .entries
                .iter()
                .filter(|((k, _), _)| k == key)
                .map(|(_, (_, bytes))| *bytes as u64)
                .sum()
        } else {
            0
        };
        store + dec + nets
    }

    /// Sets the worker count used for parallelizable substrate passes
    /// (the sharded instance-store build and the h-clique bulk degree
    /// pass). Answers are identical for every setting; this is a
    /// throughput knob only.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The engine's worker-count configuration.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Sets the instance-store byte budget: Ψ-oracles whose store would
    /// exceed it answer from the streaming fallbacks instead (`None` =
    /// unlimited, `Some(0)` = never materialize). Answers are identical
    /// for every setting; this trades memory for peel speed. Default:
    /// [`DEFAULT_STORE_BUDGET`].
    pub fn with_substrate_budget(mut self, budget: Option<u64>) -> Self {
        self.substrate_budget = budget;
        self
    }

    /// The engine's instance-store byte budget.
    pub fn substrate_budget(&self) -> Option<u64> {
        self.substrate_budget
    }

    /// Sets the in-place repair knobs (batch ceiling, insert weight,
    /// compaction fraction). Answers are identical for every setting.
    /// Default: [`RepairPolicy::default`].
    pub fn with_repair_policy(mut self, policy: RepairPolicy) -> Self {
        assert!(
            policy.compact_dead.1 > 0,
            "compaction fraction needs a nonzero denominator"
        );
        self.repair_policy = policy;
        self
    }

    /// The engine's in-place repair knobs.
    pub fn repair_policy(&self) -> RepairPolicy {
        self.repair_policy
    }

    /// Resident bytes currently held by the substrate cache: instance
    /// stores, decomposition arrays, plus cached flow networks, at the
    /// engine's current epoch.
    pub fn substrate_bytes(&self) -> u64 {
        let cache = self.cache.read().unwrap();
        cache_bytes(&cache) + self.networks.lock().unwrap().bytes()
    }

    /// Resident bytes of the cached flow networks alone (a subset of
    /// [`Self::substrate_bytes`]) — the CLI's network-cache report.
    pub fn network_bytes(&self) -> u64 {
        self.networks.lock().unwrap().bytes()
    }

    /// A consistent snapshot of the engine's graph at its current epoch.
    ///
    /// When updates are pending (applied but not yet materialized), this
    /// is the point where they get merged into a fresh CSR — the lazy
    /// half of the rebuild-or-patch policy: a stream of updates with no
    /// interleaved reads pays one materialization, not one per batch.
    pub fn graph(&self) -> GraphSnapshot<'g> {
        {
            let state = self.state.read().unwrap();
            if state.pending.is_empty() {
                return GraphSnapshot {
                    slot: state.slot.clone(),
                    epoch: state.epoch,
                };
            }
        }
        let mut state = self.state.write().unwrap();
        if !state.pending.is_empty() {
            let merged = DeltaGraph::new(state.slot.graph(), &state.pending).materialize();
            state.slot = GraphSlot::Owned(Arc::new(merged));
            state.pending = EdgeOverlay::default();
        }
        GraphSnapshot {
            slot: state.slot.clone(),
            epoch: state.epoch,
        }
    }

    /// The engine's current graph epoch: 0 at construction, +1 per
    /// effective [`DsdEngine::apply`] batch.
    pub fn epoch(&self) -> u64 {
        self.state.read().unwrap().epoch
    }

    /// Cumulative cache accounting across all requests so far.
    pub fn cache_stats(&self) -> EngineCacheStats {
        *self.counters.lock().unwrap()
    }

    /// Applies a batch of edge updates, advancing the graph epoch and
    /// reconciling every cached substrate:
    ///
    /// * the **classical k-core order** is repaired in place, edge by
    ///   edge, with the subcore traversal of [`crate::dynamic`] — unless
    ///   the batch is large enough that a from-scratch re-peel is cheaper,
    ///   in which case it is dropped and lazily rebuilt (rebuild-or-patch);
    /// * **Ψ-oracles** are repaired in place through the instance store's
    ///   incidence CSR (rows killed by removed edges tombstoned, instances
    ///   created by inserted edges delta-enumerated and appended) —
    ///   answer-identical to a cold rebuild — falling back to drop-and-
    ///   rebuild when the batch is over the repair threshold, a prior
    ///   build fell back to streaming, or the repaired store would break
    ///   the byte budget;
    /// * **(k, Ψ)-core decompositions** are always dropped on an
    ///   effective batch: a peel order has no cheap repair, and a stale
    ///   one would silently change answers (it rebuilds lazily from the
    ///   repaired oracle);
    /// * the **CSR** is materialized eagerly only when oracles are being
    ///   batch-repaired (delta enumeration needs the post-batch
    ///   adjacency); otherwise updates accumulate in an overlay and merge
    ///   on the next snapshot, so an update-only stream pays one
    ///   materialization. Single-edge batches whose cached oracles all
    ///   support it repair against the overlay view itself
    ///   ([`ApplyStats::csr_deferred`]), so even a repairing single-edge
    ///   stream skips the per-batch merge. Small multi-edge batches (up
    ///   to [`MULTI_EDGE_DELTA_MAX`] net changes) extend the same fast
    ///   path by replaying the batch edge by edge against prefix overlay
    ///   views — deletes first, then inserts in order, each insert added
    ///   to the view *before* its repair so a clique spanning several
    ///   inserted edges is discovered exactly once, at its last edge.
    ///
    /// Updates are normalized to the batch's **net** effect first:
    /// opposing updates on the same edge cancel, so `inserted`/`deleted`
    /// count net changes, everything else lands in
    /// [`ApplyStats::ignored`], and a net-empty batch (e.g.
    /// `[+{u,v}, -{u,v}]`) keeps the epoch and every warm substrate.
    /// Requests already in flight keep their pre-update snapshot.
    pub fn apply(&self, updates: &[GraphUpdate]) -> ApplyStats {
        /// Batches beyond this many effective updates drop the k-core
        /// order instead of repairing per edge: each repair can touch a
        /// whole subcore, so at some batch size one bucket re-peel of the
        /// final graph is cheaper than the sum of traversals.
        const KCORE_PATCH_MAX_BATCH: usize = 4_096;

        let t0 = Instant::now();
        let mut state = self.state.write().unwrap();
        let mut cache = self.cache.write().unwrap();
        let GraphState {
            slot,
            pending,
            epoch,
        } = &mut *state;
        let base = slot.graph();
        let had_pending = !pending.is_empty();

        // Take the cached k-core out for patching; it goes back only if
        // the whole batch stays under the repair threshold.
        let mut kcore = cache.kcore.take();

        let mut stats = ApplyStats {
            epoch: *epoch,
            ..ApplyStats::default()
        };
        // Pre-batch overlay, kept aside so the multi-edge fast path can
        // replay the batch's net effect edge by edge from the state the
        // cached oracles actually describe (`base ⊕ pending_before`).
        let pending_before = pending.clone();
        // Net toggles of this batch: an edge key is present iff the batch
        // changed it an odd number of times. The overlay already
        // self-reduces (insert + delete cancel), so effective updates on
        // one key strictly alternate and a remove-or-insert suffices.
        let mut toggles: HashMap<(VertexId, VertexId), bool> = HashMap::new();
        let mut effective = 0usize;
        for update in updates {
            if !pending.apply(base, update) {
                continue;
            }
            effective += 1;
            let (u, v) = update.endpoints();
            let key = (u.min(v), u.max(v));
            let insert = matches!(update, GraphUpdate::Insert(..));
            if toggles.remove(&key).is_none() {
                toggles.insert(key, insert);
            }
            if effective > KCORE_PATCH_MAX_BATCH {
                // The threshold counts *effective* updates — no-ops cost
                // nothing, and replayed idempotent streams are mostly
                // no-ops. Past it, one re-peel beats the repair sum.
                kcore = None;
            }
            if let Some(kc) = &mut kcore {
                let view = DeltaGraph::new(base, pending);
                let kc = Arc::make_mut(kc);
                match update {
                    GraphUpdate::Insert(..) => repair_insert(&view, kc, u, v),
                    GraphUpdate::Delete(..) => repair_delete(&view, kc, u, v),
                }
            }
        }
        let mut inserted: Vec<(VertexId, VertexId)> = Vec::new();
        let mut removed: Vec<(VertexId, VertexId)> = Vec::new();
        for (&key, &ins) in &toggles {
            if ins {
                inserted.push(key);
            } else {
                removed.push(key);
            }
        }
        inserted.sort_unstable();
        removed.sort_unstable();
        stats.inserted = inserted.len();
        stats.deleted = removed.len();
        stats.ignored = updates.len() - stats.inserted - stats.deleted;

        if stats.inserted + stats.deleted == 0 {
            // Net no-op batch (pure no-ops, or opposing updates that
            // cancelled): the graph is unchanged, and so is the patched
            // k-core — each cancelling pair's repairs are exact inverses
            // through the same overlay states. Keep epoch and substrates.
            cache.kcore = kcore;
            stats.total_nanos = t0.elapsed().as_nanos();
            return stats;
        }

        *epoch += 1;
        stats.epoch = *epoch;
        cache.epoch = *epoch;
        stats.kcore_patched = kcore.is_some();
        cache.kcore = kcore;

        // Cached flow networks bind the exact member sets and arc
        // capacities of the old snapshot; any effective batch invalidates
        // them wholesale (unlike stores there is no in-place repair — a
        // changed graph changes the α-feasibility frontier itself). Keys
        // that held networks must be re-reported on the repair path so a
        // governor's ledger sheds their network bytes.
        let network_keys: Vec<PatternKey> = {
            let mut networks = self.networks.lock().unwrap();
            stats.bytes_freed += networks.bytes();
            let keys = networks.entries.keys().map(|(k, _)| k.clone()).collect();
            networks.entries.clear();
            networks.epoch = *epoch;
            keys
        };

        // Every key that may sit in an observer's ledger at the old epoch;
        // the repair path re-reports each one at the new epoch.
        let mut ledger_keys: Vec<PatternKey> = Vec::new();
        // Single net edge + every cached oracle repairable from the
        // overlay view: keep the update in `pending` (skipping the
        // O(n + m) CSR materialization single-edge streams otherwise pay
        // per batch) and repair against the [`DeltaGraph`]. Sound even
        // with pending updates at entry: the only way `pending` survives
        // with oracles cached is a previous fast-path batch, whose
        // repairs kept every oracle consistent with `base ⊕ pending`.
        let single_edge = stats.inserted + stats.deleted == 1
            && !cache.oracles.is_empty()
            && cache.oracles.values().all(|o| o.single_edge_repairable());
        // Small multi-edge batches reuse the same per-edge repair and the
        // same soundness argument: the batch is replayed as a sequence of
        // effective single-edge changes from `base ⊕ pending_before`, so
        // every oracle stays consistent with `base ⊕ pending` without a
        // CSR materialization.
        let multi_edge = (2..=MULTI_EDGE_DELTA_MAX).contains(&(stats.inserted + stats.deleted))
            && !cache.oracles.is_empty()
            && cache.oracles.values().all(|o| o.single_edge_repairable());
        // Batch-repair soundness needs oracles keyed to the bare `base`
        // CSR — guaranteed when nothing was pending (oracles are built
        // from materialized snapshots only). Fall back to the wholesale
        // drop if that invariant ever stops holding rather than leaning
        // on it. The ceiling is costed, not fixed: weighted batch shape
        // against a threshold scaled by the resident store bytes.
        let policy = self.repair_policy;
        let resident: u64 = cache.oracles.values().map(|o| o.resident_bytes()).sum();
        let wholesale = cache.oracles.is_empty()
            || (had_pending && !single_edge && !multi_edge)
            || policy.batch_cost(stats.inserted, stats.deleted) > policy.scaled_max_batch(resident);
        if wholesale {
            stats.substrates_dropped = cache.oracles.len() + cache.decompositions.len();
            stats.substrates_rebuilt = cache.oracles.len();
            stats.bytes_freed += cache_bytes(&cache);
            cache.oracles.clear();
            cache.decompositions.clear();
        } else {
            ledger_keys = cache
                .oracles
                .keys()
                .chain(cache.decompositions.keys())
                .cloned()
                .chain(network_keys)
                .collect();
            ledger_keys.sort_unstable();
            ledger_keys.dedup();

            // Decompositions always drop: a peel order has no cheap
            // repair.
            stats.substrates_dropped = cache.decompositions.len();
            stats.bytes_freed += cache
                .decompositions
                .values()
                .map(|d| d.bytes() as u64)
                .sum::<u64>();
            cache.decompositions.clear();

            if single_edge {
                // Fast path: adjacency reads go through the overlay view;
                // the CSR merge is deferred to the next snapshot.
                let insert = !inserted.is_empty();
                let (u, v) = if insert { inserted[0] } else { removed[0] };
                let view = DeltaGraph::new(base, pending);
                stats.csr_deferred = true;
                let keys: Vec<PatternKey> = cache.oracles.keys().cloned().collect();
                for key in keys {
                    let oracle = cache.oracles.get(&key).expect("key just listed");
                    match oracle.repair_for_edge(view, insert, u, v) {
                        SubstrateRepair::Keep => {}
                        SubstrateRepair::Repaired(repaired, r) => {
                            stats.substrates_repaired += 1;
                            stats.rows_tombstoned += r.rows_tombstoned;
                            cache.oracles.insert(key, repaired);
                        }
                        SubstrateRepair::Rebuild => {
                            let old = cache.oracles.remove(&key).expect("key just listed");
                            stats.bytes_freed += old.resident_bytes();
                            stats.substrates_dropped += 1;
                            stats.substrates_rebuilt += 1;
                        }
                    }
                }
                stats.total_nanos = t0.elapsed().as_nanos();
                drop(cache);
                drop(state);
                for key in &ledger_keys {
                    let bytes = self.key_bytes(key, stats.epoch);
                    self.notify(|obs| obs.on_substrate_repaired(self.id, key, stats.epoch, bytes));
                }
                return stats;
            }

            if multi_edge {
                // Multi-edge fast path: replay the net batch as effective
                // single-edge repairs against prefix views of a scratch
                // overlay, deferring the CSR merge exactly like the
                // single-edge path. Deletes go first — a delete repair is
                // a pure incidence walk, so one post-deletes view serves
                // them all, and no surviving or fresh row can contain a
                // deleted edge. Each insert is applied to the scratch
                // *before* its view is built, so a new clique spanning
                // several inserted edges is complete only at its last
                // inserted edge's view and is appended exactly once. The
                // final per-key call always sees the full post-batch view,
                // keying the surviving store to the right fingerprint.
                stats.csr_deferred = true;
                let mut scratch = pending_before;
                // Keys that survived with at least one Repaired verdict;
                // a later Rebuild retracts membership, so each key counts
                // at most once in `substrates_repaired`.
                let mut repaired_keys: HashSet<PatternKey> = HashSet::new();
                if !removed.is_empty() {
                    for &(u, v) in &removed {
                        let effective = scratch.apply(base, &GraphUpdate::Delete(u, v));
                        debug_assert!(effective, "net deletes toggle the pre-batch overlay");
                    }
                    let view = DeltaGraph::new(base, &scratch);
                    for &(u, v) in &removed {
                        let keys: Vec<PatternKey> = cache.oracles.keys().cloned().collect();
                        for key in keys {
                            let oracle = cache.oracles.get(&key).expect("key just listed");
                            match oracle.repair_for_edge(view, false, u, v) {
                                SubstrateRepair::Keep => {}
                                SubstrateRepair::Repaired(repaired, r) => {
                                    stats.rows_tombstoned += r.rows_tombstoned;
                                    repaired_keys.insert(key.clone());
                                    cache.oracles.insert(key, repaired);
                                }
                                SubstrateRepair::Rebuild => {
                                    let old = cache.oracles.remove(&key).expect("key just listed");
                                    repaired_keys.remove(&key);
                                    stats.bytes_freed += old.resident_bytes();
                                    stats.substrates_dropped += 1;
                                    stats.substrates_rebuilt += 1;
                                }
                            }
                        }
                    }
                }
                for &(u, v) in &inserted {
                    let effective = scratch.apply(base, &GraphUpdate::Insert(u, v));
                    debug_assert!(effective, "net inserts toggle the pre-batch overlay");
                    let view = DeltaGraph::new(base, &scratch);
                    let keys: Vec<PatternKey> = cache.oracles.keys().cloned().collect();
                    for key in keys {
                        let oracle = cache.oracles.get(&key).expect("key just listed");
                        match oracle.repair_for_edge(view, true, u, v) {
                            SubstrateRepair::Keep => {}
                            SubstrateRepair::Repaired(repaired, r) => {
                                stats.rows_tombstoned += r.rows_tombstoned;
                                repaired_keys.insert(key.clone());
                                cache.oracles.insert(key, repaired);
                            }
                            SubstrateRepair::Rebuild => {
                                let old = cache.oracles.remove(&key).expect("key just listed");
                                repaired_keys.remove(&key);
                                stats.bytes_freed += old.resident_bytes();
                                stats.substrates_dropped += 1;
                                stats.substrates_rebuilt += 1;
                            }
                        }
                    }
                }
                debug_assert_eq!(
                    DeltaGraph::new(base, &scratch).num_edges(),
                    DeltaGraph::new(base, pending).num_edges(),
                    "replayed scratch overlay must land on the post-batch graph"
                );
                stats.substrates_repaired += repaired_keys.len();
                stats.total_nanos = t0.elapsed().as_nanos();
                drop(cache);
                drop(state);
                for key in &ledger_keys {
                    let bytes = self.key_bytes(key, stats.epoch);
                    self.notify(|obs| obs.on_substrate_repaired(self.id, key, stats.epoch, bytes));
                }
                return stats;
            }

            // The general-pattern repair recounts touched rows in the
            // mid graph (base minus removals); cliques never read it, so
            // build it only when a non-clique key is cached and both edge
            // directions moved.
            let needs_mid = !inserted.is_empty()
                && !removed.is_empty()
                && cache
                    .oracles
                    .keys()
                    .any(|(k, edges)| edges.len() * 2 != k * (k - 1));
            let g_mid: Option<Graph> = if needs_mid {
                let mut deletions = EdgeOverlay::default();
                for &(u, v) in &removed {
                    deletions.apply(base, &GraphUpdate::Delete(u, v));
                }
                Some(DeltaGraph::new(base, &deletions).materialize())
            } else {
                None
            };
            // Materialize the post-batch CSR in place — delta enumeration
            // needs real adjacency, and the next snapshot would pay this
            // merge anyway.
            let g_new = Arc::new(DeltaGraph::new(base, pending).materialize());
            *slot = GraphSlot::Owned(Arc::clone(&g_new));
            *pending = EdgeOverlay::default();
            let g_mid: &Graph = g_mid.as_ref().unwrap_or(&g_new);

            let keys: Vec<PatternKey> = cache.oracles.keys().cloned().collect();
            for key in keys {
                let oracle = cache.oracles.get(&key).expect("key just listed");
                match oracle.repair_for_update(&g_new, g_mid, &inserted, &removed) {
                    SubstrateRepair::Keep => {}
                    SubstrateRepair::Repaired(repaired, r) => {
                        stats.substrates_repaired += 1;
                        stats.rows_tombstoned += r.rows_tombstoned;
                        cache.oracles.insert(key, repaired);
                    }
                    SubstrateRepair::Rebuild => {
                        let old = cache.oracles.remove(&key).expect("key just listed");
                        stats.bytes_freed += old.resident_bytes();
                        stats.substrates_dropped += 1;
                        stats.substrates_rebuilt += 1;
                    }
                }
            }
        }

        stats.total_nanos = t0.elapsed().as_nanos();
        // Release the state/cache locks before entering the observer (the
        // lock-order rule documented on `CacheObserver`).
        drop(cache);
        drop(state);
        if wholesale {
            if stats.bytes_freed > 0 || stats.substrates_dropped > 0 {
                self.notify(|obs| obs.on_engine_release(self.id, stats.bytes_freed));
            }
        } else {
            // Repair path: the ledger is *resized* per key at the new
            // epoch instead of dropped wholesale — entries for repaired
            // stores re-read their new footprint, entries for dropped
            // halves re-read 0 and fall out.
            for key in &ledger_keys {
                let bytes = self.key_bytes(key, stats.epoch);
                self.notify(|obs| obs.on_substrate_repaired(self.id, key, stats.epoch, bytes));
            }
        }
        stats
    }

    /// Starts building a request for pattern Ψ (defaults: Densest,
    /// `Method::Auto`, Dinic backend, exact tolerance, no step budget),
    /// bound to this engine — call `.solve()` on the result. To build a
    /// free-standing request (for [`crate::service::DsdService`] routing
    /// or batching), use [`DsdRequest::new`].
    pub fn request(&self, psi: &Pattern) -> BoundRequest<'_, 'g> {
        BoundRequest {
            engine: self,
            req: DsdRequest::new(psi),
        }
    }

    /// Pre-builds the Ψ substrates (oracle + decomposition), so later
    /// requests are served warm. Returns the decomposition build time in
    /// nanoseconds (0 when it was already cached — including when another
    /// thread won the build race and this call only waited for it).
    pub fn warm(&self, psi: &Pattern) -> u128 {
        let snap = self.graph();
        let (_, _, nanos) = self.decomposition(psi, &snap);
        nanos
    }

    /// The memoized classical k-core order of the current snapshot,
    /// building it if absent. After an [`Self::apply`] batch that patched
    /// the order, this returns the repaired decomposition without a
    /// rebuild — the serving-side view of incremental maintenance.
    pub fn kcore_order(&self) -> Arc<KCoreDecomposition> {
        let snap = self.graph();
        self.kcore(&snap).0
    }

    fn count(&self, bump: impl FnOnce(&mut EngineCacheStats)) {
        bump(&mut self.counters.lock().unwrap());
    }

    /// The memoized density oracle for Ψ. The bool reports a cache hit.
    ///
    /// Double-checked locking: the fast path shares a read lock; a miss
    /// upgrades to the write lock and re-checks, so racing threads build
    /// at most one oracle per Ψ. Cache traffic (hits and inserts) is
    /// epoch-guarded: a request racing an [`Self::apply`] keeps its own
    /// snapshot consistent by building privately instead of touching the
    /// newer epoch's cache.
    fn oracle(&self, psi: &Pattern, snap: &GraphSnapshot<'_>) -> Cached<Arc<dyn DensityOracle>> {
        self.oracle_keyed(psi, pattern_key(psi), snap)
    }

    /// [`Self::oracle`] with the canonical key already computed, so
    /// callers that need the key themselves (the decomposition lookup)
    /// don't pay the canonicalization twice.
    fn oracle_keyed(
        &self,
        psi: &Pattern,
        key: PatternKey,
        snap: &GraphSnapshot<'_>,
    ) -> Cached<Arc<dyn DensityOracle>> {
        {
            let cache = self.cache.read().unwrap();
            if cache.epoch == snap.epoch() {
                if let Some(oracle) = cache.oracles.get(&key) {
                    let oracle = Arc::clone(oracle);
                    drop(cache);
                    self.count(|c| c.oracle_hits += 1);
                    return (oracle, true);
                }
            }
        }
        let mut cache = self.cache.write().unwrap();
        if cache.epoch == snap.epoch() {
            if let Some(oracle) = cache.oracles.get(&key) {
                let oracle = Arc::clone(oracle);
                drop(cache);
                self.count(|c| c.oracle_hits += 1);
                return (oracle, true);
            }
        }
        let oracle: Arc<dyn DensityOracle> = Arc::from(oracle_with_policy(
            psi,
            self.parallelism,
            self.substrate_budget,
            Some(self.repair_policy.compact_dead),
        ));
        if cache.epoch == snap.epoch() {
            cache.oracles.insert(key, Arc::clone(&oracle));
        }
        drop(cache);
        self.count(|c| c.oracle_builds += 1);
        (oracle, false)
    }

    /// The memoized (k, Ψ)-core decomposition plus its oracle. The u128 is
    /// the decomposition build time paid by *this* call (0 on a hit).
    ///
    /// The cold build runs while holding the write lock. That is the
    /// build-once guarantee: concurrent warmers of the same Ψ block until
    /// the winner's decomposition lands, then read it as a hit — N threads
    /// pay one build. (Requests for *already-cached* substrates of other
    /// patterns also wait out the build; a serving workload warms its
    /// patterns up front, so the write lock is cold-start-only.)
    fn decomposition(&self, psi: &Pattern, snap: &GraphSnapshot<'_>) -> DecompositionLookup {
        let key = pattern_key(psi);
        let (oracle, oracle_hit) = self.oracle_keyed(psi, key.clone(), snap);
        {
            let cache = self.cache.read().unwrap();
            if cache.epoch == snap.epoch() {
                if let Some(dec) = cache.decompositions.get(&key) {
                    let dec = Arc::clone(dec);
                    drop(cache);
                    self.count(|c| c.decomposition_hits += 1);
                    return ((oracle, oracle_hit), (dec, true), 0);
                }
            }
        }
        let mut cache = self.cache.write().unwrap();
        if cache.epoch == snap.epoch() {
            if let Some(dec) = cache.decompositions.get(&key) {
                let dec = Arc::clone(dec);
                drop(cache);
                self.count(|c| c.decomposition_hits += 1);
                return ((oracle, oracle_hit), (dec, true), 0);
            }
        }
        let t = Instant::now();
        let dec = Arc::new(decompose(snap, oracle.as_ref()));
        let nanos = t.elapsed().as_nanos();
        if cache.epoch == snap.epoch() {
            cache.decompositions.insert(key, Arc::clone(&dec));
        }
        drop(cache);
        self.count(|c| c.decomposition_builds += 1);
        ((oracle, oracle_hit), (dec, false), nanos)
    }

    /// The memoized classical k-core order. The bool reports a cache hit.
    /// Same double-checked build-once discipline as [`Self::decomposition`].
    fn kcore(&self, snap: &GraphSnapshot<'_>) -> (Arc<KCoreDecomposition>, bool) {
        {
            let cache = self.cache.read().unwrap();
            if cache.epoch == snap.epoch() {
                if let Some(kc) = &cache.kcore {
                    let kc = Arc::clone(kc);
                    drop(cache);
                    self.count(|c| c.kcore_hits += 1);
                    return (kc, true);
                }
            }
        }
        let mut cache = self.cache.write().unwrap();
        if cache.epoch == snap.epoch() {
            if let Some(kc) = &cache.kcore {
                let kc = Arc::clone(kc);
                drop(cache);
                self.count(|c| c.kcore_hits += 1);
                return (kc, true);
            }
        }
        let kc = Arc::new(k_core_decomposition(snap));
        if cache.epoch == snap.epoch() {
            cache.kcore = Some(Arc::clone(&kc));
        }
        drop(cache);
        self.count(|c| c.kcore_builds += 1);
        (kc, false)
    }

    /// `Method::Auto`'s cost-based selector.
    ///
    /// Every candidate it can pick preserves the `1/|VΨ|` approximation
    /// guarantee (exact methods trivially, the core family by Lemma 8):
    ///
    /// * warm decomposition → `CoreExact` when the located core is small
    ///   enough for cheap flow probes, else `PeelApp` (which is free given
    ///   the decomposition);
    /// * cold + small graph → `CoreExact`;
    /// * cold + large graph → `CoreApp` (top-down, avoids the full
    ///   decomposition the exact path would have to pay).
    ///
    /// Note the warm/cold split makes Auto's choice depend on cache state:
    /// under concurrent execution, pin an explicit method when bit-for-bit
    /// reproducibility across runs matters (see `service::DsdService`).
    fn auto_method(&self, psi: &Pattern, snap: &GraphSnapshot<'_>) -> Method {
        /// Located-core size above which warm flow probes are judged too
        /// expensive for an auto-selected request.
        const WARM_FLOW_VERTEX_CAP: usize = 20_000;
        /// Cold-start work bound: edges × pattern size as a proxy for the
        /// enumeration + decomposition cost of the exact path.
        const COLD_EXACT_WORK_CAP: usize = 1_000_000;

        let key = pattern_key(psi);
        let cached: Option<Arc<CliqueCoreDecomposition>> = {
            let cache = self.cache.read().unwrap();
            if cache.epoch == snap.epoch() {
                cache.decompositions.get(&key).cloned()
            } else {
                None
            }
        };
        if let Some(dec) = cached {
            if dec.kmax == 0 {
                return Method::PeelApp;
            }
            // Same location rule CoreExact itself applies (Lemma 7 on the
            // Pruning1 lower bound), via the shared bounds helpers.
            let bounds = crate::bounds::density_bounds(&dec, psi.vertex_count(), true);
            let k_loc = bounds.locate_k.max(1);
            let located = dec.core_set(k_loc).len();
            if located <= WARM_FLOW_VERTEX_CAP {
                Method::CoreExact
            } else {
                Method::PeelApp
            }
        } else if snap.num_edges().saturating_mul(psi.vertex_count()) <= COLD_EXACT_WORK_CAP {
            Method::CoreExact
        } else {
            Method::CoreApp
        }
    }

    /// Runs a free-standing request against this engine. Any graph name
    /// the request carries ([`DsdRequest::on`]) is ignored here — routing
    /// by name is [`crate::service::DsdService`]'s job.
    pub fn solve(&self, req: &DsdRequest) -> Solution {
        self.solve_inner(req, None)
    }

    /// [`DsdEngine::solve`] with scatter-phase region certificates from a
    /// sharded solve (see [`RegionCertificates`]): the α-search-backed
    /// paths skip located-core components a certificate proves unable to
    /// beat the running lower bound. Answers are bit-identical to
    /// [`DsdEngine::solve`]; only the amount of flow work differs.
    /// Objectives that never consult certificates (AtMostK, WithQuery,
    /// non-CoreExact Densest methods) behave exactly like `solve`.
    pub fn solve_certified(&self, req: &DsdRequest, certs: &RegionCertificates) -> Solution {
        self.solve_inner(req, Some(certs))
    }

    fn solve_inner(&self, req: &DsdRequest, certs: Option<&RegionCertificates>) -> Solution {
        let t0 = Instant::now();
        let snap = self.graph();
        let objective = req.objective.clone();
        let mut solution = match &req.objective {
            Objective::Densest => self.solve_densest(req, &snap, certs),
            Objective::TopK(k) => self.solve_top_k(req, *k, &snap, certs),
            Objective::AtLeastK(k) => self.solve_at_least_k(req, *k, &snap, certs),
            Objective::AtMostK(k) => self.solve_at_most_k(req, *k, &snap),
            Objective::WithQuery(query) => self.solve_with_query(req, query.clone(), &snap),
        };
        solution.objective = objective;
        solution.stats.epoch = snap.epoch();
        solution.stats.total_nanos = t0.elapsed().as_nanos();
        // Ledger the touched substrate entry with the governor (if any).
        // The query variant runs on the classical k-core order (repaired
        // in place, never evicted) but caches its pinned flow network
        // under the canonical edge key, so it ledgers that entry.
        let (key, hit) = if matches!(req.objective, Objective::WithQuery(_)) {
            (
                pattern_key(&Pattern::edge()),
                solution.stats.substrate.kcore_cache_hit,
            )
        } else {
            (
                pattern_key(&req.psi),
                solution.stats.substrate.oracle_cache_hit,
            )
        };
        let bytes = self.key_bytes(&key, snap.epoch());
        self.notify(|obs| obs.on_substrate_used(self.id, &key, snap.epoch(), bytes, hit));
        solution
    }

    fn solve_densest(
        &self,
        req: &DsdRequest,
        snap: &GraphSnapshot<'_>,
        certs: Option<&RegionCertificates>,
    ) -> Solution {
        let g: &Graph = snap;
        let psi = &req.psi;
        let method = match req.method {
            Method::Auto => self.auto_method(psi, snap),
            m => m,
        };
        let mut stats = SolveStats::default();
        let ratio = 1.0 / psi.vertex_count() as f64;

        let (result, guarantee) = match method {
            Method::Exact => {
                let (oracle, oracle_hit) = self.oracle(psi, snap);
                stats.substrate.oracle_cache_hit = oracle_hit;
                let opts = ExactOpts {
                    backend: req.backend,
                    tolerance: req.tolerance,
                    step_budget: req.step_budget,
                };
                let lender = EngineLender {
                    engine: self,
                    key: pattern_key(psi),
                    epoch: snap.epoch(),
                };
                let (r, es) = exact_with_lender(g, psi, oracle.as_ref(), opts, Some(&lender));
                let guarantee = exact_guarantee(es.budget_exhausted, req.tolerance);
                record_flow(&mut stats, es);
                stats.store = oracle.store_stats();
                (r, guarantee)
            }
            Method::CoreExact => {
                let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) =
                    self.decomposition(psi, snap);
                stats.substrate.oracle_cache_hit = oracle_hit;
                stats.substrate.decomposition_cache_hit = dec_hit;
                stats.decomposition_nanos = dec_nanos;
                stats.kmax = Some(dec.kmax);
                let config = CoreExactConfig {
                    backend: req.backend,
                    tolerance: req.tolerance,
                    step_budget: req.step_budget,
                    ..CoreExactConfig::default()
                };
                let lender = EngineLender {
                    engine: self,
                    key: pattern_key(psi),
                    epoch: snap.epoch(),
                };
                let (r, ces) = core_exact_certified_with_lender(
                    g,
                    psi,
                    config,
                    oracle.as_ref(),
                    &dec,
                    certs,
                    Some(&lender),
                );
                let guarantee = exact_guarantee(ces.exact.budget_exhausted, req.tolerance);
                record_flow(&mut stats, ces.exact);
                stats.store = oracle.store_stats();
                (r, guarantee)
            }
            Method::PeelApp => {
                let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) =
                    self.decomposition(psi, snap);
                stats.substrate.oracle_cache_hit = oracle_hit;
                stats.substrate.decomposition_cache_hit = dec_hit;
                stats.decomposition_nanos = dec_nanos;
                stats.kmax = Some(dec.kmax);
                stats.store = oracle.store_stats();
                (peel_app_from(&dec), Guarantee::Ratio(ratio))
            }
            Method::IncApp => {
                let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) =
                    self.decomposition(psi, snap);
                stats.substrate.oracle_cache_hit = oracle_hit;
                stats.substrate.decomposition_cache_hit = dec_hit;
                stats.decomposition_nanos = dec_nanos;
                stats.kmax = Some(dec.kmax);
                let r = inc_app_from(g, oracle.as_ref(), &dec);
                stats.store = oracle.store_stats();
                (r.result, Guarantee::Ratio(ratio))
            }
            Method::CoreApp => {
                let (oracle, oracle_hit) = self.oracle(psi, snap);
                stats.substrate.oracle_cache_hit = oracle_hit;
                // γ bounds for cliques come from the classical k-core order.
                let kcore = if matches!(psi.kind(), dsd_motif::pattern::PatternKind::Clique(_)) {
                    let (kc, kc_hit) = self.kcore(snap);
                    stats.substrate.kcore_cache_hit = kc_hit;
                    Some(kc)
                } else {
                    None
                };
                let r = core_app_from(
                    g,
                    psi,
                    oracle.as_ref(),
                    crate::approx::CORE_APP_DEFAULT_SEED,
                    kcore.as_deref(),
                );
                stats.kmax = Some(r.kmax);
                stats.store = oracle.store_stats();
                (r.result, Guarantee::Ratio(ratio))
            }
            Method::Auto => unreachable!("Auto resolves before dispatch"),
        };

        let outcome = if result.is_empty() {
            Outcome::Empty
        } else {
            Outcome::Found
        };
        Solution {
            vertices: result.vertices.clone(),
            density: result.density,
            subgraphs: if result.is_empty() {
                Vec::new()
            } else {
                vec![result]
            },
            method,
            objective: Objective::Densest,
            outcome,
            guarantee,
            stats,
        }
    }

    fn solve_top_k(
        &self,
        req: &DsdRequest,
        k: usize,
        snap: &GraphSnapshot<'_>,
        certs: Option<&RegionCertificates>,
    ) -> Solution {
        let g: &Graph = snap;
        let psi = &req.psi;
        // Validate before paying for the decomposition.
        if k == 0 {
            return invalid(Method::CoreExact, Objective::TopK(k), SolveStats::default());
        }
        let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi, snap);
        let mut stats = SolveStats::default();
        stats.substrate.oracle_cache_hit = oracle_hit;
        stats.substrate.decomposition_cache_hit = dec_hit;
        stats.decomposition_nanos = dec_nanos;
        stats.kmax = Some(dec.kmax);
        let config = CoreExactConfig {
            backend: req.backend,
            tolerance: req.tolerance,
            step_budget: req.step_budget,
            ..CoreExactConfig::default()
        };
        let lender = EngineLender {
            engine: self,
            key: pattern_key(psi),
            epoch: snap.epoch(),
        };
        let scan = top_k_certified_with_lender(
            g,
            psi,
            k,
            config,
            oracle.as_ref(),
            &dec,
            certs,
            Some(&lender),
        );
        record_flow(&mut stats, scan.exact.clone());
        stats.store = oracle.store_stats();
        let (vertices, density) = scan
            .subgraphs
            .first()
            .map(|r| (r.vertices.clone(), r.density))
            .unwrap_or_default();
        let outcome = if scan.subgraphs.is_empty() {
            Outcome::Empty
        } else {
            Outcome::Found
        };
        Solution {
            vertices,
            density,
            subgraphs: scan.subgraphs,
            method: Method::CoreExact,
            objective: Objective::TopK(k),
            outcome,
            guarantee: exact_guarantee(scan.budget_exhausted, req.tolerance),
            stats,
        }
    }

    fn solve_at_least_k(
        &self,
        req: &DsdRequest,
        k: usize,
        snap: &GraphSnapshot<'_>,
        certs: Option<&RegionCertificates>,
    ) -> Solution {
        let g: &Graph = snap;
        let psi = &req.psi;
        // Validate before paying for the decomposition.
        if k == 0 || k > g.num_vertices() {
            return invalid(
                Method::PeelApp,
                Objective::AtLeastK(k),
                SolveStats::default(),
            );
        }
        let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi, snap);
        let mut stats = SolveStats::default();
        stats.substrate.oracle_cache_hit = oracle_hit;
        stats.substrate.decomposition_cache_hit = dec_hit;
        stats.decomposition_nanos = dec_nanos;
        stats.kmax = Some(dec.kmax);
        let config = CoreExactConfig {
            backend: req.backend,
            tolerance: req.tolerance,
            step_budget: req.step_budget,
            ..CoreExactConfig::default()
        };
        stats.store = oracle.store_stats();
        match densest_at_least_k_certified(g, psi, k, config, oracle.as_ref(), &dec, certs) {
            Some(o) => {
                // Exact when the unconstrained CDS met the floor; else
                // Andersen–Chellapilla's 1/3 bound (proved for edges).
                let guarantee = if o.exact {
                    exact_guarantee(o.stats.budget_exhausted, req.tolerance)
                } else if psi.vertex_count() == 2 {
                    Guarantee::Ratio(1.0 / 3.0)
                } else {
                    Guarantee::Heuristic
                };
                let method = if o.exact {
                    Method::CoreExact
                } else {
                    Method::PeelApp
                };
                record_flow(&mut stats, o.stats);
                Solution {
                    vertices: o.result.vertices.clone(),
                    density: o.result.density,
                    subgraphs: vec![o.result],
                    method,
                    objective: Objective::AtLeastK(k),
                    outcome: Outcome::Found,
                    guarantee,
                    stats,
                }
            }
            None => invalid(Method::PeelApp, Objective::AtLeastK(k), stats),
        }
    }

    fn solve_at_most_k(&self, req: &DsdRequest, k: usize, snap: &GraphSnapshot<'_>) -> Solution {
        let g: &Graph = snap;
        let psi = &req.psi;
        // Validate before paying for the decomposition.
        if k == 0 {
            return invalid(
                Method::PeelApp,
                Objective::AtMostK(k),
                SolveStats::default(),
            );
        }
        let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi, snap);
        let mut stats = SolveStats::default();
        stats.substrate.oracle_cache_hit = oracle_hit;
        stats.substrate.decomposition_cache_hit = dec_hit;
        stats.decomposition_nanos = dec_nanos;
        stats.kmax = Some(dec.kmax);
        let config = CoreExactConfig {
            backend: req.backend,
            tolerance: req.tolerance,
            step_budget: req.step_budget,
            ..CoreExactConfig::default()
        };
        stats.store = oracle.store_stats();
        match densest_at_most_k_from(g, psi, k, config, oracle.as_ref(), &dec) {
            Some(o) => {
                let guarantee = if o.exact {
                    exact_guarantee(o.stats.budget_exhausted, req.tolerance)
                } else {
                    Guarantee::Heuristic
                };
                let method = if o.exact {
                    Method::CoreExact
                } else {
                    Method::PeelApp
                };
                record_flow(&mut stats, o.stats);
                Solution {
                    vertices: o.result.vertices.clone(),
                    density: o.result.density,
                    subgraphs: vec![o.result],
                    method,
                    objective: Objective::AtMostK(k),
                    outcome: Outcome::Found,
                    guarantee,
                    stats,
                }
            }
            None => invalid(Method::PeelApp, Objective::AtMostK(k), stats),
        }
    }

    fn solve_with_query(
        &self,
        req: &DsdRequest,
        query: Vec<VertexId>,
        snap: &GraphSnapshot<'_>,
    ) -> Solution {
        let g: &Graph = snap;
        // Validate before paying for the k-core order.
        let n = g.num_vertices();
        if query.is_empty() || query.iter().any(|&q| q as usize >= n) {
            return invalid(
                Method::Exact,
                Objective::WithQuery(query),
                SolveStats::default(),
            );
        }
        let (kcore, kcore_hit) = self.kcore(snap);
        let mut stats = SolveStats::default();
        stats.substrate.kcore_cache_hit = kcore_hit;
        stats.kmax = Some(kcore.kmax as u64);
        // Query networks cache under the canonical edge key — the variant
        // is defined for edge density regardless of the request's Ψ.
        let lender = EngineLender {
            engine: self,
            key: pattern_key(&Pattern::edge()),
            epoch: snap.epoch(),
        };
        match densest_with_query_lender(g, &query, &kcore, req.backend, Some(&lender)) {
            Some((r, es)) => {
                record_flow(&mut stats, es);
                Solution {
                    vertices: r.vertices.clone(),
                    density: r.density,
                    subgraphs: vec![r],
                    method: Method::Exact,
                    objective: Objective::WithQuery(query),
                    outcome: Outcome::Found,
                    guarantee: Guarantee::Exact,
                    stats,
                }
            }
            None => invalid(Method::Exact, Objective::WithQuery(query), stats),
        }
    }
}

impl Drop for DsdEngine<'_> {
    /// Tells the observer the engine's whole cache footprint is gone, so a
    /// governed catalog dropping an engine (eviction, shutdown) never
    /// leaks its bytes in the global ledger.
    fn drop(&mut self) {
        let bytes =
            cache_bytes(self.cache.get_mut().unwrap()) + self.networks.get_mut().unwrap().bytes();
        if bytes > 0 {
            if let Some(obs) = self.observer.get_mut().unwrap().as_deref() {
                obs.on_engine_release(self.id, bytes);
            }
        }
    }
}

/// Resident bytes of a substrate cache's droppable Ψ-substrates: instance
/// stores (via [`DensityOracle::resident_bytes`]) plus decomposition
/// arrays.
fn cache_bytes(cache: &SubstrateCache) -> u64 {
    let store_bytes: u64 = cache.oracles.values().map(|o| o.resident_bytes()).sum();
    let dec_bytes: u64 = cache
        .decompositions
        .values()
        .map(|d| d.bytes() as u64)
        .sum();
    store_bytes + dec_bytes
}

/// Copies an α-search's instrumentation into a request's [`SolveStats`].
fn record_flow(stats: &mut SolveStats, es: crate::alpha_search::ExactStats) {
    stats.flow_iterations = es.iterations;
    stats.network_nodes = es.network_nodes;
    stats.flow_resolve_hits = es.resolve_hits;
    stats.flow_augment_work = es.augment_work;
    stats.pruned_components = es.pruned_components;
}

fn exact_guarantee(budget_exhausted: bool, tolerance: Option<f64>) -> Guarantee {
    if budget_exhausted {
        Guarantee::Heuristic
    } else {
        match tolerance {
            Some(t) if t > 0.0 => Guarantee::AdditiveGap(t),
            _ => Guarantee::Exact,
        }
    }
}

fn invalid(method: Method, objective: Objective, stats: SolveStats) -> Solution {
    Solution {
        vertices: Vec::new(),
        density: 0.0,
        subgraphs: Vec::new(),
        method,
        objective,
        outcome: Outcome::Invalid,
        guarantee: Guarantee::Heuristic,
        stats,
    }
}

/// A free-standing request specification: pattern, objective, method, and
/// solver knobs, plus (optionally) the name of the catalog graph it
/// targets. `DsdRequest` is plain `Send` data — build it anywhere, ship it
/// to a [`DsdEngine::solve`] call, a
/// [`crate::service::DsdService::solve`], or a
/// [`crate::service::DsdService::solve_batch`] workload.
///
/// For the common bound form, [`DsdEngine::request`] returns a
/// [`BoundRequest`] with the same builder methods plus `.solve()`.
#[derive(Clone, Debug)]
pub struct DsdRequest {
    graph: Option<String>,
    psi: Pattern,
    objective: Objective,
    method: Method,
    backend: FlowBackend,
    tolerance: Option<f64>,
    step_budget: Option<usize>,
}

impl DsdRequest {
    /// A request for pattern Ψ with the defaults: [`Objective::Densest`],
    /// [`Method::Auto`], Dinic backend, exact tolerance, no step budget.
    pub fn new(psi: &Pattern) -> Self {
        DsdRequest {
            graph: None,
            psi: psi.clone(),
            objective: Objective::Densest,
            method: Method::Auto,
            backend: FlowBackend::Dinic,
            tolerance: None,
            step_budget: None,
        }
    }

    /// Routes the request to the named catalog graph (used by
    /// [`crate::service::DsdService`]; ignored by [`DsdEngine::solve`]).
    pub fn on(mut self, graph: impl Into<String>) -> Self {
        self.graph = Some(graph.into());
        self
    }

    /// The catalog graph this request targets, when routed.
    pub fn graph_name(&self) -> Option<&str> {
        self.graph.as_deref()
    }

    /// The request's pattern Ψ.
    pub fn psi(&self) -> &Pattern {
        &self.psi
    }

    /// Sets the objective (default [`Objective::Densest`]).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the method (default [`Method::Auto`]).
    ///
    /// Only [`Objective::Densest`] dispatches on the method; the other
    /// objectives have a fixed algorithm (top-k iterates CoreExact,
    /// DalkS/DamkS are peel-based, the query variant is flow-exact) and
    /// record that algorithm in [`Solution::method`] regardless of this
    /// setting.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Sets the max-flow backend for min-cut probes (default Dinic).
    /// Ignored by the probe-free peel/core methods.
    pub fn flow_backend(mut self, backend: FlowBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets an α-tolerance for the binary search: the answer's density is
    /// then within `tolerance` of optimal instead of certified exact.
    ///
    /// Applies to the binary-search objectives/methods (Densest via
    /// Exact/CoreExact, and top-k); the peel/core methods and the query
    /// variant have no α search and ignore it.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = Some(tolerance);
        self
    }

    /// Caps the number of min-cut probes; an exhausted budget returns the
    /// best subgraph found so far (guarantee degrades to `Heuristic`).
    ///
    /// Applies to the same binary-search paths as [`Self::tolerance`].
    /// For [`Objective::TopK`] the cap is per round (each of the up-to-`k`
    /// CoreExact scans gets its own budget), so a request's probe total is
    /// bounded by `k × probes`.
    pub fn step_budget(mut self, probes: usize) -> Self {
        self.step_budget = Some(probes);
        self
    }

    /// The configured probe cap, if any — read by the serve pipeline to
    /// clamp a request's budget against its deadline.
    pub fn step_budget_limit(&self) -> Option<usize> {
        self.step_budget
    }

    /// The request's configured method (possibly [`Method::Auto`]) —
    /// read by the shard planner to route requests.
    pub fn method_choice(&self) -> Method {
        self.method
    }

    /// The request's objective.
    pub fn objective_ref(&self) -> &Objective {
        &self.objective
    }
}

/// A [`DsdRequest`] bound to an engine, created by [`DsdEngine::request`];
/// exposes the same builder methods and is consumed by
/// [`BoundRequest::solve`].
pub struct BoundRequest<'e, 'g> {
    engine: &'e DsdEngine<'g>,
    req: DsdRequest,
}

impl<'e, 'g> BoundRequest<'e, 'g> {
    /// See [`DsdRequest::objective`].
    pub fn objective(mut self, objective: Objective) -> Self {
        self.req = self.req.objective(objective);
        self
    }

    /// See [`DsdRequest::method`].
    pub fn method(mut self, method: Method) -> Self {
        self.req = self.req.method(method);
        self
    }

    /// See [`DsdRequest::flow_backend`].
    pub fn flow_backend(mut self, backend: FlowBackend) -> Self {
        self.req = self.req.flow_backend(backend);
        self
    }

    /// See [`DsdRequest::tolerance`].
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.req = self.req.tolerance(tolerance);
        self
    }

    /// See [`DsdRequest::step_budget`].
    pub fn step_budget(mut self, probes: usize) -> Self {
        self.req = self.req.step_budget(probes);
        self
    }

    /// Runs the request against the engine's warm substrates.
    pub fn solve(self) -> Solution {
        self.engine.solve(&self.req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serving layer's whole premise, checked at compile time.
    #[test]
    fn engine_and_request_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DsdEngine<'static>>();
        assert_send_sync::<DsdEngine<'_>>();
        assert_send_sync::<DsdRequest>();
        assert_send_sync::<Solution>();
        assert_send_sync::<EngineCacheStats>();
    }

    /// Isomorphic patterns with different labelings share one substrate
    /// cache entry (the `PatternKey` canonicalization).
    #[test]
    fn isomorphic_patterns_share_substrates() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
        let engine = DsdEngine::over(&g);
        // The paw, spelled with the pendant on two different vertices.
        let paw_a = Pattern::c3_star();
        let paw_b = Pattern::new("paw-b", 4, &[(1, 2), (2, 3), (1, 3), (2, 0)]);
        assert_ne!(paw_a.edges(), paw_b.edges());

        let a = engine.request(&paw_a).method(Method::PeelApp).solve();
        let b = engine.request(&paw_b).method(Method::PeelApp).solve();
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.density.to_bits(), b.density.to_bits());
        assert!(
            b.stats.substrate.decomposition_cache_hit,
            "relabeled pattern must hit the canonical cache entry"
        );
        let stats = engine.cache_stats();
        assert_eq!(stats.decomposition_builds, 1);
        assert_eq!(stats.oracle_builds, 1);
    }

    /// `apply` bumps the epoch, patches the cached k-core in place,
    /// repairs the Ψ-oracle's store through its incidence CSR, and drops
    /// only the decomposition, so post-update answers match a cold engine
    /// over the updated graph.
    #[test]
    fn apply_updates_patch_kcore_and_invalidate_psi_substrates() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
        let engine = DsdEngine::new(g.clone());
        let psi = Pattern::triangle();

        // Warm all three substrates at epoch 0.
        let warm = engine.request(&psi).method(Method::CoreExact).solve();
        assert_eq!(warm.stats.epoch, 0);
        let anchored = engine
            .request(&psi)
            .objective(Objective::WithQuery(vec![4]))
            .solve();
        assert_eq!(engine.cache_stats().kcore_builds, 1);
        assert!(anchored.vertices.contains(&4));

        // Densify the tail: 3-4-5 becomes a triangle hanging off the core.
        let stats = engine.apply(&[
            GraphUpdate::Insert(3, 5),
            GraphUpdate::Insert(3, 5), // duplicate → ignored
            GraphUpdate::Delete(0, 3),
        ]);
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.ignored, 1);
        assert!(stats.kcore_patched);
        assert_eq!(stats.substrates_dropped, 1, "decomposition only");
        assert_eq!(stats.substrates_repaired, 1, "oracle repaired in place");
        assert_eq!(stats.substrates_rebuilt, 0);
        assert_eq!(stats.rows_tombstoned, 1, "triangle 0-2-3 died with {{0,3}}");
        assert_eq!(engine.epoch(), 1);

        // The patched k-core is served as a cache hit at the new epoch —
        // no rebuild — and matches a cold engine bit for bit.
        let updated = engine
            .request(&psi)
            .objective(Objective::WithQuery(vec![4]))
            .solve();
        assert_eq!(updated.stats.epoch, 1);
        assert!(updated.stats.substrate.kcore_cache_hit);
        assert_eq!(engine.cache_stats().kcore_builds, 1);

        let fresh = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let cold = DsdEngine::new(fresh);
        let expect = cold
            .request(&psi)
            .objective(Objective::WithQuery(vec![4]))
            .solve();
        assert_eq!(updated.vertices, expect.vertices);
        assert_eq!(updated.density.to_bits(), expect.density.to_bits());

        // The decomposition rebuilds once at the new epoch, but the
        // repaired oracle is served as a cache hit — no store rebuild.
        let cds = engine.request(&psi).method(Method::CoreExact).solve();
        assert!(!cds.stats.substrate.decomposition_cache_hit);
        assert!(
            cds.stats.substrate.oracle_cache_hit,
            "repaired oracle survives the epoch bump"
        );
        assert_eq!(engine.cache_stats().oracle_builds, 1);
        let expect_cds = cold.request(&psi).method(Method::CoreExact).solve();
        assert_eq!(cds.vertices, expect_cds.vertices);
        assert_eq!(cds.density.to_bits(), expect_cds.density.to_bits());
    }

    /// A batch of pure no-ops leaves epoch and substrates untouched.
    #[test]
    fn noop_apply_keeps_epoch_and_caches() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2)]);
        let engine = DsdEngine::new(g);
        let psi = Pattern::triangle();
        engine.warm(&psi);
        let stats = engine.apply(&[
            GraphUpdate::Insert(0, 1), // present
            GraphUpdate::Delete(0, 3), // absent
            GraphUpdate::Insert(2, 2), // self-loop
        ]);
        assert_eq!(stats.epoch, 0);
        assert_eq!(stats.ignored, 3);
        assert_eq!(engine.epoch(), 0);
        let s = engine.request(&psi).method(Method::PeelApp).solve();
        assert!(
            s.stats.substrate.decomposition_cache_hit,
            "no-op batch must not drop warm substrates"
        );
    }

    /// Borrowed engines copy on write: the first effective apply detaches
    /// the engine's graph from the borrowed CSR.
    #[test]
    fn borrowed_engine_applies_updates_copy_on_write() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let engine = DsdEngine::over(&g);
        let stats = engine.apply(&[GraphUpdate::Insert(1, 2), GraphUpdate::Insert(0, 2)]);
        assert_eq!(stats.inserted, 2);
        assert_eq!(engine.graph().num_edges(), 3);
        assert_eq!(g.num_edges(), 1, "borrowed base graph is untouched");
        let s = engine.request(&Pattern::triangle()).solve();
        assert_eq!(s.vertices, vec![0, 1, 2]);
    }
}
