//! `DsdEngine`: a long-lived, cache-reusing query engine over one graph.
//!
//! The paper frames CDS/PDS discovery as a *query workload*: the same graph
//! is probed repeatedly with different patterns Ψ, objectives, and methods.
//! Every algorithm in this crate leans on one of three expensive substrates:
//!
//! * the **density oracle** for Ψ (which for general patterns materializes
//!   the full instance list once — Algorithm 7's `construct+` precondition);
//! * the **(k, Ψ)-core decomposition** (Algorithm 3) — the dominant cost of
//!   `CoreExact`, `PeelApp`, `IncApp`, DalkS and DamkS alike;
//! * the **classical k-core order** — the γ bounds of `CoreApp`
//!   (Algorithm 6) and the Section-6.3 query variant's locator.
//!
//! The engine owns the graph and memoizes all three, keyed by Ψ, so a
//! request workload pays each substrate once instead of once per call. The
//! free functions (`densest_subgraph` & co.) remain as thin shims that spin
//! up a throwaway engine per call.
//!
//! The engine is deliberately single-threaded for now (`Rc` + `RefCell`
//! caches, so `DsdEngine` is `!Send`/`!Sync`): per-core engines over a
//! shared graph are the intended deployment shape until the planned async
//! serving layer swaps the cache to `Arc`/`RwLock` and adds `Send + Sync`
//! bounds to the oracle objects.
//!
//! ```
//! use dsd_core::engine::{DsdEngine, Objective};
//! use dsd_core::Method;
//! use dsd_graph::Graph;
//! use dsd_motif::Pattern;
//!
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
//! let engine = DsdEngine::new(g);
//! let psi = Pattern::triangle();
//!
//! // First request builds the (k, Ψ)-core decomposition...
//! let cds = engine.request(&psi).method(Method::CoreExact).solve();
//! assert_eq!(cds.vertices, vec![0, 1, 2, 3]);
//!
//! // ...which every later request with the same Ψ reuses.
//! let top2 = engine.request(&psi).objective(Objective::TopK(2)).solve();
//! assert!(top2.stats.substrate.decomposition_cache_hit);
//! ```

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use dsd_graph::{Graph, VertexId};
use dsd_motif::Pattern;

use crate::approx::{core_app_from, inc_app_from};
use crate::clique_core::{decompose, CliqueCoreDecomposition};
use crate::core_exact::{core_exact_from, CoreExactConfig};
use crate::exact::{exact_with, ExactOpts};
use crate::flownet::FlowBackend;
use crate::kcore::{k_core_decomposition, KCoreDecomposition};
use crate::oracle::{oracle_for, DensityOracle};
use crate::peel::peel_app_from;
use crate::query::densest_with_query_from;
use crate::size_constrained::{densest_at_least_k_from, densest_at_most_k_from};
use crate::top_k::top_k_densest_from;
use crate::types::DsdResult;
use crate::Method;

/// What a request asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Objective {
    /// The densest subgraph (the paper's CDS/PDS problem).
    Densest,
    /// Up to `k` vertex-disjoint densest subgraphs, densest first.
    TopK(usize),
    /// Densest subgraph with at least `k` vertices (DalkS).
    AtLeastK(usize),
    /// Densest subgraph with at most `k` vertices (DamkS, heuristic).
    AtMostK(usize),
    /// Densest edge-density subgraph containing every listed vertex
    /// (Section 6.3's query variant; Ψ is ignored — the variant is
    /// defined for edge density).
    WithQuery(Vec<VertexId>),
}

/// How a request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A non-empty subgraph was found.
    Found,
    /// The request was valid but the graph has no Ψ instance (density 0).
    Empty,
    /// The request itself was unsatisfiable (out-of-range query vertices,
    /// `k = 0`, `k` above the vertex count, ...).
    Invalid,
}

/// The quality certificate attached to a [`Solution`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Guarantee {
    /// Certified optimal for the requested objective.
    Exact,
    /// Density within the given multiplicative factor of optimal
    /// (`1/|VΨ|` for the core approximations, `1/3` for DalkS on edges).
    Ratio(f64),
    /// Binary search stopped at the requested α tolerance: the density is
    /// within this additive gap of optimal.
    AdditiveGap(f64),
    /// No guarantee (DamkS, or a step budget cut the search short).
    Heuristic,
}

/// Which substrates a request reused vs built.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubstrateUse {
    /// The Ψ density oracle came out of the engine cache.
    pub oracle_cache_hit: bool,
    /// The (k, Ψ)-core decomposition came out of the engine cache.
    pub decomposition_cache_hit: bool,
    /// The classical k-core order came out of the engine cache (`false`
    /// also when the method never needed it).
    pub kcore_cache_hit: bool,
}

/// Always-populated instrumentation carried by every [`Solution`].
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// Total wall time of the request.
    pub total_nanos: u128,
    /// Wall time this request spent building the (k, Ψ)-core
    /// decomposition (0 on a cache hit).
    pub decomposition_nanos: u128,
    /// Min-cut probes performed. Populated for `Densest` via
    /// Exact/CoreExact; 0 for the probe-free peel/core methods and for
    /// objectives that don't surface per-probe accounting (top-k and the
    /// query variant track time only).
    pub flow_iterations: usize,
    /// Flow-network node count at each probe (the Figure-9 series).
    pub network_nodes: Vec<usize>,
    /// kmax of the (k, Ψ)-core decomposition, when one was consulted.
    pub kmax: Option<u64>,
    /// Substrate cache accounting.
    pub substrate: SubstrateUse,
}

/// The one result shape every objective/method path returns.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Sorted member vertices of the (best) reported subgraph.
    pub vertices: Vec<VertexId>,
    /// Ψ-density of the (best) reported subgraph.
    pub density: f64,
    /// Every reported subgraph: one entry for scalar objectives, up to `k`
    /// for [`Objective::TopK`], empty when nothing was found.
    pub subgraphs: Vec<DsdResult>,
    /// The method that actually ran (never [`Method::Auto`]).
    pub method: Method,
    /// The objective the request asked for.
    pub objective: Objective,
    /// How the request ended.
    pub outcome: Outcome,
    /// The quality certificate for `density`.
    pub guarantee: Guarantee,
    /// Instrumentation (always populated).
    pub stats: SolveStats,
}

impl Solution {
    /// The best subgraph as the legacy [`DsdResult`] shape.
    pub fn to_result(&self) -> DsdResult {
        DsdResult {
            vertices: self.vertices.clone(),
            density: self.density,
        }
    }

    /// Number of member vertices of the best subgraph.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether no subgraph was found.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Cumulative substrate-cache counters for one engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCacheStats {
    /// Ψ-oracle cache hits / builds.
    pub oracle_hits: usize,
    /// Ψ-oracle cold builds.
    pub oracle_builds: usize,
    /// (k, Ψ)-core decomposition cache hits.
    pub decomposition_hits: usize,
    /// (k, Ψ)-core decomposition cold builds.
    pub decomposition_builds: usize,
    /// Classical k-core cache hits.
    pub kcore_hits: usize,
    /// Classical k-core cold builds.
    pub kcore_builds: usize,
}

/// Cache key for a pattern: vertex count + canonical edge list. Isomorphic
/// patterns with different labelings hash apart, which costs a duplicate
/// substrate but never correctness.
type PatternKey = (usize, Vec<(u8, u8)>);

fn pattern_key(psi: &Pattern) -> PatternKey {
    (psi.vertex_count(), psi.edges().to_vec())
}

/// `(substrate, cache_hit)` pair.
type Cached<T> = (T, bool);

/// Result of a decomposition lookup: the oracle, the decomposition (each
/// with its cache-hit flag), and the build time this call paid (0 on hit).
type DecompositionLookup = (
    Cached<Rc<dyn DensityOracle>>,
    Cached<Rc<CliqueCoreDecomposition>>,
    u128,
);

#[derive(Default)]
struct SubstrateCache {
    oracles: HashMap<PatternKey, Rc<dyn DensityOracle>>,
    decompositions: HashMap<PatternKey, Rc<CliqueCoreDecomposition>>,
    kcore: Option<Rc<KCoreDecomposition>>,
}

/// A long-lived query engine owning one graph plus its memoized substrates.
///
/// Construction is free — substrates are built lazily on first use and
/// reused by every later request (see the module docs for an example).
/// The lifetime parameter supports zero-copy engines over borrowed graphs
/// ([`DsdEngine::over`]); owning engines are `DsdEngine<'static>`.
pub struct DsdEngine<'g> {
    graph: Cow<'g, Graph>,
    cache: RefCell<SubstrateCache>,
    counters: RefCell<EngineCacheStats>,
}

impl DsdEngine<'static> {
    /// An engine that owns its graph — the shape to use for serving.
    pub fn new(graph: Graph) -> Self {
        DsdEngine {
            graph: Cow::Owned(graph),
            cache: RefCell::new(SubstrateCache::default()),
            counters: RefCell::new(EngineCacheStats::default()),
        }
    }
}

impl<'g> DsdEngine<'g> {
    /// A zero-copy engine over a borrowed graph — what the free-function
    /// shims use.
    pub fn over(graph: &'g Graph) -> Self {
        DsdEngine {
            graph: Cow::Borrowed(graph),
            cache: RefCell::new(SubstrateCache::default()),
            counters: RefCell::new(EngineCacheStats::default()),
        }
    }

    /// The engine's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Cumulative cache accounting across all requests so far.
    pub fn cache_stats(&self) -> EngineCacheStats {
        *self.counters.borrow()
    }

    /// Starts building a request for pattern Ψ (defaults: Densest,
    /// `Method::Auto`, Dinic backend, exact tolerance, no step budget).
    pub fn request(&self, psi: &Pattern) -> DsdRequest<'_, 'g> {
        DsdRequest {
            engine: self,
            psi: psi.clone(),
            objective: Objective::Densest,
            method: Method::Auto,
            backend: FlowBackend::Dinic,
            tolerance: None,
            step_budget: None,
        }
    }

    /// Pre-builds the Ψ substrates (oracle + decomposition), so later
    /// requests are served warm. Returns the decomposition build time in
    /// nanoseconds (0 when it was already cached).
    pub fn warm(&self, psi: &Pattern) -> u128 {
        let (_, _, nanos) = self.decomposition(psi);
        nanos
    }

    /// The memoized density oracle for Ψ. The bool reports a cache hit.
    fn oracle(&self, psi: &Pattern) -> Cached<Rc<dyn DensityOracle>> {
        let key = pattern_key(psi);
        if let Some(oracle) = self.cache.borrow().oracles.get(&key) {
            self.counters.borrow_mut().oracle_hits += 1;
            return (Rc::clone(oracle), true);
        }
        let oracle: Rc<dyn DensityOracle> = Rc::from(oracle_for(psi));
        self.cache
            .borrow_mut()
            .oracles
            .insert(key, Rc::clone(&oracle));
        self.counters.borrow_mut().oracle_builds += 1;
        (oracle, false)
    }

    /// The memoized (k, Ψ)-core decomposition plus its oracle. The u128 is
    /// the decomposition build time paid by *this* call (0 on a hit).
    fn decomposition(&self, psi: &Pattern) -> DecompositionLookup {
        let (oracle, oracle_hit) = self.oracle(psi);
        let key = pattern_key(psi);
        if let Some(dec) = self.cache.borrow().decompositions.get(&key) {
            self.counters.borrow_mut().decomposition_hits += 1;
            return ((oracle, oracle_hit), (Rc::clone(dec), true), 0);
        }
        let t = Instant::now();
        let dec = Rc::new(decompose(self.graph(), oracle.as_ref()));
        let nanos = t.elapsed().as_nanos();
        self.cache
            .borrow_mut()
            .decompositions
            .insert(key, Rc::clone(&dec));
        self.counters.borrow_mut().decomposition_builds += 1;
        ((oracle, oracle_hit), (dec, false), nanos)
    }

    /// The memoized classical k-core order. The bool reports a cache hit.
    fn kcore(&self) -> (Rc<KCoreDecomposition>, bool) {
        if let Some(kc) = &self.cache.borrow().kcore {
            self.counters.borrow_mut().kcore_hits += 1;
            return (Rc::clone(kc), true);
        }
        let kc = Rc::new(k_core_decomposition(self.graph()));
        self.cache.borrow_mut().kcore = Some(Rc::clone(&kc));
        self.counters.borrow_mut().kcore_builds += 1;
        (kc, false)
    }

    /// `Method::Auto`'s cost-based selector.
    ///
    /// Every candidate it can pick preserves the `1/|VΨ|` approximation
    /// guarantee (exact methods trivially, the core family by Lemma 8):
    ///
    /// * warm decomposition → `CoreExact` when the located core is small
    ///   enough for cheap flow probes, else `PeelApp` (which is free given
    ///   the decomposition);
    /// * cold + small graph → `CoreExact`;
    /// * cold + large graph → `CoreApp` (top-down, avoids the full
    ///   decomposition the exact path would have to pay).
    fn auto_method(&self, psi: &Pattern) -> Method {
        /// Located-core size above which warm flow probes are judged too
        /// expensive for an auto-selected request.
        const WARM_FLOW_VERTEX_CAP: usize = 20_000;
        /// Cold-start work bound: edges × pattern size as a proxy for the
        /// enumeration + decomposition cost of the exact path.
        const COLD_EXACT_WORK_CAP: usize = 1_000_000;

        let key = pattern_key(psi);
        let cached: Option<Rc<CliqueCoreDecomposition>> =
            self.cache.borrow().decompositions.get(&key).cloned();
        if let Some(dec) = cached {
            if dec.kmax == 0 {
                return Method::PeelApp;
            }
            // Same location rule CoreExact itself applies (Lemma 7 on the
            // Pruning1 lower bound), via the shared bounds helpers.
            let bounds = crate::bounds::density_bounds(&dec, psi.vertex_count(), true);
            let k_loc = bounds.locate_k.max(1);
            let located = dec.core_set(k_loc).len();
            if located <= WARM_FLOW_VERTEX_CAP {
                Method::CoreExact
            } else {
                Method::PeelApp
            }
        } else if self.graph().num_edges().saturating_mul(psi.vertex_count()) <= COLD_EXACT_WORK_CAP
        {
            Method::CoreExact
        } else {
            Method::CoreApp
        }
    }

    fn solve(&self, req: DsdRequest<'_, 'g>) -> Solution {
        let t0 = Instant::now();
        let objective = req.objective.clone();
        let mut solution = match &req.objective {
            Objective::Densest => self.solve_densest(&req),
            Objective::TopK(k) => self.solve_top_k(&req, *k),
            Objective::AtLeastK(k) => self.solve_at_least_k(&req, *k),
            Objective::AtMostK(k) => self.solve_at_most_k(&req, *k),
            Objective::WithQuery(query) => self.solve_with_query(&req, query.clone()),
        };
        solution.objective = objective;
        solution.stats.total_nanos = t0.elapsed().as_nanos();
        solution
    }

    fn solve_densest(&self, req: &DsdRequest<'_, 'g>) -> Solution {
        let g = self.graph();
        let psi = &req.psi;
        let method = match req.method {
            Method::Auto => self.auto_method(psi),
            m => m,
        };
        let mut stats = SolveStats::default();
        let ratio = 1.0 / psi.vertex_count() as f64;

        let (result, guarantee) = match method {
            Method::Exact => {
                let (oracle, oracle_hit) = self.oracle(psi);
                stats.substrate.oracle_cache_hit = oracle_hit;
                let opts = ExactOpts {
                    backend: req.backend,
                    tolerance: req.tolerance,
                    step_budget: req.step_budget,
                };
                let (r, es) = exact_with(g, psi, oracle.as_ref(), opts);
                stats.flow_iterations = es.iterations;
                stats.network_nodes = es.network_nodes;
                let guarantee = exact_guarantee(es.budget_exhausted, req.tolerance);
                (r, guarantee)
            }
            Method::CoreExact => {
                let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
                stats.substrate.oracle_cache_hit = oracle_hit;
                stats.substrate.decomposition_cache_hit = dec_hit;
                stats.decomposition_nanos = dec_nanos;
                stats.kmax = Some(dec.kmax);
                let config = CoreExactConfig {
                    backend: req.backend,
                    tolerance: req.tolerance,
                    step_budget: req.step_budget,
                    ..CoreExactConfig::default()
                };
                let (r, ces) = core_exact_from(g, psi, config, oracle.as_ref(), &dec);
                stats.flow_iterations = ces.exact.iterations;
                stats.network_nodes = ces.exact.network_nodes;
                let guarantee = exact_guarantee(ces.exact.budget_exhausted, req.tolerance);
                (r, guarantee)
            }
            Method::PeelApp => {
                let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
                let _ = oracle;
                stats.substrate.oracle_cache_hit = oracle_hit;
                stats.substrate.decomposition_cache_hit = dec_hit;
                stats.decomposition_nanos = dec_nanos;
                stats.kmax = Some(dec.kmax);
                (peel_app_from(&dec), Guarantee::Ratio(ratio))
            }
            Method::IncApp => {
                let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
                stats.substrate.oracle_cache_hit = oracle_hit;
                stats.substrate.decomposition_cache_hit = dec_hit;
                stats.decomposition_nanos = dec_nanos;
                stats.kmax = Some(dec.kmax);
                let r = inc_app_from(g, oracle.as_ref(), &dec);
                (r.result, Guarantee::Ratio(ratio))
            }
            Method::CoreApp => {
                let (oracle, oracle_hit) = self.oracle(psi);
                stats.substrate.oracle_cache_hit = oracle_hit;
                // γ bounds for cliques come from the classical k-core order.
                let kcore = if matches!(psi.kind(), dsd_motif::pattern::PatternKind::Clique(_)) {
                    let (kc, kc_hit) = self.kcore();
                    stats.substrate.kcore_cache_hit = kc_hit;
                    Some(kc)
                } else {
                    None
                };
                let r = core_app_from(
                    g,
                    psi,
                    oracle.as_ref(),
                    crate::approx::CORE_APP_DEFAULT_SEED,
                    kcore.as_deref(),
                );
                stats.kmax = Some(r.kmax);
                (r.result, Guarantee::Ratio(ratio))
            }
            Method::Auto => unreachable!("Auto resolves before dispatch"),
        };

        let outcome = if result.is_empty() {
            Outcome::Empty
        } else {
            Outcome::Found
        };
        Solution {
            vertices: result.vertices.clone(),
            density: result.density,
            subgraphs: if result.is_empty() {
                Vec::new()
            } else {
                vec![result]
            },
            method,
            objective: Objective::Densest,
            outcome,
            guarantee,
            stats,
        }
    }

    fn solve_top_k(&self, req: &DsdRequest<'_, 'g>, k: usize) -> Solution {
        let g = self.graph();
        let psi = &req.psi;
        // Validate before paying for the decomposition.
        if k == 0 {
            return invalid(Method::CoreExact, Objective::TopK(k), SolveStats::default());
        }
        let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
        let mut stats = SolveStats::default();
        stats.substrate.oracle_cache_hit = oracle_hit;
        stats.substrate.decomposition_cache_hit = dec_hit;
        stats.decomposition_nanos = dec_nanos;
        stats.kmax = Some(dec.kmax);
        let config = CoreExactConfig {
            backend: req.backend,
            tolerance: req.tolerance,
            step_budget: req.step_budget,
            ..CoreExactConfig::default()
        };
        let scan = top_k_densest_from(g, psi, k, config, oracle.as_ref(), &dec);
        let (vertices, density) = scan
            .subgraphs
            .first()
            .map(|r| (r.vertices.clone(), r.density))
            .unwrap_or_default();
        let outcome = if scan.subgraphs.is_empty() {
            Outcome::Empty
        } else {
            Outcome::Found
        };
        Solution {
            vertices,
            density,
            subgraphs: scan.subgraphs,
            method: Method::CoreExact,
            objective: Objective::TopK(k),
            outcome,
            guarantee: exact_guarantee(scan.budget_exhausted, req.tolerance),
            stats,
        }
    }

    fn solve_at_least_k(&self, req: &DsdRequest<'_, 'g>, k: usize) -> Solution {
        let g = self.graph();
        let psi = &req.psi;
        // Validate before paying for the decomposition.
        if k == 0 || k > g.num_vertices() {
            return invalid(
                Method::PeelApp,
                Objective::AtLeastK(k),
                SolveStats::default(),
            );
        }
        let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
        let mut stats = SolveStats::default();
        stats.substrate.oracle_cache_hit = oracle_hit;
        stats.substrate.decomposition_cache_hit = dec_hit;
        stats.decomposition_nanos = dec_nanos;
        stats.kmax = Some(dec.kmax);
        // Andersen–Chellapilla's 1/3 bound is proved for edge density.
        let guarantee = if psi.vertex_count() == 2 {
            Guarantee::Ratio(1.0 / 3.0)
        } else {
            Guarantee::Heuristic
        };
        match densest_at_least_k_from(g, k, oracle.as_ref(), &dec) {
            Some(r) => Solution {
                vertices: r.vertices.clone(),
                density: r.density,
                subgraphs: vec![r],
                method: Method::PeelApp,
                objective: Objective::AtLeastK(k),
                outcome: Outcome::Found,
                guarantee,
                stats,
            },
            None => invalid(Method::PeelApp, Objective::AtLeastK(k), stats),
        }
    }

    fn solve_at_most_k(&self, req: &DsdRequest<'_, 'g>, k: usize) -> Solution {
        let g = self.graph();
        let psi = &req.psi;
        // Validate before paying for the decomposition.
        if k == 0 {
            return invalid(
                Method::PeelApp,
                Objective::AtMostK(k),
                SolveStats::default(),
            );
        }
        let ((oracle, oracle_hit), (dec, dec_hit), dec_nanos) = self.decomposition(psi);
        let mut stats = SolveStats::default();
        stats.substrate.oracle_cache_hit = oracle_hit;
        stats.substrate.decomposition_cache_hit = dec_hit;
        stats.decomposition_nanos = dec_nanos;
        stats.kmax = Some(dec.kmax);
        match densest_at_most_k_from(g, psi, k, oracle.as_ref(), &dec) {
            Some(r) => Solution {
                vertices: r.vertices.clone(),
                density: r.density,
                subgraphs: vec![r],
                method: Method::PeelApp,
                objective: Objective::AtMostK(k),
                outcome: Outcome::Found,
                guarantee: Guarantee::Heuristic,
                stats,
            },
            None => invalid(Method::PeelApp, Objective::AtMostK(k), stats),
        }
    }

    fn solve_with_query(&self, req: &DsdRequest<'_, 'g>, query: Vec<VertexId>) -> Solution {
        let g = self.graph();
        // Validate before paying for the k-core order.
        let n = g.num_vertices();
        if query.is_empty() || query.iter().any(|&q| q as usize >= n) {
            return invalid(
                Method::Exact,
                Objective::WithQuery(query),
                SolveStats::default(),
            );
        }
        let (kcore, kcore_hit) = self.kcore();
        let mut stats = SolveStats::default();
        stats.substrate.kcore_cache_hit = kcore_hit;
        stats.kmax = Some(kcore.kmax as u64);
        match densest_with_query_from(g, &query, &kcore, req.backend) {
            Some(r) => Solution {
                vertices: r.vertices.clone(),
                density: r.density,
                subgraphs: vec![r],
                method: Method::Exact,
                objective: Objective::WithQuery(query),
                outcome: Outcome::Found,
                guarantee: Guarantee::Exact,
                stats,
            },
            None => invalid(Method::Exact, Objective::WithQuery(query), stats),
        }
    }
}

fn exact_guarantee(budget_exhausted: bool, tolerance: Option<f64>) -> Guarantee {
    if budget_exhausted {
        Guarantee::Heuristic
    } else {
        match tolerance {
            Some(t) if t > 0.0 => Guarantee::AdditiveGap(t),
            _ => Guarantee::Exact,
        }
    }
}

fn invalid(method: Method, objective: Objective, stats: SolveStats) -> Solution {
    Solution {
        vertices: Vec::new(),
        density: 0.0,
        subgraphs: Vec::new(),
        method,
        objective,
        outcome: Outcome::Invalid,
        guarantee: Guarantee::Heuristic,
        stats,
    }
}

/// Builder for one engine request. Created by [`DsdEngine::request`];
/// consumed by [`DsdRequest::solve`].
pub struct DsdRequest<'e, 'g> {
    engine: &'e DsdEngine<'g>,
    psi: Pattern,
    objective: Objective,
    method: Method,
    backend: FlowBackend,
    tolerance: Option<f64>,
    step_budget: Option<usize>,
}

impl<'e, 'g> DsdRequest<'e, 'g> {
    /// Sets the objective (default [`Objective::Densest`]).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the method (default [`Method::Auto`]).
    ///
    /// Only [`Objective::Densest`] dispatches on the method; the other
    /// objectives have a fixed algorithm (top-k iterates CoreExact,
    /// DalkS/DamkS are peel-based, the query variant is flow-exact) and
    /// record that algorithm in [`Solution::method`] regardless of this
    /// setting.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Sets the max-flow backend for min-cut probes (default Dinic).
    /// Ignored by the probe-free peel/core methods.
    pub fn flow_backend(mut self, backend: FlowBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets an α-tolerance for the binary search: the answer's density is
    /// then within `tolerance` of optimal instead of certified exact.
    ///
    /// Applies to the binary-search objectives/methods (Densest via
    /// Exact/CoreExact, and top-k); the peel/core methods and the query
    /// variant have no α search and ignore it.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = Some(tolerance);
        self
    }

    /// Caps the number of min-cut probes; an exhausted budget returns the
    /// best subgraph found so far (guarantee degrades to `Heuristic`).
    ///
    /// Applies to the same binary-search paths as [`Self::tolerance`].
    /// For [`Objective::TopK`] the cap is per round (each of the up-to-`k`
    /// CoreExact scans gets its own budget), so a request's probe total is
    /// bounded by `k × probes`.
    pub fn step_budget(mut self, probes: usize) -> Self {
        self.step_budget = Some(probes);
        self
    }

    /// Runs the request against the engine's warm substrates.
    pub fn solve(self) -> Solution {
        self.engine.solve(self)
    }
}
