//! Size-constrained densest subgraph — the paper's named future-work item
//! ("we will also extend our core-based algorithms for finding densest
//! subgraphs with size constraints").
//!
//! Both variants now try an **exact fast path through the shared
//! [`mod@crate::alpha_search`] framework first**: run `CoreExact` for the
//! unconstrained optimum `D`; whenever `D` already satisfies the size
//! constraint (`|D| ≥ k` for DalkS, `|D| ≤ k` for DamkS) it *is* the
//! constrained optimum — the constrained optimum can never beat the
//! unconstrained one, and `D` is feasible. The attempt is made for
//! clique Ψ (including edges), where the located-core flow phase is
//! near-free next to the decomposition the caller already holds; for
//! general patterns the Algorithm-7 `construct+` network would
//! re-enumerate instances inside the core — easily the dominant cost of
//! an otherwise-approximate request — so those keep the greedy paths
//! outright. When the constraint excludes `D` (or Ψ is a general
//! pattern), the greedy machinery answers:
//!
//! * **at-least-k** (DalkS: maximize ρ subject to `|S| ≥ k`) is NP-hard
//!   in general but admits a 1/3-approximation by greedy peeling
//!   (Andersen & Chellapilla 2009): peel minimum-degree vertices and
//!   return the best residual graph among those with at least `k`
//!   vertices. The machinery is exactly Algorithm 3's peel with a
//!   different density tracker, so the fallback replays the shared
//!   decomposition's peel order; the same schedule generalizes to any Ψ
//!   (with the guarantee proved for edges).
//! * **at-most-k** (DamkS) is as hard as densest-k-subgraph; the fallback
//!   is the natural core-guided greedy heuristic the paper's framework
//!   suggests — locate the best core, then trim minimum-degree vertices
//!   to size — with no approximation claim.

use dsd_graph::{Graph, VertexId, VertexSet};
use dsd_motif::pattern::PatternKind;
use dsd_motif::Pattern;

use crate::alpha_search::ExactStats;
use crate::clique_core::{decompose, CliqueCoreDecomposition};
use crate::core_exact::{
    core_exact_from, core_exact_from_certified, CoreExactConfig, RegionCertificates,
};
use crate::oracle::{oracle_for, DensityOracle};
use crate::types::DsdResult;

/// A size-constrained solve: the subgraph plus how it was certified.
#[derive(Clone, Debug)]
pub struct SizeConstrainedOutcome {
    /// The best subgraph found.
    pub result: DsdResult,
    /// Whether the exact fast path applied: the unconstrained optimum
    /// satisfied the size constraint, so `result` is certified optimal
    /// (up to the config's tolerance/budget). `false` means the greedy
    /// fallback answered (1/3-approximate for DalkS on edges, heuristic
    /// otherwise).
    pub exact: bool,
    /// α-search instrumentation of the exact attempt (probe counts, flow
    /// reuse) — populated on the fallback paths too, which still paid for
    /// the attempt.
    pub stats: ExactStats,
}

/// Densest subgraph with **at least** `k` vertices (DalkS).
///
/// Exact for clique Ψ when the unconstrained CDS has ≥ `k` vertices;
/// otherwise greedy peel (1/3-approximation for Ψ = edge per
/// Andersen–Chellapilla, heuristic quality for other Ψ). Returns `None`
/// when `k` is 0 or exceeds the vertex count.
pub fn densest_at_least_k(g: &Graph, psi: &Pattern, k: usize) -> Option<DsdResult> {
    if k > g.num_vertices() || k == 0 {
        return None;
    }
    let oracle = oracle_for(psi);
    let dec = decompose(g, oracle.as_ref());
    densest_at_least_k_from(g, psi, k, CoreExactConfig::default(), oracle.as_ref(), &dec)
        .map(|o| o.result)
}

/// [`densest_at_least_k`] against caller-provided (possibly warm)
/// substrates: tries the exact fast path (a `CoreExact` α-search under
/// `config`), then falls back to replaying the decomposition's peel order
/// without re-peeling.
pub fn densest_at_least_k_from(
    g: &Graph,
    psi: &Pattern,
    k: usize,
    config: CoreExactConfig,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
) -> Option<SizeConstrainedOutcome> {
    densest_at_least_k_certified(g, psi, k, config, oracle, dec, None)
}

/// [`densest_at_least_k_from`] with optional scatter-phase region
/// certificates, applied to the exact fast path's α-search (the greedy
/// peel-order fallback never builds flow networks, so certificates don't
/// touch it).
pub fn densest_at_least_k_certified(
    g: &Graph,
    psi: &Pattern,
    k: usize,
    config: CoreExactConfig,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
    certs: Option<&RegionCertificates>,
) -> Option<SizeConstrainedOutcome> {
    let n = g.num_vertices();
    if k > n || k == 0 {
        return None;
    }
    // Exact fast path (clique Ψ): the unconstrained optimum bounds the
    // constrained one from above and is feasible when it meets the floor.
    // Skipped outright when the located core (which contains the CDS,
    // Lemma 7) is already below the floor — the fast path provably can't
    // fire, so don't pay its α-search just to discard it.
    let mut stats = ExactStats::default();
    if matches!(psi.kind(), PatternKind::Clique(_)) && located_core_len(dec, psi, config) >= k {
        let (cds, ces) = core_exact_from_certified(g, psi, config, oracle, dec, certs);
        if cds.len() >= k {
            return Some(SizeConstrainedOutcome {
                result: cds,
                exact: true,
                stats: ces.exact,
            });
        }
        stats = ces.exact;
    }
    // Residual graphs are suffixes of the peel order; the feasible ones
    // are those with ≥ k vertices, i.e. the first n−k+1 suffixes.
    let order = &dec.peel_order;
    let mut best: Option<(f64, usize)> = None;
    // Recompute μ along the peel by replaying degree-at-removal sums:
    // μ_suffix(i) = μ − Σ_{j<i} deg_at_removal(j). The decomposition
    // doesn't store deg-at-removal, so rebuild densities directly —
    // starting from the initial degrees the decomposition already
    // computed (a full oracle degree pass is the dominant cost here).
    let mut alive = VertexSet::full(n);
    let mut deg = dec.degrees.clone();
    let mut mu: u64 = dec.mu;
    // Indexed loop: `i` is simultaneously a position in `order` and the
    // number of peeled vertices, so enumerate() would obscure the math.
    #[allow(clippy::needless_range_loop)]
    for i in 0..=n.saturating_sub(k) {
        let size = n - i;
        if size >= k && size > 0 {
            let rho = mu as f64 / size as f64;
            if best.map(|(b, _)| rho > b).unwrap_or(true) {
                best = Some((rho, i));
            }
        }
        if i == n - k {
            break;
        }
        let v = order[i];
        for (u, amount) in oracle.removal_decrements(g, &alive, v) {
            deg[u as usize] -= amount.min(deg[u as usize]);
        }
        mu -= deg[v as usize].min(mu);
        alive.remove(v);
    }
    let (rho, suffix) = best?;
    let mut vertices: Vec<VertexId> = order[suffix..].to_vec();
    vertices.sort_unstable();
    Some(SizeConstrainedOutcome {
        result: DsdResult {
            vertices,
            density: rho,
        },
        exact: false,
        stats,
    })
}

/// Size of the `(k″, Ψ)`-core CoreExact would locate the CDS in — an
/// upper bound on `|CDS|` (Lemma 7), used to prove a DalkS fast path
/// hopeless before paying for its α-search.
fn located_core_len(
    dec: &CliqueCoreDecomposition,
    psi: &Pattern,
    config: CoreExactConfig,
) -> usize {
    let bounds = crate::bounds::density_bounds(dec, psi.vertex_count(), config.pruning1);
    dec.core_set(bounds.locate_k.max(1)).len()
}

/// Densest subgraph with **at most** `k` vertices (DamkS).
///
/// Exact for clique Ψ when the unconstrained CDS has ≤ `k` vertices;
/// otherwise the core-guided greedy trim with no approximation guarantee
/// (the problem is densest-k-subgraph-hard).
pub fn densest_at_most_k(g: &Graph, psi: &Pattern, k: usize) -> Option<DsdResult> {
    if k == 0 {
        return None;
    }
    let oracle = oracle_for(psi);
    let dec = decompose(g, oracle.as_ref());
    densest_at_most_k_from(g, psi, k, CoreExactConfig::default(), oracle.as_ref(), &dec)
        .map(|o| o.result)
}

/// [`densest_at_most_k`] against caller-provided (possibly warm)
/// substrates: tries the exact fast path, then the greedy trim.
pub fn densest_at_most_k_from(
    g: &Graph,
    psi: &Pattern,
    k: usize,
    config: CoreExactConfig,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
) -> Option<SizeConstrainedOutcome> {
    if k == 0 {
        return None;
    }
    // Exact fast path (clique Ψ): a non-empty unconstrained optimum
    // within the cap is the constrained optimum.
    let mut stats = ExactStats::default();
    if matches!(psi.kind(), PatternKind::Clique(_)) {
        let (cds, ces) = core_exact_from(g, psi, config, oracle, dec);
        if !cds.is_empty() && cds.len() <= k {
            return Some(SizeConstrainedOutcome {
                result: cds,
                exact: true,
                stats: ces.exact,
            });
        }
        stats = ces.exact;
    }
    // Start from the densest residual graph (PeelApp's S*), the best
    // unconstrained greedy answer, then trim.
    let start = dec.best_residual();
    let n = g.num_vertices();
    let mut alive = VertexSet::from_members(n, &start);
    let mut deg = oracle.degrees(g, &alive);
    let mut mu: u64 = deg.iter().sum::<u64>() / psi.vertex_count() as u64;
    let mut best: Option<(f64, Vec<VertexId>)> = None;
    loop {
        if alive.len() <= k && !alive.is_empty() {
            let rho = mu as f64 / alive.len() as f64;
            if best.as_ref().map(|(b, _)| rho > *b).unwrap_or(true) {
                best = Some((rho, alive.to_vec()));
            }
        }
        if alive.len() <= 1 {
            break;
        }
        let v = alive
            .iter()
            .min_by_key(|&v| deg[v as usize])
            .expect("non-empty");
        for (u, amount) in oracle.removal_decrements(g, &alive, v) {
            deg[u as usize] -= amount.min(deg[u as usize]);
        }
        mu -= deg[v as usize].min(mu);
        alive.remove(v);
    }
    let (rho, mut vertices) = best?;
    vertices.sort_unstable();
    Some(SizeConstrainedOutcome {
        result: DsdResult {
            vertices,
            density: rho,
        },
        exact: false,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact;
    use crate::flownet::FlowBackend;
    use crate::oracle::density;
    use dsd_graph::GraphBuilder;

    fn k5_plus_path() -> Graph {
        let mut b = GraphBuilder::new(9);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5);
        b.add_edge(5, 6);
        b.add_edge(6, 7);
        b.add_edge(7, 8);
        b.build()
    }

    #[test]
    fn at_least_k_matches_unconstrained_when_k_small() {
        let g = k5_plus_path();
        let psi = Pattern::edge();
        let r = densest_at_least_k(&g, &psi, 2).unwrap();
        // The unconstrained CDS (the K5) satisfies the floor: exact path.
        assert_eq!(r.vertices, vec![0, 1, 2, 3, 4]);
        assert!((r.density - 2.0).abs() < 1e-9);
    }

    #[test]
    fn at_least_k_respects_the_size_floor() {
        let g = k5_plus_path();
        let psi = Pattern::edge();
        for k in 2..=9usize {
            let r = densest_at_least_k(&g, &psi, k).unwrap();
            assert!(r.len() >= k, "k = {k}: got {} vertices", r.len());
        }
        assert!(densest_at_least_k(&g, &psi, 10).is_none());
        assert!(densest_at_least_k(&g, &psi, 0).is_none());
    }

    #[test]
    fn at_least_k_density_is_achieved() {
        let g = k5_plus_path();
        let psi = Pattern::edge();
        for k in 2..=8usize {
            let r = densest_at_least_k(&g, &psi, k).unwrap();
            let oracle = oracle_for(&psi);
            let set = VertexSet::from_members(9, &r.vertices);
            let rho = density(oracle.as_ref(), &g, &set);
            assert!((rho - r.density).abs() < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn at_least_k_one_third_guarantee_for_edges() {
        // Andersen–Chellapilla: greedy ≥ opt/3. Check vs the unconstrained
        // optimum (an upper bound on the constrained one).
        let g = k5_plus_path();
        let psi = Pattern::edge();
        let (opt, _) = exact(&g, &psi, FlowBackend::Dinic);
        for k in 2..=6usize {
            let r = densest_at_least_k(&g, &psi, k).unwrap();
            assert!(
                r.density + 1e-9 >= opt.density / 3.0,
                "k = {k}: {} < {}",
                r.density,
                opt.density / 3.0
            );
        }
    }

    /// The exact fast path fires exactly when the unconstrained CDS fits
    /// the constraint, and then returns it verbatim.
    #[test]
    fn exact_fast_path_fires_on_feasible_cds() {
        let g = k5_plus_path();
        let psi = Pattern::edge();
        let oracle = oracle_for(&psi);
        let dec = decompose(&g, oracle.as_ref());
        let (cds, _) = exact(&g, &psi, FlowBackend::Dinic);
        assert_eq!(cds.vertices.len(), 5);
        for k in 2..=9usize {
            let o = densest_at_least_k_from(
                &g,
                &psi,
                k,
                CoreExactConfig::default(),
                oracle.as_ref(),
                &dec,
            )
            .unwrap();
            assert_eq!(o.exact, k <= 5, "k = {k}");
            if o.exact {
                assert_eq!(o.result.vertices, cds.vertices);
                assert!(o.stats.iterations > 0, "exact path must have probed");
            }
        }
        for k in 1..=9usize {
            let o = densest_at_most_k_from(
                &g,
                &psi,
                k,
                CoreExactConfig::default(),
                oracle.as_ref(),
                &dec,
            )
            .unwrap();
            assert_eq!(o.exact, k >= 5, "k = {k}");
            if o.exact {
                assert_eq!(o.result.vertices, cds.vertices);
            }
        }
    }

    #[test]
    fn at_most_k_trims_to_size() {
        let g = k5_plus_path();
        let psi = Pattern::edge();
        for k in 1..=9usize {
            let r = densest_at_most_k(&g, &psi, k).unwrap();
            assert!(r.len() <= k, "k = {k}");
            assert!(!r.is_empty());
        }
        // k = 5 recovers the K5 exactly.
        let r5 = densest_at_most_k(&g, &psi, 5).unwrap();
        assert_eq!(r5.vertices, vec![0, 1, 2, 3, 4]);
        assert!(densest_at_most_k(&g, &psi, 0).is_none());
    }

    #[test]
    fn triangle_variant_runs() {
        let g = k5_plus_path();
        let psi = Pattern::triangle();
        let r = densest_at_least_k(&g, &psi, 6).unwrap();
        assert!(r.len() >= 6);
        // Adding the forced extra vertex dilutes density vs the pure K5.
        let unconstrained = densest_at_least_k(&g, &psi, 2).unwrap();
        assert!(r.density <= unconstrained.density + 1e-9);
    }
}
