//! EMcore baseline (Cheng, Ke, Chu, Özsu, ICDE 2011), adapted as in the
//! paper's Table-4 comparison: in-memory, top-down, stopping as soon as the
//! classical kmax-core is found.
//!
//! The adaptation partitions vertices into degree-descending blocks, grows
//! the working subgraph block by block, runs the bucket-peel decomposition
//! on the induced subgraph, and stops when every vertex outside the working
//! set has degree (an upper bound on its core number) below the best kmax
//! found. Differences from CoreApp are exactly the four the paper lists:
//! edge-cores only, all-core machinery, degree (not core-based γ) bounds,
//! and a fixed block-growth schedule.

use dsd_graph::{Graph, VertexId, VertexSet};
use dsd_motif::Pattern;

use crate::approx::ApproxResult;
use crate::kcore::k_core_decomposition_within;
use crate::oracle::{density, oracle_for};
use crate::types::DsdResult;

/// Top-down classical kmax-core extraction, EMcore style.
pub fn emcore_max_core(g: &Graph) -> ApproxResult {
    emcore_max_core_with_block(g, 64)
}

/// [`emcore_max_core`] with an explicit initial block size.
pub fn emcore_max_core_with_block(g: &Graph, block: usize) -> ApproxResult {
    let n = g.num_vertices();
    let psi = Pattern::edge();
    let oracle = oracle_for(&psi);
    if n == 0 {
        return ApproxResult {
            result: DsdResult::empty(),
            kmax: 0,
        };
    }
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));

    let mut w_len = block.clamp(1, n);
    let mut kmax = 0u32;
    let mut best: Vec<VertexId> = Vec::new();
    loop {
        let alive = VertexSet::from_members(n, &order[..w_len]);
        let dec = k_core_decomposition_within(g, &alive);
        // `>=`, not `>`: growing the working set can grow the kmax-core
        // without raising kmax, and the stale subset would otherwise be
        // returned.
        if dec.kmax >= kmax {
            kmax = dec.kmax;
            best = dec.max_core().to_vec();
        }
        if w_len == n {
            break;
        }
        // Degrees bound core numbers: once the remaining degrees fall below
        // kmax, the global kmax-core is inside the working set.
        if (g.degree(order[w_len]) as u32) < kmax {
            break;
        }
        // EMcore grows by fixed-size blocks rather than doubling.
        w_len = (w_len + block).min(n);
    }
    best.sort_unstable();
    let set = VertexSet::from_members(n, &best);
    let rho = density(oracle.as_ref(), g, &set);
    ApproxResult {
        result: DsdResult {
            vertices: best,
            density: rho,
        },
        kmax: kmax as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::k_core_decomposition;

    fn skewed() -> Graph {
        // K8 core + long sparse chains.
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        for i in 8..100u32 {
            edges.push((i, i % 8));
            if i > 8 {
                edges.push((i, i - 1));
            }
        }
        Graph::from_edges(100, &edges)
    }

    #[test]
    fn matches_bottom_up_kmax_core() {
        let g = skewed();
        let reference = k_core_decomposition(&g);
        let em = emcore_max_core(&g);
        assert_eq!(em.kmax, reference.kmax as u64);
        assert_eq!(em.result.vertices, reference.max_core().to_vec());
    }

    #[test]
    fn block_size_invariance() {
        let g = skewed();
        let reference = emcore_max_core_with_block(&g, 64);
        for block in [1, 3, 10, 50, 100, 500] {
            let r = emcore_max_core_with_block(&g, block);
            assert_eq!(r.kmax, reference.kmax, "block {block}");
            assert_eq!(r.result.vertices, reference.result.vertices);
        }
    }

    #[test]
    fn matches_core_app_for_edges() {
        let g = skewed();
        let em = emcore_max_core(&g);
        let ca = crate::approx::core_app(&g, &Pattern::edge());
        assert_eq!(em.kmax, ca.kmax);
        assert_eq!(em.result.vertices, ca.result.vertices);
    }

    #[test]
    fn empty_graph() {
        let r = emcore_max_core(&Graph::empty(0));
        assert_eq!(r.kmax, 0);
        assert!(r.result.is_empty());
    }
}
