//! (k, Ψ)-core decomposition — Algorithm 3 of the paper.
//!
//! Repeatedly removes the vertex of minimum instance-degree, recording the
//! running-max threshold as each vertex's clique-core number. The queue is
//! a hybrid bucket/heap ([`crate::bucket_queue::PeelQueue`]): dense O(1)
//! buckets in the paper's bin-sort spirit for the degree range where peel
//! traffic actually lives, an overflow heap for the unbounded-`u64` hub
//! tail that made a pure bin-sort impractical beyond h = 2.
//!
//! Decrements come from the oracle's cheapest engine: a store-backed
//! [`InstancePeeler`] when the Ψ-substrate is materialized (per-row
//! alive-member counts make each removal O(memberships touched) — the
//! whole decomposition is then one columnar pass over the instance store),
//! or streaming `removal_decrements` re-enumeration otherwise. Both paths
//! drive the same loop, so their outputs are bit-identical; debug builds
//! additionally cross-check the bucket order against a reference heap peel
//! on small inputs.
//!
//! The decomposition simultaneously tracks the densest *residual* subgraph
//! seen while peeling — this is the ρ′ of Pruning1 **and** exactly the
//! subgraph `PeelApp` (Algorithm 2) returns, so `peel.rs` and `approx.rs`
//! are thin wrappers over this engine.

use dsd_graph::{Graph, VertexId, VertexSet};

use crate::bucket_queue::PeelQueue;
use crate::oracle::{DensityOracle, InstancePeeler};

/// Result of a (k, Ψ)-core decomposition of `g[alive]`.
#[derive(Clone, Debug)]
pub struct CliqueCoreDecomposition {
    /// `core[v]` = clique-core number `core_G(v, Ψ)` (0 outside the
    /// decomposed set).
    pub core: Vec<u64>,
    /// Maximum clique-core number `kmax`.
    pub kmax: u64,
    /// Vertices in removal (peel) order; the residual graph after `i`
    /// removals is `peel_order[i..]`.
    pub peel_order: Vec<VertexId>,
    /// Initial instance-degrees `deg(v, Ψ)` in the decomposed subgraph.
    pub degrees: Vec<u64>,
    /// Total instances `μ` of the decomposed subgraph.
    pub mu: u64,
    /// Index into `peel_order` of the densest residual graph (ρ′ tracking).
    best_suffix: usize,
    /// ρ′ — the highest density among all residual graphs.
    pub best_density: f64,
}

impl CliqueCoreDecomposition {
    /// The (k, Ψ)-core as a vertex set (vertices with core number ≥ k).
    pub fn core_set(&self, k: u64) -> VertexSet {
        let mut s = VertexSet::empty(self.core.len());
        for &v in &self.peel_order {
            if self.core[v as usize] >= k {
                s.insert(v);
            }
        }
        s
    }

    /// The (kmax, Ψ)-core.
    pub fn max_core(&self) -> VertexSet {
        self.core_set(self.kmax)
    }

    /// The densest residual subgraph seen during peeling — PeelApp's `S*`
    /// and the source of the ρ′ lower bound (Pruning1).
    pub fn best_residual(&self) -> Vec<VertexId> {
        self.peel_order[self.best_suffix..].to_vec()
    }

    /// Approximate resident heap bytes (for substrate-cache accounting).
    pub fn bytes(&self) -> usize {
        8 * self.core.len() + 4 * self.peel_order.len() + 8 * self.degrees.len()
    }
}

/// Streaming decrement adapter: drives the shared peel loop through
/// per-call `removal_decrements` re-enumeration, for oracles without a
/// materialized store.
struct StreamingPeeler<'a> {
    g: &'a Graph,
    oracle: &'a dyn DensityOracle,
    live: VertexSet,
}

impl InstancePeeler for StreamingPeeler<'_> {
    fn degrees(&self) -> Vec<u64> {
        self.oracle.degrees(self.g, &self.live)
    }

    fn remove(&mut self, v: VertexId, sink: &mut dyn FnMut(VertexId, u64)) {
        for (u, amount) in self.oracle.removal_decrements(self.g, &self.live, v) {
            sink(u, amount);
        }
        self.live.remove(v);
    }
}

/// Runs Algorithm 3 on the whole graph.
pub fn decompose(g: &Graph, oracle: &dyn DensityOracle) -> CliqueCoreDecomposition {
    decompose_within(g, oracle, &VertexSet::full(g.num_vertices()))
}

/// Runs Algorithm 3 on `g[alive]`.
pub fn decompose_within(
    g: &Graph,
    oracle: &dyn DensityOracle,
    alive: &VertexSet,
) -> CliqueCoreDecomposition {
    let dec = match oracle.peeler(g, alive) {
        Some(mut peeler) => peel(g.num_vertices(), alive, oracle.psi_size(), peeler.as_mut()),
        None => {
            let mut streaming = StreamingPeeler {
                g,
                oracle,
                live: alive.clone(),
            };
            peel(g.num_vertices(), alive, oracle.psi_size(), &mut streaming)
        }
    };
    // The bucket queue pops min-degree ties in a different order than the
    // old lazy heap; core numbers are tie-break invariant, which debug
    // builds verify against a reference heap peel on small inputs.
    #[cfg(debug_assertions)]
    if g.num_vertices() <= 96 {
        debug_assert_eq!(
            dec.core,
            reference_heap_core(g, oracle, alive),
            "bucket-queue peel must reproduce heap core numbers"
        );
    }
    dec
}

/// The shared peel loop: one [`PeelQueue`] over any decrement engine.
fn peel(
    n: usize,
    alive: &VertexSet,
    psi_size: usize,
    peeler: &mut dyn InstancePeeler,
) -> CliqueCoreDecomposition {
    let mut live = alive.clone();
    let degrees = peeler.degrees();
    let mut deg = degrees.clone();
    let mu_total: u64 = degrees.iter().sum::<u64>() / psi_size as u64;

    let max_deg = live.iter().map(|v| deg[v as usize]).max().unwrap_or(0);
    let mut queue = PeelQueue::new(max_deg);
    for v in live.iter() {
        queue.push(deg[v as usize], v);
    }

    let mut core = vec![0u64; n];
    let mut peel_order = Vec::with_capacity(live.len());
    let mut running_k = 0u64;
    let mut kmax = 0u64;
    let mut mu = mu_total;
    let mut best_suffix = 0usize;
    let mut best_density = if live.is_empty() {
        0.0
    } else {
        mu as f64 / live.len() as f64
    };

    while let Some((d, v)) = queue.pop() {
        if !live.contains(v) || d != deg[v as usize] {
            continue; // stale queue entry
        }
        // Peel v: its clique-core number is the running-max threshold.
        running_k = running_k.max(d);
        core[v as usize] = running_k;
        kmax = kmax.max(running_k);

        // Instances through v die; decrement co-members (Alg. 3 lines 6-9).
        peeler.remove(v, &mut |u, amount| {
            debug_assert!(live.contains(u) && u != v);
            deg[u as usize] -= amount.min(deg[u as usize]);
            queue.push(deg[u as usize], u);
        });
        mu -= d;
        live.remove(v);
        peel_order.push(v);

        // ρ′ tracking over the residual graph.
        if !live.is_empty() {
            let density = mu as f64 / live.len() as f64;
            if density > best_density {
                best_density = density;
                best_suffix = peel_order.len();
            }
        }
    }
    debug_assert_eq!(mu, 0, "all instances must be accounted for");
    // `peel_order[best_suffix..]` only covers removed vertices; since we
    // peel to exhaustion, every vertex ends up in `peel_order`, so suffixes
    // are complete residual graphs.
    CliqueCoreDecomposition {
        core,
        kmax,
        peel_order,
        degrees,
        mu: mu_total,
        best_suffix,
        best_density,
    }
}

/// The pre-bucket-queue peel (lazy binary min-heap over `(deg, v)`), kept
/// as the debug-build referee for the tie-break-invariance of core
/// numbers. Streams decrements straight from the oracle, so it also
/// cross-checks the store-backed peeler against `removal_decrements`.
#[cfg(debug_assertions)]
fn reference_heap_core(g: &Graph, oracle: &dyn DensityOracle, alive: &VertexSet) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = g.num_vertices();
    let mut live = alive.clone();
    let mut deg = oracle.degrees(g, &live);
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::with_capacity(live.len());
    for v in live.iter() {
        heap.push(Reverse((deg[v as usize], v)));
    }
    let mut core = vec![0u64; n];
    let mut running_k = 0u64;
    while let Some(Reverse((d, v))) = heap.pop() {
        if !live.contains(v) || d != deg[v as usize] {
            continue;
        }
        running_k = running_k.max(d);
        core[v as usize] = running_k;
        for (u, amount) in oracle.removal_decrements(g, &live, v) {
            deg[u as usize] -= amount.min(deg[u as usize]);
            heap.push(Reverse((deg[u as usize], u)));
        }
        live.remove(v);
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{density, oracle_for};
    use dsd_motif::Pattern;

    /// Figure 3(b)'s graph: 4-clique {A,B,C,D}, triangle {D,E,F}, edge
    /// {G,H}. With Ψ = triangle: {A,B,C,D} is the (3,Ψ)-core (each vertex
    /// in 3 of the 4 triangle instances); {D,E,F} adds a (1,Ψ)-core; G,H
    /// have clique-core number 0.
    fn figure3() -> Graph {
        let (a, b, c, d, e, f, g_, h) = (0u32, 1, 2, 3, 4, 5, 6, 7);
        Graph::from_edges(
            8,
            &[
                (a, b),
                (a, c),
                (a, d),
                (b, c),
                (b, d),
                (c, d),
                (d, e),
                (e, f),
                (d, f),
                (g_, h),
            ],
        )
    }

    #[test]
    fn figure3b_triangle_cores() {
        let g = figure3();
        let oracle = oracle_for(&Pattern::triangle());
        let dec = decompose(&g, oracle.as_ref());
        assert_eq!(dec.kmax, 3);
        assert_eq!(dec.max_core().to_vec(), vec![0, 1, 2, 3]);
        // D is in both triangles regions: core number 3 (from the clique).
        assert_eq!(dec.core[3], 3);
        // E, F participate in 1 triangle.
        assert_eq!(dec.core[4], 1);
        assert_eq!(dec.core[5], 1);
        // G, H in none.
        assert_eq!(dec.core[6], 0);
        assert_eq!(dec.core[7], 0);
    }

    #[test]
    fn edge_psi_matches_classical_kcore() {
        let g = figure3();
        let oracle = oracle_for(&Pattern::edge());
        let dec = decompose(&g, oracle.as_ref());
        let classical = crate::kcore::k_core_decomposition(&g);
        for v in g.vertices() {
            assert_eq!(
                dec.core[v as usize], classical.core[v as usize] as u64,
                "vertex {v}"
            );
        }
        assert_eq!(dec.kmax, classical.kmax as u64);
    }

    #[test]
    fn core_member_degree_at_least_k_inside_core() {
        let g = figure3();
        for psi in [Pattern::edge(), Pattern::triangle(), Pattern::two_star()] {
            let oracle = oracle_for(&psi);
            let dec = decompose(&g, oracle.as_ref());
            for k in 1..=dec.kmax {
                let core = dec.core_set(k);
                if core.is_empty() {
                    continue;
                }
                let deg = oracle.degrees(&g, &core);
                for v in core.iter() {
                    assert!(
                        deg[v as usize] >= k,
                        "{}: vertex {v} in ({k},Ψ)-core has degree {}",
                        psi.name(),
                        deg[v as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn theorem1_density_bounds() {
        let g = figure3();
        for psi in [Pattern::edge(), Pattern::triangle(), Pattern::diamond()] {
            let oracle = oracle_for(&psi);
            let dec = decompose(&g, oracle.as_ref());
            if dec.kmax == 0 {
                continue;
            }
            let core = dec.max_core();
            let rho = density(oracle.as_ref(), &g, &core);
            let lower = dec.kmax as f64 / psi.vertex_count() as f64;
            assert!(
                rho + 1e-9 >= lower && rho <= dec.kmax as f64 + 1e-9,
                "{}: ρ = {rho}, bounds [{lower}, {}]",
                psi.name(),
                dec.kmax
            );
        }
    }

    #[test]
    fn best_residual_density_is_achieved() {
        let g = figure3();
        let oracle = oracle_for(&Pattern::edge());
        let dec = decompose(&g, oracle.as_ref());
        let members = dec.best_residual();
        let set = VertexSet::from_members(8, &members);
        let rho = density(oracle.as_ref(), &g, &set);
        assert!((rho - dec.best_density).abs() < 1e-9);
        // Figure 5 analogue: peeling cannot beat the true EDS here (the
        // 4-clique has density 6/4 = 1.5).
        assert!(dec.best_density >= 1.5 - 1e-9);
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = Graph::empty(3);
        let oracle = oracle_for(&Pattern::triangle());
        let dec = decompose(&g, oracle.as_ref());
        assert_eq!(dec.kmax, 0);
        assert_eq!(dec.mu, 0);
        assert_eq!(dec.peel_order.len(), 3);
        assert_eq!(dec.best_density, 0.0);
    }

    #[test]
    fn nested_cores_property() {
        let g = figure3();
        let oracle = oracle_for(&Pattern::triangle());
        let dec = decompose(&g, oracle.as_ref());
        for k in 0..dec.kmax {
            let lo = dec.core_set(k);
            let hi = dec.core_set(k + 1);
            for v in hi.iter() {
                assert!(lo.contains(v));
            }
        }
    }

    #[test]
    fn restricted_decomposition_ignores_dead_vertices() {
        let g = figure3();
        let oracle = oracle_for(&Pattern::triangle());
        let mut alive = VertexSet::full(8);
        alive.remove(0);
        let dec = decompose_within(&g, oracle.as_ref(), &alive);
        // Without A the 4-clique degenerates to a triangle {B,C,D}.
        assert_eq!(dec.kmax, 1);
        assert_eq!(dec.core[0], 0);
    }
}
