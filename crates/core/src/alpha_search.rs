//! The shared α-search framework behind every exact solver.
//!
//! All of the paper's exact algorithms — `Exact`/`PExact` (Algorithms 1
//! and 8), `CoreExact`/`CorePExact` (Algorithm 4), the Section-6.3 query
//! variant, and the exact fast paths of the size-constrained objectives —
//! reduce to the same skeleton: binary-search a guessed density α, where
//! each probe asks a min-cut decision question ("does some subgraph beat
//! α?") and feasible probes yield a witness subgraph. Historically each
//! call site hand-rolled its own loop; this module owns the one
//! implementation:
//!
//! * [`DecisionProbe`] — the per-α decision a solver plugs in. Probes own
//!   everything α-independent (the flow network, witness bookkeeping,
//!   CoreExact's shrinking-network restarts) and are free to mutate
//!   themselves on feasible probes;
//! * [`alpha_search`] — the bisection loop with the shared gap /
//!   tolerance / step-budget / witness handling, instrumented through
//!   [`ExactStats`];
//! * [`density_gap`] / [`effective_gap`] — Lemma 12's stopping separation
//!   and its tolerance-widened form, previously copy-pasted per solver;
//! * [`NetworkProbe`] — the standard probe over a [`DensityNetwork`]
//!   used by `Exact` and reusable by benches and tests.
//!
//! Probes run against parametric flow state (see
//! [`crate::flownet::DensityNetwork`] and `dsd_flow::parametric`): only
//! the `v→t` capacities depend on α and they grow monotonically with it,
//! so after the first feasible probe every later probe warm-resolves from
//! checkpointed flow instead of paying a from-scratch max-flow — the
//! Gallo–Grigoriadis–Tarjan amortization \[29\].

use dsd_flow::ResolveStats;
use dsd_graph::VertexId;

use crate::flownet::{DensityNetwork, FlowBackend};

/// Instrumentation from an α-search (shared by `Exact`, `CoreExact`, the
/// query variant, and the size-constrained exact fast paths).
#[derive(Clone, Debug, Default)]
pub struct ExactStats {
    /// Number of binary-search iterations (min-cut probes).
    pub iterations: usize,
    /// Flow-network node count at each iteration (constant for `Exact`,
    /// shrinking for `CoreExact` — the Figure-9 series).
    pub network_nodes: Vec<usize>,
    /// Initial `[l, u]` bounds on α.
    pub initial_bounds: (f64, f64),
    /// Whether a step budget stopped the search before the gap closed
    /// (the result is then the best witness found, not certified optimal).
    pub budget_exhausted: bool,
    /// Probes served warm by parametric resolve (flow-state reuse)
    /// instead of a from-scratch max-flow.
    pub resolve_hits: usize,
    /// Total augmenting work (edge scans) spent inside the flow solvers,
    /// warm and cold probes alike.
    pub augment_work: u64,
    /// Components skipped outright because a region certificate proved
    /// their exact optimum cannot beat the current lower bound (the
    /// sharded scatter-gather path; always 0 for single-engine solves).
    pub pruned_components: usize,
}

impl ExactStats {
    /// Folds a probe sequence's flow-reuse counters into these stats.
    pub fn absorb_flow(&mut self, flow: ResolveStats) {
        self.resolve_hits += flow.resolve_hits;
        self.augment_work += flow.augment_work;
    }

    /// Folds another search's stats into these (used by multi-round
    /// drivers like the top-k scan).
    pub fn merge(&mut self, other: &ExactStats) {
        self.iterations += other.iterations;
        self.network_nodes.extend_from_slice(&other.network_nodes);
        self.budget_exhausted |= other.budget_exhausted;
        self.resolve_hits += other.resolve_hits;
        self.augment_work += other.augment_work;
        self.pruned_components += other.pruned_components;
    }
}

/// The binary-search stopping gap `1 / (n(n−1))` (Lemma 12: distinct
/// densities differ by at least this much).
pub fn density_gap(n: usize) -> f64 {
    if n < 2 {
        1.0
    } else {
        1.0 / (n as f64 * (n as f64 - 1.0))
    }
}

/// The effective stopping gap: `max(density_gap(n), tolerance)`. The
/// Lemma-12 default keeps the search certified exact; a larger tolerance
/// trades certified precision for fewer probes. NaN tolerances are
/// rejected in debug builds (they would silently disable the stop
/// condition and then flow into the α edge capacities).
pub fn effective_gap(n: usize, tolerance: Option<f64>) -> f64 {
    let tol = tolerance.unwrap_or(0.0);
    debug_assert!(!tol.is_nan(), "NaN α-search tolerance");
    density_gap(n).max(tol)
}

/// One min-cut decision probe of an α-search.
///
/// `probe(alpha)` answers "does some subgraph beat density α?" and
/// returns a witness when feasible. Implementations own all per-solver
/// state and behaviour: the flow network and its parametric reuse,
/// witness bookkeeping (e.g. CoreExact evaluating each witness against a
/// global best), and feasibility-triggered mutation (e.g. CoreExact
/// rebuilding a smaller network once the lower bound outgrows the located
/// core). [`alpha_search`] guarantees probes arrive with α strictly above
/// the current lower bound, so checkpointed flow state at the lower bound
/// stays reusable.
pub trait DecisionProbe {
    /// The feasibility witness (typically the subgraph's vertices; `()`
    /// when the probe tracks witnesses itself).
    type Witness;

    /// Decides whether some subgraph beats density `alpha`.
    fn probe(&mut self, alpha: f64) -> Option<Self::Witness>;

    /// Current flow-network node count (the Figure-9 instrumentation).
    fn network_nodes(&self) -> usize;
}

/// Where an α-search ended.
#[derive(Clone, Debug)]
pub struct SearchOutcome<W> {
    /// Final lower bound (the α of the last feasible probe, or the
    /// initial lower bound when none was feasible).
    pub lower: f64,
    /// Final upper bound.
    pub upper: f64,
    /// Witness of the last feasible probe. At the Lemma-12 gap this *is*
    /// the optimum; at a coarser tolerance it is within that gap of it.
    pub witness: Option<W>,
}

/// The one α-search loop: bisects `[lower, upper]` down to `gap`, probing
/// the midpoint each step, raising the lower bound on feasible probes and
/// lowering the upper bound otherwise.
///
/// `budget` caps `stats.iterations` *across searches sharing the same
/// stats* (CoreExact's per-component searches share one budget); when it
/// trips, `stats.budget_exhausted` is set and the best witness so far
/// stands. Every probe is counted in `stats` along with the probe's
/// current network size.
pub fn alpha_search<P: DecisionProbe>(
    probe: &mut P,
    bounds: (f64, f64),
    gap: f64,
    budget: usize,
    stats: &mut ExactStats,
) -> SearchOutcome<P::Witness> {
    let (mut lower, mut upper) = bounds;
    debug_assert!(!gap.is_nan() && gap > 0.0, "degenerate α-search gap {gap}");
    debug_assert!(
        lower.is_finite() && upper.is_finite(),
        "non-finite α bounds [{lower}, {upper}]"
    );
    let mut witness = None;
    while upper - lower >= gap {
        if stats.iterations >= budget {
            stats.budget_exhausted = true;
            break;
        }
        let alpha = (lower + upper) / 2.0;
        stats.iterations += 1;
        stats.network_nodes.push(probe.network_nodes());
        match probe.probe(alpha) {
            Some(w) => {
                lower = alpha;
                witness = Some(w);
            }
            None => upper = alpha,
        }
    }
    SearchOutcome {
        lower,
        upper,
        witness,
    }
}

/// The standard probe over a [`DensityNetwork`]: feasible iff the min-cut
/// source side is non-trivial (Lemma 14), witnessed by the subgraph's
/// parent-graph vertex ids. Feasible probes checkpoint the network's flow
/// state, so the parametric chain warm-resolves every later probe.
pub struct NetworkProbe<'a> {
    net: &'a mut DensityNetwork,
    backend: FlowBackend,
}

impl<'a> NetworkProbe<'a> {
    /// Wraps a network for one α-search with the given max-flow backend.
    pub fn new(net: &'a mut DensityNetwork, backend: FlowBackend) -> Self {
        NetworkProbe { net, backend }
    }
}

impl DecisionProbe for NetworkProbe<'_> {
    type Witness = Vec<VertexId>;

    fn probe(&mut self, alpha: f64) -> Option<Vec<VertexId>> {
        self.net.solve(alpha, self.backend)
    }

    fn network_nodes(&self) -> usize {
        self.net.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A probe with a known threshold: feasible strictly below ρ = 1.5.
    struct Threshold {
        rho: f64,
        probes: usize,
    }

    impl DecisionProbe for Threshold {
        type Witness = f64;

        fn probe(&mut self, alpha: f64) -> Option<f64> {
            self.probes += 1;
            (alpha < self.rho).then_some(alpha)
        }

        fn network_nodes(&self) -> usize {
            42
        }
    }

    #[test]
    fn converges_to_the_threshold() {
        let mut probe = Threshold {
            rho: 1.5,
            probes: 0,
        };
        let mut stats = ExactStats::default();
        let out = alpha_search(&mut probe, (0.0, 8.0), 1e-6, usize::MAX, &mut stats);
        assert!(out.lower < 1.5 && 1.5 <= out.upper + 1e-6);
        assert!(out.upper - out.lower < 1e-6);
        assert_eq!(stats.iterations, probe.probes);
        assert_eq!(stats.network_nodes.len(), stats.iterations);
        assert!(!stats.budget_exhausted);
        assert!((out.witness.unwrap() - out.lower).abs() < 1e-12);
    }

    #[test]
    fn budget_stops_the_search_and_is_shared() {
        let mut stats = ExactStats::default();
        let mut probe = Threshold {
            rho: 1.0,
            probes: 0,
        };
        let out = alpha_search(&mut probe, (0.0, 16.0), 1e-9, 3, &mut stats);
        assert!(stats.budget_exhausted);
        assert_eq!(stats.iterations, 3);
        // A second search against the same stats gets no probes at all.
        let out2 = alpha_search(&mut probe, (out.lower, 16.0), 1e-9, 3, &mut stats);
        assert_eq!(stats.iterations, 3);
        assert!(out2.witness.is_none());
    }

    #[test]
    fn gap_and_tolerance_compose() {
        assert_eq!(density_gap(1), 1.0);
        assert!((density_gap(10) - 1.0 / 90.0).abs() < 1e-15);
        assert_eq!(effective_gap(10, None), density_gap(10));
        assert_eq!(effective_gap(10, Some(0.25)), 0.25);
        // A tolerance below the Lemma-12 separation never loosens it.
        assert_eq!(effective_gap(10, Some(1e-9)), density_gap(10));
    }
}
