//! `Parallelism`: the one worker-count knob shared by everything that
//! spawns threads.
//!
//! Before this type existed, every parallel entry point grew its own
//! ad-hoc `threads: usize` argument (`inc_app_parallel`,
//! `ParallelCliqueOracle`, bench drivers), so the CLI, the benches, and a
//! batch executor could silently disagree about how many workers a process
//! runs. `Parallelism` is that number, validated once: construct it at the
//! edge (CLI flag, service config), pass it down.

/// Worker-count configuration for parallel degree passes and batched
/// request execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Exactly one worker: every code path is deterministic and
    /// allocation-free of threads. This is the default everywhere.
    pub const fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// `threads` workers; 0 is clamped to 1.
    pub const fn new(threads: usize) -> Self {
        Parallelism {
            threads: if threads == 0 { 1 } else { threads },
        }
    }

    /// One worker per hardware thread the OS reports (1 when the query
    /// fails).
    pub fn available() -> Self {
        Parallelism::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The worker count (always ≥ 1).
    pub const fn threads(self) -> usize {
        self.threads
    }

    /// Whether this configuration runs on the caller's thread only.
    pub const fn is_serial(self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_and_reports() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(8).threads(), 8);
        assert!(Parallelism::serial().is_serial());
        assert!(!Parallelism::new(2).is_serial());
        assert_eq!(Parallelism::default(), Parallelism::serial());
        assert!(Parallelism::available().threads() >= 1);
    }
}
