//! `Parallelism`: the one worker-count knob shared by everything that
//! spawns threads.
//!
//! Before this type existed, every parallel entry point grew its own
//! ad-hoc `threads: usize` argument (`inc_app_parallel`,
//! `ParallelCliqueOracle`, bench drivers), so the CLI, the benches, and a
//! batch executor could silently disagree about how many workers a process
//! runs. `Parallelism` is that number, validated once: construct it at the
//! edge (CLI flag, service config), pass it down.

/// Worker-count configuration for parallel degree passes and batched
/// request execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Exactly one worker: every code path is deterministic and
    /// allocation-free of threads. This is the default everywhere.
    pub const fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// `threads` workers; 0 is clamped to 1.
    pub const fn new(threads: usize) -> Self {
        Parallelism {
            threads: if threads == 0 { 1 } else { threads },
        }
    }

    /// One worker per hardware thread the OS reports (1 when the query
    /// fails).
    pub fn available() -> Self {
        Parallelism::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The worker count (always ≥ 1).
    pub const fn threads(self) -> usize {
        self.threads
    }

    /// Whether this configuration runs on the caller's thread only.
    pub const fn is_serial(self) -> bool {
        self.threads == 1
    }

    /// Runs `f(index, item)` once per item across this configuration's
    /// workers, returning the results in **item order** regardless of
    /// completion order. The small worker-pool primitive below the serve
    /// layer: serial configurations (and single-item inputs) run inline on
    /// the caller's thread, so `scatter` is deterministic whenever `f` is;
    /// parallel runs pull items from a shared atomic cursor, so skewed
    /// per-item costs self-balance instead of stalling a static partition.
    ///
    /// Any fold of the results that is commutative and associative (a max,
    /// a sum) is therefore bit-identical to the serial fold — what the
    /// sharded scatter-gather relies on for its ρ* bound.
    pub fn scatter<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = self.threads.min(items.len());
        let collected = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("scatter worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in collected {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every index visited exactly once"))
            .collect()
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_preserves_item_order_and_covers_every_item() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 128] {
            let got = Parallelism::new(threads).scatter(&items, |i, &x| {
                assert_eq!(i, x, "index matches item position");
                x * x
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
        let empty: Vec<usize> = Vec::new();
        assert!(Parallelism::new(4).scatter(&empty, |_, &x| x).is_empty());
    }

    #[test]
    fn clamps_and_reports() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(8).threads(), 8);
        assert!(Parallelism::serial().is_serial());
        assert!(!Parallelism::new(2).is_serial());
        assert_eq!(Parallelism::default(), Parallelism::serial());
        assert!(Parallelism::available().threads() >= 1);
    }
}
