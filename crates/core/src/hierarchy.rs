//! Core-hierarchy utilities on top of a (k, Ψ)-core decomposition.
//!
//! The paper's Theorem 1 is a statement about the whole nested family
//! `R_0 ⊇ R_1 ⊇ … ⊇ R_kmax`; downstream users (visualization, community
//! hierarchies, the index structures the paper's introduction motivates)
//! want that family as data. This module materializes per-level summaries
//! and membership without re-running the decomposition.

use dsd_graph::{connected_components_within, Graph, VertexSet};

use crate::clique_core::CliqueCoreDecomposition;
use crate::oracle::{density, DensityOracle};

/// Summary of one level of the core hierarchy.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreLevel {
    /// Core order `k`.
    pub k: u64,
    /// Number of vertices with core number ≥ k.
    pub size: usize,
    /// Number of connected components of the (k, Ψ)-core.
    pub components: usize,
    /// Ψ-density of the (k, Ψ)-core.
    pub density: f64,
    /// Theorem-1 lower bound `k / |VΨ|`.
    pub lower_bound: f64,
}

/// Materializes the full hierarchy `k = 0 ..= kmax`.
///
/// Each level satisfies Theorem 1: `lower_bound ≤ density ≤ kmax`
/// (debug-asserted).
pub fn core_hierarchy(
    g: &Graph,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
) -> Vec<CoreLevel> {
    let mut levels = Vec::with_capacity(dec.kmax as usize + 1);
    for k in 0..=dec.kmax {
        let set = dec.core_set(k);
        let cc = connected_components_within(g, &set);
        let rho = density(oracle, g, &set);
        let lower = k as f64 / oracle.psi_size() as f64;
        debug_assert!(k == 0 || set.is_empty() || rho + 1e-9 >= lower);
        debug_assert!(rho <= dec.kmax as f64 + 1e-9);
        levels.push(CoreLevel {
            k,
            size: set.len(),
            components: cc.num_components,
            density: rho,
            lower_bound: lower,
        });
    }
    levels
}

/// The *core spectrum*: for each vertex, the density of the innermost core
/// containing it. A cheap per-vertex "how dense is my context" signal used
/// for ranking (the paper's social-piggybacking motivation).
pub fn core_spectrum(
    g: &Graph,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
) -> Vec<f64> {
    let levels = core_hierarchy(g, oracle, dec);
    dec.core
        .iter()
        .map(|&k| levels[k as usize].density)
        .collect()
}

/// The innermost non-empty level whose density is at least `threshold`,
/// if any — a "find me a ≥ρ community" query answered from the hierarchy
/// alone (no flow computation), justified by Theorem 1's lower bounds.
pub fn first_level_with_density(
    g: &Graph,
    oracle: &dyn DensityOracle,
    dec: &CliqueCoreDecomposition,
    threshold: f64,
) -> Option<(u64, VertexSet)> {
    for k in (0..=dec.kmax).rev() {
        let set = dec.core_set(k);
        if set.is_empty() {
            continue;
        }
        if density(oracle, g, &set) >= threshold {
            // Innermost-first scan: the first hit is the densest level
            // meeting the bar with the smallest membership.
            return Some((k, set));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique_core::decompose;
    use crate::oracle::oracle_for;
    use dsd_motif::Pattern;

    fn nested_graph() -> Graph {
        // K6 core {0..5}, ring of triangles around it, pendant chain.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        edges.extend_from_slice(&[(6, 7), (7, 8), (6, 8), (8, 0)]);
        edges.extend_from_slice(&[(9, 10), (10, 11)]);
        Graph::from_edges(12, &edges)
    }

    #[test]
    fn hierarchy_levels_are_monotone() {
        let g = nested_graph();
        let oracle = oracle_for(&Pattern::triangle());
        let dec = decompose(&g, oracle.as_ref());
        let levels = core_hierarchy(&g, oracle.as_ref(), &dec);
        assert_eq!(levels.len(), dec.kmax as usize + 1);
        for w in levels.windows(2) {
            assert!(w[1].size <= w[0].size, "sizes must shrink");
            assert!(w[1].k == w[0].k + 1);
        }
        // Innermost level is the K6 (each vertex in C(5,2) = 10 triangles).
        let top = levels.last().unwrap();
        assert_eq!(top.size, 6);
        assert_eq!(top.components, 1);
    }

    #[test]
    fn spectrum_assigns_inner_density_to_core_members() {
        let g = nested_graph();
        let oracle = oracle_for(&Pattern::edge());
        let dec = decompose(&g, oracle.as_ref());
        let spectrum = core_spectrum(&g, oracle.as_ref(), &dec);
        // K6 members see the densest context.
        let hub = spectrum[0];
        let leaf = spectrum[11];
        assert!(hub > leaf);
    }

    #[test]
    fn first_level_query() {
        let g = nested_graph();
        let oracle = oracle_for(&Pattern::edge());
        let dec = decompose(&g, oracle.as_ref());
        // K6 has edge density 15/6 = 2.5.
        let (k, set) = first_level_with_density(&g, oracle.as_ref(), &dec, 2.4).unwrap();
        assert!(k >= 5);
        assert_eq!(set.to_vec(), vec![0, 1, 2, 3, 4, 5]);
        assert!(first_level_with_density(&g, oracle.as_ref(), &dec, 100.0).is_none());
    }

    #[test]
    fn empty_graph_hierarchy() {
        let g = Graph::empty(3);
        let oracle = oracle_for(&Pattern::triangle());
        let dec = decompose(&g, oracle.as_ref());
        let levels = core_hierarchy(&g, oracle.as_ref(), &dec);
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].k, 0);
        assert_eq!(levels[0].size, 3);
    }
}
