//! The sharded-graph subsystem: partitioned engines with scatter-gather
//! solve and bound-pruned cross-shard merge.
//!
//! A [`ShardedGraph`] splits one logical graph into per-shard
//! [`DsdEngine`]s over vertex-induced subgraphs (cut-aware
//! degeneracy-order assignment via [`dsd_graph::partition`]), keeps a
//! *spine* engine over the whole graph, and answers requests with a
//! decompose-then-combine discipline:
//!
//! 1. **Scatter** — solve `Densest` locally on every shard with
//!    `CoreExact`, fanned out across the configured worker pool
//!    ([`ShardedGraph::with_parallelism`]; serial by default). Each shard
//!    engine memoizes its own substrates and is individually budgetable
//!    by the serve layer's [`crate::serve::SubstrateGovernor`].
//! 2. **Gather** — the best local density ρ* is a global lower bound,
//!    because shards are vertex-induced: a subgraph confined to one shard
//!    has identical Ψ-instance counts locally and globally. Each exact
//!    local optimum becomes a [`RegionCertificates`] entry.
//! 3. **Merge** — run the *same* exact code path the unsharded engine
//!    runs ([`DsdEngine::solve_certified`]), where located-core
//!    components confined to one certified shard are skipped whenever
//!    their certified optimum cannot beat the running lower bound — a
//!    skip that provably mirrors an infeasible seed probe (Lemma 14
//!    strict feasibility), so answers stay **bit-identical** to the
//!    single-engine path. Cross-shard structure (boundary edges, split
//!    components) always flows through the real flow machinery.
//!
//! The headline pruning metric reported by [`ShardedSolve`] is the
//! paper's located-core test (Lemma 7 via
//! [`crate::bounds::locate_core_order`]): a shard whose local `kmax`
//! sits below `⌈ρ*⌉` cannot contain a subgraph beating ρ* and is counted
//! as pruned. On community-structured inputs (see
//! `dsd_datasets::multi_community`) most shards fail that test and their
//! components never build a flow network in the merge.
//!
//! Updates route by touched shard: an edge batch is always applied to
//! the spine, while each intra-shard edge is forwarded (in local ids) to
//! the owning shard engine only — sibling shards keep their epochs and
//! warm substrates. Cross-shard edges exist in no shard subgraph and
//! touch the spine alone. Vertex-induced shard subgraphs stay
//! vertex-induced under any edge batch, so certificates remain sound
//! after updates.

use std::sync::Arc;

use dsd_graph::{partition_degeneracy, Graph, GraphUpdate, InducedSubgraph, VertexId};

use crate::bounds::locate_core_order;
use crate::core_exact::RegionCertificates;
use crate::engine::{ApplyStats, DsdEngine, DsdRequest, Guarantee, Objective, Solution};
use crate::oracle::DEFAULT_STORE_BUDGET;
use crate::parallelism::Parallelism;
use crate::Method;

/// How a [`ShardPlanner`] routes one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardPlan {
    /// Scatter to shard engines, gather ρ* and certificates, run the
    /// certified merge on the spine.
    ScatterGather,
    /// Spine only: the objective/method cannot consume shard
    /// certificates (AtMostK, WithQuery, explicitly non-CoreExact
    /// Densest methods), so scattering would be pure overhead.
    SpineOnly,
}

/// Routing policy for [`DsdRequest`]s against a [`ShardedGraph`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardPlanner;

impl ShardPlanner {
    /// Decides the execution plan for `req`.
    ///
    /// `Densest` scatters for `CoreExact`/`Auto` (the certified merge
    /// consumes certificates only on its CoreExact arm; `Auto` may
    /// resolve there), `TopK` scatters for its round-0 scan, `AtLeastK`
    /// for its exact fast path. Everything else — and shardings that
    /// degenerated to a single shard — goes straight to the spine.
    pub fn plan(req: &DsdRequest, num_shards: usize) -> ShardPlan {
        if num_shards <= 1 {
            return ShardPlan::SpineOnly;
        }
        match req.objective_ref() {
            Objective::Densest => match req.method_choice() {
                Method::CoreExact | Method::Auto => ShardPlan::ScatterGather,
                _ => ShardPlan::SpineOnly,
            },
            Objective::TopK(_) | Objective::AtLeastK(_) => ShardPlan::ScatterGather,
            Objective::AtMostK(_) | Objective::WithQuery(_) => ShardPlan::SpineOnly,
        }
    }
}

/// One shard: its engine plus the global↔local id maps.
struct Shard {
    engine: Arc<DsdEngine<'static>>,
    /// `members[local]` = global vertex id (ascending — the induced
    /// subgraph's `orig` map).
    members: Vec<VertexId>,
}

/// Per-shard outcome of a scatter phase.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Vertices in the shard subgraph.
    pub vertices: usize,
    /// Best local Ψ-density found by the shard solve.
    pub local_density: f64,
    /// Local `kmax` of the shard's (k, Ψ)-core decomposition.
    pub kmax: Option<u64>,
    /// Whether the shard's local optimum is certified exact (and so
    /// contributed a region certificate to the merge).
    pub certified: bool,
    /// The located-core bound test: `kmax < locate_core_order(ρ*)`
    /// proves no subgraph of this shard can beat the best local density,
    /// so the merge can never need its interior.
    pub pruned: bool,
}

/// A sharded solve: the (bit-identical) answer plus scatter telemetry.
#[derive(Clone, Debug)]
pub struct ShardedSolve {
    /// The final answer — bit-identical to the unsharded engine's.
    pub solution: Solution,
    /// Best local density over all shards (the gather lower bound);
    /// 0.0 when the plan never scattered.
    pub rho_star: f64,
    /// Per-shard scatter outcomes (empty when the plan never scattered).
    pub shards: Vec<ShardReport>,
    /// Actual shard count of the partition. `partition_degeneracy` trims
    /// trailing empty shards, so this can be smaller than the requested
    /// count — callers should report this, not what they asked for.
    pub shards_total: usize,
    /// Shards failing the located-core bound test against ρ*.
    pub shards_pruned: usize,
    /// Located-core components the certified merge skipped without
    /// building a flow network.
    pub pruned_components: usize,
    /// Whether the scatter-gather plan ran (vs spine-only delegation).
    pub scattered: bool,
}

/// What one [`ShardedGraph::apply`] batch did.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardedApply {
    /// The spine engine's apply outcome (the authoritative epoch/count
    /// accounting for the logical graph).
    pub spine: ApplyStats,
    /// Shard engines that received a local sub-batch; siblings outside
    /// this count were not touched at all (no barrier, no epoch bump).
    pub shards_touched: usize,
    /// Updates whose endpoints straddle shards: they live only in the
    /// spine (and the boundary overlay it implies), never in a shard
    /// subgraph.
    pub cross_shard: usize,
    /// Ψ-substrates repaired in place across the spine and every touched
    /// shard engine (siblings outside the batch footprint never count).
    pub substrates_repaired: usize,
    /// Ψ-substrates that fell back to invalidation across the same set.
    pub substrates_rebuilt: usize,
}

/// One logical graph fanned out over per-shard engines plus a spine.
///
/// See the module docs for the execution model. All engines (spine and
/// shards) are plain [`DsdEngine`]s: the serve layer registers each with
/// its [`crate::serve::SubstrateGovernor`] so shard substrates are
/// budgeted exactly like standalone graphs.
pub struct ShardedGraph {
    spine: Arc<DsdEngine<'static>>,
    shards: Vec<Shard>,
    /// `assignment[v]` = shard of global vertex `v`.
    assignment: Vec<u32>,
    /// `local_id[v]` = id of global vertex `v` inside its shard.
    local_id: Vec<u32>,
    /// Edges crossing shards at partition time.
    boundary_edges: usize,
    /// Worker pool for the scatter phase (shard solves run concurrently;
    /// serial by default).
    parallelism: Parallelism,
}

impl ShardedGraph {
    /// Partitions `graph` into at most `num_shards` shards with the
    /// default per-engine substrate budget.
    pub fn new(graph: Graph, num_shards: usize) -> ShardedGraph {
        Self::with_substrate_budget(graph, num_shards, Some(DEFAULT_STORE_BUDGET))
    }

    /// [`ShardedGraph::new`] with an explicit per-engine instance-store
    /// budget (applied to the spine and every shard engine).
    pub fn with_substrate_budget(
        graph: Graph,
        num_shards: usize,
        budget: Option<u64>,
    ) -> ShardedGraph {
        let partition = partition_degeneracy(&graph, num_shards);
        let n = graph.num_vertices();
        let mut local_id = vec![0u32; n];
        let mut shards = Vec::with_capacity(partition.shards.len());
        for members in &partition.shards {
            for (local, &v) in members.iter().enumerate() {
                local_id[v as usize] = local as u32;
            }
            let sub = InducedSubgraph::new(&graph, members);
            let engine = Arc::new(DsdEngine::new(sub.graph).with_substrate_budget(budget));
            shards.push(Shard {
                engine,
                members: sub.orig,
            });
        }
        let spine = Arc::new(DsdEngine::new(graph).with_substrate_budget(budget));
        ShardedGraph {
            spine,
            shards,
            assignment: partition.assignment,
            local_id,
            boundary_edges: partition.boundary_edges,
            parallelism: Parallelism::serial(),
        }
    }

    /// Sets the worker pool for the scatter phase: shard-local solves run
    /// concurrently across the configured workers ([`Parallelism::scatter`]),
    /// with the gather's ρ* fold applied in shard order as each result
    /// lands. ρ* is a commutative max and every local solve is
    /// shard-private, so answers — and the full [`ShardedSolve`]
    /// telemetry — are **bit-identical** for every setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The scatter phase's worker-count configuration.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Number of (non-empty) shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Edges that crossed shards at partition time.
    pub fn boundary_edges(&self) -> usize {
        self.boundary_edges
    }

    /// The shard each global vertex was assigned to.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The spine engine (whole-graph view) — what the serve layer
    /// registers in its catalog and leases substrates against.
    pub fn spine_engine(&self) -> &Arc<DsdEngine<'static>> {
        &self.spine
    }

    /// Shard engine `i` — registered with the governor alongside the
    /// spine so shard substrates are globally budgeted.
    pub fn shard_engine(&self, i: usize) -> &Arc<DsdEngine<'static>> {
        &self.shards[i].engine
    }

    /// Global vertex ids of shard `i`, ascending.
    pub fn shard_members(&self, i: usize) -> &[VertexId] {
        &self.shards[i].members
    }

    /// Runs `req`, returning the bare (bit-identical) solution.
    pub fn solve(&self, req: &DsdRequest) -> Solution {
        self.solve_explained(req).solution
    }

    /// Runs `req` with full scatter telemetry: per-shard local optima,
    /// the gather bound ρ*, which shards the located-core test pruned,
    /// and how many merge components the certificates skipped.
    pub fn solve_explained(&self, req: &DsdRequest) -> ShardedSolve {
        if ShardPlanner::plan(req, self.shards.len()) == ShardPlan::SpineOnly {
            return ShardedSolve {
                solution: self.spine.solve(req),
                rho_star: 0.0,
                shards: Vec::new(),
                shards_total: self.shards.len(),
                shards_pruned: 0,
                pruned_components: 0,
                scattered: false,
            };
        }

        // Scatter: exact local Densest per shard, pinned to CoreExact
        // with the certified-exact defaults (no tolerance, no budget) so
        // every local optimum is a sound certificate. The request's own
        // knobs (tolerance, step budget, backend) apply to the merge
        // only — they must not weaken certificates. Shard solves are
        // independent (each engine owns its subgraph and substrate
        // cache), so they fan out across the configured workers; the ρ*
        // fold below is a commutative max over shard-indexed results, so
        // the gather is bit-identical for every worker count.
        let locals = self.parallelism.scatter(&self.shards, |_, shard| {
            let local_req = DsdRequest::new(req.psi()).method(Method::CoreExact);
            shard.engine.solve(&local_req)
        });
        let mut reports = Vec::with_capacity(self.shards.len());
        let mut bounds = Vec::with_capacity(self.shards.len());
        let mut rho_star = 0.0f64;
        for (i, (shard, local)) in self.shards.iter().zip(&locals).enumerate() {
            let certified = matches!(local.guarantee, Guarantee::Exact);
            if certified && local.density > rho_star {
                rho_star = local.density;
            }
            bounds.push(if certified {
                local.density
            } else {
                f64::INFINITY
            });
            reports.push(ShardReport {
                shard: i,
                vertices: shard.members.len(),
                local_density: local.density,
                kmax: local.stats.kmax,
                certified,
                pruned: false,
            });
        }
        // Lemma 7 over the gather bound: any subgraph beating ρ* lives in
        // the global (⌈ρ*⌉, Ψ)-core, and a subgraph inside shard i is
        // inside shard i's own (⌈ρ*⌉, Ψ)-core — impossible when the
        // shard's kmax is smaller.
        let k_star = locate_core_order(rho_star);
        let mut shards_pruned = 0usize;
        for report in reports.iter_mut() {
            report.pruned = report.kmax.is_some_and(|kmax| kmax < k_star);
            shards_pruned += report.pruned as usize;
        }

        // Merge: the spine's own exact path, with per-shard certificates
        // skipping components that provably cannot beat the running
        // lower bound. Bit-identical to `spine.solve(req)`.
        let certs = RegionCertificates::new(self.assignment.clone(), bounds);
        let solution = self.spine.solve_certified(req, &certs);
        let pruned_components = solution.stats.pruned_components;
        ShardedSolve {
            solution,
            rho_star,
            shards: reports,
            shards_total: self.shards.len(),
            shards_pruned,
            pruned_components,
            scattered: true,
        }
    }

    /// Applies an edge batch, scoping the work to the shards it touches:
    /// the spine always takes the whole batch (it owns the logical
    /// graph, boundary edges included), while each intra-shard update is
    /// forwarded in local ids to the owning shard engine only. Shards
    /// outside the batch's footprint see no call at all — no update
    /// barrier, no epoch bump, warm substrates intact.
    pub fn apply(&self, updates: &[GraphUpdate]) -> ShardedApply {
        let n = self.assignment.len();
        let mut per_shard: Vec<Vec<GraphUpdate>> = vec![Vec::new(); self.shards.len()];
        let mut cross_shard = 0usize;
        for update in updates {
            let (u, v) = update.endpoints();
            if (u as usize) >= n || (v as usize) >= n {
                continue; // out-of-range: a spine no-op, owned by no shard
            }
            let (su, sv) = (self.assignment[u as usize], self.assignment[v as usize]);
            if su != sv {
                cross_shard += 1;
                continue;
            }
            let (lu, lv) = (self.local_id[u as usize], self.local_id[v as usize]);
            per_shard[su as usize].push(match update {
                GraphUpdate::Insert(..) => GraphUpdate::Insert(lu, lv),
                GraphUpdate::Delete(..) => GraphUpdate::Delete(lu, lv),
            });
        }
        let spine = self.spine.apply(updates);
        let mut shards_touched = 0usize;
        let mut substrates_repaired = spine.substrates_repaired;
        let mut substrates_rebuilt = spine.substrates_rebuilt;
        for (shard, batch) in self.shards.iter().zip(&per_shard) {
            if !batch.is_empty() {
                let stats = shard.engine.apply(batch);
                substrates_repaired += stats.substrates_repaired;
                substrates_rebuilt += stats.substrates_rebuilt;
                shards_touched += 1;
            }
        }
        ShardedApply {
            spine,
            shards_touched,
            cross_shard,
            substrates_repaired,
            substrates_rebuilt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_motif::Pattern;

    /// Three planted near-cliques of different sizes joined by sparse
    /// bridges — community structure where the located-core test fires.
    fn communities() -> Graph {
        let mut edges = Vec::new();
        let blocks: [&[u32]; 3] = [
            &[0, 1, 2, 3, 4, 5, 6],
            &[7, 8, 9, 10, 11],
            &[12, 13, 14, 15],
        ];
        for block in blocks {
            for (i, &u) in block.iter().enumerate() {
                for &v in &block[i + 1..] {
                    edges.push((u, v));
                }
            }
        }
        edges.extend_from_slice(&[(6, 7), (11, 12)]);
        Graph::from_edges(16, &edges)
    }

    /// One dense planted block (K8) plus two sparse 8-vertex blocks (a
    /// cycle and a path), each its own component so the partitioner maps
    /// block = shard. The sparse shards' kmax (2 and 1) sits far below
    /// ⌈ρ*⌉ = ⌈3.5⌉, so the located-core bound test prunes both.
    fn planted() -> Graph {
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        for i in 8..16u32 {
            edges.push((i, if i == 15 { 8 } else { i + 1 }));
        }
        for i in 16..23u32 {
            edges.push((i, i + 1));
        }
        Graph::from_edges(24, &edges)
    }

    fn bitwise_same(a: &Solution, b: &Solution) {
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.density.to_bits(), b.density.to_bits());
        assert_eq!(a.subgraphs.len(), b.subgraphs.len());
        for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
            assert_eq!(x.vertices, y.vertices);
            assert_eq!(x.density.to_bits(), y.density.to_bits());
        }
    }

    #[test]
    fn densest_is_bit_identical_on_bridged_communities() {
        let g = communities();
        let sharded = ShardedGraph::new(g.clone(), 3);
        let reference = DsdEngine::new(g);
        for psi in [Pattern::edge(), Pattern::triangle()] {
            let req = DsdRequest::new(&psi).method(Method::CoreExact);
            let out = sharded.solve_explained(&req);
            bitwise_same(&out.solution, &reference.solve(&req));
            assert!(out.scattered);
            assert!(out.rho_star > 0.0);
        }
    }

    #[test]
    fn located_core_bound_prunes_sparse_shards() {
        let g = planted();
        let sharded = ShardedGraph::new(g.clone(), 3);
        assert_eq!(sharded.num_shards(), 3);
        let reference = DsdEngine::new(g);
        for psi in [Pattern::edge(), Pattern::triangle()] {
            let req = DsdRequest::new(&psi).method(Method::CoreExact);
            let out = sharded.solve_explained(&req);
            bitwise_same(&out.solution, &reference.solve(&req));
            // The K8 dominates; both sparse shards fail the bound test
            // and their components never reach the flow machinery.
            assert_eq!(out.shards_pruned, 2, "{}", psi.name());
            assert!(
                out.pruned_components >= 1,
                "{}: no component skipped",
                psi.name()
            );
        }
    }

    #[test]
    fn parallel_scatter_matches_serial_scatter_bitwise() {
        let g = planted();
        let serial = ShardedGraph::new(g.clone(), 3);
        for threads in [2, 4, 8] {
            let par = ShardedGraph::new(g.clone(), 3).with_parallelism(Parallelism::new(threads));
            for psi in [Pattern::edge(), Pattern::triangle()] {
                let req = DsdRequest::new(&psi).method(Method::CoreExact);
                let a = serial.solve_explained(&req);
                let b = par.solve_explained(&req);
                bitwise_same(&a.solution, &b.solution);
                assert_eq!(
                    a.rho_star.to_bits(),
                    b.rho_star.to_bits(),
                    "{} @ {threads} threads",
                    psi.name()
                );
                assert_eq!(a.shards_pruned, b.shards_pruned);
                assert_eq!(a.pruned_components, b.pruned_components);
                for (x, y) in a.shards.iter().zip(&b.shards) {
                    assert_eq!(x.local_density.to_bits(), y.local_density.to_bits());
                    assert_eq!(x.kmax, y.kmax);
                    assert_eq!(x.pruned, y.pruned);
                }
            }
        }
    }

    #[test]
    fn top_k_and_at_least_k_are_bit_identical() {
        let g = communities();
        let sharded = ShardedGraph::new(g.clone(), 3);
        let reference = DsdEngine::new(g);
        let psi = Pattern::edge();
        let topk = DsdRequest::new(&psi).objective(Objective::TopK(3));
        bitwise_same(&sharded.solve(&topk), &reference.solve(&topk));
        let dalks = DsdRequest::new(&psi).objective(Objective::AtLeastK(6));
        bitwise_same(&sharded.solve(&dalks), &reference.solve(&dalks));
    }

    #[test]
    fn spine_only_objectives_delegate() {
        let g = communities();
        let sharded = ShardedGraph::new(g.clone(), 3);
        let reference = DsdEngine::new(g);
        let psi = Pattern::edge();
        for req in [
            DsdRequest::new(&psi).objective(Objective::AtMostK(5)),
            DsdRequest::new(&psi).objective(Objective::WithQuery(vec![0])),
            DsdRequest::new(&psi).method(Method::PeelApp),
        ] {
            let out = sharded.solve_explained(&req);
            assert!(!out.scattered);
            bitwise_same(&out.solution, &reference.solve(&req));
        }
    }

    #[test]
    fn single_shard_fallback_never_scatters() {
        let g = communities();
        let sharded = ShardedGraph::new(g, 1);
        assert_eq!(sharded.num_shards(), 1);
        let req = DsdRequest::new(&Pattern::edge()).method(Method::CoreExact);
        let out = sharded.solve_explained(&req);
        assert!(!out.scattered);
        assert!(!out.solution.is_empty());
    }

    #[test]
    fn updates_touch_only_owning_shards() {
        let g = communities();
        let sharded = ShardedGraph::new(g, 3);
        let epochs: Vec<u64> = (0..sharded.num_shards())
            .map(|i| sharded.shard_engine(i).epoch())
            .collect();
        // An update inside the K7 block (shard of vertex 0).
        let home = sharded.assignment()[0] as usize;
        let batch = [GraphUpdate::Delete(0, 1)];
        let out = sharded.apply(&batch);
        assert_eq!(out.shards_touched, 1);
        assert_eq!(out.cross_shard, 0);
        assert_eq!(out.spine.deleted, 1);
        for (i, epoch) in epochs.iter().enumerate() {
            let expect = epoch + u64::from(i == home);
            assert_eq!(sharded.shard_engine(i).epoch(), expect, "shard {i}");
        }
    }

    #[test]
    fn cross_shard_updates_stay_on_the_spine() {
        let g = communities();
        let sharded = ShardedGraph::new(g, 3);
        // 6-7 bridges two blocks (distinct shards with 3 shards of ~5).
        assert_ne!(
            sharded.assignment()[6],
            sharded.assignment()[7],
            "test premise: 6 and 7 are in different shards"
        );
        let out = sharded.apply(&[GraphUpdate::Delete(6, 7)]);
        assert_eq!(out.cross_shard, 1);
        assert_eq!(out.shards_touched, 0);
        assert_eq!(out.spine.deleted, 1);
        for i in 0..sharded.num_shards() {
            assert_eq!(sharded.shard_engine(i).epoch(), 0);
        }
    }

    #[test]
    fn solve_after_update_stays_bit_identical() {
        let g = communities();
        let sharded = ShardedGraph::new(g.clone(), 3);
        let reference = DsdEngine::new(g);
        let batch = [
            GraphUpdate::Delete(0, 1),
            GraphUpdate::Insert(3, 15),
            GraphUpdate::Delete(6, 7),
        ];
        sharded.apply(&batch);
        reference.apply(&batch);
        let psi = Pattern::edge();
        for req in [
            DsdRequest::new(&psi).method(Method::CoreExact),
            DsdRequest::new(&psi).objective(Objective::TopK(2)),
            DsdRequest::new(&psi).objective(Objective::AtLeastK(5)),
        ] {
            bitwise_same(&sharded.solve(&req), &reference.solve(&req));
        }
    }
}
