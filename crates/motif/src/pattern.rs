//! Small pattern graphs Ψ and the paper's Figure-7 pattern menu.
//!
//! A [`Pattern`] is a connected simple graph on a handful of vertices. The
//! paper evaluates seven non-clique patterns alongside h-cliques:
//!
//! | id | name        | shape |
//! |----|-------------|-------|
//! | 1  | `2-star`    | centre + 2 tails (path on 3 vertices) |
//! | 2  | `3-star`    | centre + 3 tails (K₁,₃) |
//! | 3  | `c3-star`   | triangle + pendant edge ("paw") |
//! | 4  | `diamond`   | 4-cycle (per Appendix D's path-pair counting) |
//! | 5  | `2-triangle`| two triangles sharing an edge (K₄ − e) |
//! | 6  | `3-triangle`| three triangles sharing an edge |
//! | 7  | `basket`    | 4-cycle + a handle vertex on one edge |
//!
//! The text we reproduce from does not draw `basket`; the choice here (C₄
//! plus a vertex adjacent to two adjacent cycle vertices) is documented as
//! an assumption in `DESIGN.md`.

use dsd_graph::VertexId;

/// Classifies patterns that have specialized fast paths (Appendix D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatternKind {
    /// An h-clique (h = number of vertices); includes edge and triangle.
    Clique(usize),
    /// An x-star: one centre with `x` tails.
    Star(usize),
    /// The diamond / 4-cycle loop pattern.
    Diamond,
    /// Anything else; handled by generic enumeration.
    General,
}

/// A connected simple pattern graph on up to a few dozen vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    name: String,
    n: usize,
    /// Edge list with `u < v`, sorted.
    edges: Vec<(u8, u8)>,
    /// `adj[u][v]` adjacency matrix.
    adj: Vec<Vec<bool>>,
    /// Memoized canonical edge list ([`Self::canonical_edges`]): the
    /// permutation search is worst-case 8! relabelings and sits on every
    /// request's substrate-cache key, so it must run once per pattern,
    /// not once per request.
    canonical: CanonicalCache,
}

/// Lazily computed canonical form. Transparent for equality/comparison:
/// it is derived from `edges`, so patterns that compare equal have equal
/// canonical forms whether or not either side has been computed yet.
#[derive(Clone, Debug, Default)]
struct CanonicalCache(std::sync::OnceLock<Vec<(u8, u8)>>);

impl PartialEq for CanonicalCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for CanonicalCache {}

impl Pattern {
    /// Builds a pattern from an edge list over vertices `0..n`.
    ///
    /// # Panics
    /// Panics if `n` is 0 or > 64, if an edge is out of range or a
    /// self-loop, or if the pattern is disconnected.
    pub fn new(name: impl Into<String>, n: usize, edges: &[(u8, u8)]) -> Self {
        assert!((1..=64).contains(&n), "patterns must have 1..=64 vertices");
        let mut adj = vec![vec![false; n]; n];
        let mut canon: Vec<(u8, u8)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            assert!(u != v, "self-loop in pattern");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "pattern edge out of range"
            );
            if !adj[u as usize][v as usize] {
                adj[u as usize][v as usize] = true;
                adj[v as usize][u as usize] = true;
                canon.push((u.min(v), u.max(v)));
            }
        }
        canon.sort_unstable();
        let p = Pattern {
            name: name.into(),
            n,
            edges: canon,
            adj,
            canonical: CanonicalCache::default(),
        };
        assert!(p.is_connected(), "patterns must be connected");
        p
    }

    fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for (u, &adjacent) in self.adj[v].iter().enumerate() {
                if adjacent && !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n
    }

    /// Human-readable pattern name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pattern vertices `|VΨ|`.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of pattern edges `|EΨ|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sorted canonical edge list.
    pub fn edges(&self) -> &[(u8, u8)] {
        &self.edges
    }

    /// Canonical labeling: the lexicographically smallest sorted edge list
    /// over all vertex relabelings, so isomorphic patterns with different
    /// labelings produce identical output — the cache key substrate caches
    /// want (two spellings of the same Ψ must share one decomposition).
    ///
    /// Cliques are relabeling-invariant and stars are normalized directly;
    /// other patterns up to [`Self::CANONICAL_MAX_VERTICES`] vertices are
    /// canonicalized by exhaustive permutation search (they are tiny, so
    /// the search is at worst 8! relabelings). Larger general patterns fall
    /// back to the as-given edge list, which is still a *sound* key — two
    /// labelings may then hash apart, costing a duplicate cache entry but
    /// never correctness.
    pub fn canonical_edges(&self) -> Vec<(u8, u8)> {
        self.canonical
            .0
            .get_or_init(|| match self.kind() {
                // Every relabeling of a clique is the same edge list.
                PatternKind::Clique(_) => self.edges.clone(),
                // Stars normalize to centre 0, tails 1..=x.
                PatternKind::Star(x) => (1..=x as u8).map(|t| (0, t)).collect(),
                _ if self.n <= Self::CANONICAL_MAX_VERTICES => self.minimal_relabeling(),
                _ => self.edges.clone(),
            })
            .clone()
    }

    /// Largest vertex count [`Self::canonical_edges`] canonicalizes by
    /// exhaustive permutation search.
    pub const CANONICAL_MAX_VERTICES: usize = 8;

    /// The lexicographically smallest relabeled edge list, by trying every
    /// permutation of the (at most 8) pattern vertices.
    fn minimal_relabeling(&self) -> Vec<(u8, u8)> {
        let n = self.n;
        let mut perm: Vec<u8> = (0..n as u8).collect();
        let mut best: Option<Vec<(u8, u8)>> = None;
        let mut c = vec![0usize; n];
        loop {
            // `perm[old] = new` relabels each edge; re-sort for comparison.
            let mut relabeled: Vec<(u8, u8)> = self
                .edges
                .iter()
                .map(|&(u, v)| {
                    let (a, b) = (perm[u as usize], perm[v as usize]);
                    (a.min(b), a.max(b))
                })
                .collect();
            relabeled.sort_unstable();
            if best.as_ref().is_none_or(|b| relabeled < *b) {
                best = Some(relabeled);
            }
            // Heap's algorithm, iterative form.
            let mut i = 0;
            loop {
                if i >= n {
                    return best.expect("at least the identity relabeling");
                }
                if c[i] < i {
                    if i % 2 == 0 {
                        perm.swap(0, i);
                    } else {
                        perm.swap(c[i], i);
                    }
                    c[i] += 1;
                    break;
                }
                c[i] = 0;
                i += 1;
            }
        }
    }

    /// Adjacency test inside the pattern.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u][v]
    }

    /// Degree of pattern vertex `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].iter().filter(|&&b| b).count()
    }

    /// Detects which specialized algorithm applies.
    pub fn kind(&self) -> PatternKind {
        if self.edges.len() == self.n * (self.n - 1) / 2 {
            return PatternKind::Clique(self.n);
        }
        // x-star: one vertex of degree n-1, all others degree 1.
        if self.n >= 3 && self.edges.len() == self.n - 1 {
            let mut centres = 0;
            let mut tails = 0;
            for u in 0..self.n {
                match self.degree(u) {
                    1 => tails += 1,
                    d if d == self.n - 1 => centres += 1,
                    _ => {}
                }
            }
            if centres == 1 && tails == self.n - 1 {
                return PatternKind::Star(self.n - 1);
            }
        }
        if self.n == 4 && self.edges.len() == 4 && (0..4).all(|u| self.degree(u) == 2) {
            return PatternKind::Diamond;
        }
        PatternKind::General
    }

    /// Number of automorphisms |Aut(Ψ)|, computed by matching the pattern
    /// onto itself. Patterns are tiny, so brute-force search is fine.
    pub fn automorphism_count(&self) -> u64 {
        let mut map = vec![usize::MAX; self.n];
        let mut used = vec![false; self.n];
        fn rec(p: &Pattern, pos: usize, map: &mut [usize], used: &mut [bool]) -> u64 {
            if pos == p.n {
                return 1;
            }
            let mut total = 0;
            for cand in 0..p.n {
                if used[cand] || p.degree(cand) != p.degree(pos) {
                    continue;
                }
                let ok = (0..pos).all(|q| p.adj[pos][q] == p.adj[cand][map[q]]);
                if ok {
                    map[pos] = cand;
                    used[cand] = true;
                    total += rec(p, pos + 1, map, used);
                    used[cand] = false;
                }
            }
            total
        }
        rec(self, 0, &mut map, &mut used)
    }

    /// The automorphism orbit of pattern vertex `v`: every pattern vertex
    /// some automorphism maps `v` to, sorted ascending. Always contains
    /// `v` itself (the identity). The sharded enumerator uses the orbit of
    /// its pivot position to decide canonical ownership of an instance —
    /// the images of an instance's embeddings at one pattern vertex are
    /// exactly the images of that vertex's orbit, so the minimum over the
    /// orbit is a shard-independent representative.
    pub fn orbit(&self, v: usize) -> Vec<usize> {
        assert!(v < self.n, "orbit of out-of-range pattern vertex");
        let mut map = vec![usize::MAX; self.n];
        let mut used = vec![false; self.n];
        let mut images = vec![false; self.n];
        fn rec(
            p: &Pattern,
            pos: usize,
            v: usize,
            map: &mut [usize],
            used: &mut [bool],
            images: &mut [bool],
        ) {
            if pos == p.n {
                images[map[v]] = true;
                return;
            }
            if pos > v && images[map[v]] {
                // Everything below this node maps v identically; the image
                // is already recorded, so the subtree adds nothing.
                return;
            }
            for cand in 0..p.n {
                if used[cand] || p.degree(cand) != p.degree(pos) {
                    continue;
                }
                let ok = (0..pos).all(|q| p.adj[pos][q] == p.adj[cand][map[q]]);
                if ok {
                    map[pos] = cand;
                    used[cand] = true;
                    rec(p, pos + 1, v, map, used, images);
                    used[cand] = false;
                }
            }
        }
        rec(self, 0, v, &mut map, &mut used, &mut images);
        (0..self.n).filter(|&q| images[q]).collect()
    }

    /// A search order for enumeration: starts at a max-degree vertex and
    /// extends so every vertex is adjacent to an earlier one (connected
    /// patterns guarantee this exists).
    pub fn search_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.n);
        let mut placed = vec![false; self.n];
        let start = (0..self.n).max_by_key(|&u| self.degree(u)).unwrap_or(0);
        order.push(start);
        placed[start] = true;
        while order.len() < self.n {
            // Pick the unplaced vertex with the most placed neighbours
            // (ties: higher degree) to maximize early pruning.
            let next = (0..self.n)
                .filter(|&u| !placed[u])
                .max_by_key(|&u| {
                    let anchored = order.iter().filter(|&&q| self.adj[u][q]).count();
                    (anchored, self.degree(u))
                })
                .expect("pattern is connected");
            order.push(next);
            placed[next] = true;
        }
        order
    }

    // ---- The paper's pattern menu -------------------------------------

    /// A single edge (2-clique).
    pub fn edge() -> Self {
        Pattern::new("edge", 2, &[(0, 1)])
    }

    /// The triangle (3-clique).
    pub fn triangle() -> Self {
        Pattern::new("triangle", 3, &[(0, 1), (1, 2), (0, 2)])
    }

    /// The h-clique.
    pub fn clique(h: usize) -> Self {
        assert!(h >= 2, "cliques need h >= 2");
        let mut edges = Vec::new();
        for u in 0..h as u8 {
            for v in (u + 1)..h as u8 {
                edges.push((u, v));
            }
        }
        Pattern::new(format!("{h}-clique"), h, &edges)
    }

    /// The x-star: centre 0, tails `1..=x`.
    pub fn star(x: usize) -> Self {
        assert!(x >= 2, "x-star needs x >= 2 tails");
        let edges: Vec<_> = (1..=x as u8).map(|t| (0, t)).collect();
        Pattern::new(format!("{x}-star"), x + 1, &edges)
    }

    /// The 2-star (path on three vertices).
    pub fn two_star() -> Self {
        Self::star(2)
    }

    /// The 3-star (K₁,₃).
    pub fn three_star() -> Self {
        Self::star(3)
    }

    /// The c3-star ("paw"): triangle {0,1,2} with pendant 3 on vertex 0.
    pub fn c3_star() -> Self {
        Pattern::new("c3-star", 4, &[(0, 1), (1, 2), (0, 2), (0, 3)])
    }

    /// The diamond: a 4-cycle 0-1-2-3-0 (Appendix D's loop pattern).
    pub fn diamond() -> Self {
        Pattern::new("diamond", 4, &[(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    /// The 2-triangle: two triangles sharing edge {0,1} (K₄ − e).
    pub fn two_triangle() -> Self {
        Pattern::new("2-triangle", 4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
    }

    /// The 3-triangle: three triangles sharing edge {0,1}.
    pub fn three_triangle() -> Self {
        Pattern::new(
            "3-triangle",
            5,
            &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4), (1, 4)],
        )
    }

    /// The basket: 4-cycle 0-1-2-3-0 plus handle vertex 4 adjacent to the
    /// adjacent cycle vertices 0 and 1 (see DESIGN.md for the assumption).
    pub fn basket() -> Self {
        Pattern::new(
            "basket",
            5,
            &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 4), (1, 4)],
        )
    }

    /// The k-cycle `C_k` (k ≥ 3). `cycle(4)` is the paper's diamond.
    pub fn cycle(k: usize) -> Self {
        assert!(k >= 3, "cycles need k >= 3 vertices");
        let mut edges: Vec<(u8, u8)> = (0..k as u8 - 1).map(|i| (i, i + 1)).collect();
        edges.push((0, k as u8 - 1));
        Pattern::new(format!("{k}-cycle"), k, &edges)
    }

    /// The path on `k` vertices (k ≥ 2). `path(3)` is the 2-star.
    pub fn path(k: usize) -> Self {
        assert!(k >= 2, "paths need k >= 2 vertices");
        let edges: Vec<(u8, u8)> = (0..k as u8 - 1).map(|i| (i, i + 1)).collect();
        Pattern::new(format!("{k}-path"), k, &edges)
    }

    /// The complete bipartite pattern `K_{a,b}` (a, b ≥ 1). `K_{2,2}` is
    /// the diamond again; `K_{1,x}` is the x-star.
    pub fn complete_bipartite(a: usize, b: usize) -> Self {
        assert!(a >= 1 && b >= 1 && a + b >= 3);
        let mut edges = Vec::with_capacity(a * b);
        for i in 0..a as u8 {
            for j in 0..b as u8 {
                edges.push((i, a as u8 + j));
            }
        }
        Pattern::new(format!("K{a},{b}"), a + b, &edges)
    }

    /// All seven Figure-7 patterns in paper order.
    pub fn figure7() -> Vec<Pattern> {
        vec![
            Self::two_star(),
            Self::three_star(),
            Self::c3_star(),
            Self::diamond(),
            Self::two_triangle(),
            Self::three_triangle(),
            Self::basket(),
        ]
    }
}

/// Checks that a candidate graph-vertex assignment is edge-consistent with
/// the pattern for all already-assigned positions. Shared by the enumerator
/// in [`crate::pattern_enum`].
#[inline]
pub(crate) fn consistent(
    p: &Pattern,
    order: &[usize],
    images: &[VertexId],
    pos: usize,
    candidate: VertexId,
    has_edge: impl Fn(VertexId, VertexId) -> bool,
) -> bool {
    let pv = order[pos];
    for q in 0..pos {
        let pq = order[q];
        if p.has_edge(pv, pq) && !has_edge(candidate, images[q]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orbits_match_known_symmetry_groups() {
        // Star: hub is fixed, leaves form one orbit.
        let s = Pattern::star(3);
        // Hub is the max-degree vertex; find it.
        let hub = (0..4).find(|&v| s.degree(v) == 3).unwrap();
        assert_eq!(s.orbit(hub), vec![hub]);
        let leaves: Vec<usize> = (0..4).filter(|&v| v != hub).collect();
        for &l in &leaves {
            assert_eq!(s.orbit(l), leaves);
        }
        // Clique: vertex-transitive.
        let c = Pattern::clique(4);
        for v in 0..4 {
            assert_eq!(c.orbit(v), vec![0, 1, 2, 3]);
        }
        // Paw (triangle + pendant on 0): orbits {0}, {1,2}, {3}.
        let paw = Pattern::c3_star();
        assert_eq!(paw.orbit(0), vec![0]);
        assert_eq!(paw.orbit(1), vec![1, 2]);
        assert_eq!(paw.orbit(2), vec![1, 2]);
        assert_eq!(paw.orbit(3), vec![3]);
        // Orbit sizes are consistent with |Aut| (orbit-stabilizer: the
        // orbit of v divides |Aut|).
        for p in Pattern::figure7() {
            let aut = p.automorphism_count();
            for v in 0..p.vertex_count() {
                let orb = p.orbit(v);
                assert!(orb.contains(&v), "{}: orbit must contain v", p.name());
                assert_eq!(
                    aut % orb.len() as u64,
                    0,
                    "{}: orbit size divides |Aut|",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn kinds_detected() {
        assert_eq!(Pattern::edge().kind(), PatternKind::Clique(2));
        assert_eq!(Pattern::triangle().kind(), PatternKind::Clique(3));
        assert_eq!(Pattern::clique(5).kind(), PatternKind::Clique(5));
        assert_eq!(Pattern::two_star().kind(), PatternKind::Star(2));
        assert_eq!(Pattern::three_star().kind(), PatternKind::Star(3));
        assert_eq!(Pattern::star(4).kind(), PatternKind::Star(4));
        assert_eq!(Pattern::diamond().kind(), PatternKind::Diamond);
        assert_eq!(Pattern::c3_star().kind(), PatternKind::General);
        assert_eq!(Pattern::two_triangle().kind(), PatternKind::General);
        assert_eq!(Pattern::three_triangle().kind(), PatternKind::General);
        assert_eq!(Pattern::basket().kind(), PatternKind::General);
    }

    #[test]
    fn automorphism_counts() {
        assert_eq!(Pattern::edge().automorphism_count(), 2);
        assert_eq!(Pattern::triangle().automorphism_count(), 6);
        assert_eq!(Pattern::clique(4).automorphism_count(), 24);
        assert_eq!(Pattern::two_star().automorphism_count(), 2);
        assert_eq!(Pattern::three_star().automorphism_count(), 6);
        // C4: dihedral group of order 8.
        assert_eq!(Pattern::diamond().automorphism_count(), 8);
        // Paw: only the two triangle vertices not attached to the tail swap.
        assert_eq!(Pattern::c3_star().automorphism_count(), 2);
        // K4 - e: swap the degree-3 pair, swap the degree-2 pair.
        assert_eq!(Pattern::two_triangle().automorphism_count(), 4);
        // 3-triangle: swap {0,1}, permute {2,3,4}.
        assert_eq!(Pattern::three_triangle().automorphism_count(), 12);
        // Basket: single reflection.
        assert_eq!(Pattern::basket().automorphism_count(), 2);
    }

    #[test]
    fn search_order_is_connected_prefixwise() {
        for p in Pattern::figure7() {
            let order = p.search_order();
            assert_eq!(order.len(), p.vertex_count());
            for (i, &v) in order.iter().enumerate().skip(1) {
                assert!(
                    order[..i].iter().any(|&q| p.has_edge(v, q)),
                    "{}: vertex {v} not anchored",
                    p.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected_patterns() {
        let _ = Pattern::new("bad", 4, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let _ = Pattern::new("bad", 2, &[(0, 0), (0, 1)]);
    }

    #[test]
    fn generic_constructors() {
        // cycle(4) and K{2,2} are both the diamond up to isomorphism.
        assert_eq!(Pattern::cycle(4).kind(), PatternKind::Diamond);
        assert_eq!(
            Pattern::complete_bipartite(2, 2).kind(),
            PatternKind::Diamond
        );
        // cycle(3) is the triangle; path(3) is the 2-star; K{1,3} the 3-star.
        assert_eq!(Pattern::cycle(3).kind(), PatternKind::Clique(3));
        assert_eq!(Pattern::path(3).kind(), PatternKind::Star(2));
        assert_eq!(
            Pattern::complete_bipartite(1, 3).kind(),
            PatternKind::Star(3)
        );
        assert_eq!(Pattern::path(2).kind(), PatternKind::Clique(2));
        // Aut(C5) = 10 (dihedral), Aut(P4) = 2, Aut(K{2,3}) = 2!·3! = 12.
        assert_eq!(Pattern::cycle(5).automorphism_count(), 10);
        assert_eq!(Pattern::path(4).automorphism_count(), 2);
        assert_eq!(Pattern::complete_bipartite(2, 3).automorphism_count(), 12);
    }

    #[test]
    fn canonical_edges_identify_isomorphic_labelings() {
        // Same pattern, scrambled labels: paw with the pendant on vertex 2.
        let paw_a = Pattern::c3_star();
        let paw_b = Pattern::new("paw-relabeled", 4, &[(1, 2), (2, 3), (1, 3), (2, 0)]);
        assert_ne!(paw_a.edges(), paw_b.edges());
        assert_eq!(paw_a.canonical_edges(), paw_b.canonical_edges());

        // cycle(4), K{2,2}, and the diamond are one pattern three ways.
        assert_eq!(
            Pattern::diamond().canonical_edges(),
            Pattern::cycle(4).canonical_edges()
        );
        assert_eq!(
            Pattern::diamond().canonical_edges(),
            Pattern::complete_bipartite(2, 2).canonical_edges()
        );

        // Stars normalize regardless of which vertex is the centre.
        let star_c2 = Pattern::new("star-centre-2", 4, &[(2, 0), (2, 1), (2, 3)]);
        assert_eq!(
            Pattern::three_star().canonical_edges(),
            star_c2.canonical_edges()
        );

        // path(4) relabeled two ways.
        let p = Pattern::new("zigzag", 4, &[(2, 0), (0, 3), (3, 1)]);
        assert_eq!(Pattern::path(4).canonical_edges(), p.canonical_edges());

        // K4 − e spelled as a chorded 4-cycle instead of two triangles.
        let chorded = Pattern::new("c4+chord", 4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        assert_eq!(
            Pattern::two_triangle().canonical_edges(),
            chorded.canonical_edges()
        );
    }

    #[test]
    fn canonical_edges_separate_non_isomorphic_patterns() {
        // Same vertex and edge counts, different shapes.
        let pairs = [
            (Pattern::diamond(), Pattern::c3_star()),
            (Pattern::path(4), Pattern::three_star()),
            (
                // Basket (the "house": C5 + chord, one triangle) vs the
                // bowtie (two triangles sharing a vertex): same vertex and
                // edge counts, different shapes.
                Pattern::basket(),
                Pattern::new(
                    "bowtie",
                    5,
                    &[(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (3, 4)],
                ),
            ),
        ];
        for (a, b) in pairs {
            assert_eq!(a.vertex_count(), b.vertex_count());
            assert_eq!(a.edge_count(), b.edge_count());
            assert_ne!(
                a.canonical_edges(),
                b.canonical_edges(),
                "{} vs {}",
                a.name(),
                b.name()
            );
        }
        // And the canonical form is idempotent: rebuilding from it is a
        // fixed point.
        for p in Pattern::figure7() {
            let canon = p.canonical_edges();
            let rebuilt = Pattern::new("canon", p.vertex_count(), &canon);
            assert_eq!(rebuilt.canonical_edges(), canon, "{}", p.name());
        }
    }

    #[test]
    fn figure7_metadata() {
        let names: Vec<_> = Pattern::figure7()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "2-star",
                "3-star",
                "c3-star",
                "diamond",
                "2-triangle",
                "3-triangle",
                "basket"
            ]
        );
        assert_eq!(Pattern::three_triangle().vertex_count(), 5);
        assert_eq!(Pattern::three_triangle().edge_count(), 7);
        assert_eq!(Pattern::basket().edge_count(), 6);
    }
}
