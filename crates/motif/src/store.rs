//! `InstanceStore`: a columnar, CSR-backed materialization of all
//! Ψ-instances of a graph.
//!
//! The Lemma-6 analysis makes instance enumeration the dominant cost of
//! every Ψ-workload, so the system enumerates **once** and stores the
//! result in two u32-indexed columnar arrays:
//!
//! * **members** — row-major member lists (`rows × |VΨ|`, each row sorted
//!   by vertex id), optionally weighted: rows sharing a vertex set are
//!   merged with a multiplicity column, in the spirit of factorised
//!   representations that store each fact once and index into it;
//! * **incidence** — a CSR from vertex id to the rows containing it
//!   (offsets + row ids, both `u32`).
//!
//! Degrees, counts and peel decrements then become linear scans over these
//! columns instead of repeated subgraph matching. h-clique stores are
//! built in parallel, sharded by degeneracy-ordered root vertex (every
//! clique is discovered exactly once, from its lowest-ranked member), with
//! per-worker columns concatenated at the end.
//!
//! Row and membership counts are guarded against `u32` overflow, and an
//! optional byte budget aborts oversized builds mid-enumeration — both
//! reported as typed [`StoreError`]s so callers can fall back to streaming
//! oracles instead of silently truncating indices.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Instant;

use dsd_graph::{Graph, VertexId, VertexSet};

use crate::kclist::{CliqueLister, CliqueScratch};
use crate::pattern::Pattern;
use crate::pattern_enum;

/// Why a store build was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The instance set cannot be indexed with `u32` offsets: either the
    /// row count or the total membership count (`rows × |VΨ|`) would
    /// exceed `u32::MAX`. Building on would silently truncate incidence
    /// indices, so this is a hard, typed refusal.
    CapacityExceeded {
        /// Rows already emitted when the guard tripped.
        rows: u64,
    },
    /// The store would exceed the caller's byte budget.
    BudgetExceeded {
        /// Bytes the store had committed to when the build aborted.
        bytes: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::CapacityExceeded { rows } => {
                write!(f, "instance store overflows u32 indexing at {rows} rows")
            }
            StoreError::BudgetExceeded { bytes, budget } => {
                write!(f, "instance store needs > {bytes} bytes (budget {budget})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Instrumentation for one store build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreBuildStats {
    /// Distinct instances enumerated (before vertex-set grouping).
    pub instances: u64,
    /// Rows after grouping identical vertex sets.
    pub rows: usize,
    /// Total memberships (`rows × |VΨ|`).
    pub memberships: usize,
    /// Resident bytes of the finished store.
    pub bytes: usize,
    /// Wall time of the build (enumeration + column assembly).
    pub build_nanos: u128,
    /// Worker shards used by the enumeration (1 = serial).
    pub shards: usize,
}

/// Columnar instance storage: CSR-of-members plus CSR-of-incidence.
#[derive(Clone, Debug)]
pub struct InstanceStore {
    psi_size: usize,
    /// Row-major member lists, stride `psi_size`, each row id-sorted.
    members: Vec<VertexId>,
    /// Per-row instance multiplicity; `None` means every row weighs 1
    /// (always the case for cliques, whose vertex sets are unique).
    weights: Option<Vec<u32>>,
    /// `incidence(v) = inc_rows[inc_offsets[v]..inc_offsets[v + 1]]`.
    inc_offsets: Vec<u32>,
    inc_rows: Vec<u32>,
}

/// Shared row caps for a build: u32-indexing capacity and the byte budget.
#[derive(Clone, Copy)]
struct RowCaps {
    /// Hard cap: rows beyond this overflow u32 row ids or membership
    /// offsets.
    capacity_rows: u64,
    /// Soft cap from the byte budget (`u64::MAX` when unbudgeted).
    budget_rows: u64,
    budget: u64,
    bytes_per_row: u64,
    base_bytes: u64,
}

impl RowCaps {
    /// `transient_per_row` charges build-time scratch that peaks alongside
    /// the columns (the per-shard column copied at concatenation, the
    /// pattern path's edge-set dedup entries) so a refused build cannot
    /// itself blow the budget it was refused for.
    fn new(n: usize, psi_size: usize, transient_per_row: u64, budget: Option<u64>) -> Self {
        // Per row: members (4·|VΨ|) + incidence row ids (4·|VΨ|) + a
        // worst-case weight slot (4) + build transients. Offsets are per
        // vertex, not per row.
        let bytes_per_row = 8 * psi_size as u64 + 4 + transient_per_row;
        let base_bytes = 4 * (n as u64 + 1);
        let capacity_rows = (u32::MAX as u64).min(u32::MAX as u64 / psi_size as u64);
        let (budget, budget_rows) = match budget {
            Some(b) => (b, b.saturating_sub(base_bytes) / bytes_per_row),
            None => (u64::MAX, u64::MAX),
        };
        RowCaps {
            capacity_rows,
            budget_rows,
            budget,
            bytes_per_row,
            base_bytes,
        }
    }

    /// Largest row count a build may reach, and the error to report when
    /// `rows` would exceed it.
    fn max_rows(&self) -> u64 {
        self.capacity_rows.min(self.budget_rows)
    }

    /// Refuses the build up front when even the row-independent base
    /// allocation (the incidence offsets, one `u32` per vertex) overflows
    /// the budget — otherwise an instance-free build on a huge graph
    /// would materialize arbitrarily far over budget.
    fn check_base(&self) -> Result<(), StoreError> {
        if self.base_bytes > self.budget {
            Err(StoreError::BudgetExceeded {
                bytes: self.base_bytes,
                budget: self.budget,
            })
        } else {
            Ok(())
        }
    }

    fn error_at(&self, rows: u64) -> StoreError {
        if rows >= self.capacity_rows {
            StoreError::CapacityExceeded { rows }
        } else {
            StoreError::BudgetExceeded {
                // Charge the row that tripped the guard, so the reported
                // need is always strictly over the budget.
                bytes: self.base_bytes + rows.saturating_add(1).saturating_mul(self.bytes_per_row),
                budget: self.budget,
            }
        }
    }
}

impl InstanceStore {
    /// Builds the store of all h-cliques of `g[alive]`, `h >= 2`, sharded
    /// across `threads` workers by degeneracy-ordered root vertex.
    ///
    /// Row order depends on the worker count (each worker's rows are
    /// deterministic and concatenated in worker order), but every query
    /// answered from the store — degrees, counts, decrements, peels — is
    /// row-order invariant, so answers are identical for every `threads`.
    pub fn cliques(
        g: &Graph,
        h: usize,
        alive: &VertexSet,
        threads: usize,
        budget: Option<u64>,
    ) -> Result<(Self, StoreBuildStats), StoreError> {
        assert!(h >= 2, "clique store needs h >= 2");
        let t0 = Instant::now();
        let n = g.num_vertices();
        // Transient: each shard's private column is copied once at merge.
        let caps = RowCaps::new(n, h, 4 * h as u64, budget);
        caps.check_base()?;
        let max_rows = caps.max_rows();
        let lister = CliqueLister::new(g, h, alive);
        let roots: Vec<VertexId> = alive.iter().collect();

        let shards = threads.max(1).min(roots.len().max(1));
        let (members, overflowed) = if shards <= 1 {
            let mut members: Vec<VertexId> = Vec::new();
            let mut scratch = CliqueScratch::default();
            let mut row = [0 as VertexId; 16];
            let mut rows = 0u64;
            let mut over = false;
            'roots: for &v in &roots {
                let done = lister.for_each_rooted_until(v, &mut scratch, &mut |clique| {
                    if rows >= max_rows {
                        over = true;
                        return false;
                    }
                    rows += 1;
                    push_sorted_row(&mut members, clique, &mut row);
                    true
                });
                if !done {
                    break 'roots;
                }
            }
            (members, over)
        } else {
            // Each worker owns a strided root range (hub costs are skewed;
            // striding mixes them) and a private column. The caps are
            // enforced through a shared counter, but workers reserve row
            // quota in chunks — one RMW per `ROW_CHUNK` emissions, not per
            // clique — so the hot loop doesn't ping-pong a cache line.
            // Quota is handed out as `min(chunk, remaining)`, so total
            // admissions never exceed `max_rows` exactly as in the serial
            // path (a shard may strand an unused partial chunk, which only
            // makes the cap marginally conservative).
            const ROW_CHUNK: u64 = 4_096;
            // Shrink chunks when the cap is tight, so a small quota is
            // still shared fairly across shards instead of being claimed
            // whole by the first reservation.
            let chunk = ROW_CHUNK.min((max_rows / shards as u64).max(1));
            let total_rows = AtomicU64::new(0);
            let shard_outputs = thread::scope(|scope| {
                let mut handles = Vec::with_capacity(shards);
                for t in 0..shards {
                    let lister = &lister;
                    let roots = &roots;
                    let total_rows = &total_rows;
                    handles.push(scope.spawn(move || {
                        let mut members: Vec<VertexId> = Vec::new();
                        let mut scratch = CliqueScratch::default();
                        let mut row = [0 as VertexId; 16];
                        let mut over = false;
                        let mut quota = 0u64;
                        'roots: for &v in roots.iter().skip(t).step_by(shards) {
                            let done =
                                lister.for_each_rooted_until(v, &mut scratch, &mut |clique| {
                                    if quota == 0 {
                                        let start = total_rows.fetch_add(chunk, Ordering::Relaxed);
                                        if start >= max_rows {
                                            over = true;
                                            return false;
                                        }
                                        quota = chunk.min(max_rows - start);
                                    }
                                    quota -= 1;
                                    push_sorted_row(&mut members, clique, &mut row);
                                    true
                                });
                            if !done {
                                break 'roots;
                            }
                        }
                        (members, over)
                    }));
                }
                handles
                    .into_iter()
                    .map(|hnd| hnd.join().expect("store shard panicked"))
                    .collect::<Vec<_>>()
            });
            let over = shard_outputs.iter().any(|(_, over)| *over);
            let total: usize = shard_outputs.iter().map(|(m, _)| m.len()).sum();
            let mut members = Vec::with_capacity(total);
            for (shard, _) in shard_outputs {
                members.extend_from_slice(&shard);
            }
            (members, over)
        };

        if overflowed {
            return Err(caps.error_at(max_rows));
        }
        // Clique vertex sets are unique: no grouping pass, unit weights.
        let instances = (members.len() / h) as u64;
        Ok(Self::finish(h, members, None, n, instances, shards, t0))
    }

    /// Builds the store of all distinct instances of `psi` in `g[alive]`
    /// (serial — general-pattern enumeration has no shard boundary as
    /// clean as clique roots). Rows sharing a vertex set are merged into
    /// one weighted row.
    pub fn pattern(
        g: &Graph,
        psi: &Pattern,
        alive: &VertexSet,
        budget: Option<u64>,
    ) -> Result<(Self, StoreBuildStats), StoreError> {
        let t0 = Instant::now();
        let n = g.num_vertices();
        let k = psi.vertex_count();
        // Transient: the edge-set dedup keeps one heap-allocated canonical
        // edge list per instance (8 bytes/edge + ~48 of set overhead),
        // and grouping copies the member column once.
        let dedup_per_row = 8 * psi.edge_count() as u64 + 48 + 4 * k as u64;
        let caps = RowCaps::new(n, k, dedup_per_row, budget);
        caps.check_base()?;
        let max_rows = caps.max_rows();

        let mut members: Vec<VertexId> = Vec::new();
        let mut rows = 0u64;
        let mut over = false;
        pattern_enum::for_each_instance_until(g, psi, alive, &mut |inst| {
            if rows >= max_rows {
                over = true;
                return false;
            }
            rows += 1;
            members.extend_from_slice(inst);
            true
        });
        if over {
            return Err(caps.error_at(max_rows));
        }
        let instances = rows;

        // Group rows with identical vertex sets into one weighted row
        // (Figure 6's instance groups — e.g. the 3 diamonds of a K4).
        let (members, weights) = group_rows(members, k);
        Ok(Self::finish(k, members, weights, n, instances, 1, t0))
    }

    /// Assembles the incidence CSR and the build stats.
    fn finish(
        psi_size: usize,
        members: Vec<VertexId>,
        weights: Option<Vec<u32>>,
        n: usize,
        instances: u64,
        shards: usize,
        t0: Instant,
    ) -> (Self, StoreBuildStats) {
        debug_assert_eq!(members.len() % psi_size, 0);
        let rows = members.len() / psi_size;
        let mut inc_offsets = vec![0u32; n + 1];
        for &v in &members {
            inc_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            inc_offsets[i + 1] += inc_offsets[i];
        }
        let mut cursor: Vec<u32> = inc_offsets[..n].to_vec();
        let mut inc_rows = vec![0u32; members.len()];
        for (row, chunk) in members.chunks_exact(psi_size).enumerate() {
            for &v in chunk {
                inc_rows[cursor[v as usize] as usize] = row as u32;
                cursor[v as usize] += 1;
            }
        }
        let store = InstanceStore {
            psi_size,
            members,
            weights,
            inc_offsets,
            inc_rows,
        };
        let stats = StoreBuildStats {
            instances,
            rows,
            memberships: store.memberships(),
            bytes: store.bytes(),
            build_nanos: t0.elapsed().as_nanos(),
            shards,
        };
        (store, stats)
    }

    /// `|VΨ|`: members per row.
    #[inline]
    pub fn psi_size(&self) -> usize {
        self.psi_size
    }

    /// Number of (grouped) rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.members.len() / self.psi_size
    }

    /// Total memberships across rows.
    #[inline]
    pub fn memberships(&self) -> usize {
        self.members.len()
    }

    /// Id-sorted members of `row`.
    #[inline]
    pub fn members(&self, row: usize) -> &[VertexId] {
        &self.members[row * self.psi_size..(row + 1) * self.psi_size]
    }

    /// Instance multiplicity of `row`.
    #[inline]
    pub fn weight(&self, row: usize) -> u64 {
        match &self.weights {
            Some(w) => w[row] as u64,
            None => 1,
        }
    }

    /// Rows containing vertex `v`.
    #[inline]
    pub fn incidence(&self, v: VertexId) -> &[u32] {
        let lo = self.inc_offsets[v as usize] as usize;
        let hi = self.inc_offsets[v as usize + 1] as usize;
        &self.inc_rows[lo..hi]
    }

    /// Total instance count of the full stored graph.
    pub fn total_instances(&self) -> u64 {
        match &self.weights {
            Some(w) => w.iter().map(|&x| x as u64).sum(),
            None => self.rows() as u64,
        }
    }

    /// Resident heap bytes of the columns.
    pub fn bytes(&self) -> usize {
        4 * self.members.len()
            + 4 * self.weights.as_ref().map_or(0, Vec::len)
            + 4 * self.inc_offsets.len()
            + 4 * self.inc_rows.len()
    }

    /// Whether every member of `row` is alive.
    #[inline]
    pub fn row_live(&self, row: usize, alive: &VertexSet) -> bool {
        self.members(row).iter().all(|&v| alive.contains(v))
    }

    /// Per-vertex instance degrees of the stored graph restricted to
    /// `alive` (0 outside).
    pub fn degrees_within(&self, alive: &VertexSet) -> Vec<u64> {
        let mut deg = vec![0u64; self.inc_offsets.len() - 1];
        for row in 0..self.rows() {
            if self.row_live(row, alive) {
                let w = self.weight(row);
                for &v in self.members(row) {
                    deg[v as usize] += w;
                }
            }
        }
        deg
    }

    /// Total live instances under `alive`.
    pub fn count_within(&self, alive: &VertexSet) -> u64 {
        (0..self.rows())
            .filter(|&row| self.row_live(row, alive))
            .map(|row| self.weight(row))
            .sum()
    }
}

/// Appends `clique` to the column in id-sorted order via a fixed scratch
/// row (rank chains arrive in degeneracy order; |VΨ| ≤ 16 covers every
/// practical h — larger cliques fall back to a heap sort row).
fn push_sorted_row(members: &mut Vec<VertexId>, clique: &[VertexId], row: &mut [VertexId; 16]) {
    if clique.len() <= 16 {
        let row = &mut row[..clique.len()];
        row.copy_from_slice(clique);
        row.sort_unstable();
        members.extend_from_slice(row);
    } else {
        let mut big = clique.to_vec();
        big.sort_unstable();
        members.extend_from_slice(&big);
    }
}

/// Merges rows with identical member lists, returning the compacted
/// column plus weights (`None` when every row was already unique).
fn group_rows(members: Vec<VertexId>, k: usize) -> (Vec<VertexId>, Option<Vec<u32>>) {
    let rows = members.len() / k;
    if rows <= 1 {
        return (members, None);
    }
    let mut order: Vec<u32> = (0..rows as u32).collect();
    let row_of = |i: u32| &members[i as usize * k..(i as usize + 1) * k];
    order.sort_unstable_by(|&a, &b| row_of(a).cmp(row_of(b)));

    let mut grouped: Vec<VertexId> = Vec::with_capacity(members.len());
    let mut weights: Vec<u32> = Vec::new();
    for &i in &order {
        let row = row_of(i);
        if grouped.len() >= k && &grouped[grouped.len() - k..] == row {
            *weights.last_mut().expect("weight per emitted row") += 1;
        } else {
            grouped.extend_from_slice(row);
            weights.push(1);
        }
    }
    if weights.iter().all(|&w| w == 1) {
        // No duplicates: keep the (cheaper) unweighted representation.
        (grouped, None)
    } else {
        (grouped, Some(weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kclist;
    use crate::pattern_enum::{count_instances, pattern_degrees};
    use dsd_graph::GraphBuilder;

    fn random_graph(seed: u64, n: usize, per_mille: u64) -> Graph {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if next() % 1000 < per_mille {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn clique_store_matches_kclist_degrees_and_counts() {
        let g = random_graph(11, 200, 60);
        let alive = VertexSet::full(200);
        for h in 2..=4 {
            for threads in [1, 4] {
                let (store, stats) = InstanceStore::cliques(&g, h, &alive, threads, None).unwrap();
                assert_eq!(store.psi_size(), h);
                assert_eq!(stats.rows, store.rows());
                assert_eq!(store.total_instances(), kclist::count_cliques(&g, h));
                assert_eq!(
                    store.degrees_within(&alive),
                    kclist::clique_degrees(&g, h),
                    "h = {h}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn clique_store_respects_alive_masks_at_build_and_query() {
        let g = random_graph(5, 120, 80);
        let mut alive = VertexSet::full(120);
        for v in (0..120u32).step_by(3) {
            alive.remove(v);
        }
        // Build on the full graph, query masked.
        let (store, _) = InstanceStore::cliques(&g, 3, &VertexSet::full(120), 1, None).unwrap();
        assert_eq!(
            store.degrees_within(&alive),
            kclist::clique_degrees_within(&g, 3, &alive)
        );
        assert_eq!(
            store.count_within(&alive),
            kclist::count_cliques_within(&g, 3, &alive)
        );
        // Build masked: same live content.
        let (masked, _) = InstanceStore::cliques(&g, 3, &alive, 2, None).unwrap();
        assert_eq!(masked.total_instances(), store.count_within(&alive));
    }

    #[test]
    fn pattern_store_groups_and_matches_enumeration() {
        let g = random_graph(23, 40, 300);
        let alive = VertexSet::full(40);
        for psi in [
            Pattern::two_star(),
            Pattern::diamond(),
            Pattern::two_triangle(),
            Pattern::c3_star(),
        ] {
            let (store, stats) = InstanceStore::pattern(&g, &psi, &alive, None).unwrap();
            assert_eq!(store.total_instances(), count_instances(&g, &psi, &alive));
            assert_eq!(stats.instances, store.total_instances());
            assert!(stats.rows <= stats.instances as usize);
            assert_eq!(
                store.degrees_within(&alive),
                pattern_degrees(&g, &psi, &alive),
                "{}",
                psi.name()
            );
        }
    }

    #[test]
    fn diamond_store_in_k4_is_one_weighted_row() {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let (store, stats) =
            InstanceStore::pattern(&g, &Pattern::diamond(), &VertexSet::full(4), None).unwrap();
        assert_eq!(stats.instances, 3);
        assert_eq!(store.rows(), 1, "3 diamonds on one vertex set group");
        assert_eq!(store.weight(0), 3);
        assert_eq!(store.members(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn incidence_is_consistent_with_members() {
        let g = random_graph(7, 80, 120);
        let alive = VertexSet::full(80);
        let (store, _) = InstanceStore::cliques(&g, 3, &alive, 3, None).unwrap();
        for v in 0..80u32 {
            for &row in store.incidence(v) {
                assert!(store.members(row as usize).contains(&v));
            }
        }
        let total: usize = (0..80u32).map(|v| store.incidence(v).len()).sum();
        assert_eq!(total, store.memberships());
    }

    #[test]
    fn budget_exceeded_is_typed_and_aborts() {
        let g = random_graph(3, 200, 200);
        let alive = VertexSet::full(200);
        let err = InstanceStore::cliques(&g, 3, &alive, 4, Some(2_000)).unwrap_err();
        match err {
            StoreError::BudgetExceeded { bytes, budget } => {
                assert_eq!(budget, 2_000);
                assert!(bytes >= budget);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // The same graph fits a sane budget.
        assert!(InstanceStore::cliques(&g, 3, &alive, 4, Some(64 << 20)).is_ok());
        // Pattern path hits the same guard.
        let err = InstanceStore::pattern(&g, &Pattern::two_star(), &alive, Some(1_500));
        assert!(matches!(err, Err(StoreError::BudgetExceeded { .. })));
    }

    #[test]
    fn capacity_guard_precedes_budget_and_is_typed() {
        // A real u32 overflow needs > 4 × 10⁹ rows, so pin the guard's
        // arithmetic directly: the capacity cap binds before any byte
        // budget once rows × |VΨ| would overflow u32 offsets.
        let caps = RowCaps::new(100, 8, 0, None);
        assert_eq!(caps.max_rows(), u32::MAX as u64 / 8);
        assert!(matches!(
            caps.error_at(caps.max_rows()),
            StoreError::CapacityExceeded { rows } if rows == u32::MAX as u64 / 8
        ));
        // With a budget tighter than capacity, the budget error wins.
        let caps = RowCaps::new(100, 8, 0, Some(10_000));
        assert!(caps.max_rows() < u32::MAX as u64 / 8);
        assert!(matches!(
            caps.error_at(caps.max_rows()),
            StoreError::BudgetExceeded { budget: 10_000, .. }
        ));
    }

    #[test]
    fn zero_budget_refuses_everything_nonempty() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let alive = VertexSet::full(3);
        assert!(matches!(
            InstanceStore::cliques(&g, 3, &alive, 1, Some(0)),
            Err(StoreError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn base_offsets_allocation_is_budgeted_even_without_instances() {
        // A large instance-free graph: the per-vertex offsets column alone
        // (4·(n+1) bytes) must not blow past the budget just because no
        // row ever trips the per-row cap.
        let g = Graph::empty(10_000);
        let alive = VertexSet::full(10_000);
        let err = InstanceStore::cliques(&g, 3, &alive, 1, Some(1_000)).unwrap_err();
        assert!(matches!(
            err,
            StoreError::BudgetExceeded { bytes, budget: 1_000 } if bytes >= 4 * 10_001
        ));
        assert!(matches!(
            InstanceStore::pattern(&g, &Pattern::two_star(), &alive, Some(1_000)),
            Err(StoreError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn empty_graph_builds_empty_store() {
        let g = Graph::empty(5);
        let (store, stats) =
            InstanceStore::cliques(&g, 3, &VertexSet::full(5), 2, Some(1 << 20)).unwrap();
        assert_eq!(store.rows(), 0);
        assert_eq!(store.total_instances(), 0);
        assert_eq!(stats.memberships, 0);
        assert!(store.bytes() >= 4 * 6, "offsets still resident");
    }
}
