//! `InstanceStore`: a columnar, CSR-backed materialization of all
//! Ψ-instances of a graph.
//!
//! The Lemma-6 analysis makes instance enumeration the dominant cost of
//! every Ψ-workload, so the system enumerates **once** and stores the
//! result in two u32-indexed columnar arrays:
//!
//! * **members** — row-major member lists (`rows × |VΨ|`, each row sorted
//!   by vertex id), optionally weighted: rows sharing a vertex set are
//!   merged with a multiplicity column, in the spirit of factorised
//!   representations that store each fact once and index into it;
//! * **incidence** — a CSR from vertex id to the rows containing it
//!   (offsets + row ids, both `u32`).
//!
//! Degrees, counts and peel decrements then become linear scans over these
//! columns instead of repeated subgraph matching. h-clique stores are
//! built in parallel, sharded by degeneracy-ordered root vertex (every
//! clique is discovered exactly once, from its lowest-ranked member), with
//! per-worker columns concatenated at the end. General-pattern stores
//! shard the same way over first-position candidates with canonical-root
//! ownership (see [`crate::for_each_owned_instance_until`]): each worker
//! emits exactly the instances whose canonical minimum vertex it owns, so
//! the per-worker columns concatenate without cross-shard dedup and the
//! grouped result is bit-identical to the serial pass for every worker
//! count.
//!
//! Row and membership counts are guarded against `u32` overflow, and an
//! optional byte budget aborts oversized builds mid-enumeration — both
//! reported as typed [`StoreError`]s so callers can fall back to streaming
//! oracles instead of silently truncating indices.
//!
//! Stores are also **repairable**: an edge batch against the stored graph
//! tombstones the rows a removed edge kills (found through the incidence
//! CSR — no re-enumeration) and appends only the instances an inserted
//! edge creates (delta enumeration rooted at the touched endpoints), so a
//! warm substrate survives updates at per-edge cost instead of re-paying
//! the full build. See [`InstanceStore::repair_cliques`] and
//! [`InstanceStore::repair_pattern`].

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Instant;

use dsd_graph::{Graph, InducedSubgraph, VertexId, VertexSet};

use crate::kclist::{CliqueLister, CliqueScratch};
use crate::pattern::Pattern;
use crate::pattern_enum;

/// Why a store build was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The instance set cannot be indexed with `u32` offsets: either the
    /// row count or the total membership count (`rows × |VΨ|`) would
    /// exceed `u32::MAX`. Building on would silently truncate incidence
    /// indices, so this is a hard, typed refusal.
    CapacityExceeded {
        /// Rows already emitted when the guard tripped.
        rows: u64,
    },
    /// The store would exceed the caller's byte budget.
    BudgetExceeded {
        /// Bytes the store had committed to when the build aborted.
        bytes: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::CapacityExceeded { rows } => {
                write!(f, "instance store overflows u32 indexing at {rows} rows")
            }
            StoreError::BudgetExceeded { bytes, budget } => {
                write!(f, "instance store needs > {bytes} bytes (budget {budget})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Instrumentation for one store build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreBuildStats {
    /// Distinct instances enumerated (before vertex-set grouping).
    pub instances: u64,
    /// Rows after grouping identical vertex sets.
    pub rows: usize,
    /// Total memberships (`rows × |VΨ|`).
    pub memberships: usize,
    /// Resident bytes of the finished store.
    pub bytes: usize,
    /// Wall time of the build (enumeration + column assembly).
    pub build_nanos: u128,
    /// Worker shards used by the enumeration (1 = serial).
    pub shards: usize,
    /// Phase split: nanos building the degeneracy-DAG out-CSR (and, for
    /// bitset roots, contributing context shared by every worker). 0 for
    /// general patterns, which enumerate straight off the graph CSR.
    pub csr_build_nanos: u128,
    /// Phase split: nanos inside enumeration — intersections + emission
    /// into per-worker columns, including the shard concatenation (wall
    /// time of the parallel region).
    pub enumerate_nanos: u128,
    /// Phase split: nanos assembling the finished store — row grouping
    /// and the incidence-CSR build
    /// (`build_nanos − csr_build_nanos − enumerate_nanos`).
    pub assemble_nanos: u128,
}

/// Instrumentation for one in-place store repair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreRepairStats {
    /// Rows tombstoned because a removed edge killed their instances.
    pub rows_tombstoned: usize,
    /// Rows appended for instances the inserted edges created.
    pub rows_appended: usize,
    /// Whether the repair compacted the columns (dead-row fraction passed
    /// [`COMPACT_DEAD_NUM`]/[`COMPACT_DEAD_DEN`]).
    pub compacted: bool,
    /// Wall time of the repair.
    pub repair_nanos: u128,
}

/// Default compaction policy: a repair physically drops tombstoned rows
/// once `dead_rows / rows > COMPACT_DEAD_NUM / COMPACT_DEAD_DEN`; below
/// that, tombstones are carried and queries skip them through the mask.
/// Per-store override: [`InstanceStore::set_compaction_fraction`].
pub const COMPACT_DEAD_NUM: usize = 1;
/// See [`COMPACT_DEAD_NUM`].
pub const COMPACT_DEAD_DEN: usize = 4;

/// Columnar instance storage: CSR-of-members plus CSR-of-incidence.
#[derive(Clone, Debug)]
pub struct InstanceStore {
    psi_size: usize,
    /// Row-major member lists, stride `psi_size`, each row id-sorted.
    members: Vec<VertexId>,
    /// Per-row instance multiplicity; `None` means every row weighs 1
    /// (always the case for cliques, whose vertex sets are unique).
    weights: Option<Vec<u32>>,
    /// `incidence(v) = inc_rows[inc_offsets[v]..inc_offsets[v + 1]]`.
    inc_offsets: Vec<u32>,
    inc_rows: Vec<u32>,
    /// Tombstone mask from in-place repairs. Empty means every row is
    /// live; otherwise `dead.len() == rows()` and `dead[row]` marks a row
    /// whose instances no longer exist in the repaired graph. Dead rows
    /// keep their incidence entries until compaction; every query skips
    /// them through the mask.
    dead: Vec<bool>,
    /// Number of `true` entries in `dead`.
    dead_rows: usize,
    /// Compaction fraction for this store: repairs compact once
    /// `dead_rows · compact_den > rows · compact_num`. Defaults to
    /// [`COMPACT_DEAD_NUM`] / [`COMPACT_DEAD_DEN`]; the engine costs it
    /// against measured store size (big stores tolerate a higher dead
    /// fraction before a full rewrite pays off).
    compact_num: usize,
    compact_den: usize,
}

/// Shared row caps for a build: u32-indexing capacity and the byte budget.
#[derive(Clone, Copy)]
struct RowCaps {
    /// Hard cap: rows beyond this overflow u32 row ids or membership
    /// offsets.
    capacity_rows: u64,
    /// Soft cap from the byte budget (`u64::MAX` when unbudgeted).
    budget_rows: u64,
    budget: u64,
    bytes_per_row: u64,
    base_bytes: u64,
}

impl RowCaps {
    /// `transient_per_row` charges build-time scratch that peaks alongside
    /// the columns (the per-shard column copied at concatenation, the
    /// pattern path's edge-set dedup entries) so a refused build cannot
    /// itself blow the budget it was refused for.
    fn new(n: usize, psi_size: usize, transient_per_row: u64, budget: Option<u64>) -> Self {
        // Per row: members (4·|VΨ|) + incidence row ids (4·|VΨ|) + a
        // worst-case weight slot (4) + build transients. Offsets are per
        // vertex, not per row.
        let bytes_per_row = 8 * psi_size as u64 + 4 + transient_per_row;
        let base_bytes = 4 * (n as u64 + 1);
        let capacity_rows = (u32::MAX as u64).min(u32::MAX as u64 / psi_size as u64);
        let (budget, budget_rows) = match budget {
            Some(b) => (b, b.saturating_sub(base_bytes) / bytes_per_row),
            None => (u64::MAX, u64::MAX),
        };
        RowCaps {
            capacity_rows,
            budget_rows,
            budget,
            bytes_per_row,
            base_bytes,
        }
    }

    /// Largest row count a build may reach, and the error to report when
    /// `rows` would exceed it.
    fn max_rows(&self) -> u64 {
        self.capacity_rows.min(self.budget_rows)
    }

    /// Refuses the build up front when even the row-independent base
    /// allocation (the incidence offsets, one `u32` per vertex) overflows
    /// the budget — otherwise an instance-free build on a huge graph
    /// would materialize arbitrarily far over budget.
    fn check_base(&self) -> Result<(), StoreError> {
        if self.base_bytes > self.budget {
            Err(StoreError::BudgetExceeded {
                bytes: self.base_bytes,
                budget: self.budget,
            })
        } else {
            Ok(())
        }
    }

    fn error_at(&self, rows: u64) -> StoreError {
        if rows >= self.capacity_rows {
            StoreError::CapacityExceeded { rows }
        } else {
            StoreError::BudgetExceeded {
                // Charge the row that tripped the guard, so the reported
                // need is always strictly over the budget.
                bytes: self.base_bytes + rows.saturating_add(1).saturating_mul(self.bytes_per_row),
                budget: self.budget,
            }
        }
    }
}

impl InstanceStore {
    /// Builds the store of all h-cliques of `g[alive]`, `h >= 2`, sharded
    /// across `threads` workers by degeneracy-ordered root vertex.
    ///
    /// Row order depends on the worker count (each worker's rows are
    /// deterministic and concatenated in worker order), but every query
    /// answered from the store — degrees, counts, decrements, peels — is
    /// row-order invariant, so answers are identical for every `threads`.
    pub fn cliques(
        g: &Graph,
        h: usize,
        alive: &VertexSet,
        threads: usize,
        budget: Option<u64>,
    ) -> Result<(Self, StoreBuildStats), StoreError> {
        assert!(h >= 2, "clique store needs h >= 2");
        let t0 = Instant::now();
        let n = g.num_vertices();
        // Transient: each shard's private column is copied once at merge.
        let caps = RowCaps::new(n, h, 4 * h as u64, budget);
        caps.check_base()?;
        let max_rows = caps.max_rows();
        let lister = CliqueLister::new(g, h, alive);
        let roots: Vec<VertexId> = alive.iter().collect();
        let csr_nanos = t0.elapsed().as_nanos();
        let enum_t0 = Instant::now();

        let shards = threads.max(1).min(roots.len().max(1));
        let (members, overflowed) = if shards <= 1 {
            let mut members: Vec<VertexId> = Vec::new();
            let mut scratch = CliqueScratch::default();
            let mut row = [0 as VertexId; 16];
            let mut rows = 0u64;
            let mut over = false;
            'roots: for &v in &roots {
                let done = lister.for_each_rooted_until(v, &mut scratch, &mut |clique| {
                    if rows >= max_rows {
                        over = true;
                        return false;
                    }
                    rows += 1;
                    push_sorted_row(&mut members, clique, &mut row);
                    true
                });
                if !done {
                    break 'roots;
                }
            }
            (members, over)
        } else {
            // Each worker owns a strided root range (hub costs are skewed;
            // striding mixes them) and a private column. The caps are
            // enforced through a shared counter, but workers reserve row
            // quota in chunks — one RMW per `ROW_CHUNK` emissions, not per
            // clique — so the hot loop doesn't ping-pong a cache line.
            // Quota is handed out as `min(chunk, remaining)`, so total
            // admissions never exceed `max_rows` exactly as in the serial
            // path (a shard may strand an unused partial chunk, which only
            // makes the cap marginally conservative).
            const ROW_CHUNK: u64 = 4_096;
            // Shrink chunks when the cap is tight, so a small quota is
            // still shared fairly across shards instead of being claimed
            // whole by the first reservation.
            let chunk = ROW_CHUNK.min((max_rows / shards as u64).max(1));
            let total_rows = AtomicU64::new(0);
            let shard_outputs = thread::scope(|scope| {
                let mut handles = Vec::with_capacity(shards);
                for t in 0..shards {
                    let lister = &lister;
                    let roots = &roots;
                    let total_rows = &total_rows;
                    handles.push(scope.spawn(move || {
                        let mut members: Vec<VertexId> = Vec::new();
                        let mut scratch = CliqueScratch::default();
                        let mut row = [0 as VertexId; 16];
                        let mut over = false;
                        let mut quota = 0u64;
                        'roots: for &v in roots.iter().skip(t).step_by(shards) {
                            let done =
                                lister.for_each_rooted_until(v, &mut scratch, &mut |clique| {
                                    if quota == 0 {
                                        let start = total_rows.fetch_add(chunk, Ordering::Relaxed);
                                        if start >= max_rows {
                                            over = true;
                                            return false;
                                        }
                                        quota = chunk.min(max_rows - start);
                                    }
                                    quota -= 1;
                                    push_sorted_row(&mut members, clique, &mut row);
                                    true
                                });
                            if !done {
                                break 'roots;
                            }
                        }
                        (members, over)
                    }));
                }
                handles
                    .into_iter()
                    .map(|hnd| hnd.join().expect("store shard panicked"))
                    .collect::<Vec<_>>()
            });
            let over = shard_outputs.iter().any(|(_, over)| *over);
            let total: usize = shard_outputs.iter().map(|(m, _)| m.len()).sum();
            let mut members = Vec::with_capacity(total);
            for (shard, _) in shard_outputs {
                members.extend_from_slice(&shard);
            }
            (members, over)
        };

        if overflowed {
            return Err(caps.error_at(max_rows));
        }
        let enum_nanos = enum_t0.elapsed().as_nanos();
        // Clique vertex sets are unique: no grouping pass, unit weights.
        let instances = (members.len() / h) as u64;
        Ok(Self::finish(
            h, members, None, n, instances, shards, csr_nanos, enum_nanos, t0,
        ))
    }

    /// Builds the store of all distinct instances of `psi` in `g[alive]`,
    /// sharded across `threads` workers by first-position candidate with
    /// canonical-root ownership (see
    /// [`crate::for_each_owned_instance_until`]): shards emit disjoint
    /// instance sets with no cross-shard dedup, and the grouping pass
    /// sorts rows by content, so the finished store is **bit-identical**
    /// for every worker count. Rows sharing a vertex set are merged into
    /// one weighted row. The `DSD_ENUM_SHARDS` environment variable
    /// overrides the shard count (read per build; `1` forces the serial
    /// reference path).
    pub fn pattern(
        g: &Graph,
        psi: &Pattern,
        alive: &VertexSet,
        threads: usize,
        budget: Option<u64>,
    ) -> Result<(Self, StoreBuildStats), StoreError> {
        let t0 = Instant::now();
        let n = g.num_vertices();
        let k = psi.vertex_count();
        // Transient: the edge-set dedup keeps one heap-allocated canonical
        // edge list per instance (8 bytes/edge + ~48 of set overhead),
        // and grouping copies the member column once.
        let dedup_per_row = 8 * psi.edge_count() as u64 + 48 + 4 * k as u64;
        let caps = RowCaps::new(n, k, dedup_per_row, budget);
        caps.check_base()?;
        let max_rows = caps.max_rows();

        let threads = match std::env::var("DSD_ENUM_SHARDS") {
            Ok(s) => s.trim().parse::<usize>().unwrap_or(threads),
            Err(_) => threads,
        };
        let roots: Vec<VertexId> = alive.iter().collect();
        let shards = threads.max(1).min(roots.len().max(1));
        let enum_t0 = Instant::now();

        let (members, overflowed) = if shards <= 1 {
            let mut members: Vec<VertexId> = Vec::new();
            let mut rows = 0u64;
            let mut over = false;
            pattern_enum::for_each_instance_until(g, psi, alive, &mut |inst| {
                if rows >= max_rows {
                    over = true;
                    return false;
                }
                rows += 1;
                members.extend_from_slice(inst);
                true
            });
            (members, over)
        } else {
            // Mirror of the sharded clique build: strided first-position
            // candidates (hub costs are skewed; striding mixes them),
            // per-worker columns, chunked row quota off one shared
            // counter. Ownership makes shard outputs disjoint, so the
            // columns concatenate with no dedup pass.
            const ROW_CHUNK: u64 = 4_096;
            let chunk = ROW_CHUNK.min((max_rows / shards as u64).max(1));
            let total_rows = AtomicU64::new(0);
            let shard_outputs = thread::scope(|scope| {
                let mut handles = Vec::with_capacity(shards);
                for t in 0..shards {
                    let roots = &roots;
                    let total_rows = &total_rows;
                    handles.push(scope.spawn(move || {
                        let firsts: Vec<VertexId> =
                            roots.iter().copied().skip(t).step_by(shards).collect();
                        let mut members: Vec<VertexId> = Vec::new();
                        let mut over = false;
                        let mut quota = 0u64;
                        pattern_enum::for_each_owned_instance_until(
                            g,
                            psi,
                            alive,
                            &firsts,
                            &mut |inst| {
                                if quota == 0 {
                                    let start = total_rows.fetch_add(chunk, Ordering::Relaxed);
                                    if start >= max_rows {
                                        over = true;
                                        return false;
                                    }
                                    quota = chunk.min(max_rows - start);
                                }
                                quota -= 1;
                                members.extend_from_slice(inst);
                                true
                            },
                        );
                        (members, over)
                    }));
                }
                handles
                    .into_iter()
                    .map(|hnd| hnd.join().expect("pattern shard panicked"))
                    .collect::<Vec<_>>()
            });
            let over = shard_outputs.iter().any(|(_, over)| *over);
            let total: usize = shard_outputs.iter().map(|(m, _)| m.len()).sum();
            let mut members = Vec::with_capacity(total);
            for (shard, _) in shard_outputs {
                members.extend_from_slice(&shard);
            }
            (members, over)
        };
        if overflowed {
            return Err(caps.error_at(max_rows));
        }
        let enum_nanos = enum_t0.elapsed().as_nanos();
        let instances = (members.len() / k) as u64;

        // Group rows with identical vertex sets into one weighted row
        // (Figure 6's instance groups — e.g. the 3 diamonds of a K4).
        // Grouping sorts rows by content, which also erases any
        // shard-emission-order differences.
        let (members, weights) = group_rows(members, k);
        Ok(Self::finish(
            k, members, weights, n, instances, shards, 0, enum_nanos, t0,
        ))
    }

    /// Assembles the incidence CSR and the build stats.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        psi_size: usize,
        members: Vec<VertexId>,
        weights: Option<Vec<u32>>,
        n: usize,
        instances: u64,
        shards: usize,
        csr_build_nanos: u128,
        enumerate_nanos: u128,
        t0: Instant,
    ) -> (Self, StoreBuildStats) {
        debug_assert_eq!(members.len() % psi_size, 0);
        let rows = members.len() / psi_size;
        let mut store = InstanceStore {
            psi_size,
            members,
            weights,
            inc_offsets: vec![0u32; n + 1],
            inc_rows: Vec::new(),
            dead: Vec::new(),
            dead_rows: 0,
            compact_num: COMPACT_DEAD_NUM,
            compact_den: COMPACT_DEAD_DEN,
        };
        store.rebuild_incidence();
        let build_nanos = t0.elapsed().as_nanos();
        let stats = StoreBuildStats {
            instances,
            rows,
            memberships: store.memberships(),
            bytes: store.bytes(),
            build_nanos,
            shards,
            csr_build_nanos,
            enumerate_nanos,
            assemble_nanos: build_nanos
                .saturating_sub(csr_build_nanos)
                .saturating_sub(enumerate_nanos),
        };
        (store, stats)
    }

    /// `|VΨ|`: members per row.
    #[inline]
    pub fn psi_size(&self) -> usize {
        self.psi_size
    }

    /// Number of (grouped) rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.members.len() / self.psi_size
    }

    /// Total memberships across rows.
    #[inline]
    pub fn memberships(&self) -> usize {
        self.members.len()
    }

    /// Id-sorted members of `row`.
    #[inline]
    pub fn members(&self, row: usize) -> &[VertexId] {
        &self.members[row * self.psi_size..(row + 1) * self.psi_size]
    }

    /// Instance multiplicity of `row`.
    #[inline]
    pub fn weight(&self, row: usize) -> u64 {
        match &self.weights {
            Some(w) => w[row] as u64,
            None => 1,
        }
    }

    /// Rows containing vertex `v`.
    #[inline]
    pub fn incidence(&self, v: VertexId) -> &[u32] {
        let lo = self.inc_offsets[v as usize] as usize;
        let hi = self.inc_offsets[v as usize + 1] as usize;
        &self.inc_rows[lo..hi]
    }

    /// Total instance count of the full stored graph.
    pub fn total_instances(&self) -> u64 {
        if self.dead_rows > 0 {
            return (0..self.rows())
                .filter(|&row| !self.dead[row])
                .map(|row| self.weight(row))
                .sum();
        }
        match &self.weights {
            Some(w) => w.iter().map(|&x| x as u64).sum(),
            None => self.rows() as u64,
        }
    }

    /// Resident heap bytes of the columns.
    pub fn bytes(&self) -> usize {
        4 * self.members.len()
            + 4 * self.weights.as_ref().map_or(0, Vec::len)
            + 4 * self.inc_offsets.len()
            + 4 * self.inc_rows.len()
            + self.dead.len()
    }

    /// Whether `row` was tombstoned by an in-place repair.
    #[inline]
    pub fn row_tombstoned(&self, row: usize) -> bool {
        !self.dead.is_empty() && self.dead[row]
    }

    /// Rows not tombstoned.
    #[inline]
    pub fn live_rows(&self) -> usize {
        self.rows() - self.dead_rows
    }

    /// Tombstoned rows currently carried (0 after compaction).
    #[inline]
    pub fn tombstoned_rows(&self) -> usize {
        self.dead_rows
    }

    /// Whether `row` is not tombstoned and every member is alive.
    #[inline]
    pub fn row_live(&self, row: usize, alive: &VertexSet) -> bool {
        !self.row_tombstoned(row) && self.members(row).iter().all(|&v| alive.contains(v))
    }

    /// Per-vertex instance degrees of the stored graph restricted to
    /// `alive` (0 outside).
    pub fn degrees_within(&self, alive: &VertexSet) -> Vec<u64> {
        let mut deg = vec![0u64; self.inc_offsets.len() - 1];
        for row in 0..self.rows() {
            if self.row_live(row, alive) {
                let w = self.weight(row);
                for &v in self.members(row) {
                    deg[v as usize] += w;
                }
            }
        }
        deg
    }

    /// Total live instances under `alive`.
    pub fn count_within(&self, alive: &VertexSet) -> u64 {
        (0..self.rows())
            .filter(|&row| self.row_live(row, alive))
            .map(|row| self.weight(row))
            .sum()
    }

    /// Repairs an h-clique store in place across an edge batch. `g` is
    /// the **post-batch** graph; `inserted` / `removed` are the net edge
    /// changes (no key in both, endpoints within the stored vertex
    /// range — the vertex set itself never changes under edge updates).
    ///
    /// Deletion: an h-clique dies iff it contains both endpoints of a
    /// removed edge, so the rows to tombstone are found by walking one
    /// endpoint's incidence list — no re-enumeration. Insertion: the
    /// h-cliques an edge `{u, v}` creates are exactly `{u, v} ∪ C` for
    /// the (h−2)-cliques `C` of `g[N(u) ∩ N(v) ∩ alive]`; a clique
    /// containing several inserted edges is deduped by canonical member
    /// set, and can never collide with a surviving row (old rows contain
    /// no inserted edge). Every query is a row-order-invariant sum over
    /// live rows, so the repaired store answers **identically** to a
    /// from-scratch rebuild on `g`.
    ///
    /// On `Err` (budget/capacity, same guards as [`InstanceStore::cliques`])
    /// the store may hold partial tombstones and must be discarded — the
    /// caller falls back to a rebuild anyway.
    pub fn repair_cliques(
        &mut self,
        g: &Graph,
        inserted: &[(VertexId, VertexId)],
        removed: &[(VertexId, VertexId)],
        alive: &VertexSet,
        budget: Option<u64>,
    ) -> Result<StoreRepairStats, StoreError> {
        debug_assert!(self.weights.is_none(), "clique stores are unweighted");
        let t0 = Instant::now();
        let h = self.psi_size;
        let mut stats = StoreRepairStats::default();

        for &(u, v) in removed {
            stats.rows_tombstoned += self.tombstone_rows_with_edge(u, v);
        }

        let caps = RowCaps::new(self.inc_offsets.len() - 1, h, 0, budget);
        caps.check_base()?;
        let mut fresh: Vec<VertexId> = Vec::new();
        let mut seen: HashSet<Vec<VertexId>> = HashSet::new();
        let dedup = inserted.len() > 1;
        for &(u, v) in inserted {
            if !alive.contains(u) || !alive.contains(v) {
                continue;
            }
            crate::kclist::for_each_clique_containing_edge(g, h, u, v, alive, |others| {
                let mut row: Vec<VertexId> = Vec::with_capacity(h);
                row.push(u);
                row.push(v);
                row.extend_from_slice(others);
                row.sort_unstable();
                if dedup && !seen.insert(row.clone()) {
                    return;
                }
                fresh.extend_from_slice(&row);
            });
        }
        self.append_rows(fresh, None, &caps, &mut stats)?;
        self.settle(&mut stats);
        stats.repair_nanos = t0.elapsed().as_nanos();
        Ok(stats)
    }

    /// Repairs a general-pattern store in place across an edge batch.
    /// `g` is the post-batch graph and `g_mid` is `g` minus the inserted
    /// edges — equivalently the pre-batch graph minus the removed edges
    /// (pass `g` itself when `inserted` is empty).
    ///
    /// Deletion: only rows containing both endpoints of a removed edge
    /// can lose instances; each such row is **recounted** in `g_mid` —
    /// an instance uses exactly `|VΨ|` distinct vertices, so counting
    /// inside the induced subgraph of the row's member set is exact.
    /// Weight drops to the surviving multiplicity; zero tombstones the
    /// row. Insertion: the instances of `g` split into those of `g_mid`
    /// (already stored, post-recount) and those using ≥ 1 inserted edge,
    /// which are enumerated anchored at the inserted endpoints, deduped
    /// by canonical edge set, grouped by member set, and merged — a
    /// group whose set matches a live row bumps its weight, otherwise it
    /// appends (a set matching only a tombstoned row appends a fresh
    /// row; queries skip the dead twin). Same error contract as
    /// [`InstanceStore::repair_cliques`].
    #[allow(clippy::too_many_arguments)]
    pub fn repair_pattern(
        &mut self,
        g: &Graph,
        g_mid: &Graph,
        psi: &Pattern,
        inserted: &[(VertexId, VertexId)],
        removed: &[(VertexId, VertexId)],
        alive: &VertexSet,
        budget: Option<u64>,
    ) -> Result<StoreRepairStats, StoreError> {
        debug_assert_eq!(psi.vertex_count(), self.psi_size);
        let t0 = Instant::now();
        let k = self.psi_size;
        let mut stats = StoreRepairStats::default();

        let mut touched: Vec<usize> = Vec::new();
        for &(u, v) in removed {
            let lo = self.inc_offsets[u as usize] as usize;
            let hi = self.inc_offsets[u as usize + 1] as usize;
            for idx in lo..hi {
                let row = self.inc_rows[idx] as usize;
                if !self.row_tombstoned(row) && self.members(row).contains(&v) {
                    touched.push(row);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for &row in &touched {
            let sub = InducedSubgraph::new(g_mid, self.members(row));
            let w = pattern_enum::count_instances(&sub.graph, psi, &VertexSet::full(k));
            if w == 0 {
                self.tombstone(row);
                stats.rows_tombstoned += 1;
            } else if w != self.weight(row) {
                self.set_weight(row, u32::try_from(w).expect("touched-row recount fits u32"));
            }
        }

        let mut seen: HashSet<Vec<(VertexId, VertexId)>> = HashSet::new();
        let mut groups: HashMap<Vec<VertexId>, u32> = HashMap::new();
        for &(u, v) in inserted {
            if !alive.contains(u) || !alive.contains(v) {
                continue;
            }
            let key = (u.min(v), u.max(v));
            for inst in pattern_enum::instances_containing(g, psi, u, alive) {
                if !inst.edges.contains(&key) || !seen.insert(inst.edges) {
                    continue;
                }
                *groups.entry(inst.vertices).or_insert(0) += 1;
            }
        }
        let mut grouped: Vec<(Vec<VertexId>, u32)> = groups.into_iter().collect();
        grouped.sort_unstable();
        let mut fresh_members: Vec<VertexId> = Vec::new();
        let mut fresh_weights: Vec<u32> = Vec::new();
        for (set, count) in grouped {
            if let Some(row) = self.find_live_row(&set) {
                let w = self.weight(row) + count as u64;
                self.set_weight(row, u32::try_from(w).expect("merged weight fits u32"));
            } else {
                fresh_members.extend_from_slice(&set);
                fresh_weights.push(count);
            }
        }

        let dedup_per_row = 8 * psi.edge_count() as u64 + 48 + 4 * k as u64;
        let caps = RowCaps::new(self.inc_offsets.len() - 1, k, dedup_per_row, budget);
        caps.check_base()?;
        self.append_rows(fresh_members, Some(fresh_weights), &caps, &mut stats)?;
        self.settle(&mut stats);
        stats.repair_nanos = t0.elapsed().as_nanos();
        Ok(stats)
    }

    /// Tombstones every live row containing both `u` and `v`, returning
    /// how many died.
    fn tombstone_rows_with_edge(&mut self, u: VertexId, v: VertexId) -> usize {
        let lo = self.inc_offsets[u as usize] as usize;
        let hi = self.inc_offsets[u as usize + 1] as usize;
        let mut died = 0;
        for idx in lo..hi {
            let row = self.inc_rows[idx] as usize;
            if !self.row_tombstoned(row) && self.members(row).contains(&v) {
                self.tombstone(row);
                died += 1;
            }
        }
        died
    }

    /// Marks `row` dead, materializing the mask on first use.
    fn tombstone(&mut self, row: usize) {
        if self.dead.is_empty() {
            self.dead = vec![false; self.rows()];
        }
        if !self.dead[row] {
            self.dead[row] = true;
            self.dead_rows += 1;
        }
    }

    /// Sets `row`'s multiplicity, materializing the weight column when a
    /// non-unit weight first appears.
    fn set_weight(&mut self, row: usize, w: u32) {
        if self.weights.is_none() {
            if w == 1 {
                return;
            }
            self.weights = Some(vec![1u32; self.rows()]);
        }
        self.weights.as_mut().expect("just materialized")[row] = w;
    }

    /// The live row holding exactly `set` (id-sorted), found through the
    /// incidence of its first member. Rows appended by the caller after
    /// the last CSR rebuild are not findable — repair appends only
    /// mutually-distinct sets, so that never aliases.
    fn find_live_row(&self, set: &[VertexId]) -> Option<usize> {
        let v = *set.first()?;
        self.incidence(v)
            .iter()
            .map(|&row| row as usize)
            .find(|&row| !self.row_tombstoned(row) && self.members(row) == set)
    }

    /// Appends repaired rows under the build-time caps (checked against
    /// the **physical** row count — tombstones occupy capacity until
    /// compaction) and records the append in `stats`.
    fn append_rows(
        &mut self,
        fresh_members: Vec<VertexId>,
        fresh_weights: Option<Vec<u32>>,
        caps: &RowCaps,
        stats: &mut StoreRepairStats,
    ) -> Result<(), StoreError> {
        debug_assert_eq!(fresh_members.len() % self.psi_size, 0);
        let new_rows = fresh_members.len() / self.psi_size;
        let total_rows = (self.rows() + new_rows) as u64;
        if total_rows > caps.max_rows() {
            return Err(caps.error_at(total_rows));
        }
        if new_rows == 0 {
            return Ok(());
        }
        let old_rows = self.rows();
        if self.weights.is_none()
            && fresh_weights
                .as_ref()
                .is_some_and(|w| w.iter().any(|&x| x != 1))
        {
            self.weights = Some(vec![1u32; old_rows]);
        }
        self.members.extend_from_slice(&fresh_members);
        if let Some(col) = &mut self.weights {
            match &fresh_weights {
                Some(w) => col.extend_from_slice(w),
                None => col.resize(old_rows + new_rows, 1),
            }
        }
        if !self.dead.is_empty() {
            self.dead.resize(old_rows + new_rows, false);
        }
        stats.rows_appended = new_rows;
        Ok(())
    }

    /// Post-repair housekeeping: compacts once tombstones pass the dead
    /// fraction, else rebuilds the incidence CSR if rows were appended
    /// (a pure-deletion repair keeps the CSR — dead rows stay indexed
    /// and queries skip them through the mask).
    fn settle(&mut self, stats: &mut StoreRepairStats) {
        if self.dead_rows > 0 && self.dead_rows * self.compact_den > self.rows() * self.compact_num
        {
            self.compact();
            stats.compacted = true;
        } else if stats.rows_appended > 0 {
            self.rebuild_incidence();
        }
    }

    /// Overrides the compaction fraction for this store: repairs compact
    /// once `dead_rows / rows > num / den`. Default
    /// [`COMPACT_DEAD_NUM`] / [`COMPACT_DEAD_DEN`]. The engine's repair
    /// policy costs this against measured store size — a large resident
    /// store tolerates a higher dead fraction before the full column
    /// rewrite of a compaction pays for itself.
    pub fn set_compaction_fraction(&mut self, num: usize, den: usize) {
        assert!(den > 0, "compaction fraction needs a nonzero denominator");
        self.compact_num = num;
        self.compact_den = den;
    }

    /// The compaction fraction `(num, den)` currently in force.
    pub fn compaction_fraction(&self) -> (usize, usize) {
        (self.compact_num, self.compact_den)
    }

    /// Single-edge **deletion** repair for clique stores: tombstones every
    /// live row containing `{u, v}` through the incidence CSR, touching no
    /// graph adjacency at all — which is what lets the engine's
    /// single-update fast path skip the post-batch CSR materialization.
    /// Sound only for unweighted clique stores (a clique dies iff it
    /// contains both endpoints); weighted pattern stores need the recount
    /// of [`InstanceStore::repair_pattern`].
    pub fn repair_edge_delete(&mut self, u: VertexId, v: VertexId) -> StoreRepairStats {
        debug_assert!(self.weights.is_none(), "edge-delete repair is clique-only");
        let t0 = Instant::now();
        let mut stats = StoreRepairStats {
            rows_tombstoned: self.tombstone_rows_with_edge(u, v),
            ..StoreRepairStats::default()
        };
        self.settle(&mut stats);
        stats.repair_nanos = t0.elapsed().as_nanos();
        stats
    }

    /// Single-edge **insertion** repair: appends pre-enumerated rows
    /// (id-sorted, mutually distinct, each containing both inserted
    /// endpoints — so none can collide with a surviving row) under the
    /// same caps as a build. The caller enumerates the rows from its own
    /// (overlay) view of the updated graph; the store never reads
    /// adjacency.
    pub fn repair_edge_insert_rows(
        &mut self,
        fresh_members: Vec<VertexId>,
        budget: Option<u64>,
    ) -> Result<StoreRepairStats, StoreError> {
        let t0 = Instant::now();
        let mut stats = StoreRepairStats::default();
        let caps = RowCaps::new(self.inc_offsets.len() - 1, self.psi_size, 0, budget);
        caps.check_base()?;
        self.append_rows(fresh_members, None, &caps, &mut stats)?;
        self.settle(&mut stats);
        stats.repair_nanos = t0.elapsed().as_nanos();
        Ok(stats)
    }

    /// Physically drops tombstoned rows and rebuilds the incidence CSR.
    /// A no-op when nothing is tombstoned.
    pub fn compact(&mut self) {
        if self.dead_rows == 0 {
            return;
        }
        let k = self.psi_size;
        let rows = self.rows();
        let mut out = 0usize;
        for row in 0..rows {
            if self.dead[row] {
                continue;
            }
            if out != row {
                self.members.copy_within(row * k..(row + 1) * k, out * k);
                if let Some(w) = &mut self.weights {
                    w[out] = w[row];
                }
            }
            out += 1;
        }
        self.members.truncate(out * k);
        if let Some(w) = &mut self.weights {
            w.truncate(out);
        }
        self.dead = Vec::new();
        self.dead_rows = 0;
        self.rebuild_incidence();
    }

    /// Rebuilds the vertex → row incidence CSR from the current member
    /// column in one counting pass (tombstoned rows keep entries; queries
    /// skip them through the mask).
    fn rebuild_incidence(&mut self) {
        let n = self.inc_offsets.len() - 1;
        let mut inc_offsets = vec![0u32; n + 1];
        for &v in &self.members {
            inc_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            inc_offsets[i + 1] += inc_offsets[i];
        }
        let mut cursor: Vec<u32> = inc_offsets[..n].to_vec();
        let mut inc_rows = vec![0u32; self.members.len()];
        for (row, chunk) in self.members.chunks_exact(self.psi_size).enumerate() {
            for &v in chunk {
                inc_rows[cursor[v as usize] as usize] = row as u32;
                cursor[v as usize] += 1;
            }
        }
        self.inc_offsets = inc_offsets;
        self.inc_rows = inc_rows;
    }
}

/// Appends `clique` to the column in id-sorted order via a fixed scratch
/// row (rank chains arrive in degeneracy order; |VΨ| ≤ 16 covers every
/// practical h — larger cliques fall back to a heap sort row).
fn push_sorted_row(members: &mut Vec<VertexId>, clique: &[VertexId], row: &mut [VertexId; 16]) {
    if clique.len() <= 16 {
        let row = &mut row[..clique.len()];
        row.copy_from_slice(clique);
        row.sort_unstable();
        members.extend_from_slice(row);
    } else {
        let mut big = clique.to_vec();
        big.sort_unstable();
        members.extend_from_slice(&big);
    }
}

/// Merges rows with identical member lists, returning the compacted
/// column plus weights (`None` when every row was already unique).
fn group_rows(members: Vec<VertexId>, k: usize) -> (Vec<VertexId>, Option<Vec<u32>>) {
    let rows = members.len() / k;
    if rows <= 1 {
        return (members, None);
    }
    let mut order: Vec<u32> = (0..rows as u32).collect();
    let row_of = |i: u32| &members[i as usize * k..(i as usize + 1) * k];
    order.sort_unstable_by(|&a, &b| row_of(a).cmp(row_of(b)));

    let mut grouped: Vec<VertexId> = Vec::with_capacity(members.len());
    let mut weights: Vec<u32> = Vec::new();
    for &i in &order {
        let row = row_of(i);
        if grouped.len() >= k && &grouped[grouped.len() - k..] == row {
            *weights.last_mut().expect("weight per emitted row") += 1;
        } else {
            grouped.extend_from_slice(row);
            weights.push(1);
        }
    }
    if weights.iter().all(|&w| w == 1) {
        // No duplicates: keep the (cheaper) unweighted representation.
        (grouped, None)
    } else {
        (grouped, Some(weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kclist;
    use crate::pattern_enum::{count_instances, pattern_degrees};
    use dsd_graph::GraphBuilder;

    fn random_graph(seed: u64, n: usize, per_mille: u64) -> Graph {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if next() % 1000 < per_mille {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn clique_store_matches_kclist_degrees_and_counts() {
        let g = random_graph(11, 200, 60);
        let alive = VertexSet::full(200);
        for h in 2..=4 {
            for threads in [1, 4] {
                let (store, stats) = InstanceStore::cliques(&g, h, &alive, threads, None).unwrap();
                assert_eq!(store.psi_size(), h);
                assert_eq!(stats.rows, store.rows());
                assert_eq!(store.total_instances(), kclist::count_cliques(&g, h));
                assert_eq!(
                    store.degrees_within(&alive),
                    kclist::clique_degrees(&g, h),
                    "h = {h}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn clique_store_respects_alive_masks_at_build_and_query() {
        let g = random_graph(5, 120, 80);
        let mut alive = VertexSet::full(120);
        for v in (0..120u32).step_by(3) {
            alive.remove(v);
        }
        // Build on the full graph, query masked.
        let (store, _) = InstanceStore::cliques(&g, 3, &VertexSet::full(120), 1, None).unwrap();
        assert_eq!(
            store.degrees_within(&alive),
            kclist::clique_degrees_within(&g, 3, &alive)
        );
        assert_eq!(
            store.count_within(&alive),
            kclist::count_cliques_within(&g, 3, &alive)
        );
        // Build masked: same live content.
        let (masked, _) = InstanceStore::cliques(&g, 3, &alive, 2, None).unwrap();
        assert_eq!(masked.total_instances(), store.count_within(&alive));
    }

    #[test]
    fn pattern_store_groups_and_matches_enumeration() {
        let g = random_graph(23, 40, 300);
        let alive = VertexSet::full(40);
        for psi in [
            Pattern::two_star(),
            Pattern::diamond(),
            Pattern::two_triangle(),
            Pattern::c3_star(),
        ] {
            let (store, stats) = InstanceStore::pattern(&g, &psi, &alive, 1, None).unwrap();
            assert_eq!(store.total_instances(), count_instances(&g, &psi, &alive));
            assert_eq!(stats.instances, store.total_instances());
            assert!(stats.rows <= stats.instances as usize);
            assert_eq!(
                store.degrees_within(&alive),
                pattern_degrees(&g, &psi, &alive),
                "{}",
                psi.name()
            );
        }
    }

    #[test]
    fn diamond_store_in_k4_is_one_weighted_row() {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let (store, stats) =
            InstanceStore::pattern(&g, &Pattern::diamond(), &VertexSet::full(4), 1, None).unwrap();
        assert_eq!(stats.instances, 3);
        assert_eq!(store.rows(), 1, "3 diamonds on one vertex set group");
        assert_eq!(store.weight(0), 3);
        assert_eq!(store.members(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn incidence_is_consistent_with_members() {
        let g = random_graph(7, 80, 120);
        let alive = VertexSet::full(80);
        let (store, _) = InstanceStore::cliques(&g, 3, &alive, 3, None).unwrap();
        for v in 0..80u32 {
            for &row in store.incidence(v) {
                assert!(store.members(row as usize).contains(&v));
            }
        }
        let total: usize = (0..80u32).map(|v| store.incidence(v).len()).sum();
        assert_eq!(total, store.memberships());
    }

    #[test]
    fn budget_exceeded_is_typed_and_aborts() {
        let g = random_graph(3, 200, 200);
        let alive = VertexSet::full(200);
        let err = InstanceStore::cliques(&g, 3, &alive, 4, Some(2_000)).unwrap_err();
        match err {
            StoreError::BudgetExceeded { bytes, budget } => {
                assert_eq!(budget, 2_000);
                assert!(bytes >= budget);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // The same graph fits a sane budget.
        assert!(InstanceStore::cliques(&g, 3, &alive, 4, Some(64 << 20)).is_ok());
        // Pattern path hits the same guard.
        let err = InstanceStore::pattern(&g, &Pattern::two_star(), &alive, 1, Some(1_500));
        assert!(matches!(err, Err(StoreError::BudgetExceeded { .. })));
    }

    #[test]
    fn capacity_guard_precedes_budget_and_is_typed() {
        // A real u32 overflow needs > 4 × 10⁹ rows, so pin the guard's
        // arithmetic directly: the capacity cap binds before any byte
        // budget once rows × |VΨ| would overflow u32 offsets.
        let caps = RowCaps::new(100, 8, 0, None);
        assert_eq!(caps.max_rows(), u32::MAX as u64 / 8);
        assert!(matches!(
            caps.error_at(caps.max_rows()),
            StoreError::CapacityExceeded { rows } if rows == u32::MAX as u64 / 8
        ));
        // With a budget tighter than capacity, the budget error wins.
        let caps = RowCaps::new(100, 8, 0, Some(10_000));
        assert!(caps.max_rows() < u32::MAX as u64 / 8);
        assert!(matches!(
            caps.error_at(caps.max_rows()),
            StoreError::BudgetExceeded { budget: 10_000, .. }
        ));
    }

    #[test]
    fn zero_budget_refuses_everything_nonempty() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let alive = VertexSet::full(3);
        assert!(matches!(
            InstanceStore::cliques(&g, 3, &alive, 1, Some(0)),
            Err(StoreError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn base_offsets_allocation_is_budgeted_even_without_instances() {
        // A large instance-free graph: the per-vertex offsets column alone
        // (4·(n+1) bytes) must not blow past the budget just because no
        // row ever trips the per-row cap.
        let g = Graph::empty(10_000);
        let alive = VertexSet::full(10_000);
        let err = InstanceStore::cliques(&g, 3, &alive, 1, Some(1_000)).unwrap_err();
        assert!(matches!(
            err,
            StoreError::BudgetExceeded { bytes, budget: 1_000 } if bytes >= 4 * 10_001
        ));
        assert!(matches!(
            InstanceStore::pattern(&g, &Pattern::two_star(), &alive, 1, Some(1_000)),
            Err(StoreError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn empty_graph_builds_empty_store() {
        let g = Graph::empty(5);
        let (store, stats) =
            InstanceStore::cliques(&g, 3, &VertexSet::full(5), 2, Some(1 << 20)).unwrap();
        assert_eq!(store.rows(), 0);
        assert_eq!(store.total_instances(), 0);
        assert_eq!(stats.memberships, 0);
        assert!(store.bytes() >= 4 * 6, "offsets still resident");
    }

    fn edges_of(g: &Graph) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for u in 0..g.num_vertices() as VertexId {
            for &v in g.neighbors(u) {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    fn with_batch(
        g: &Graph,
        inserted: &[(VertexId, VertexId)],
        removed: &[(VertexId, VertexId)],
    ) -> Graph {
        let mut set: std::collections::BTreeSet<(VertexId, VertexId)> =
            edges_of(g).into_iter().collect();
        for e in removed {
            assert!(set.remove(e), "removed edge {e:?} must exist");
        }
        for &e in inserted {
            assert!(set.insert(e), "inserted edge {e:?} must be absent");
        }
        Graph::from_edges(g.num_vertices(), &set.into_iter().collect::<Vec<_>>())
    }

    type EdgeList = Vec<(VertexId, VertexId)>;

    /// Deterministic mixed batch: every 5th existing edge is removed and
    /// a handful of absent edges are inserted.
    fn mixed_batch(g: &Graph) -> (EdgeList, EdgeList) {
        let removed: Vec<_> = edges_of(g).into_iter().step_by(5).collect();
        let mut inserted = Vec::new();
        let n = g.num_vertices() as VertexId;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) {
                    inserted.push((u, v));
                    if inserted.len() == 8 {
                        break 'outer;
                    }
                }
            }
        }
        (inserted, removed)
    }

    #[test]
    fn clique_repair_matches_rebuild() {
        for (seed, n, per_mille) in [(11, 60, 120), (29, 40, 250), (43, 80, 80)] {
            let g = random_graph(seed, n, per_mille);
            let alive = VertexSet::full(n);
            let (inserted, removed) = mixed_batch(&g);
            let g_new = with_batch(&g, &inserted, &removed);
            for h in 2..=4 {
                let (mut store, _) = InstanceStore::cliques(&g, h, &alive, 1, None).unwrap();
                let stats = store
                    .repair_cliques(&g_new, &inserted, &removed, &alive, None)
                    .unwrap();
                let (rebuilt, _) = InstanceStore::cliques(&g_new, h, &alive, 1, None).unwrap();
                assert_eq!(
                    store.total_instances(),
                    rebuilt.total_instances(),
                    "seed {seed}, h = {h}"
                );
                assert_eq!(store.degrees_within(&alive), rebuilt.degrees_within(&alive));
                assert_eq!(store.count_within(&alive), rebuilt.count_within(&alive));
                assert_eq!(store.live_rows(), rebuilt.rows());
                if stats.compacted {
                    assert_eq!(store.tombstoned_rows(), 0);
                }
            }
        }
    }

    #[test]
    fn pattern_repair_matches_rebuild() {
        let g = random_graph(23, 32, 300);
        let alive = VertexSet::full(32);
        let (inserted, removed) = mixed_batch(&g);
        let g_new = with_batch(&g, &inserted, &removed);
        let g_mid = with_batch(&g, &[], &removed);
        for psi in [
            Pattern::two_star(),
            Pattern::diamond(),
            Pattern::two_triangle(),
            Pattern::c3_star(),
        ] {
            let (mut store, _) = InstanceStore::pattern(&g, &psi, &alive, 1, None).unwrap();
            store
                .repair_pattern(&g_new, &g_mid, &psi, &inserted, &removed, &alive, None)
                .unwrap();
            let (rebuilt, _) = InstanceStore::pattern(&g_new, &psi, &alive, 1, None).unwrap();
            assert_eq!(
                store.total_instances(),
                rebuilt.total_instances(),
                "{}",
                psi.name()
            );
            assert_eq!(
                store.degrees_within(&alive),
                rebuilt.degrees_within(&alive),
                "{}",
                psi.name()
            );
        }
    }

    #[test]
    fn pattern_repair_reweights_and_revives_grouped_rows() {
        // K4 holds one diamond row of weight 3; dropping an edge leaves
        // exactly one diamond on the same vertex set (recount, not
        // tombstone); re-inserting it restores weight 3 by merging the 2
        // new instances into the surviving row.
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        let k4 = b.build();
        let alive = VertexSet::full(4);
        let psi = Pattern::diamond();
        let (mut store, _) = InstanceStore::pattern(&k4, &psi, &alive, 1, None).unwrap();
        let g_del = with_batch(&k4, &[], &[(0, 1)]);
        store
            .repair_pattern(&g_del, &g_del, &psi, &[], &[(0, 1)], &alive, None)
            .unwrap();
        assert_eq!(store.total_instances(), 1, "K4 minus an edge is a diamond");
        assert_eq!(store.live_rows(), 1);
        store
            .repair_pattern(&k4, &g_del, &psi, &[(0, 1)], &[], &alive, None)
            .unwrap();
        assert_eq!(store.total_instances(), 3);
        assert_eq!(store.live_rows(), 1, "merged back into the grouped row");
        assert_eq!(store.weight(0), 3);
    }

    #[test]
    fn repair_can_tombstone_every_row_then_compacts() {
        // K4 has 4 triangles; removing the disjoint edges {0,1} and {2,3}
        // kills all of them, pushing the dead fraction to 1 > 1/4.
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        let k4 = b.build();
        let alive = VertexSet::full(4);
        let (mut store, _) = InstanceStore::cliques(&k4, 3, &alive, 1, None).unwrap();
        assert_eq!(store.rows(), 4);
        let removed = [(0, 1), (2, 3)];
        let g_new = with_batch(&k4, &[], &removed);
        let stats = store
            .repair_cliques(&g_new, &[], &removed, &alive, None)
            .unwrap();
        assert_eq!(stats.rows_tombstoned, 4);
        assert!(stats.compacted);
        assert_eq!(store.rows(), 0);
        assert_eq!(store.live_rows(), 0);
        assert_eq!(store.total_instances(), 0);
        assert_eq!(store.degrees_within(&alive), vec![0; 4]);
        let (rebuilt, _) = InstanceStore::cliques(&g_new, 3, &alive, 1, None).unwrap();
        assert_eq!(rebuilt.rows(), 0);
    }

    #[test]
    fn pure_deletion_repair_keeps_csr_and_queries_skip_dead() {
        let g = random_graph(7, 60, 150);
        let alive = VertexSet::full(60);
        let (mut store, _) = InstanceStore::cliques(&g, 3, &alive, 1, None).unwrap();
        let rows_before = store.rows();
        let removed = [edges_of(&g)[0]];
        let g_new = with_batch(&g, &[], &removed);
        let stats = store
            .repair_cliques(&g_new, &[], &removed, &alive, None)
            .unwrap();
        if !stats.compacted {
            assert_eq!(store.rows(), rows_before, "tombstones carried, not cut");
            assert_eq!(store.tombstoned_rows(), stats.rows_tombstoned);
        }
        let (rebuilt, _) = InstanceStore::cliques(&g_new, 3, &alive, 1, None).unwrap();
        assert_eq!(store.total_instances(), rebuilt.total_instances());
        assert_eq!(store.degrees_within(&alive), rebuilt.degrees_within(&alive));
        // Tombstoned rows are still indexed but never live.
        for row in 0..store.rows() {
            if store.row_tombstoned(row) {
                assert!(!store.row_live(row, &alive));
            }
        }
    }

    #[test]
    fn repair_growth_past_budget_is_typed() {
        // An instance-free store under a budget with room for 5 rows;
        // inserting a K10 creates 120 triangles and must refuse, typed.
        let n = 50;
        let budget = 4 * (n as u64 + 1) + 5 * (8 * 3 + 4);
        let g = Graph::empty(n);
        let alive = VertexSet::full(n);
        let (mut store, _) = InstanceStore::cliques(&g, 3, &alive, 1, Some(budget)).unwrap();
        let mut inserted = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                inserted.push((u, v));
            }
        }
        let g_new = with_batch(&g, &inserted, &[]);
        let err = store
            .repair_cliques(&g_new, &inserted, &[], &alive, Some(budget))
            .unwrap_err();
        assert!(matches!(err, StoreError::BudgetExceeded { .. }));
        // The same repair under no budget succeeds and matches a rebuild.
        let (mut unbudgeted, _) = InstanceStore::cliques(&g, 3, &alive, 1, None).unwrap();
        unbudgeted
            .repair_cliques(&g_new, &inserted, &[], &alive, None)
            .unwrap();
        assert_eq!(unbudgeted.total_instances(), 120);
    }
}
