//! Parallel clique-degree computation.
//!
//! Section 6.3 of the paper notes that its approximation solutions
//! parallelize because the underlying (k, Ψ)-core machinery does: the
//! dominant cost is the initial clique-degree pass, and the kClist
//! recursion is embarrassingly parallel over root vertices (every clique
//! is discovered exactly once, from its lowest-ranked member). This module
//! implements that over std's scoped threads: the degeneracy DAG is
//! built once and shared read-only; each worker owns a root range and a
//! private degree accumulator, merged at the end.

use std::thread;

use dsd_graph::{Graph, VertexId, VertexSet};

use crate::kclist::{bitset_worthwhile, build_out_csr, intersect_sorted, OutCsr, RootBitmap};

fn rec_degrees(
    out: &OutCsr,
    clique: &mut Vec<VertexId>,
    cand: Vec<VertexId>,
    h: usize,
    pool: &mut Vec<Vec<VertexId>>,
    deg: &mut [u64],
) {
    if clique.len() + 1 == h {
        // Each completed clique credits every member once.
        for &member in clique.iter() {
            deg[member as usize] += cand.len() as u64;
        }
        for &u in &cand {
            deg[u as usize] += 1;
        }
        return;
    }
    if clique.len() + cand.len() < h {
        return;
    }
    for &u in cand.iter() {
        let mut next = pool.pop().unwrap_or_default();
        next.clear();
        intersect_sorted(&cand, out.row(u), &mut next);
        if clique.len() + 1 + next.len() >= h {
            clique.push(u);
            rec_degrees(out, clique, std::mem::take(&mut next), h, pool, deg);
            clique.pop();
        }
        pool.push(next);
    }
}

/// The bitset twin of [`rec_degrees`] for roots past the density
/// crossover: candidate sets are word masks over the root's universe,
/// intersections are `u64` AND + `count_ones`, and completed cliques
/// credit their members by popcount. Same degree totals as the merge
/// kernel exactly (both count the same clique set).
fn rec_degrees_bitset(
    bm: &RootBitmap,
    clique: &mut Vec<VertexId>,
    cand: Vec<u64>,
    cand_count: usize,
    h: usize,
    pool: &mut Vec<Vec<u64>>,
    deg: &mut [u64],
) {
    if clique.len() + 1 == h {
        for &member in clique.iter() {
            deg[member as usize] += cand_count as u64;
        }
        for (w, &word) in cand.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let j = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                deg[bm.universe()[j] as usize] += 1;
            }
        }
        return;
    }
    if clique.len() + cand_count < h {
        return;
    }
    for (w, &word) in cand.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let j = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let mut next = pool.pop().unwrap_or_default();
            next.clear();
            next.resize(cand.len(), 0);
            let row = bm.row(j);
            let mut cnt = 0usize;
            for k in 0..cand.len() {
                let x = cand[k] & row[k];
                cnt += x.count_ones() as usize;
                next[k] = x;
            }
            if clique.len() + 1 + cnt >= h {
                clique.push(bm.universe()[j]);
                rec_degrees_bitset(bm, clique, std::mem::take(&mut next), cnt, h, pool, deg);
                clique.pop();
            }
            pool.push(next);
        }
    }
}

/// One root's degree pass, dispatching between the merge and bitset
/// kernels by the same per-root crossover the sequential lister uses.
#[allow(clippy::too_many_arguments)]
fn root_degrees(
    out: &OutCsr,
    v: VertexId,
    h: usize,
    bitset: bool,
    clique: &mut Vec<VertexId>,
    pool: &mut Vec<Vec<VertexId>>,
    bm: &mut RootBitmap,
    word_pool: &mut Vec<Vec<u64>>,
    deg: &mut [u64],
) {
    let row = out.row(v);
    clique.push(v);
    if bitset && h >= 3 && bitset_worthwhile(out, row) {
        let cand_count = row.len();
        bm.build(out, v);
        let mut cand = word_pool.pop().unwrap_or_default();
        bm.full_mask(&mut cand);
        rec_degrees_bitset(bm, clique, cand, cand_count, h, word_pool, deg);
    } else {
        rec_degrees(out, clique, row.to_vec(), h, pool, deg);
    }
    clique.pop();
}

/// Parallel [`crate::clique_degrees`]: identical output, `threads` workers.
///
/// Falls back to a single-threaded pass for `threads <= 1`.
pub fn clique_degrees_parallel(g: &Graph, h: usize, threads: usize) -> Vec<u64> {
    clique_degrees_parallel_within(g, h, &VertexSet::full(g.num_vertices()), threads)
}

/// Alive-restricted variant of [`clique_degrees_parallel`].
pub fn clique_degrees_parallel_within(
    g: &Graph,
    h: usize,
    alive: &VertexSet,
    threads: usize,
) -> Vec<u64> {
    assert!(h >= 1);
    let n = g.num_vertices();
    if h == 1 {
        let mut deg = vec![0u64; n];
        for v in alive.iter() {
            deg[v as usize] = 1;
        }
        return deg;
    }
    if threads <= 1 || n < 256 {
        return crate::kclist::clique_degrees_within(g, h, alive);
    }
    let out = build_out_csr(g, alive);
    let bitset = std::env::var_os("DSD_NO_BITSET").is_none();
    let roots: Vec<VertexId> = alive.iter().collect();
    // Static interleaved partition: root costs are skewed (hubs first in id
    // order would imbalance contiguous chunks; striding mixes them).
    let results = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let out = &out;
            let roots = &roots;
            handles.push(scope.spawn(move || {
                let mut deg = vec![0u64; n];
                let mut clique = Vec::with_capacity(h);
                let mut pool: Vec<Vec<VertexId>> = Vec::new();
                let mut bm = RootBitmap::default();
                let mut word_pool: Vec<Vec<u64>> = Vec::new();
                for &v in roots.iter().skip(t).step_by(threads) {
                    root_degrees(
                        out,
                        v,
                        h,
                        bitset,
                        &mut clique,
                        &mut pool,
                        &mut bm,
                        &mut word_pool,
                        &mut deg,
                    );
                }
                deg
            }));
        }
        handles
            .into_iter()
            .map(|hnd| hnd.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut total = vec![0u64; n];
    for local in results {
        for (acc, x) in total.iter_mut().zip(local) {
            *acc += x;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kclist::clique_degrees_within;
    use dsd_graph::GraphBuilder;

    fn random_graph(seed: u64, n: usize, percent: u64) -> Graph {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if next() % 1000 < percent {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = random_graph(3, 400, 25);
        let alive = VertexSet::full(400);
        for h in 2..=4usize {
            let seq = clique_degrees_within(&g, h, &alive);
            for threads in [1, 2, 4, 7] {
                let par = clique_degrees_parallel_within(&g, h, &alive, threads);
                assert_eq!(par, seq, "h = {h}, threads = {threads}");
            }
        }
    }

    #[test]
    fn parallel_respects_alive_mask() {
        let g = random_graph(9, 500, 30);
        let mut alive = VertexSet::full(500);
        for v in (0..500u32).step_by(3) {
            alive.remove(v);
        }
        let seq = clique_degrees_within(&g, 3, &alive);
        let par = clique_degrees_parallel_within(&g, 3, &alive, 4);
        assert_eq!(par, seq);
    }

    #[test]
    fn dense_roots_cross_bitset_threshold_and_match() {
        // Dense enough that high-degree roots take rec_degrees_bitset.
        let g = random_graph(11, 220, 450);
        let alive = VertexSet::full(220);
        let out = build_out_csr(&g, &alive);
        assert!(
            alive.iter().any(|v| bitset_worthwhile(&out, out.row(v))),
            "test graph too sparse to exercise the bitset kernel"
        );
        for h in 3..=4usize {
            // Merge-kernel reference, independent of the env toggle.
            let lister = crate::kclist::CliqueLister::with_bitset(&g, h, &alive, false);
            let mut scratch = crate::kclist::CliqueScratch::default();
            let mut seq = vec![0u64; 220];
            for v in alive.iter() {
                lister.for_each_rooted_until(v, &mut scratch, &mut |c: &[VertexId]| {
                    for &m in c {
                        seq[m as usize] += 1;
                    }
                    true
                });
            }
            for threads in [2, 5] {
                let par = clique_degrees_parallel_within(&g, h, &alive, threads);
                assert_eq!(par, seq, "h = {h}, threads = {threads}");
            }
        }
    }

    #[test]
    fn small_graphs_fall_back() {
        let g = random_graph(5, 50, 100);
        let seq = crate::kclist::clique_degrees(&g, 3);
        let par = clique_degrees_parallel(&g, 3, 8);
        assert_eq!(par, seq);
    }

    #[test]
    fn h1_counts_alive_vertices() {
        let g = random_graph(7, 300, 10);
        let deg = clique_degrees_parallel(&g, 1, 4);
        assert!(deg.iter().all(|&d| d == 1));
    }
}
